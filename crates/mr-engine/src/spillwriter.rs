//! Background spill writing for map attempts.
//!
//! Before this module, a map worker that filled its staging budget
//! stopped mapping until the spill was sorted, combined, compressed and
//! flushed to disk. A [`SpillWriter`] decouples the two: the mapper
//! detaches the full buffer, [`submit`](SpillWriter::submit)s it, and
//! keeps mapping into a recycled buffer from the
//! [`BufferPool`] while writer threads drain
//! the queue through [`crate::spill::write_sorted_run`]. The channel is
//! bounded at the thread count, so with the default single thread the
//! pipeline is exactly double-buffered: one buffer filling, one
//! flushing, never unbounded memory.
//!
//! The writer is **attempt-scoped** and must be joined
//! ([`finish`](SpillWriter::finish)) before the attempt's
//! [`AttemptDir`](crate::spill::AttemptDir) can drop — otherwise a
//! failing attempt would delete the directory under an in-flight write.
//! Every submitted buffer is returned to the pool by the writer thread,
//! written or not, so pool accounting stays exact on fault paths; run
//! sequence numbers are assigned at submit time and results are sorted
//! by them, so the committed run order — and therefore the merge
//! tie-break — is independent of write completion order and thread
//! count.
//!
//! `spill_writer_threads = 0` degrades to fully synchronous writes in
//! [`submit`](SpillWriter::submit) (the pre-pipeline behaviour), which
//! the differential tests use as the byte-identity reference.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mr_ir::value::Value;
use mr_storage::blockcodec::ShuffleCompression;
use mr_storage::fault::IoFaults;
use parking_lot::Mutex as PlMutex;

use crate::combine::CombineStrategy;
use crate::counters::Counters;
use crate::dictctx::DictContext;
use crate::error::{EngineError, Result};
use crate::pool::BufferPool;
use crate::spill::{write_sorted_run, SpillRun};

/// Everything a spill write needs besides the pairs themselves. Cloned
/// into each writer thread.
#[derive(Clone)]
pub struct SpillWriterCfg {
    /// Attempt directory the runs are written into.
    pub dir: PathBuf,
    /// Spill-time combine site.
    pub combine: CombineStrategy,
    /// Shuffle codec for the run files.
    pub compression: ShuffleCompression,
    /// Shared-dictionary authority, required when `compression` is the
    /// dict-trained codec (the first written spill trains it).
    pub dict: Option<Arc<DictContext>>,
    /// Attempt-local counters (spill traffic is only published if the
    /// attempt commits).
    pub counters: Arc<Counters>,
    /// Fault injection for the run I/O.
    pub io: Option<Arc<IoFaults>>,
    /// Pool the submitted buffers and writer scratch recycle through.
    pub pool: Arc<BufferPool>,
    /// Cross-thread shuffle-time attribution (sorting + writing).
    pub shuffle_nanos: Arc<AtomicU64>,
}

struct SpillJob {
    partition: usize,
    seq: usize,
    pairs: Vec<(Value, Value)>,
}

#[derive(Default)]
struct WriterShared {
    runs: PlMutex<Vec<(usize, SpillRun)>>,
    error: PlMutex<Option<EngineError>>,
    failed: AtomicBool,
}

/// Sort, combine and write one submitted buffer, returning it to the
/// pool whatever happens. Shared by the inline path and the writer
/// threads.
fn write_one(cfg: &SpillWriterCfg, job: SpillJob, shared: &WriterShared) {
    let SpillJob {
        partition,
        seq,
        mut pairs,
    } = job;
    if !shared.failed.load(Ordering::Relaxed) {
        let t = Instant::now();
        match write_sorted_run(
            &cfg.dir,
            partition,
            seq,
            &mut pairs,
            &cfg.combine,
            cfg.compression,
            cfg.dict.as_deref(),
            &cfg.counters,
            cfg.io.as_ref(),
            &cfg.pool,
        ) {
            Ok(run) => {
                cfg.shuffle_nanos
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                Counters::add(&cfg.counters.spill_count, 1);
                Counters::add(&cfg.counters.spilled_records, run.pairs);
                Counters::add(&cfg.counters.spill_bytes_raw, run.raw_bytes);
                Counters::add(&cfg.counters.spill_bytes_written, run.bytes);
                shared.runs.lock().push((partition, run));
            }
            Err(e) => {
                *shared.error.lock() = Some(e);
                shared.failed.store(true, Ordering::Relaxed);
            }
        }
    }
    cfg.pool.put_pairs(pairs);
}

/// A per-attempt spill pipeline: buffers go in, sorted runs come out.
pub struct SpillWriter {
    cfg: SpillWriterCfg,
    tx: Option<SyncSender<SpillJob>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<WriterShared>,
    next_seq: usize,
}

impl SpillWriter {
    /// Start a writer over `threads` background threads writing into
    /// `cfg.dir`. `threads == 0` keeps every write synchronous inside
    /// [`submit`](Self::submit).
    pub fn new(cfg: SpillWriterCfg, threads: usize) -> SpillWriter {
        let shared = Arc::new(WriterShared::default());
        let mut writer = SpillWriter {
            cfg,
            tx: None,
            handles: Vec::new(),
            shared,
            next_seq: 0,
        };
        if threads > 0 {
            // Capacity = thread count: one buffer queued per writer on
            // top of the one each is flushing. submit() blocking on a
            // full channel is the backpressure that bounds attempt
            // memory at (threads × 2 + 1) buffers.
            let (tx, rx) = std::sync::mpsc::sync_channel::<SpillJob>(threads);
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..threads {
                let cfg = writer.cfg.clone();
                let shared = Arc::clone(&writer.shared);
                let rx: Arc<Mutex<Receiver<SpillJob>>> = Arc::clone(&rx);
                writer.handles.push(std::thread::spawn(move || loop {
                    let job = match rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return,
                    };
                    match job {
                        Ok(job) => write_one(&cfg, job, &shared),
                        Err(_) => return, // channel closed: attempt over
                    }
                }));
            }
            writer.tx = Some(tx);
        }
        writer
    }

    /// Queue one detached staging buffer for partition `p`. Blocks only
    /// when every writer thread is busy *and* the queue is full — the
    /// double-buffer handoff. The buffer's run sequence is claimed
    /// here, so submission order decides merge order no matter when the
    /// write lands.
    ///
    /// After a write error the pipeline goes inert: buffers are
    /// recycled unwritten and an error comes back immediately; the root
    /// cause is what [`finish`](Self::finish) returns.
    pub fn submit(&mut self, partition: usize, pairs: Vec<(Value, Value)>) -> Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let job = SpillJob {
            partition,
            seq,
            pairs,
        };
        if self.shared.failed.load(Ordering::Relaxed) {
            self.cfg.pool.put_pairs(job.pairs);
            return Err(spill_failed());
        }
        match &self.tx {
            None => {
                write_one(&self.cfg, job, &self.shared);
                match self.shared.failed.load(Ordering::Relaxed) {
                    true => Err(spill_failed()),
                    false => Ok(()),
                }
            }
            Some(tx) => match tx.send(job) {
                Ok(()) => Ok(()),
                Err(std::sync::mpsc::SendError(job)) => {
                    // Writers only exit early if one panicked.
                    self.cfg.pool.put_pairs(job.pairs);
                    Err(spill_failed())
                }
            },
        }
    }

    /// Close the queue and join the writer threads.
    fn shutdown(&mut self) {
        self.tx.take(); // disconnects: writers drain the queue and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Drain the pipeline and collect `(partition, run)` in submission
    /// order, or the first write error. Must be called (and is, on
    /// every attempt path) before the attempt directory drops.
    pub fn finish(mut self) -> Result<Vec<(usize, SpillRun)>> {
        self.shutdown();
        if let Some(e) = self.shared.error.lock().take() {
            return Err(e);
        }
        let mut runs = std::mem::take(&mut *self.shared.runs.lock());
        runs.sort_by_key(|(_, r)| r.seq);
        Ok(runs)
    }
}

impl Drop for SpillWriter {
    /// Dropping without [`finish`](Self::finish) still drains the
    /// queue — every in-flight buffer reaches the pool and no thread
    /// outlives the attempt.
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spill_failed() -> EngineError {
    EngineError::Config("background spill writer failed; see attempt error".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::SpillDir;
    use mr_storage::fault::IoSite;
    use mr_storage::runfile::RunFileReader;

    fn cfg(dir: &SpillDir, pool: &Arc<BufferPool>, io: Option<Arc<IoFaults>>) -> SpillWriterCfg {
        SpillWriterCfg {
            dir: dir.path().to_path_buf(),
            combine: CombineStrategy::passthrough(),
            compression: ShuffleCompression::None,
            dict: None,
            counters: Counters::new(),
            io,
            pool: Arc::clone(pool),
            shuffle_nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    fn buf(pool: &BufferPool, pairs: &[(i64, i64)]) -> Vec<(Value, Value)> {
        let mut b = pool.get_pairs();
        b.extend(pairs.iter().map(|&(k, v)| (Value::Int(k), Value::Int(v))));
        b
    }

    fn run_pipeline(threads: usize) -> Vec<Vec<(Value, Value)>> {
        let dir = SpillDir::create(None, &format!("writer-{threads}")).unwrap();
        let pool = BufferPool::new();
        let c = cfg(&dir, &pool, None);
        let counters = Arc::clone(&c.counters);
        let mut w = SpillWriter::new(c, threads);
        w.submit(0, buf(&pool, &[(3, 30), (1, 10)])).unwrap();
        w.submit(1, buf(&pool, &[(2, 20)])).unwrap();
        w.submit(0, buf(&pool, &[(1, 11)])).unwrap();
        let runs = w.finish().unwrap();
        assert_eq!(pool.outstanding(), 0, "all buffers recycled");
        assert_eq!(counters.snapshot().spill_count, 3);
        let seqs: Vec<usize> = runs.iter().map(|(_, r)| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "submission order survives");
        assert_eq!(
            runs.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );
        runs.iter()
            .map(|(_, r)| {
                RunFileReader::open(&r.path)
                    .unwrap()
                    .map(|x| x.unwrap())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn inline_and_background_write_identical_runs() {
        let inline = run_pipeline(0);
        for threads in [1, 2, 4] {
            assert_eq!(run_pipeline(threads), inline, "threads={threads}");
        }
    }

    #[test]
    fn write_error_surfaces_and_recycles_buffers() {
        let dir = SpillDir::create(None, "writer-fault").unwrap();
        let pool = BufferPool::new();
        // Fail the very first pair append in the background.
        let io = Arc::new(IoFaults::new().with_fault(IoSite::RunWrite, 0));
        let mut w = SpillWriter::new(cfg(&dir, &pool, Some(io)), 1);
        w.submit(0, buf(&pool, &[(1, 1)])).unwrap();
        // Later submissions either race in before the failure is seen
        // (recycled unwritten) or fail fast here; both keep accounting.
        let _ = w.submit(0, buf(&pool, &[(2, 2)]));
        let err = w.finish().unwrap_err();
        assert!(matches!(err, EngineError::Storage(_)), "{err}");
        assert_eq!(pool.outstanding(), 0, "fault path leaks nothing");
    }

    #[test]
    fn drop_without_finish_recycles_everything() {
        let dir = SpillDir::create(None, "writer-drop").unwrap();
        let pool = BufferPool::new();
        let mut w = SpillWriter::new(cfg(&dir, &pool, None), 2);
        for i in 0..6 {
            w.submit(0, buf(&pool, &[(i, i)])).unwrap();
        }
        drop(w);
        assert_eq!(pool.outstanding(), 0);
    }
}
