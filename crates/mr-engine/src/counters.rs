//! Job counters.
//!
//! The paper's tables report not just wall-clock time but the *work*
//! each plan does — input sizes, intermediate output sizes (Table 3),
//! index sizes (Table 4). These counters surface the same quantities
//! for every job run, so the benchmark harness can print both time and
//! bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe job counters.
#[derive(Debug, Default)]
pub struct Counters {
    /// Records handed to map tasks.
    pub map_input_records: AtomicU64,
    /// `map()` invocations actually executed (equals input records; kept
    /// separate so index-skipped work is visible by comparison with the
    /// baseline).
    pub map_invocations: AtomicU64,
    /// `(key, value)` pairs emitted by map.
    pub map_output_records: AtomicU64,
    /// Bytes read from input files (post-split accounting).
    pub input_bytes: AtomicU64,
    /// Approximate bytes of shuffled intermediate data.
    pub shuffle_bytes: AtomicU64,
    /// Sorted runs spilled to disk by the shuffle (0 when the whole
    /// shuffle fit in [`JobConfig::shuffle_buffer_bytes`](crate::job::JobConfig::shuffle_buffer_bytes)).
    pub spill_count: AtomicU64,
    /// Pairs written to spill runs by map-side spills (a pair spilled
    /// once counts once; merge-compaction rewrites are not re-counted).
    pub spilled_records: AtomicU64,
    /// Bytes the record layer handed to spill run files *before* the
    /// shuffle codec (header + varint pair frames) — what
    /// `spill_bytes_written` would be with compression off. Map-side
    /// spills plus merge-compaction rewrites.
    pub spill_bytes_raw: AtomicU64,
    /// Physical bytes written to spill run files, after the shuffle
    /// codec ([`JobConfig::shuffle_compression`](crate::job::JobConfig::shuffle_compression))
    /// — map-side spills *plus* merge-compaction rewrites, i.e. total
    /// spill-disk write traffic. Equals `spill_bytes_raw` without a
    /// codec; the gap is exactly the I/O compression saved.
    pub spill_bytes_written: AtomicU64,
    /// Shared shuffle dictionaries trained by this job (dict-trained
    /// codec only). One map task trains per job; everything else
    /// reuses, so a healthy job reports at most 1.
    pub dict_trained: AtomicU64,
    /// Times a committed (or store-cached) trained dictionary was
    /// reused instead of retrained — retries, sibling map tasks,
    /// compaction, and repeat jobs over the same data all count here.
    pub dict_reused: AtomicU64,
    /// Pairs that entered a shuffle-side combine site (staging flush,
    /// spill write, compaction rewrite — the reduce-side fold is not
    /// counted). Zero when no combiner is plugged in.
    pub combine_in: AtomicU64,
    /// Pairs those combine sites emitted; `combine_in - combine_out` is
    /// exactly the shuffle traffic the combiner removed.
    pub combine_out: AtomicU64,
    /// Distinct keys seen by reduce.
    pub reduce_input_groups: AtomicU64,
    /// Records produced by reduce.
    pub reduce_output_records: AtomicU64,
    /// IR instructions executed across all map tasks.
    pub instructions_executed: AtomicU64,
    /// Side effects recorded by map tasks.
    pub side_effects: AtomicU64,
    /// Map task attempts that failed (each failed attempt counts once,
    /// including the final one of a task that exhausts
    /// [`JobConfig::max_task_attempts`](crate::job::JobConfig::max_task_attempts)).
    pub map_task_failures: AtomicU64,
    /// Reduce task attempts that failed.
    pub reduce_task_failures: AtomicU64,
    /// Task attempts started after a failure (map + reduce). A job with
    /// no faults reports 0.
    pub task_retries: AtomicU64,
    /// Speculative (duplicate) attempts launched against straggling
    /// tasks — process backend only. Not counted as retries: the
    /// original attempt has not failed, it is merely being raced.
    pub speculative_tasks: AtomicU64,
    /// Worker processes killed by the fault plan's `kill:` sites —
    /// process backend only.
    pub workers_killed: AtomicU64,
    /// Heap allocations performed while the job ran. Populated only
    /// when the `bench-alloc` feature instruments the global allocator
    /// (see [`crate::allocstats`]); 0 otherwise. Process-wide, so only
    /// meaningful for serially-run jobs (the bench harness).
    pub alloc_count: AtomicU64,
    /// Heap bytes requested while the job ran (`bench-alloc` only).
    pub alloc_bytes: AtomicU64,
}

impl Counters {
    /// Fresh shared counters.
    pub fn new() -> Arc<Counters> {
        Arc::new(Counters::default())
    }

    /// Add to a counter.
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshot for reporting.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            map_input_records: self.map_input_records.load(Ordering::Relaxed),
            map_invocations: self.map_invocations.load(Ordering::Relaxed),
            map_output_records: self.map_output_records.load(Ordering::Relaxed),
            input_bytes: self.input_bytes.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            spill_count: self.spill_count.load(Ordering::Relaxed),
            spilled_records: self.spilled_records.load(Ordering::Relaxed),
            spill_bytes_raw: self.spill_bytes_raw.load(Ordering::Relaxed),
            spill_bytes_written: self.spill_bytes_written.load(Ordering::Relaxed),
            dict_trained: self.dict_trained.load(Ordering::Relaxed),
            dict_reused: self.dict_reused.load(Ordering::Relaxed),
            combine_in: self.combine_in.load(Ordering::Relaxed),
            combine_out: self.combine_out.load(Ordering::Relaxed),
            reduce_input_groups: self.reduce_input_groups.load(Ordering::Relaxed),
            reduce_output_records: self.reduce_output_records.load(Ordering::Relaxed),
            instructions_executed: self.instructions_executed.load(Ordering::Relaxed),
            side_effects: self.side_effects.load(Ordering::Relaxed),
            map_task_failures: self.map_task_failures.load(Ordering::Relaxed),
            reduce_task_failures: self.reduce_task_failures.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            speculative_tasks: self.speculative_tasks.load(Ordering::Relaxed),
            workers_killed: self.workers_killed.load(Ordering::Relaxed),
            alloc_count: self.alloc_count.load(Ordering::Relaxed),
            alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
        }
    }

    /// Fold a snapshot of attempt-local counters into these shared job
    /// counters — the commit half of the task-attempt protocol: a task
    /// attempt accumulates into its own private [`Counters`] and only a
    /// *successful* attempt is absorbed, so the work of failed,
    /// retried attempts never double-counts.
    pub fn absorb(&self, s: &CounterSnapshot) {
        Counters::add(&self.map_input_records, s.map_input_records);
        Counters::add(&self.map_invocations, s.map_invocations);
        Counters::add(&self.map_output_records, s.map_output_records);
        Counters::add(&self.input_bytes, s.input_bytes);
        Counters::add(&self.shuffle_bytes, s.shuffle_bytes);
        Counters::add(&self.spill_count, s.spill_count);
        Counters::add(&self.spilled_records, s.spilled_records);
        Counters::add(&self.spill_bytes_raw, s.spill_bytes_raw);
        Counters::add(&self.spill_bytes_written, s.spill_bytes_written);
        Counters::add(&self.dict_trained, s.dict_trained);
        Counters::add(&self.dict_reused, s.dict_reused);
        Counters::add(&self.combine_in, s.combine_in);
        Counters::add(&self.combine_out, s.combine_out);
        Counters::add(&self.reduce_input_groups, s.reduce_input_groups);
        Counters::add(&self.reduce_output_records, s.reduce_output_records);
        Counters::add(&self.instructions_executed, s.instructions_executed);
        Counters::add(&self.side_effects, s.side_effects);
        Counters::add(&self.map_task_failures, s.map_task_failures);
        Counters::add(&self.reduce_task_failures, s.reduce_task_failures);
        Counters::add(&self.task_retries, s.task_retries);
        Counters::add(&self.speculative_tasks, s.speculative_tasks);
        Counters::add(&self.workers_killed, s.workers_killed);
        Counters::add(&self.alloc_count, s.alloc_count);
        Counters::add(&self.alloc_bytes, s.alloc_bytes);
    }
}

impl CounterSnapshot {
    /// Shuffle compression ratio: physical spill bytes over pre-codec
    /// spill bytes (`< 1.0` means the codec saved disk I/O). `None`
    /// when nothing spilled.
    pub fn spill_ratio(&self) -> Option<f64> {
        if self.spill_bytes_raw == 0 {
            None
        } else {
            Some(self.spill_bytes_written as f64 / self.spill_bytes_raw as f64)
        }
    }
}

/// A point-in-time copy of [`Counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Records handed to map tasks.
    pub map_input_records: u64,
    /// `map()` invocations executed.
    pub map_invocations: u64,
    /// Pairs emitted by map.
    pub map_output_records: u64,
    /// Bytes read from inputs.
    pub input_bytes: u64,
    /// Approximate shuffled bytes.
    pub shuffle_bytes: u64,
    /// Sorted runs spilled to disk.
    pub spill_count: u64,
    /// Pairs written to spill runs (map-side spills).
    pub spilled_records: u64,
    /// Record-layer bytes sent to spill runs before the codec.
    pub spill_bytes_raw: u64,
    /// Physical bytes written to spill runs (incl. compaction
    /// rewrites), after the codec.
    pub spill_bytes_written: u64,
    /// Shared shuffle dictionaries trained (dict-trained codec only).
    pub dict_trained: u64,
    /// Committed trained dictionaries reused instead of retrained.
    pub dict_reused: u64,
    /// Pairs entering combine sites (0 without a combiner).
    pub combine_in: u64,
    /// Pairs leaving combine sites.
    pub combine_out: u64,
    /// Distinct reduce keys.
    pub reduce_input_groups: u64,
    /// Reduce output records.
    pub reduce_output_records: u64,
    /// IR instructions executed.
    pub instructions_executed: u64,
    /// Side effects recorded.
    pub side_effects: u64,
    /// Failed map task attempts.
    pub map_task_failures: u64,
    /// Failed reduce task attempts.
    pub reduce_task_failures: u64,
    /// Attempts started after a failure.
    pub task_retries: u64,
    /// Speculative duplicate attempts launched (process backend only).
    pub speculative_tasks: u64,
    /// Worker processes killed by `kill:` fault sites (process backend
    /// only).
    pub workers_killed: u64,
    /// Heap allocations during the job (`bench-alloc` feature only).
    pub alloc_count: u64,
    /// Heap bytes requested during the job (`bench-alloc` only).
    pub alloc_bytes: u64,
}

impl std::fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "map input records : {}", self.map_input_records)?;
        writeln!(f, "map invocations   : {}", self.map_invocations)?;
        writeln!(f, "map output records: {}", self.map_output_records)?;
        writeln!(f, "input bytes       : {}", self.input_bytes)?;
        writeln!(f, "shuffle bytes     : {}", self.shuffle_bytes)?;
        writeln!(f, "spill runs        : {}", self.spill_count)?;
        writeln!(f, "spilled records   : {}", self.spilled_records)?;
        writeln!(f, "spill bytes raw   : {}", self.spill_bytes_raw)?;
        writeln!(f, "spill bytes writtn: {}", self.spill_bytes_written)?;
        writeln!(f, "combine in        : {}", self.combine_in)?;
        writeln!(f, "combine out       : {}", self.combine_out)?;
        writeln!(f, "reduce groups     : {}", self.reduce_input_groups)?;
        writeln!(f, "reduce output     : {}", self.reduce_output_records)?;
        writeln!(f, "map task failures : {}", self.map_task_failures)?;
        writeln!(f, "red. task failures: {}", self.reduce_task_failures)?;
        write!(f, "task retries      : {}", self.task_retries)?;
        if let Some(ratio) = self.spill_ratio() {
            write!(f, "\nspill ratio       : {ratio:.4}")?;
        }
        if self.dict_trained > 0 || self.dict_reused > 0 {
            write!(
                f,
                "\ndicts trained     : {}\ndicts reused      : {}",
                self.dict_trained, self.dict_reused
            )?;
        }
        if self.speculative_tasks > 0 || self.workers_killed > 0 {
            write!(
                f,
                "\nspeculative tasks : {}\nworkers killed    : {}",
                self.speculative_tasks, self.workers_killed
            )?;
        }
        if self.alloc_count > 0 {
            write!(
                f,
                "\nheap allocations  : {}\nheap alloc bytes  : {}",
                self.alloc_count, self.alloc_bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_snapshot() {
        let c = Counters::new();
        Counters::add(&c.map_input_records, 10);
        Counters::add(&c.map_input_records, 5);
        Counters::add(&c.input_bytes, 1024);
        let s = c.snapshot();
        assert_eq!(s.map_input_records, 15);
        assert_eq!(s.input_bytes, 1024);
        assert_eq!(s.reduce_output_records, 0);
    }

    #[test]
    fn absorb_adds_every_field() {
        let attempt = Counters::new();
        Counters::add(&attempt.map_input_records, 7);
        Counters::add(&attempt.spilled_records, 3);
        Counters::add(&attempt.combine_in, 2);
        let job = Counters::new();
        Counters::add(&job.map_input_records, 1);
        job.absorb(&attempt.snapshot());
        let s = job.snapshot();
        assert_eq!(s.map_input_records, 8);
        assert_eq!(s.spilled_records, 3);
        assert_eq!(s.combine_in, 2);
        assert_eq!(s.task_retries, 0);
    }

    #[test]
    fn display_lists_counters() {
        let s = CounterSnapshot::default();
        let text = s.to_string();
        assert!(text.contains("map input records"));
        assert!(text.contains("reduce output"));
    }
}
