//! Standalone task-protocol worker.
//!
//! The process backend normally re-execs its coordinator binary in
//! worker mode, but test harnesses (whose "current exe" is the test
//! runner itself) and external drivers need a dedicated worker
//! executable. Usage, matching the hidden worker entrypoint:
//!
//! ```text
//! mr_worker <socket-path> <worker-id>
//! ```

fn main() {
    let mut args = std::env::args().skip(1);
    // Accept (and skip) the sentinel so the same argv works whether a
    // caller passes `worker_cmd = ["mr_worker"]` or re-uses the
    // coordinator convention `[exe, "__mr-worker"]`.
    let first = args.next();
    let socket = match first.as_deref() {
        Some(s) if s == mr_engine::backend::WORKER_ARG => args.next(),
        other => other.map(str::to_string),
    };
    let (socket, id) = match (socket, args.next().and_then(|s| s.parse().ok())) {
        (Some(socket), Some(id)) => (socket, id),
        _ => {
            eprintln!("usage: mr_worker <socket-path> <worker-id>");
            std::process::exit(2);
        }
    };
    if let Err(e) = mr_engine::worker_main(&socket, id) {
        eprintln!("mr_worker {id}: {e}");
        std::process::exit(1);
    }
}
