//! Two-table equi-join support: tagged-union repartition joins and
//! broadcast hash joins.
//!
//! The Pavlo Benchmark 3 (Rankings⋈UserVisits) joins two tables whose
//! mappers each emit `(join_key, payload)`. The engine runs that join
//! under one of two physical plans, both producing the *same* output
//! pairs `(join_key, [build_payload, probe_payload])`:
//!
//! * **Repartition join** — each [`InputBinding`] carries a
//!   [`JoinSide::Build`] or [`JoinSide::Probe`] role; the engine wraps
//!   the binding's mapper so every emitted value is shuffled as the
//!   tagged union `[tag, payload]` (tag [`BUILD_TAG`] or
//!   [`PROBE_TAG`]), and the [`Builtin::JoinTagged`] reducer buffers
//!   each key group into build/probe sides (arrival order preserved)
//!   and emits the cross product.
//! * **Broadcast hash join** — a single probe-side binding carries
//!   [`JoinSide::Broadcast`] naming the build input and its mapper; the
//!   whole build side is loaded once per job into a shared hash table
//!   and every map task probes it inline, emitting already-joined
//!   pairs. The reducer is plain [`Builtin::Identity`]; no build rows
//!   cross the shuffle at all.
//!
//! The wrapping happens at task-planning time on *both* backends
//! ([`effective_factories`]): the job's bindings keep the raw mapper
//! (which is what the process backend ships over the wire as IR
//! assembly, together with the join role), and the worker re-wraps
//! locally after decoding — so broadcast tables are built exactly once
//! per worker process and shared across its map tasks, retries
//! included.
//!
//! Join stages must not combine: a map-side combiner would fold tagged
//! unions across tags and corrupt them. [`Builtin::JoinTagged`]
//! declares no combiner, and dispatch rejects any explicitly configured
//! one with the typed
//! [`EngineError::CombinerRejected`] before any task runs
//! ([`validate_job`]).
//!
//! [`Builtin::JoinTagged`]: crate::reducer::Builtin::JoinTagged
//! [`Builtin::Identity`]: crate::reducer::Builtin::Identity

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use mr_ir::function::Function;
use mr_ir::value::Value;

use crate::error::{EngineError, Result};
use crate::input::InputSpec;
use crate::job::{InputBinding, JobConfig};
use crate::mapper::{IrMapper, MapStats, Mapper, MapperFactory};
use crate::reducer::Builtin;

/// Tag marking a build-side payload in a tagged-union shuffle value.
pub const BUILD_TAG: i64 = 0;

/// Tag marking a probe-side payload in a tagged-union shuffle value.
pub const PROBE_TAG: i64 = 1;

/// The build side of a broadcast hash join: where the build rows come
/// from and the IR map function that extracts `(join_key, payload)`
/// pairs from them — the same function the repartition plan would bind
/// with [`JoinSide::Build`], which is what keeps the two plans'
/// outputs identical.
#[derive(Clone)]
pub struct BroadcastSpec {
    /// The build-side input (a plain seqfile, or a catalog-registered
    /// index input for index-fed broadcasts).
    pub input: InputSpec,
    /// Compiled IR map function emitting `(join_key, payload)`.
    pub mapper: Arc<Function>,
}

impl fmt::Debug for BroadcastSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BroadcastSpec")
            .field("input", &self.input)
            .field("mapper", &self.mapper.name)
            .finish()
    }
}

/// The join role of one [`InputBinding`] (see the module docs).
#[derive(Debug, Clone)]
pub enum JoinSide {
    /// Repartition build side: emitted values shuffle as `[0, v]`.
    Build,
    /// Repartition probe side: emitted values shuffle as `[1, v]`.
    Probe,
    /// Broadcast join probe side: the named build input is loaded into
    /// a shared in-memory table and probed inline by every map task.
    Broadcast(BroadcastSpec),
}

/// Wrap a payload as the tagged-union shuffle value `[tag, payload]`.
pub fn tag_value(tag: i64, payload: Value) -> Value {
    Value::list(vec![Value::Int(tag), payload])
}

/// Split a tagged-union shuffle value back into `(tag, payload)`.
pub fn untag_value(v: &Value) -> Result<(i64, &Value)> {
    if let Value::List(items) = v {
        if items.len() == 2 {
            if let Value::Int(tag) = items[0] {
                if tag == BUILD_TAG || tag == PROBE_TAG {
                    return Ok((tag, &items[1]));
                }
            }
        }
    }
    Err(EngineError::Reduce(format!(
        "join-tagged: value {v} is not a tagged union [0|1, payload] — \
         was a binding without a join role fed into a join stage?"
    )))
}

/// The joined output value both physical plans emit:
/// `[build_payload, probe_payload]`.
pub fn joined_value(build: Value, probe: Value) -> Value {
    Value::list(vec![build, probe])
}

/// Reduce one key group of tagged-union values: partition by tag with
/// arrival order preserved, then emit the build×probe cross product as
/// `(key, [build_payload, probe_payload])` in build-major order. This
/// is [`Builtin::JoinTagged`]'s implementation and the reference
/// semantics the property tests pin down.
pub fn reduce_tagged_group(
    key: &Value,
    values: &[Value],
    out: &mut Vec<(Value, Value)>,
) -> Result<()> {
    let mut build = Vec::new();
    let mut probe = Vec::new();
    for v in values {
        let (tag, payload) = untag_value(v)?;
        if tag == BUILD_TAG {
            build.push(payload);
        } else {
            probe.push(payload);
        }
    }
    for b in &build {
        for p in &probe {
            out.push((key.clone(), joined_value((*b).clone(), (*p).clone())));
        }
    }
    Ok(())
}

/// A broadcast build side loaded into memory: join key → build
/// payloads in build-input order. Ordered so iteration (and therefore
/// any diagnostics walking it) is deterministic.
pub type BroadcastTable = BTreeMap<Value, Vec<Value>>;

/// Load a broadcast build side by running its mapper over the whole
/// build input in a single deterministic pass. Called once per job
/// (local backend) or once per worker process, never per task or per
/// retry.
pub fn load_broadcast_table(spec: &BroadcastSpec) -> Result<Arc<BroadcastTable>> {
    let mut table = BroadcastTable::new();
    let mut mapper = IrMapper::new(Arc::clone(&spec.mapper));
    let mut emits = Vec::new();
    for reader in spec.input.open(1)? {
        for pair in reader {
            let (k, v) = pair?;
            emits.clear();
            mapper.map(&k, &v, &mut emits)?;
            for (jk, payload) in emits.drain(..) {
                table.entry(jk).or_default().push(payload);
            }
        }
    }
    Ok(Arc::new(table))
}

/// Tags every value the inner mapper emits ([`JoinSide::Build`] /
/// [`JoinSide::Probe`]).
struct TaggingMapper {
    inner: Box<dyn Mapper>,
    tag: i64,
    buf: Vec<(Value, Value)>,
}

impl Mapper for TaggingMapper {
    fn map(
        &mut self,
        key: &Value,
        value: &Value,
        out: &mut Vec<(Value, Value)>,
    ) -> Result<MapStats> {
        self.buf.clear();
        let stats = self.inner.map(key, value, &mut self.buf)?;
        out.extend(self.buf.drain(..).map(|(k, v)| (k, tag_value(self.tag, v))));
        Ok(stats)
    }
}

struct TaggingMapperFactory {
    inner: Arc<dyn MapperFactory>,
    tag: i64,
}

impl MapperFactory for TaggingMapperFactory {
    fn create(&self) -> Box<dyn Mapper> {
        Box::new(TaggingMapper {
            inner: self.inner.create(),
            tag: self.tag,
            buf: Vec::new(),
        })
    }
}

/// Probes the shared broadcast table with every key the inner (probe)
/// mapper emits, emitting already-joined pairs.
struct BroadcastMapper {
    inner: Box<dyn Mapper>,
    table: Arc<BroadcastTable>,
    buf: Vec<(Value, Value)>,
}

impl Mapper for BroadcastMapper {
    fn map(
        &mut self,
        key: &Value,
        value: &Value,
        out: &mut Vec<(Value, Value)>,
    ) -> Result<MapStats> {
        self.buf.clear();
        let stats = self.inner.map(key, value, &mut self.buf)?;
        for (k, pv) in self.buf.drain(..) {
            if let Some(builds) = self.table.get(&k) {
                for bv in builds {
                    out.push((k.clone(), joined_value(bv.clone(), pv.clone())));
                }
            }
        }
        Ok(stats)
    }
}

struct BroadcastMapperFactory {
    inner: Arc<dyn MapperFactory>,
    table: Arc<BroadcastTable>,
}

impl MapperFactory for BroadcastMapperFactory {
    fn create(&self) -> Box<dyn Mapper> {
        Box::new(BroadcastMapper {
            inner: self.inner.create(),
            table: Arc::clone(&self.table),
            buf: Vec::new(),
        })
    }
}

/// Compute the effective mapper factory for every binding of a job:
/// bindings with a join role get their mapper wrapped (tagging for the
/// repartition sides, table-probing for broadcast), plain bindings
/// pass through untouched. Broadcast build tables are loaded exactly
/// once here, so every task — retries and speculative duplicates
/// included — shares one table. Both backends call this before
/// planning tasks.
pub fn effective_factories(inputs: &[InputBinding]) -> Result<Vec<Arc<dyn MapperFactory>>> {
    inputs
        .iter()
        .map(|binding| -> Result<Arc<dyn MapperFactory>> {
            Ok(match &binding.join {
                None => Arc::clone(&binding.mapper),
                Some(JoinSide::Build) => Arc::new(TaggingMapperFactory {
                    inner: Arc::clone(&binding.mapper),
                    tag: BUILD_TAG,
                }),
                Some(JoinSide::Probe) => Arc::new(TaggingMapperFactory {
                    inner: Arc::clone(&binding.mapper),
                    tag: PROBE_TAG,
                }),
                Some(JoinSide::Broadcast(spec)) => Arc::new(BroadcastMapperFactory {
                    inner: Arc::clone(&binding.mapper),
                    table: load_broadcast_table(spec)?,
                }),
            })
        })
        .collect()
}

/// `true` when any binding of the job carries a join role.
pub fn is_join_stage(job: &JobConfig) -> bool {
    job.inputs.iter().any(|b| b.join.is_some())
        || job.reducer.as_builtin() == Some(Builtin::JoinTagged)
}

/// Reject invalid join configurations before any task runs — today
/// that is exactly one hazard: a combiner on a join stage, which would
/// silently fold `[tag, payload]` unions across tags. Called by
/// backend dispatch, so it covers the local and process backends
/// alike.
pub fn validate_job(job: &JobConfig) -> Result<()> {
    if !is_join_stage(job) {
        return Ok(());
    }
    if let Some(combiner) = &job.combiner {
        let reducer = match job.reducer.as_builtin() {
            Some(b) => b.name().to_string(),
            None => "user-defined".to_string(),
        };
        return Err(EngineError::CombinerRejected {
            reducer,
            reason: format!(
                "join stages shuffle tagged-union [tag, payload] values; \
                 combiner `{}` would fold across tags and corrupt them",
                combiner.name()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;
    use mr_ir::record::record;
    use mr_ir::schema::{FieldType, Schema};
    use mr_storage::seqfile::SeqFileWriter;

    #[test]
    fn tag_untag_round_trip() {
        let v = tag_value(BUILD_TAG, Value::str("payload"));
        let (tag, payload) = untag_value(&v).unwrap();
        assert_eq!(tag, BUILD_TAG);
        assert_eq!(payload, &Value::str("payload"));
    }

    #[test]
    fn untag_rejects_untagged_values() {
        for bad in [
            Value::Int(7),
            Value::str("plain"),
            Value::list(vec![Value::Int(2), Value::Null]),
            Value::list(vec![Value::Int(0)]),
        ] {
            let err = untag_value(&bad).unwrap_err();
            assert!(matches!(err, EngineError::Reduce(_)), "{bad}");
        }
    }

    #[test]
    fn tagged_group_emits_cross_product_in_order() {
        let key = Value::str("url");
        let values = vec![
            tag_value(PROBE_TAG, Value::str("p1")),
            tag_value(BUILD_TAG, Value::str("b1")),
            tag_value(PROBE_TAG, Value::str("p2")),
            tag_value(BUILD_TAG, Value::str("b2")),
        ];
        let mut out = Vec::new();
        reduce_tagged_group(&key, &values, &mut out).unwrap();
        let pairs: Vec<(Value, Value)> = out
            .iter()
            .map(|(_, v)| match v {
                Value::List(items) => (items[0].clone(), items[1].clone()),
                other => panic!("not a joined pair: {other}"),
            })
            .collect();
        assert_eq!(
            pairs,
            vec![
                (Value::str("b1"), Value::str("p1")),
                (Value::str("b1"), Value::str("p2")),
                (Value::str("b2"), Value::str("p1")),
                (Value::str("b2"), Value::str("p2")),
            ]
        );
    }

    #[test]
    fn unmatched_sides_emit_nothing() {
        let mut out = Vec::new();
        reduce_tagged_group(
            &Value::str("k"),
            &[tag_value(BUILD_TAG, Value::Int(1))],
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty(), "build row without probes must not emit");
    }

    fn key_value_mapper() -> Function {
        parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.k
              r2 = field r0.v
              emit r1, r2
              ret
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn broadcast_table_loads_in_input_order() {
        let schema =
            Schema::new("T", vec![("k", FieldType::Str), ("v", FieldType::Int)]).into_arc();
        let dir = std::env::temp_dir().join("mr-engine-join-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("bcast-{}", std::process::id()));
        let mut w = SeqFileWriter::create(&path, Arc::clone(&schema)).unwrap();
        for (k, v) in [("a", 1), ("b", 2), ("a", 3)] {
            w.append(&record(&schema, vec![k.into(), Value::Int(v)]))
                .unwrap();
        }
        w.finish().unwrap();

        let spec = BroadcastSpec {
            input: InputSpec::SeqFile { path: path.clone() },
            mapper: Arc::new(key_value_mapper()),
        };
        let table = load_broadcast_table(&spec).unwrap();
        assert_eq!(
            table.get(&Value::str("a")),
            Some(&vec![Value::Int(1), Value::Int(3)]),
            "payloads keep build-input order"
        );
        assert_eq!(table.get(&Value::str("b")), Some(&vec![Value::Int(2)]));
        std::fs::remove_file(&path).ok();
    }
}
