//! Map-side shuffle buckets with a bounded memory footprint.
//!
//! The paper's fabric "retains the standard map-shuffle-reduce
//! sequence" (§2); Hadoop's version of that sequence scales past RAM by
//! spilling sorted runs of map output and merging them at reduce time.
//! This module is the spill half: each reduce partition owns a
//! [`ShuffleBucket`] that accumulates emitted pairs, and when a bucket
//! outgrows its share of [`JobConfig::shuffle_buffer_bytes`] the runner
//! detaches the buffer ([`ShuffleBucket::take_for_spill`], under the
//! bucket lock), sorts it by key (stably, preserving emission order
//! within a key) and writes it to a [`mr_storage::runfile`] run
//! ([`write_sorted_run`], *outside* the lock, so map workers are not
//! serialized behind disk writes). Runs carry a sequence number
//! assigned at detach time, which keeps them in emission order however
//! the writes interleave. The merge half lives in [`crate::merge`].
//!
//! [`JobConfig::shuffle_buffer_bytes`]: crate::job::JobConfig::shuffle_buffer_bytes

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_ir::value::Value;
use mr_storage::blockcodec::ShuffleCompression;
use mr_storage::fault::IoFaults;
use mr_storage::runfile::{RunFileWriter, RunScratch};
use mr_storage::trained::TrainedDict;

use crate::combine::CombineStrategy;
use crate::counters::Counters;
use crate::dictctx::DictContext;
use crate::error::{EngineError, Result};
use crate::pool::BufferPool;

/// One spilled sorted run.
#[derive(Debug, Clone)]
pub struct SpillRun {
    /// Spill sequence within the bucket (buffer-detach = emission
    /// order); the merge tie-breaks equal keys by it.
    pub seq: usize,
    /// The run file.
    pub path: PathBuf,
    /// Pairs in the run.
    pub pairs: u64,
    /// Record-layer bytes before the shuffle codec (what `bytes` would
    /// be uncompressed).
    pub raw_bytes: u64,
    /// Run file size in bytes (codec framing included).
    pub bytes: u64,
}

/// A per-job spill directory, created on demand and removed (with
/// everything in it) when the job finishes.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create a fresh private directory under `parent` (or the system
    /// temp dir). The name embeds the pid and a process-wide sequence
    /// number so concurrent jobs never collide.
    pub fn create(parent: Option<&Path>, job_name: &str) -> Result<SpillDir> {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let sanitized: String = job_name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(32)
            .collect();
        let base = parent
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let path = base.join(format!("mr-spill-{sanitized}-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(SpillDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// RAII scope for one task attempt's spill runs: a private
/// subdirectory of the job's [`SpillDir`] that is removed — with any
/// partial run files still inside — when the guard drops. A successful
/// attempt *commits* by renaming its run files out into the job
/// directory before the guard goes; a failed attempt just drops the
/// guard and every side effect of the attempt vanishes. This is what
/// keeps retried attempts idempotent on disk: between a spill and the
/// merge, every uncommitted run file is owned by exactly one live
/// guard.
#[derive(Debug)]
pub struct AttemptDir {
    path: PathBuf,
}

impl AttemptDir {
    /// Create the scope for `kind` (`map`/`reduce`) task `task`,
    /// attempt `attempt` under the job spill dir.
    pub fn create(parent: &Path, kind: &str, task: usize, attempt: usize) -> Result<AttemptDir> {
        let path = parent.join(format!("attempt-{kind}-{task:05}-{attempt:03}"));
        std::fs::create_dir_all(&path)?;
        Ok(AttemptDir { path })
    }

    /// The attempt directory.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for AttemptDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// One reduce partition's shuffle bucket: the resident pair buffer plus
/// the runs already spilled for it.
#[derive(Debug, Default)]
pub struct ShuffleBucket {
    resident: Vec<(Value, Value)>,
    resident_bytes: usize,
    next_seq: usize,
    runs: Vec<SpillRun>,
}

impl ShuffleBucket {
    /// An empty bucket.
    pub fn new() -> ShuffleBucket {
        ShuffleBucket::default()
    }

    /// Append a map task's pairs for this partition. `bytes` is the
    /// same approximate pair size the `shuffle_bytes` counter uses, so
    /// budget accounting and reporting agree.
    pub fn absorb(&mut self, pairs: &mut Vec<(Value, Value)>, bytes: usize) {
        self.resident.append(pairs);
        self.resident_bytes += bytes;
    }

    /// Approximate bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Runs recorded so far (in record order, not spill order).
    pub fn runs(&self) -> &[SpillRun] {
        &self.runs
    }

    /// Claim the next spill sequence number without detaching the
    /// buffer — how a committing map attempt assigns its
    /// attempt-scoped runs a place in the bucket's emission order.
    pub fn alloc_seq(&mut self) -> usize {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Detach the resident buffer for spilling and assign it the next
    /// spill sequence number. The caller sorts and writes it outside
    /// the bucket lock ([`write_sorted_run`]) and hands the result back
    /// via [`record_run`](Self::record_run). `None` when there is
    /// nothing to spill.
    pub fn take_for_spill(&mut self) -> Option<(Vec<(Value, Value)>, usize)> {
        if self.resident.is_empty() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.resident_bytes = 0;
        Some((std::mem::take(&mut self.resident), seq))
    }

    /// Register a run written by [`write_sorted_run`].
    pub fn record_run(&mut self, run: SpillRun) {
        self.runs.push(run);
    }

    /// Give a spilled buffer's capacity back to the bucket. Adopted
    /// (cleared) only when the resident buffer is still empty and the
    /// donation is bigger — a committer may have refilled the bucket
    /// while the spill wrote.
    pub fn reclaim_resident(&mut self, mut buf: Vec<(Value, Value)>) {
        if self.resident.is_empty() && buf.capacity() > self.resident.capacity() {
            buf.clear();
            self.resident = buf;
        }
    }

    /// Tear down into `(resident tail, spilled runs)` for the merge.
    /// The tail is returned unsorted; runs come back ordered by spill
    /// sequence — emission order — and the merge breaks key ties by run
    /// index, with the tail last, to reproduce the in-memory stable
    /// sort exactly.
    pub fn into_parts(mut self) -> (Vec<(Value, Value)>, Vec<SpillRun>) {
        self.runs.sort_by_key(|r| r.seq);
        (self.resident, self.runs)
    }
}

/// Stably sort `pairs` by key (emission order survives within equal
/// keys), fold duplicate keys when `combine` carries a combiner — the
/// spill-time combine site, shrinking the run before it hits disk —
/// and write the result as run `seq` of `partition` under `dir`,
/// compressed through `compression`'s block codec.
///
/// The pair buffer is borrowed, not consumed: on return it holds the
/// sorted (and possibly combined) pairs and the caller recycles it
/// through the pool. Writer scratch ([`RunScratch`]) is loaned from
/// `pool` for the duration of the write, so in steady state this
/// function touches the allocator only when a pair outgrows every
/// recycled buffer.
#[allow(clippy::too_many_arguments)]
pub fn write_sorted_run(
    dir: &Path,
    partition: usize,
    seq: usize,
    pairs: &mut Vec<(Value, Value)>,
    combine: &CombineStrategy,
    compression: ShuffleCompression,
    dict: Option<&DictContext>,
    counters: &Counters,
    io: Option<&Arc<IoFaults>>,
    pool: &BufferPool,
) -> Result<SpillRun> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    combine.combine_sorted(pairs, counters)?;
    // The dict-trained codec resolves its shared dictionary here —
    // after sort + combine, so the first spill trains on exactly the
    // pair stream it is about to write.
    let trained = match (compression, dict) {
        (ShuffleCompression::DictTrained, Some(ctx)) => {
            Some(ctx.resolve_or_train(pairs, counters)?)
        }
        (ShuffleCompression::DictTrained, None) => {
            return Err(EngineError::Config(
                "dict-trained shuffle codec needs a dictionary context".into(),
            ));
        }
        _ => None,
    };
    let path = dir.join(format!("run-{partition:05}-{seq:06}"));
    let scratch = pool.get_scratch();
    match write_run_file(&path, pairs, compression, trained, io, scratch) {
        Ok((stats, scratch)) => {
            pool.put_scratch(scratch);
            Ok(SpillRun {
                seq,
                path,
                pairs: stats.pairs,
                raw_bytes: stats.raw_bytes,
                bytes: stats.file_bytes,
            })
        }
        Err(e) => {
            // The failed writer still owns the loaned buffers; balance
            // the loan with fresh scratch so pool accounting stays
            // exact on fault paths (capacity is lost, correctness not).
            pool.put_scratch(RunScratch::new());
            Err(e)
        }
    }
}

fn write_run_file(
    path: &Path,
    pairs: &[(Value, Value)],
    compression: ShuffleCompression,
    trained: Option<Arc<TrainedDict>>,
    io: Option<&Arc<IoFaults>>,
    scratch: RunScratch,
) -> Result<(mr_storage::runfile::RunFileStats, RunScratch)> {
    let mut w = match trained {
        Some(dict) => RunFileWriter::create_trained_pooled(path, dict, io.cloned(), scratch)?,
        None => RunFileWriter::create_pooled(path, compression, io.cloned(), scratch)?,
    };
    for (k, v) in pairs {
        w.append(k, v)?;
    }
    Ok(w.finish_reclaim()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reducer::Builtin;
    use mr_storage::runfile::RunFileReader;

    fn plain_run(
        dir: &Path,
        partition: usize,
        seq: usize,
        mut pairs: Vec<(Value, Value)>,
    ) -> Result<SpillRun> {
        let pool = BufferPool::new();
        write_sorted_run(
            dir,
            partition,
            seq,
            &mut pairs,
            &CombineStrategy::passthrough(),
            ShuffleCompression::None,
            None,
            &Counters::new(),
            None,
            &pool,
        )
    }

    #[test]
    fn spill_sorts_and_clears() {
        let dir = SpillDir::create(None, "spill unit ☃ test").unwrap();
        let mut b = ShuffleBucket::new();
        let mut pairs = vec![
            (Value::Int(3), Value::str("c")),
            (Value::Int(1), Value::str("a")),
            (Value::Int(3), Value::str("c2")),
            (Value::Int(2), Value::str("b")),
        ];
        b.absorb(&mut pairs, 40);
        assert_eq!(b.resident_bytes(), 40);
        let (taken, seq) = b.take_for_spill().unwrap();
        assert_eq!(seq, 0);
        assert_eq!(b.resident_bytes(), 0);
        let run = plain_run(dir.path(), 7, seq, taken).unwrap();
        assert_eq!(run.pairs, 4);
        assert!(run
            .path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("run-00007-"));
        let back: Vec<(Value, Value)> = RunFileReader::open(&run.path)
            .unwrap()
            .map(|p| p.unwrap())
            .collect();
        // Sorted by key; emission order kept within the key-3 tie.
        assert_eq!(
            back,
            vec![
                (Value::Int(1), Value::str("a")),
                (Value::Int(2), Value::str("b")),
                (Value::Int(3), Value::str("c")),
                (Value::Int(3), Value::str("c2")),
            ]
        );
        b.record_run(run);
        assert_eq!(b.runs().len(), 1);
    }

    #[test]
    fn empty_take_is_none() {
        let mut b = ShuffleBucket::new();
        assert!(b.take_for_spill().is_none());
        assert!(b.runs().is_empty());
    }

    #[test]
    fn into_parts_orders_runs_by_seq() {
        let dir = SpillDir::create(None, "seq-order").unwrap();
        let mut b = ShuffleBucket::new();
        let mut seqs = Vec::new();
        for _ in 0..3 {
            b.absorb(&mut vec![(Value::Int(1), Value::Null)], 10);
            let (pairs, seq) = b.take_for_spill().unwrap();
            seqs.push((pairs, seq));
        }
        // Record out of order, as concurrent writers might.
        for (pairs, seq) in seqs.into_iter().rev() {
            b.record_run(plain_run(dir.path(), 0, seq, pairs).unwrap());
        }
        let (_, runs) = b.into_parts();
        let got: Vec<usize> = runs.iter().map(|r| r.seq).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn combining_spill_folds_duplicate_keys() {
        let dir = SpillDir::create(None, "combine-spill").unwrap();
        let counters = Counters::new();
        let combine = CombineStrategy::new(Builtin::Sum.combiner());
        // Partials, as the staging flush would have produced them.
        let mut pairs = vec![
            (Value::Int(2), Value::Int(10)),
            (Value::Int(1), Value::Int(1)),
            (Value::Int(2), Value::Int(5)),
            (Value::Int(1), Value::Int(2)),
        ];
        let pool = BufferPool::new();
        let run = write_sorted_run(
            dir.path(),
            0,
            0,
            &mut pairs,
            &combine,
            ShuffleCompression::None,
            None,
            &counters,
            None,
            &pool,
        )
        .unwrap();
        assert_eq!(pool.outstanding(), 0, "scratch loan returned");
        assert_eq!(run.pairs, 2, "four pairs fold to one per key");
        let back: Vec<(Value, Value)> = RunFileReader::open(&run.path)
            .unwrap()
            .map(|p| p.unwrap())
            .collect();
        assert_eq!(
            back,
            vec![
                (Value::Int(1), Value::Int(3)),
                (Value::Int(2), Value::Int(15)),
            ]
        );
        let snap = counters.snapshot();
        assert_eq!((snap.combine_in, snap.combine_out), (4, 2));
    }

    #[test]
    fn attempt_dir_discards_uncommitted_runs_on_drop() {
        let job_dir = SpillDir::create(None, "attempt-scope").unwrap();
        let attempt = AttemptDir::create(job_dir.path(), "map", 3, 1).unwrap();
        let run = plain_run(attempt.path(), 0, 0, vec![(Value::Int(1), Value::Null)]).unwrap();
        assert!(run.path.exists());
        // Commit one file out, leave another behind.
        let committed = job_dir.path().join("run-00000-000000");
        std::fs::rename(&run.path, &committed).unwrap();
        let leftover = plain_run(attempt.path(), 1, 0, vec![(Value::Int(2), Value::Null)]).unwrap();
        let (attempt_path, leftover_path) = (attempt.path().to_path_buf(), leftover.path.clone());
        drop(attempt);
        assert!(!attempt_path.exists(), "attempt dir removed");
        assert!(!leftover_path.exists(), "uncommitted run discarded");
        assert!(committed.exists(), "committed run survives the guard");
    }

    #[test]
    fn alloc_seq_interleaves_with_spill_seqs() {
        let mut b = ShuffleBucket::new();
        assert_eq!(b.alloc_seq(), 0);
        b.absorb(&mut vec![(Value::Int(1), Value::Null)], 8);
        let (_, seq) = b.take_for_spill().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(b.alloc_seq(), 2);
    }

    #[test]
    fn spill_dir_removed_on_drop() {
        let dir = SpillDir::create(None, "dropme").unwrap();
        let path = dir.path().to_path_buf();
        std::fs::write(path.join("run-x"), b"leftover").unwrap();
        drop(dir);
        assert!(!path.exists());
    }
}
