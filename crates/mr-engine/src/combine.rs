//! Map-side combining: the pluggable aggregation pipeline.
//!
//! The paper's fabric shuffles every emitted pair to reduce; for
//! algebraic aggregates (sum, count, max …) that is wasted traffic —
//! duplicates of a key can be folded *at the map side* without changing
//! the final output, which is exactly Hadoop's combiner. Here the
//! combiner is not programmer-supplied but **declared or proven**: the
//! builtin reducers declare their combiners directly
//! ([`Builtin::combiner`]) and `mr-analysis::combine` proves IR reduce
//! programs combiner-safe, in the Manimal spirit of analysis-selected
//! optimizations.
//!
//! A [`Combiner`] splits a reducer into the classic algebraic triple:
//! *inject* lifts one raw map-output value into a partial-aggregate
//! domain, *merge* folds two partials (and must be associative and
//! commutative), and *finish* turns a key's total into the final output
//! pairs — chosen so that `finish(key, merge-fold(inject(vs)))` equals
//! the original `reduce(key, vs)` byte for byte.
//!
//! [`CombineStrategy`] is the pipeline object the runner threads through
//! every shuffle stage; with no combiner it is a pass-through and the
//! engine behaves exactly like the seed. With a combiner, folding fires
//! at three sites:
//!
//! 1. **Staging flush** ([`CombineStrategy::combine_staged`]): a map
//!    worker's task-local buffer is folded to one partial per key
//!    before it is absorbed into the shared bucket — after this point
//!    every pair in the shuffle is a partial.
//! 2. **Spill time** ([`CombineStrategy::combine_sorted`]): a detached
//!    bucket buffer is folded again after its stable sort, so runs
//!    shrink before they hit disk (also applied when compaction
//!    rewrites runs).
//! 3. **The merge grouping loop** ([`CombineStrategy::make_reducer`]):
//!    reduce streams each key's surviving partials through the same
//!    grouping loop as always, but the "reducer" folds them with
//!    *merge* and emits via *finish*.
//!
//! The `combine_in` / `combine_out` counters record pairs entering and
//! leaving sites 1 and 2 (plus compaction) — and only those, so
//! `combine_in - combine_out` is exactly the shuffle traffic the
//! combiner removed. The reduce-side fold of site 3 removes none and is
//! deliberately not counted.

use std::sync::Arc;

use mr_ir::value::Value;

use crate::counters::Counters;
use crate::error::{EngineError, Result};
use crate::reducer::{Builtin, Reducer, ReducerFactory};

/// An algebraic map-side combiner for one reducer.
///
/// Correctness contract: `merge` must be associative and commutative
/// over the partial domain, and for every group
/// `finish(key, fold(merge, inject(values)))` must equal what the
/// original reducer produces on the raw `values`. (For floating-point
/// sums "equal" holds only up to addition reassociation — the same
/// caveat Hadoop combiners carry; integer aggregates are exact.)
pub trait Combiner: Send + Sync {
    /// Lift one raw map-output value into the partial-aggregate domain.
    fn inject(&self, key: &Value, value: &Value) -> Result<Value>;

    /// Fold another partial into the accumulator. Associative and
    /// commutative.
    fn merge(&self, key: &Value, acc: Value, other: &Value) -> Result<Value>;

    /// Turn a key's total partial into the final output pairs — must
    /// match the original reducer's output on the raw values.
    fn finish(&self, key: &Value, total: Value, out: &mut Vec<(Value, Value)>) -> Result<()>;

    /// Short name for plan summaries and counters displays.
    fn name(&self) -> &'static str {
        "combiner"
    }
}

/// Approximate serialized size of one pair — the same estimate the
/// `shuffle_bytes` counter and the shuffle budget accounting use.
pub(crate) fn pair_bytes(k: &Value, v: &Value) -> usize {
    k.payload_size() + v.payload_size() + 2
}

/// The pluggable aggregation pipeline handed to every shuffle stage.
///
/// Wraps `Option<Arc<dyn Combiner>>`: with `None` every method is a
/// pass-through and the emit→spill→merge pipeline behaves exactly like
/// the combiner-free seed path.
#[derive(Clone, Default)]
pub struct CombineStrategy {
    combiner: Option<Arc<dyn Combiner>>,
}

impl CombineStrategy {
    /// A strategy around an optional combiner.
    pub fn new(combiner: Option<Arc<dyn Combiner>>) -> CombineStrategy {
        CombineStrategy { combiner }
    }

    /// The pass-through strategy (no combining).
    pub fn passthrough() -> CombineStrategy {
        CombineStrategy::default()
    }

    /// Whether a combiner is plugged in.
    pub fn is_active(&self) -> bool {
        self.combiner.is_some()
    }

    /// The plugged-in combiner, for stages that fold streamingly.
    pub fn active(&self) -> Option<&dyn Combiner> {
        self.combiner.as_deref()
    }

    /// The combiner's display name, when active.
    pub fn name(&self) -> Option<&'static str> {
        self.combiner.as_deref().map(Combiner::name)
    }

    /// Site 1 — fold a map worker's staged pairs for one partition down
    /// to one partial per key. `bytes` is the caller's byte accounting
    /// for `pairs`; the returned value replaces it (recomputed after
    /// folding, unchanged when inactive).
    ///
    /// The buffer is stably sorted by key so equal keys fold in
    /// emission order; since `merge` is commutative the grouping is
    /// semantically free, and the sort is work the spill path would
    /// have done anyway.
    pub fn combine_staged(
        &self,
        pairs: &mut Vec<(Value, Value)>,
        bytes: usize,
        counters: &Counters,
    ) -> Result<usize> {
        let Some(combiner) = &self.combiner else {
            return Ok(bytes);
        };
        if pairs.len() < 2 {
            // Nothing foldable, but the lone pair still needs injecting
            // so everything downstream is uniformly in partial domain.
            if let Some((k, v)) = pairs.first_mut() {
                *v = combiner.inject(k, v)?;
            }
            return Ok(pairs.iter().map(|(k, v)| pair_bytes(k, v)).sum());
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let folded = fold_sorted(pairs, |k, v| combiner.inject(k, v), combiner.as_ref())?;
        Counters::add(&counters.combine_in, pairs.len() as u64);
        Counters::add(&counters.combine_out, folded.len() as u64);
        *pairs = folded;
        Ok(pairs.iter().map(|(k, v)| pair_bytes(k, v)).sum())
    }

    /// Sites 2 (spill write) and the compaction rewrite — fold an
    /// already-sorted buffer of *partials*, merging adjacent equal keys.
    pub fn combine_sorted(
        &self,
        pairs: &mut Vec<(Value, Value)>,
        counters: &Counters,
    ) -> Result<()> {
        let Some(combiner) = &self.combiner else {
            return Ok(());
        };
        if pairs.len() < 2 {
            return Ok(());
        }
        let folded = fold_sorted(pairs, |_, v| Ok(v.clone()), combiner.as_ref())?;
        Counters::add(&counters.combine_in, pairs.len() as u64);
        Counters::add(&counters.combine_out, folded.len() as u64);
        *pairs = folded;
        Ok(())
    }

    /// Site 3 — the reducer the merge grouping loop should run. Without
    /// a combiner this is the job's own reducer; with one, it is a
    /// [`Reducer`] that merges each group's partials and emits via
    /// `finish`, so the grouping loop itself is reused unchanged. This
    /// site does not touch the combine counters: the reduce-side fold
    /// removes no shuffle traffic, and keeping it out preserves the
    /// `combine_in - combine_out = pairs the shuffle never carried`
    /// reading.
    pub fn make_reducer(&self, fallback: &Arc<dyn ReducerFactory>) -> Box<dyn Reducer> {
        match &self.combiner {
            None => fallback.create(),
            Some(c) => Box::new(CombiningReducer {
                combiner: Arc::clone(c),
            }),
        }
    }
}

impl std::fmt::Debug for CombineStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.name() {
            Some(n) => write!(f, "CombineStrategy({n})"),
            None => write!(f, "CombineStrategy(passthrough)"),
        }
    }
}

/// Fold a key-sorted buffer: `lift` maps each value into the partial
/// domain (inject for raw map output, clone for already-partial runs),
/// and adjacent equal keys merge into one pair.
fn fold_sorted(
    pairs: &[(Value, Value)],
    lift: impl Fn(&Value, &Value) -> Result<Value>,
    combiner: &dyn Combiner,
) -> Result<Vec<(Value, Value)>> {
    let mut folded: Vec<(Value, Value)> = Vec::new();
    for (k, v) in pairs {
        let lifted = lift(k, v)?;
        match folded.last_mut() {
            Some((fk, acc)) if fk == k => {
                let prev = std::mem::take(acc);
                *acc = combiner.merge(k, prev, &lifted)?;
            }
            _ => folded.push((k.clone(), lifted)),
        }
    }
    Ok(folded)
}

/// The reduce-side half of an active combiner: each key group arriving
/// from the merge holds that key's surviving partials (one per
/// staging-flush/spill that saw the key); fold them and finish.
struct CombiningReducer {
    combiner: Arc<dyn Combiner>,
}

impl Reducer for CombiningReducer {
    fn reduce(
        &mut self,
        key: &Value,
        values: &[Value],
        out: &mut Vec<(Value, Value)>,
    ) -> Result<()> {
        let (first, rest) = values
            .split_first()
            .ok_or_else(|| EngineError::Combine("empty group".into()))?;
        let mut acc = first.clone();
        for v in rest {
            acc = self.combiner.merge(key, acc, v)?;
        }
        self.combiner.finish(key, acc, out)
    }
}

/// The combiner a builtin reducer declares for itself (its algebraic
/// decomposition), or `None` when the reducer is not an associative,
/// commutative aggregate (`Identity` passes everything through; `First`
/// is order-dependent — associative but not commutative).
impl Builtin {
    /// The declared combiner, if this reducer has one.
    pub fn combiner(&self) -> Option<Arc<dyn Combiner>> {
        match self {
            Builtin::Sum | Builtin::Count | Builtin::Max | Builtin::Min | Builtin::SumDropKey => {
                Some(Arc::new(BuiltinCombiner { kind: *self }))
            }
            Builtin::Identity | Builtin::First | Builtin::JoinTagged => None,
        }
    }
}

/// Look a builtin combiner up by its [`Combiner::name`]. The process
/// backend ships combiners to worker processes by name; only the
/// builtin library is addressable this way.
pub fn combiner_by_name(name: &str) -> Option<Arc<dyn Combiner>> {
    Builtin::ALL
        .into_iter()
        .filter_map(|b| b.combiner())
        .find(|c| c.name() == name)
}

/// The declared combiners of the builtin reducer library.
struct BuiltinCombiner {
    kind: Builtin,
}

/// The `Sum` partial domain mirrors the raw reducer's *split*
/// accumulator exactly: `Builtin::Sum` keeps an `i64` wrapping int sum
/// and an `f64` float sum separately, converting once at the end — so
/// a partial is either `Int(int_sum)` (no float seen) or
/// `List([Int(int_sum), Double(float_sum)])` (a float was seen).
/// Folding in `i64` until `finish` keeps int overflow wrapping exactly
/// like the raw path; eagerly promoting to `f64` would not (a wrapped
/// `i64::MAX + 1` flips sign, an `f64` just loses precision).
fn sum_merge(key: &Value, acc: Value, other: &Value) -> Result<Value> {
    // Decompose a partial into (int_sum, Option<float_sum>).
    let parts = |v: &Value| -> Result<(i64, Option<f64>)> {
        match v {
            Value::Int(i) => Ok((*i, None)),
            Value::Double(d) => Ok((0, Some(*d))),
            Value::List(kv) => match &kv[..] {
                [Value::Int(i), Value::Double(f)] => Ok((*i, Some(*f))),
                _ => Err(EngineError::Combine(format!(
                    "sum: malformed partial {v} for key {key}"
                ))),
            },
            other => Err(EngineError::Combine(format!(
                "sum: non-numeric value {other} for key {key}"
            ))),
        }
    };
    let (ai, af) = parts(&acc)?;
    let (bi, bf) = parts(other)?;
    let int_sum = ai.wrapping_add(bi);
    Ok(match (af, bf) {
        (None, None) => Value::Int(int_sum),
        (af, bf) => Value::list(vec![
            Value::Int(int_sum),
            Value::Double(af.unwrap_or(0.0) + bf.unwrap_or(0.0)),
        ]),
    })
}

impl Combiner for BuiltinCombiner {
    fn inject(&self, key: &Value, value: &Value) -> Result<Value> {
        match self.kind {
            Builtin::Sum => match value {
                Value::Int(_) | Value::Double(_) => Ok(value.clone()),
                other => Err(EngineError::Combine(format!(
                    "Sum: non-numeric value {other} for key {key}"
                ))),
            },
            Builtin::Count => Ok(Value::Int(1)),
            Builtin::Max | Builtin::Min => Ok(value.clone()),
            Builtin::SumDropKey => match value.as_int() {
                Some(i) => Ok(Value::Int(i)),
                None => Err(EngineError::Combine(format!(
                    "SumDropKey: non-integer value {value}"
                ))),
            },
            Builtin::Identity | Builtin::First | Builtin::JoinTagged => {
                Err(EngineError::Combine("reducer declares no combiner".into()))
            }
        }
    }

    fn merge(&self, key: &Value, acc: Value, other: &Value) -> Result<Value> {
        match self.kind {
            Builtin::Sum => sum_merge(key, acc, other),
            Builtin::Count | Builtin::SumDropKey => match (&acc, other) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
                _ => Err(EngineError::Combine(format!(
                    "count: non-integer partial for key {key}"
                ))),
            },
            // `>=` / `<` mirror `Iterator::max` (last of equals) and
            // `Iterator::min` (first of equals) over the stable merged
            // order, keeping byte-identity when equal values differ in
            // representation (e.g. Int(2) vs Double(2.0)).
            Builtin::Max => Ok(if *other >= acc { other.clone() } else { acc }),
            Builtin::Min => Ok(if *other < acc { other.clone() } else { acc }),
            Builtin::Identity | Builtin::First | Builtin::JoinTagged => {
                Err(EngineError::Combine("reducer declares no combiner".into()))
            }
        }
    }

    fn finish(&self, key: &Value, total: Value, out: &mut Vec<(Value, Value)>) -> Result<()> {
        match self.kind {
            Builtin::SumDropKey => out.push((Value::Null, total)),
            Builtin::Sum => {
                // Convert the split partial the way the raw reducer
                // converts its accumulators: int sum stays Int, a seen
                // float makes the total Double(float_sum + int_sum).
                let total = match total {
                    Value::List(kv) => match &kv[..] {
                        [Value::Int(i), Value::Double(f)] => Value::Double(f + *i as f64),
                        _ => {
                            return Err(EngineError::Combine(format!(
                                "sum: malformed partial for key {key}"
                            )))
                        }
                    },
                    Value::Double(d) => Value::Double(d),
                    other => other,
                };
                out.push((key.clone(), total));
            }
            _ => out.push((key.clone(), total)),
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        match self.kind {
            Builtin::Sum => "sum",
            Builtin::Count => "count",
            Builtin::Max => "max",
            Builtin::Min => "min",
            Builtin::SumDropKey => "sum-drop-key",
            Builtin::Identity | Builtin::First | Builtin::JoinTagged => "none",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strategy(b: Builtin) -> CombineStrategy {
        CombineStrategy::new(b.combiner())
    }

    #[test]
    fn builtins_declare_expected_combiners() {
        for b in [
            Builtin::Sum,
            Builtin::Count,
            Builtin::Max,
            Builtin::Min,
            Builtin::SumDropKey,
        ] {
            assert!(b.combiner().is_some(), "{b:?} should declare a combiner");
        }
        assert!(Builtin::Identity.combiner().is_none());
        assert!(Builtin::First.combiner().is_none());
        assert!(
            Builtin::JoinTagged.combiner().is_none(),
            "folding tagged-union join values would corrupt them"
        );
    }

    #[test]
    fn staged_combine_folds_duplicates_and_recounts_bytes() {
        let counters = Counters::new();
        let mut pairs = vec![
            (Value::str("b"), Value::Int(1)),
            (Value::str("a"), Value::Int(2)),
            (Value::str("b"), Value::Int(3)),
            (Value::str("a"), Value::Int(4)),
            (Value::str("a"), Value::Int(6)),
        ];
        let bytes = strategy(Builtin::Sum)
            .combine_staged(&mut pairs, 999, &counters)
            .unwrap();
        assert_eq!(
            pairs,
            vec![
                (Value::str("a"), Value::Int(12)),
                (Value::str("b"), Value::Int(4)),
            ]
        );
        let expect: usize = pairs.iter().map(|(k, v)| pair_bytes(k, v)).sum();
        assert_eq!(bytes, expect);
        let snap = counters.snapshot();
        assert_eq!(snap.combine_in, 5);
        assert_eq!(snap.combine_out, 2);
    }

    #[test]
    fn passthrough_changes_nothing() {
        let counters = Counters::new();
        let mut pairs = vec![
            (Value::str("b"), Value::Int(1)),
            (Value::str("b"), Value::Int(3)),
        ];
        let orig = pairs.clone();
        let s = CombineStrategy::passthrough();
        assert!(!s.is_active());
        let bytes = s.combine_staged(&mut pairs, 77, &counters).unwrap();
        assert_eq!(bytes, 77);
        s.combine_sorted(&mut pairs, &counters).unwrap();
        assert_eq!(pairs, orig);
        assert_eq!(counters.snapshot().combine_in, 0);
    }

    #[test]
    fn count_injects_ones_then_sums() {
        let counters = Counters::new();
        let mut pairs = vec![
            (Value::str("k"), Value::str("anything")),
            (Value::str("k"), Value::Null),
            (Value::str("k"), Value::Int(42)),
        ];
        strategy(Builtin::Count)
            .combine_staged(&mut pairs, 0, &counters)
            .unwrap();
        assert_eq!(pairs, vec![(Value::str("k"), Value::Int(3))]);
    }

    #[test]
    fn combining_reducer_finishes_like_the_raw_reducer() {
        for (b, raw_values, key) in [
            (
                Builtin::Sum,
                vec![Value::Int(5), Value::Int(-2), Value::Int(10)],
                Value::str("k"),
            ),
            (
                Builtin::Max,
                vec![Value::Int(5), Value::Int(99), Value::Int(10)],
                Value::str("k"),
            ),
            (
                Builtin::Min,
                vec![Value::Int(5), Value::Int(-2)],
                Value::str("k"),
            ),
            (
                Builtin::SumDropKey,
                vec![Value::Int(3), Value::Int(4)],
                Value::str("url"),
            ),
        ] {
            let mut raw_out = Vec::new();
            b.create().reduce(&key, &raw_values, &mut raw_out).unwrap();

            let combiner = b.combiner().unwrap();
            let partials: Vec<Value> = raw_values
                .iter()
                .map(|v| combiner.inject(&key, v).unwrap())
                .collect();
            let s = CombineStrategy::new(Some(combiner));
            let factory: Arc<dyn ReducerFactory> = Arc::new(b);
            let mut reducer = s.make_reducer(&factory);
            let mut out = Vec::new();
            reducer.reduce(&key, &partials, &mut out).unwrap();
            assert_eq!(out, raw_out, "{b:?}");
        }
    }

    #[test]
    fn sum_partial_keeps_int_overflow_wrapping_like_the_raw_reducer() {
        // Mixed group where eager f64 promotion would flip the sign of
        // the wrapped int sum: the partial must keep ints in i64.
        let key = Value::str("k");
        let values = vec![Value::Int(i64::MAX), Value::Double(0.0), Value::Int(1)];
        let mut raw_out = Vec::new();
        Builtin::Sum
            .create()
            .reduce(&key, &values, &mut raw_out)
            .unwrap();

        let c = Builtin::Sum.combiner().unwrap();
        // Fold in every grouping order; all must match the raw output.
        for order in [[0usize, 1, 2], [1, 0, 2], [2, 1, 0], [0, 2, 1]] {
            let mut acc = c.inject(&key, &values[order[0]]).unwrap();
            for &i in &order[1..] {
                let p = c.inject(&key, &values[i]).unwrap();
                acc = c.merge(&key, acc, &p).unwrap();
            }
            let mut out = Vec::new();
            c.finish(&key, acc, &mut out).unwrap();
            assert_eq!(out, raw_out, "order {order:?}");
        }
    }

    #[test]
    fn sum_mixed_int_float_matches_raw_reducer() {
        let key = Value::str("k");
        let values = vec![Value::Int(3), Value::Double(0.25), Value::Int(4)];
        let mut raw_out = Vec::new();
        Builtin::Sum
            .create()
            .reduce(&key, &values, &mut raw_out)
            .unwrap();
        let c = Builtin::Sum.combiner().unwrap();
        let mut acc = c.inject(&key, &values[0]).unwrap();
        for v in &values[1..] {
            let p = c.inject(&key, v).unwrap();
            acc = c.merge(&key, acc, &p).unwrap();
        }
        let mut out = Vec::new();
        c.finish(&key, acc, &mut out).unwrap();
        assert_eq!(out, raw_out);
    }

    #[test]
    fn sum_rejects_non_numeric_on_inject() {
        let c = Builtin::Sum.combiner().unwrap();
        assert!(c.inject(&Value::str("k"), &Value::str("oops")).is_err());
    }

    #[test]
    fn max_keeps_last_of_equal_values_like_iter_max() {
        // Int(2) and Double(2.0) compare equal; Iterator::max keeps the
        // last one seen, so merge must too.
        let c = Builtin::Max.combiner().unwrap();
        let k = Value::Null;
        let merged = c.merge(&k, Value::Int(2), &Value::Double(2.0)).unwrap();
        assert_eq!(format!("{merged:?}"), format!("{:?}", Value::Double(2.0)));
        let c = Builtin::Min.combiner().unwrap();
        let merged = c.merge(&k, Value::Int(2), &Value::Double(2.0)).unwrap();
        assert_eq!(format!("{merged:?}"), format!("{:?}", Value::Int(2)));
    }
}
