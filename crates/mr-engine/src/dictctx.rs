//! Train-once / reuse-everywhere shared shuffle dictionaries.
//!
//! The dict-trained shuffle codec
//! ([`ShuffleCompression::DictTrained`](mr_storage::blockcodec::ShuffleCompression))
//! needs a [`TrainedDict`] before the first run file can be written.
//! A [`DictContext`] is the job-scoped authority that produces it,
//! exactly once per job:
//!
//! 1. the first spill trains on its own (sorted, combined, encoded)
//!    pairs — the very bytes the columnar writer is about to frame;
//! 2. the artifact is committed to the job spill directory
//!    first-trainer-wins ([`mr_storage::trained::commit_dict`]), so
//!    concurrent map tasks, retried attempts and speculative duplicates
//!    all converge on one dictionary;
//! 3. everyone after that — later spills, compaction rewrites, retried
//!    attempts, process-backend workers — *reuses* the committed
//!    artifact instead of retraining.
//!
//! With a persistent store directory configured
//! ([`JobConfig::dict_store`](crate::job::JobConfig::dict_store)), the
//! trainer first looks the corpus hash up in the store: a second job
//! over identical data finds the artifact and trains nothing. Freshly
//! trained dictionaries are saved back, content-addressed by corpus
//! hash, so the store deduplicates by construction.
//!
//! Every resolution increments exactly one of the `dict_trained` /
//! `dict_reused` counters (attempt-local, absorbed only on commit like
//! every other counter), so `dict_trained == 0 && dict_reused > 0` is
//! the observable signature of a retry or repeat job reusing a
//! committed dictionary.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mr_ir::value::Value;
use mr_storage::rowcodec::encode_value;
use mr_storage::trained::{self, DictTrainer, TrainedDict, DICT_FILE_NAME};
use mr_storage::varint::encode_u64;

use crate::counters::Counters;
use crate::error::Result;

/// Job-scoped trained-dictionary authority; see the module docs.
#[derive(Debug)]
pub struct DictContext {
    job_dir: PathBuf,
    store: Option<PathBuf>,
    cached: Mutex<Option<Arc<TrainedDict>>>,
}

impl DictContext {
    /// A context committing into `job_dir` (the job's spill
    /// directory), optionally backed by a persistent cross-job store.
    pub fn new(job_dir: impl Into<PathBuf>, store: Option<PathBuf>) -> DictContext {
        DictContext {
            job_dir: job_dir.into(),
            store,
            cached: Mutex::new(None),
        }
    }

    /// The directory `shuffle.dict` commits into.
    pub fn job_dir(&self) -> &Path {
        &self.job_dir
    }

    /// The persistent store directory, if configured.
    pub fn store(&self) -> Option<&Path> {
        self.store.as_deref()
    }

    /// The job's shared dictionary: the cached copy, the committed
    /// `shuffle.dict`, a store hit on the corpus hash — or, when all
    /// three miss, a fresh dictionary trained on `pairs` and committed
    /// first-trainer-wins. Merge-side callers that never see raw pairs
    /// pass `&[]`; by the time they run, a spill has already committed
    /// the artifact (or there were no pairs at all and the empty
    /// dictionary is correct).
    pub fn resolve_or_train(
        &self,
        pairs: &[(Value, Value)],
        counters: &Counters,
    ) -> Result<Arc<TrainedDict>> {
        let mut cached = self.cached.lock().expect("dict cache poisoned");
        if let Some(dict) = cached.as_ref() {
            Counters::add(&counters.dict_reused, 1);
            return Ok(Arc::clone(dict));
        }
        let committed = self.job_dir.join(DICT_FILE_NAME);
        if committed.exists() {
            let dict = Arc::new(TrainedDict::load(&committed)?);
            trained::register(&dict);
            Counters::add(&counters.dict_reused, 1);
            *cached = Some(Arc::clone(&dict));
            return Ok(dict);
        }
        // Observe the pairs exactly as the columnar writer frames them:
        // keys front-coded against their predecessor (shared-prefix
        // varint, suffix-length varint, suffix bytes), values as plain
        // varint-length-prefixed entries — so the seed learns the byte
        // patterns the key and value streams actually contain.
        let mut trainer = DictTrainer::new();
        let mut enc = Vec::new();
        let mut prev = Vec::new();
        let mut len = Vec::new();
        for (k, v) in pairs {
            enc.clear();
            encode_value(k, &mut enc)?;
            let shared = prev
                .iter()
                .zip(enc.iter())
                .take_while(|(a, b)| a == b)
                .count();
            len.clear();
            encode_u64(shared as u64, &mut len);
            encode_u64((enc.len() - shared) as u64, &mut len);
            trainer.observe(&len);
            trainer.observe(&enc[shared..]);
            std::mem::swap(&mut prev, &mut enc);

            enc.clear();
            encode_value(v, &mut enc)?;
            len.clear();
            encode_u64(enc.len() as u64, &mut len);
            trainer.observe(&len);
            trainer.observe(&enc);
        }
        let corpus_hash = trainer.corpus_hash();
        let (dict, trained_here) = match self.store_lookup(corpus_hash) {
            Some(dict) => (dict, false),
            None => {
                let dict = trainer.train();
                self.store_save(&dict)?;
                (dict, true)
            }
        };
        let dict = trained::commit_dict(&self.job_dir, dict)?;
        let counter = match trained_here {
            true => &counters.dict_trained,
            false => &counters.dict_reused,
        };
        Counters::add(counter, 1);
        *cached = Some(Arc::clone(&dict));
        Ok(dict)
    }

    /// A store artifact for `corpus_hash`, or `None` on miss. A
    /// damaged or mismatched store entry is treated as a miss — the
    /// trainer retrains and overwrites it.
    fn store_lookup(&self, corpus_hash: u64) -> Option<TrainedDict> {
        let store = self.store.as_deref()?;
        let path = trained::store_path(store, corpus_hash);
        if !path.exists() {
            return None;
        }
        match TrainedDict::load(&path) {
            Ok(dict) if dict.corpus_hash() == corpus_hash => Some(dict),
            _ => None,
        }
    }

    /// Persist a freshly trained dictionary into the store,
    /// content-addressed by corpus hash. Staged to a unique temp name
    /// and renamed into place: concurrent savers of the same corpus
    /// write identical bytes, so last-wins is safe.
    fn store_save(&self, dict: &TrainedDict) -> Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let Some(store) = self.store.as_deref() else {
            return Ok(());
        };
        std::fs::create_dir_all(store)?;
        let tmp = store.join(format!(
            ".store-tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        dict.save(&tmp)?;
        match std::fs::rename(&tmp, trained::store_path(store, dict.corpus_hash())) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mr-dictctx-{name}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pairs() -> Vec<(Value, Value)> {
        (0..200)
            .map(|i| (Value::str(format!("10.0.0.{}", i % 16)), Value::Int(1)))
            .collect()
    }

    #[test]
    fn first_resolve_trains_then_everyone_reuses() {
        let dir = tmp_dir("train-once");
        let ctx = DictContext::new(&dir, None);
        let counters = Counters::new();
        let d1 = ctx.resolve_or_train(&pairs(), &counters).unwrap();
        assert!(!d1.is_empty(), "repetitive pairs train a non-empty seed");
        assert!(dir.join(DICT_FILE_NAME).exists(), "artifact committed");
        let d2 = ctx.resolve_or_train(&[], &counters).unwrap();
        assert_eq!(d1.dict_hash(), d2.dict_hash());
        let s = counters.snapshot();
        assert_eq!((s.dict_trained, s.dict_reused), (1, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_context_reuses_the_committed_artifact() {
        let dir = tmp_dir("retry-reuse");
        let counters = Counters::new();
        let trained_hash = DictContext::new(&dir, None)
            .resolve_or_train(&pairs(), &counters)
            .unwrap()
            .dict_hash();
        // A retried attempt (or another worker process) starts cold.
        let retry = Counters::new();
        let again = DictContext::new(&dir, None)
            .resolve_or_train(&pairs(), &retry)
            .unwrap();
        assert_eq!(again.dict_hash(), trained_hash);
        let s = retry.snapshot();
        assert_eq!((s.dict_trained, s.dict_reused), (0, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_deduplicates_identical_corpora_across_jobs() {
        let store = tmp_dir("store");
        let job1 = tmp_dir("job1");
        let job2 = tmp_dir("job2");
        let c1 = Counters::new();
        DictContext::new(&job1, Some(store.clone()))
            .resolve_or_train(&pairs(), &c1)
            .unwrap();
        assert_eq!(c1.snapshot().dict_trained, 1);
        let count = || std::fs::read_dir(&store).unwrap().count();
        assert_eq!(count(), 1, "one content-addressed artifact");
        let c2 = Counters::new();
        DictContext::new(&job2, Some(store.clone()))
            .resolve_or_train(&pairs(), &c2)
            .unwrap();
        let s = c2.snapshot();
        assert_eq!((s.dict_trained, s.dict_reused), (0, 1), "store hit");
        assert_eq!(count(), 1, "identical data trains nothing new");
        for d in [&store, &job1, &job2] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}
