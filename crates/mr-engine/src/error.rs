//! Engine-level errors.

use std::fmt;

/// Any failure while running a MapReduce job.
#[derive(Debug)]
pub enum EngineError {
    /// Failure inside user map code (the IR interpreter).
    Map(mr_ir::IrError),
    /// Failure in a reducer.
    Reduce(String),
    /// Failure in a map-side combiner.
    Combine(String),
    /// Storage-layer failure.
    Storage(mr_storage::StorageError),
    /// Job misconfiguration.
    Config(String),
    /// Output-sink failure.
    Io(std::io::Error),
    /// A fault injected by the job's
    /// [`FaultPlan`](crate::fault::FaultPlan) (tests and drills only;
    /// retried like any other task failure).
    Injected(String),
    /// A failure that happened inside (or to) a worker process of the
    /// process backend — the original error does not travel across the
    /// socket as a typed value, only its rendering (except injected
    /// faults, which stay [`EngineError::Injected`] so drills can match
    /// on them).
    Remote(String),
    /// A combiner was declared on a job whose shuffle values are not
    /// combinable — today that means join stages, whose tagged-union
    /// values a fold would silently corrupt (a combined
    /// `[tag, payload]` pair is no longer a tagged pair). Rejected
    /// up front at dispatch, before any task runs, on every backend.
    CombinerRejected {
        /// The reducer the job was configured with.
        reducer: String,
        /// Why a combiner cannot engage for it.
        reason: String,
    },
    /// A task failed on every allowed attempt
    /// ([`JobConfig::max_task_attempts`](crate::job::JobConfig::max_task_attempts));
    /// `cause` is the last attempt's error.
    TaskFailed {
        /// Which task exhausted its attempts (e.g. `map task 3`).
        task: String,
        /// How many attempts were made.
        attempts: usize,
        /// The error the final attempt died with.
        cause: Box<EngineError>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Map(e) => write!(f, "map task failed: {e}"),
            EngineError::Reduce(e) => write!(f, "reduce task failed: {e}"),
            EngineError::Combine(e) => write!(f, "combiner failed: {e}"),
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Config(e) => write!(f, "bad job config: {e}"),
            EngineError::Io(e) => write!(f, "i/o: {e}"),
            EngineError::Injected(e) => write!(f, "injected fault: {e}"),
            EngineError::Remote(e) => write!(f, "worker: {e}"),
            EngineError::CombinerRejected { reducer, reason } => {
                write!(f, "combiner rejected for reducer `{reducer}`: {reason}")
            }
            EngineError::TaskFailed {
                task,
                attempts,
                cause,
            } => write!(f, "{task} failed after {attempts} attempt(s): {cause}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::TaskFailed { cause, .. } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

impl From<mr_ir::IrError> for EngineError {
    fn from(e: mr_ir::IrError) -> Self {
        EngineError::Map(e)
    }
}

impl From<mr_storage::StorageError> for EngineError {
    fn from(e: mr_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
