//! Heap-allocation accounting for the bench harness.
//!
//! "Allocation-free in steady state" is only a real property if a test
//! can falsify it. With the `bench-alloc` cargo feature on, this module
//! installs a counting wrapper around the system allocator; the runner
//! snapshots [`totals`] around each job and reports the delta through
//! `Counters::alloc_count` / `alloc_bytes`. With the feature off, the
//! wrapper is not installed and [`totals`] is a constant `(0, 0)` — the
//! counters read 0 and cost nothing.
//!
//! The counts are process-wide (a global allocator cannot be scoped),
//! so they are meaningful only for serially-run jobs — the bench bins
//! and the feature-gated integration test, both of which run one job at
//! a time.

/// Total `(allocation count, allocated bytes)` since process start.
/// Deallocations are not subtracted: the hot-path invariant is about
/// how often the allocator is *entered*, not net footprint.
pub fn totals() -> (u64, u64) {
    #[cfg(feature = "bench-alloc")]
    {
        use std::sync::atomic::Ordering;
        (
            counting::ALLOC_COUNT.load(Ordering::Relaxed),
            counting::ALLOC_BYTES.load(Ordering::Relaxed),
        )
    }
    #[cfg(not(feature = "bench-alloc"))]
    {
        (0, 0)
    }
}

/// Whether the counting allocator is compiled in (the `bench-alloc`
/// feature). Lets bench output distinguish "zero allocations" from
/// "not measured".
pub fn enabled() -> bool {
    cfg!(feature = "bench-alloc")
}

#[cfg(feature = "bench-alloc")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
    pub static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
            // Only the growth is new demand on the allocator.
            ALLOC_BYTES.fetch_add(
                new_size.saturating_sub(layout.size()) as u64,
                Ordering::Relaxed,
            );
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;
}

#[cfg(all(test, feature = "bench-alloc"))]
mod tests {
    use super::*;

    #[test]
    fn totals_advance_on_allocation() {
        let (c0, b0) = totals();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let (c1, b1) = totals();
        assert!(c1 > c0);
        assert!(b1 - b0 >= 4096);
        drop(v);
        assert!(enabled());
    }
}
