//! Map tasks.
//!
//! A [`Mapper`] processes one `(key, value)` pair at a time and may
//! carry per-task state — exactly a Java `Mapper` object's lifetime,
//! which is what makes the paper's Fig. 2 member-variable hazard real.
//! The [`MapperFactory`] creates one instance per map task.

use std::sync::Arc;

use mr_ir::function::Function;
use mr_ir::interp::Interpreter;
use mr_ir::value::Value;

use crate::error::Result;

/// Statistics one map invocation produced (beyond the emitted pairs).
#[derive(Debug, Clone, Copy, Default)]
pub struct MapStats {
    /// IR instructions executed (0 for native mappers).
    pub instructions: u64,
    /// Side effects recorded.
    pub side_effects: u64,
}

/// A map task instance.
pub trait Mapper: Send {
    /// Process one input pair, pushing output pairs into `out`.
    fn map(
        &mut self,
        key: &Value,
        value: &Value,
        out: &mut Vec<(Value, Value)>,
    ) -> Result<MapStats>;
}

/// Creates per-task mapper instances.
pub trait MapperFactory: Send + Sync {
    /// New mapper with fresh task-local state.
    fn create(&self) -> Box<dyn Mapper>;

    /// The compiled IR function behind this factory, when there is one.
    /// The process backend ships mappers to worker processes as IR
    /// assembly, so only factories that expose their function here are
    /// wire-serializable; native factories (closures) return `None` and
    /// are rejected with a config error.
    fn ir_function(&self) -> Option<&Function> {
        None
    }
}

/// Runs a compiled MR-IR `map()` through the interpreter.
pub struct IrMapper {
    func: Arc<Function>,
    interp: Interpreter,
}

impl IrMapper {
    /// Build a mapper for one task.
    pub fn new(func: Arc<Function>) -> IrMapper {
        let interp = Interpreter::new(&func);
        IrMapper { func, interp }
    }
}

impl Mapper for IrMapper {
    fn map(
        &mut self,
        key: &Value,
        value: &Value,
        out: &mut Vec<(Value, Value)>,
    ) -> Result<MapStats> {
        let output = self.interp.invoke_map(&self.func, key, value)?;
        let stats = MapStats {
            instructions: output.instructions_executed,
            side_effects: output.effects.len() as u64,
        };
        out.extend(output.emits);
        Ok(stats)
    }
}

/// Factory for [`IrMapper`]s.
pub struct IrMapperFactory {
    /// The compiled map function.
    pub func: Arc<Function>,
}

impl IrMapperFactory {
    /// Wrap a compiled function.
    pub fn new(func: Function) -> Arc<IrMapperFactory> {
        Arc::new(IrMapperFactory {
            func: Arc::new(func),
        })
    }
}

impl MapperFactory for IrMapperFactory {
    fn create(&self) -> Box<dyn Mapper> {
        Box::new(IrMapper::new(Arc::clone(&self.func)))
    }

    fn ir_function(&self) -> Option<&Function> {
        Some(&self.func)
    }
}

/// A native Rust mapper, for engine tests and non-analyzed jobs.
pub struct FnMapper<F>(pub F);

impl<F> Mapper for FnMapper<F>
where
    F: FnMut(&Value, &Value, &mut Vec<(Value, Value)>) + Send,
{
    fn map(
        &mut self,
        key: &Value,
        value: &Value,
        out: &mut Vec<(Value, Value)>,
    ) -> Result<MapStats> {
        (self.0)(key, value, out);
        Ok(MapStats::default())
    }
}

/// Factory wrapping a cloneable closure.
pub struct FnMapperFactory<F>(pub F);

impl<F> MapperFactory for FnMapperFactory<F>
where
    F: Fn(&Value, &Value, &mut Vec<(Value, Value)>) + Send + Sync + Clone + 'static,
{
    fn create(&self) -> Box<dyn Mapper> {
        Box::new(FnMapper(self.0.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;
    use mr_ir::record::record;
    use mr_ir::schema::{FieldType, Schema};

    #[test]
    fn ir_mapper_keeps_member_state_per_task() {
        let f = parse_function(
            r#"
            func map(key, value) {
              member n = 0
              r0 = member n
              r1 = const 1
              r2 = add r0, r1
              member n = r2
              emit r2, r1
              ret
            }
            "#,
        )
        .unwrap();
        let factory = IrMapperFactory::new(f);
        let mut a = factory.create();
        let mut b = factory.create();
        let mut out = Vec::new();
        a.map(&Value::Null, &Value::Null, &mut out).unwrap();
        a.map(&Value::Null, &Value::Null, &mut out).unwrap();
        b.map(&Value::Null, &Value::Null, &mut out).unwrap();
        // Task a counted to 2; task b starts fresh at 1.
        let keys: Vec<i64> = out.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 1]);
    }

    #[test]
    fn ir_mapper_reports_instruction_counts() {
        let f = parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              emit r1, r1
              ret
            }
            "#,
        )
        .unwrap();
        let factory = IrMapperFactory::new(f);
        let mut m = factory.create();
        let s = Schema::new("W", vec![("rank", FieldType::Int)]).into_arc();
        let mut out = Vec::new();
        let stats = m
            .map(&Value::Int(0), &record(&s, vec![7.into()]).into(), &mut out)
            .unwrap();
        assert_eq!(stats.instructions, 4);
        assert_eq!(out, vec![(Value::Int(7), Value::Int(7))]);
    }

    #[test]
    fn fn_mapper_works() {
        let factory = FnMapperFactory(|k: &Value, _v: &Value, out: &mut Vec<(Value, Value)>| {
            out.push((k.clone(), Value::Int(1)));
        });
        let mut m = factory.create();
        let mut out = Vec::new();
        m.map(&Value::str("x"), &Value::Null, &mut out).unwrap();
        assert_eq!(out.len(), 1);
    }
}
