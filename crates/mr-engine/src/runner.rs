//! The job runner: map → shuffle → sort → reduce.
//!
//! "The execution fabric retains the standard map-shuffle-reduce
//! sequence and is almost identical to standard MapReduce" (paper §2).
//! Map tasks run on a worker pool consuming input splits from a queue;
//! emitted pairs are hash-partitioned into per-reducer buckets. With no
//! shuffle budget the whole partition stays resident and is sorted in
//! one pass; with [`JobConfig::shuffle_buffer_bytes`] set, overfull
//! buckets spill sorted runs to disk ([`crate::spill`]) and each reduce
//! partition streams a k-way merge of its runs plus the resident tail
//! ([`crate::merge`]) through the grouping loop — same output, bounded
//! memory. Every stage additionally runs through the pluggable
//! [`CombineStrategy`]: with [`JobConfig::combiner`] set, pairs fold at
//! the staging flush, at spill time, and in the merge grouping loop
//! (see [`crate::combine`]).
//!
//! [`JobConfig::shuffle_buffer_bytes`]: crate::job::JobConfig::shuffle_buffer_bytes
//! [`JobConfig::combiner`]: crate::job::JobConfig::combiner

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mr_ir::value::Value;
use mr_storage::runfile::RunFileReader;
use parking_lot::Mutex as PlMutex;

use crate::combine::{pair_bytes, CombineStrategy};
use crate::counters::{CounterSnapshot, Counters};
use crate::error::{EngineError, Result};
use crate::input::SplitReader;
use crate::job::{JobConfig, OutputSpec};
use crate::mapper::MapperFactory;
use crate::merge::{compact_runs, KWayMerge, RunStream};
use crate::partition::partition;
use crate::reducer::Reducer;
use crate::spill::{write_sorted_run, ShuffleBucket, SpillDir};

/// Where a job's time went, for bench tables that need to attribute
/// spill cost.
///
/// `map` and `reduce` are wall-clock spans of their phases (`map`
/// includes map-side spill writes; `reduce` includes the merge).
/// `shuffle` is *attributed* time — the total spent sorting buffers and
/// writing spill runs, summed across worker threads — so it overlaps
/// the other two and the three fields need not add up to
/// [`JobResult::elapsed`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Wall-clock span of the map phase.
    pub map: Duration,
    /// Cumulative cross-thread time sorting and writing shuffle runs.
    pub shuffle: Duration,
    /// Wall-clock span of the merge + reduce phase.
    pub reduce: Duration,
}

/// What a finished job hands back.
#[derive(Debug)]
pub struct JobResult {
    /// Counter snapshot.
    pub counters: CounterSnapshot,
    /// Output pairs (empty when writing to files).
    pub output: Vec<(Value, Value)>,
    /// Output files written (empty for in-memory output).
    pub output_files: Vec<std::path::PathBuf>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Per-phase breakdown of `elapsed`.
    pub phases: PhaseTimings,
}

/// Spill one bucket: detach its buffer under the lock, but sort and
/// write the run *outside* it, so other map workers flushing into the
/// same partition are not serialized behind the disk write. The spill
/// sequence number assigned at detach time keeps runs in emission
/// order however the writes interleave.
fn spill_bucket(
    bucket: &PlMutex<ShuffleBucket>,
    p: usize,
    dir: &Path,
    counters: &Counters,
    shuffle_nanos: &AtomicU64,
    combine: &CombineStrategy,
) -> Result<()> {
    let Some((pairs, seq)) = bucket.lock().take_for_spill() else {
        return Ok(());
    };
    let t = Instant::now();
    let run = write_sorted_run(dir, p, seq, pairs, combine, counters)?;
    shuffle_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    Counters::add(&counters.spill_count, 1);
    Counters::add(&counters.spilled_records, run.pairs);
    Counters::add(&counters.spill_bytes, run.bytes);
    bucket.lock().record_run(run);
    Ok(())
}

/// Reduce one completed key group and reset the value buffer — the
/// single flush block both the grouping-loop body and the trailing
/// flush of [`reduce_groups`] share. The combining merge loop reuses it
/// too: with a combiner active the "reducer" here is the
/// [`CombineStrategy::make_reducer`] wrapper that merges the group's
/// partials and finishes them.
fn flush_group(
    reducer: &mut dyn Reducer,
    key: &Value,
    values: &mut Vec<Value>,
    out: &mut Vec<(Value, Value)>,
    groups: &mut u64,
) -> Result<()> {
    *groups += 1;
    reducer.reduce(key, values, out)?;
    values.clear();
    Ok(())
}

/// Stream sorted pairs through the grouping loop, reducing one key
/// group at a time — only the current group's values are ever held, so
/// the partition is never materialized. Returns the group count.
fn reduce_groups(
    pairs: impl Iterator<Item = Result<(Value, Value)>>,
    reducer: &mut dyn Reducer,
    out: &mut Vec<(Value, Value)>,
) -> Result<u64> {
    let mut groups = 0u64;
    let mut cur_key: Option<Value> = None;
    let mut values: Vec<Value> = Vec::new();
    for item in pairs {
        let (k, v) = item?;
        match &cur_key {
            Some(ck) if *ck == k => values.push(v),
            Some(ck) => {
                flush_group(reducer, ck, &mut values, out, &mut groups)?;
                values.push(v);
                cur_key = Some(k);
            }
            None => {
                cur_key = Some(k);
                values.push(v);
            }
        }
    }
    if let Some(ck) = &cur_key {
        flush_group(reducer, ck, &mut values, out, &mut groups)?;
    }
    Ok(groups)
}

/// Run a job to completion.
///
/// # Example
///
/// Count words from a tiny sequence file with the shuffle capped at
/// 1 KiB, so part of it spills to disk and is merged back — the output
/// is identical to an uncapped run:
///
/// ```
/// use std::sync::Arc;
/// use mr_engine::{
///     run_job, Builtin, FnMapperFactory, InputBinding, InputSpec, JobConfig, OutputSpec,
/// };
/// use mr_ir::record::record;
/// use mr_ir::schema::{FieldType, Schema};
/// use mr_ir::value::Value;
///
/// let schema = Schema::new("T", vec![("word", FieldType::Str)]).into_arc();
/// let path = std::env::temp_dir().join(format!("run-job-doc-{}", std::process::id()));
/// let rows = (0..100).map(|i| record(&schema, vec![format!("w{}", i % 7).into()]));
/// mr_storage::write_seqfile(&path, Arc::clone(&schema), rows)?;
///
/// let mapper = FnMapperFactory(|_k: &Value, v: &Value, out: &mut Vec<(Value, Value)>| {
///     let word = v.as_record().unwrap().get("word").unwrap().clone();
///     out.push((word, Value::Int(1)));
/// });
/// let job = JobConfig {
///     name: "wordcount".into(),
///     inputs: vec![InputBinding {
///         input: InputSpec::SeqFile { path },
///         mapper: Arc::new(mapper),
///     }],
///     num_reducers: 2,
///     reducer: Arc::new(Builtin::Count),
///     output: OutputSpec::InMemory,
///     map_parallelism: 2,
///     sort_output: true,
///     shuffle_buffer_bytes: Some(1024),
///     spill_dir: None,
///     combiner: None,
/// };
/// let result = run_job(&job)?;
/// assert_eq!(result.output.len(), 7, "seven distinct words");
/// let total: i64 = result.output.iter().map(|(_, v)| v.as_int().unwrap()).sum();
/// assert_eq!(total, 100);
/// # Ok::<(), mr_engine::EngineError>(())
/// ```
pub fn run_job(job: &JobConfig) -> Result<JobResult> {
    let start = Instant::now();
    if job.inputs.is_empty() {
        return Err(EngineError::Config("job has no inputs".into()));
    }
    let num_reducers = job.num_reducers.max(1);
    let counters = Counters::new();
    let shuffle_nanos = AtomicU64::new(0);
    // The pluggable aggregation pipeline: pass-through without a
    // combiner, folding at every shuffle stage with one.
    let combine = CombineStrategy::new(job.combiner.clone());

    // One private, self-cleaning spill directory per job — only created
    // when a shuffle budget makes spilling possible.
    let spill_dir = match job.shuffle_buffer_bytes {
        Some(_) => Some(SpillDir::create(job.spill_dir.as_deref(), &job.name)?),
        None => None,
    };
    // Half the budget goes to the shared reducer buckets (split evenly) …
    let bucket_cap = job
        .shuffle_buffer_bytes
        .map(|b| (b / 2 / num_reducers).max(1));

    // ---- plan map tasks ------------------------------------------------
    struct MapTask {
        reader: SplitReader,
        mapper: Arc<dyn MapperFactory>,
    }
    let mut tasks: VecDeque<MapTask> = VecDeque::new();
    for binding in &job.inputs {
        for reader in binding.input.open(job.map_parallelism)? {
            tasks.push_back(MapTask {
                reader,
                mapper: Arc::clone(&binding.mapper),
            });
        }
    }

    // ---- map phase ------------------------------------------------------
    let map_start = Instant::now();
    let buckets: Vec<PlMutex<ShuffleBucket>> = (0..num_reducers)
        .map(|_| PlMutex::new(ShuffleBucket::new()))
        .collect();
    let queue = Mutex::new(tasks);
    let failed: PlMutex<Option<EngineError>> = PlMutex::new(None);
    let abort = AtomicBool::new(false);
    let workers = job.map_parallelism.max(1);
    // … and the other half to the workers' task-local staging, flushed
    // into the buckets once a worker's share fills — so total resident
    // shuffle memory stays within the budget (plus one flush of slack).
    let local_cap = job.shuffle_buffer_bytes.map(|b| (b / 2 / workers).max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut emit_buf: Vec<(Value, Value)> = Vec::new();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        return;
                    }
                    let task = queue.lock().expect("queue lock").pop_front();
                    let Some(mut task) = task else { return };
                    let mut mapper = task.mapper.create();
                    let mut local: Vec<Vec<(Value, Value)>> =
                        (0..num_reducers).map(|_| Vec::new()).collect();
                    let mut local_bytes = vec![0usize; num_reducers];
                    let mut local_total = 0usize;
                    let mut records = 0u64;
                    let mut outputs = 0u64;
                    let mut instructions = 0u64;
                    let mut effects = 0u64;
                    let mut shuffle_bytes = 0u64;
                    let flush = |local: &mut Vec<Vec<(Value, Value)>>,
                                 local_bytes: &mut Vec<usize>,
                                 local_total: &mut usize|
                     -> Result<()> {
                        for (p, pairs) in local.iter_mut().enumerate() {
                            if pairs.is_empty() {
                                continue;
                            }
                            // Combine site 1: fold the staged pairs to
                            // one partial per key before they enter the
                            // shared bucket.
                            let staged_bytes =
                                combine.combine_staged(pairs, local_bytes[p], &counters)?;
                            let over_cap = {
                                let mut bucket = buckets[p].lock();
                                bucket.absorb(pairs, staged_bytes);
                                bucket_cap.is_some_and(|cap| bucket.resident_bytes() > cap)
                            };
                            local_bytes[p] = 0;
                            if over_cap {
                                if let Some(dir) = &spill_dir {
                                    spill_bucket(
                                        &buckets[p],
                                        p,
                                        dir.path(),
                                        &counters,
                                        &shuffle_nanos,
                                        &combine,
                                    )?;
                                }
                            }
                        }
                        *local_total = 0;
                        Ok(())
                    };
                    let run = (|| -> Result<()> {
                        for item in task.reader.by_ref() {
                            let (k, v) = item?;
                            records += 1;
                            emit_buf.clear();
                            let stats = mapper.map(&k, &v, &mut emit_buf)?;
                            instructions += stats.instructions;
                            effects += stats.side_effects;
                            outputs += emit_buf.len() as u64;
                            for (ok, ov) in emit_buf.drain(..) {
                                let bytes = pair_bytes(&ok, &ov);
                                shuffle_bytes += bytes as u64;
                                let p = partition(&ok, num_reducers);
                                local_bytes[p] += bytes;
                                local_total += bytes;
                                local[p].push((ok, ov));
                            }
                            if local_cap.is_some_and(|cap| local_total >= cap) {
                                flush(&mut local, &mut local_bytes, &mut local_total)?;
                            }
                        }
                        flush(&mut local, &mut local_bytes, &mut local_total)
                    })();
                    match run {
                        Ok(()) => {
                            Counters::add(&counters.map_input_records, records);
                            Counters::add(&counters.map_invocations, records);
                            Counters::add(&counters.map_output_records, outputs);
                            Counters::add(&counters.instructions_executed, instructions);
                            Counters::add(&counters.side_effects, effects);
                            Counters::add(&counters.shuffle_bytes, shuffle_bytes);
                            Counters::add(&counters.input_bytes, task.reader.bytes_read());
                        }
                        Err(e) => {
                            *failed.lock() = Some(e);
                            abort.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    if let Some(e) = failed.lock().take() {
        return Err(e);
    }
    let map_elapsed = map_start.elapsed();

    // ---- sort/merge + reduce phase ---------------------------------------
    let reduce_start = Instant::now();
    let reduce_outputs: Vec<PlMutex<Vec<(Value, Value)>>> = (0..num_reducers)
        .map(|_| PlMutex::new(Vec::new()))
        .collect();
    let partitions: Mutex<VecDeque<usize>> = Mutex::new((0..num_reducers).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(num_reducers) {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                let p = partitions.lock().expect("partition lock").pop_front();
                let Some(p) = p else { return };
                let bucket = std::mem::take(&mut *buckets[p].lock());
                let (mut tail, runs) = bucket.into_parts();
                // Combine site 3: with a combiner, the grouping loop
                // runs the merging/finishing wrapper instead of the raw
                // reducer — the loop itself is shared.
                let mut reducer = combine.make_reducer(&job.reducer);
                let mut out: Vec<(Value, Value)> = Vec::new();
                let mut groups = 0u64;
                let run = (|| -> Result<()> {
                    // Sort the resident tail (stable, like every spilled
                    // run); with no runs it is the whole partition and
                    // feeds the grouping loop directly, heap-free.
                    let t = Instant::now();
                    tail.sort_by(|a, b| a.0.cmp(&b.0));
                    shuffle_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    groups = if runs.is_empty() {
                        reduce_groups(tail.into_iter().map(Ok), reducer.as_mut(), &mut out)?
                    } else {
                        // Bound the merge fan-in first (fd limit), then
                        // merge: runs in spill order, tail last, key ties
                        // by run index — byte-identical to sorting the
                        // whole partition in memory.
                        let dir = spill_dir.as_ref().expect("spilled runs imply a spill dir");
                        let t = Instant::now();
                        let runs = compact_runs(runs, dir.path(), p, &counters, &combine)?;
                        shuffle_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        let mut streams: Vec<RunStream> = Vec::with_capacity(runs.len() + 1);
                        for r in &runs {
                            streams.push(RunStream::File(RunFileReader::open(&r.path)?));
                        }
                        if !tail.is_empty() {
                            streams.push(RunStream::Memory(tail.into_iter()));
                        }
                        reduce_groups(KWayMerge::new(streams)?, reducer.as_mut(), &mut out)?
                    };
                    Ok(())
                })();
                match run {
                    Ok(()) => {
                        Counters::add(&counters.reduce_input_groups, groups);
                        Counters::add(&counters.reduce_output_records, out.len() as u64);
                        *reduce_outputs[p].lock() = out;
                    }
                    Err(e) => {
                        *failed.lock() = Some(e);
                        abort.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = failed.lock().take() {
        return Err(e);
    }
    let reduce_elapsed = reduce_start.elapsed();
    drop(spill_dir); // remove run files before output is declared done

    // ---- output ----------------------------------------------------------
    let mut output_files = Vec::new();
    let mut output = Vec::new();
    match &job.output {
        OutputSpec::InMemory => {
            for bucket in &reduce_outputs {
                output.append(&mut bucket.lock());
            }
            if job.sort_output {
                output.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            }
        }
        OutputSpec::TextDir(dir) => {
            std::fs::create_dir_all(dir)?;
            for (p, bucket) in reduce_outputs.iter().enumerate() {
                let path = dir.join(format!("part-{p:05}"));
                let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
                let mut pairs = std::mem::take(&mut *bucket.lock());
                if job.sort_output {
                    pairs.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                }
                for (k, v) in pairs {
                    writeln!(f, "{k}\t{v}")?;
                }
                f.flush()?;
                output_files.push(path);
            }
        }
    }

    Ok(JobResult {
        counters: counters.snapshot(),
        output,
        output_files,
        elapsed: start.elapsed(),
        phases: PhaseTimings {
            map: map_elapsed,
            shuffle: Duration::from_nanos(shuffle_nanos.load(Ordering::Relaxed)),
            reduce: reduce_elapsed,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputSpec;
    use crate::job::InputBinding;
    use crate::reducer::Builtin;
    use mr_ir::asm::parse_function;
    use mr_ir::record::record;
    use mr_ir::schema::{FieldType, Schema};
    use mr_storage::seqfile::write_seqfile;
    use std::path::PathBuf;

    fn schema() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![("url", FieldType::Str), ("rank", FieldType::Int)],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn write_pages(name: &str, n: i64) -> PathBuf {
        let s = schema();
        let path = tmp(name);
        let records: Vec<_> = (0..n)
            .map(|i| {
                record(
                    &s,
                    vec![format!("http://s/{}", i % 10).into(), Value::Int(i % 100)],
                )
            })
            .collect();
        write_seqfile(&path, s, records).unwrap();
        path
    }

    /// SELECT rank, COUNT(*) WHERE rank > 89 GROUP BY rank.
    fn count_high_ranks() -> mr_ir::function::Function {
        parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 89
              r3 = cmp gt r1, r2
              br r3, t, e
            t:
              r4 = const 1
              emit r1, r4
            e:
              ret
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn group_by_count_end_to_end() {
        let path = write_pages("groupby", 1000);
        let job = JobConfig::ir_job(
            "count-high",
            InputSpec::SeqFile { path },
            count_high_ranks(),
            Builtin::Count,
        );
        let result = run_job(&job).unwrap();
        // Ranks 90..=99 each appear 10 times.
        assert_eq!(result.output.len(), 10);
        for (k, v) in &result.output {
            assert!(k.as_int().unwrap() > 89);
            assert_eq!(v, &Value::Int(10));
        }
        assert_eq!(result.counters.map_input_records, 1000);
        assert_eq!(result.counters.map_output_records, 100);
        assert_eq!(result.counters.reduce_input_groups, 10);
        assert!(result.counters.input_bytes > 0);
        assert!(result.counters.shuffle_bytes > 0);
        // No budget ⇒ no spills; phase spans are recorded.
        assert_eq!(result.counters.spill_count, 0);
        assert!(result.phases.map + result.phases.reduce <= result.elapsed);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let path = write_pages("determinism", 2000);
        let mut results = Vec::new();
        for par in [1usize, 2, 8] {
            let job = JobConfig::ir_job(
                "count-high",
                InputSpec::SeqFile { path: path.clone() },
                count_high_ranks(),
                Builtin::Count,
            )
            .with_parallelism(par)
            .with_reducers(3);
            results.push(run_job(&job).unwrap().output);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn tiny_shuffle_budget_matches_unbounded_output() {
        let path = write_pages("spillsmall", 2000);
        let base = JobConfig::ir_job(
            "count-high",
            InputSpec::SeqFile { path: path.clone() },
            count_high_ranks(),
            Builtin::Count,
        );
        let unbounded = run_job(&base).unwrap();
        let capped = run_job(
            &JobConfig::ir_job(
                "count-high",
                InputSpec::SeqFile { path },
                count_high_ranks(),
                Builtin::Count,
            )
            .with_shuffle_buffer(64),
        )
        .unwrap();
        assert_eq!(capped.output, unbounded.output);
        assert!(capped.counters.spill_count > 0);
        assert_eq!(
            capped.counters.spilled_records, capped.counters.map_output_records,
            "a 64-byte budget spills every pair"
        );
        assert!(capped.counters.spill_bytes > 0);
        assert!(capped.phases.shuffle > Duration::ZERO);
    }

    #[test]
    fn sum_reducer_over_multiple_inputs() {
        let p1 = write_pages("multi1", 500);
        let p2 = write_pages("multi2", 500);
        let mapper = || {
            parse_function(
                r#"
                func map(key, value) {
                  r0 = param value
                  r1 = field r0.url
                  r2 = field r0.rank
                  emit r1, r2
                  ret
                }
                "#,
            )
            .unwrap()
        };
        let job = JobConfig {
            name: "multi".into(),
            inputs: vec![
                InputBinding::ir(InputSpec::SeqFile { path: p1 }, mapper()),
                InputBinding::ir(InputSpec::SeqFile { path: p2 }, mapper()),
            ],
            num_reducers: 4,
            reducer: Arc::new(Builtin::Sum),
            output: OutputSpec::InMemory,
            map_parallelism: 4,
            sort_output: true,
            shuffle_buffer_bytes: None,
            spill_dir: None,
            combiner: None,
        };
        let result = run_job(&job).unwrap();
        assert_eq!(result.output.len(), 10, "ten distinct urls");
        assert_eq!(result.counters.map_input_records, 1000);
        let total: i64 = result.output.iter().map(|(_, v)| v.as_int().unwrap()).sum();
        // Sum of (i % 100) over 0..500, twice.
        let expected: i64 = (0..500).map(|i| i % 100).sum::<i64>() * 2;
        assert_eq!(total, expected);
    }

    #[test]
    fn map_error_propagates() {
        let path = write_pages("maperr", 10);
        // Mapper reads a nonexistent field.
        let bad = parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.nope
              emit r1, r1
              ret
            }
            "#,
        )
        .unwrap();
        let job = JobConfig::ir_job("bad", InputSpec::SeqFile { path }, bad, Builtin::Count);
        assert!(matches!(run_job(&job), Err(EngineError::Map(_))));
    }

    #[test]
    fn text_output_files_written() {
        let path = write_pages("textout", 100);
        let outdir = tmp("textout-dir");
        let _ = std::fs::remove_dir_all(&outdir);
        let job = JobConfig::ir_job(
            "text",
            InputSpec::SeqFile { path },
            count_high_ranks(),
            Builtin::Count,
        )
        .with_reducers(2)
        .with_text_output(&outdir);
        let result = run_job(&job).unwrap();
        assert_eq!(result.output_files.len(), 2);
        let mut lines = 0;
        for f in &result.output_files {
            lines += std::fs::read_to_string(f).unwrap().lines().count();
        }
        assert_eq!(lines as u64, result.counters.reduce_output_records);
    }

    #[test]
    fn empty_input_runs_clean() {
        let s = schema();
        let path = tmp("empty");
        write_seqfile(&path, s, Vec::new()).unwrap();
        let job = JobConfig::ir_job(
            "empty",
            InputSpec::SeqFile { path },
            count_high_ranks(),
            Builtin::Count,
        )
        .with_shuffle_buffer(16);
        let result = run_job(&job).unwrap();
        assert!(result.output.is_empty());
        assert_eq!(result.counters.map_input_records, 0);
        assert_eq!(result.counters.spill_count, 0);
    }

    #[test]
    fn no_inputs_is_config_error() {
        let job = JobConfig {
            name: "none".into(),
            inputs: vec![],
            num_reducers: 1,
            reducer: Arc::new(Builtin::Count),
            output: OutputSpec::InMemory,
            map_parallelism: 1,
            sort_output: false,
            shuffle_buffer_bytes: None,
            spill_dir: None,
            combiner: None,
        };
        assert!(matches!(run_job(&job), Err(EngineError::Config(_))));
    }
}
