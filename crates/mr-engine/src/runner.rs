//! The job runner: map → shuffle → sort → reduce.
//!
//! "The execution fabric retains the standard map-shuffle-reduce
//! sequence and is almost identical to standard MapReduce" (paper §2).
//! Map tasks run on a worker pool consuming input splits from a queue;
//! emitted pairs are hash-partitioned into per-reducer buckets. With no
//! shuffle budget the whole partition stays resident and is sorted in
//! one pass; with [`JobConfig::shuffle_buffer_bytes`] set, overfull
//! staging buffers spill sorted runs to disk ([`crate::spill`]) and
//! each reduce partition streams a k-way merge of its runs plus the
//! resident tail ([`crate::merge`]) through the grouping loop — same
//! output, bounded memory. Every stage additionally runs through the
//! pluggable [`CombineStrategy`]: with [`JobConfig::combiner`] set,
//! pairs fold at the staging flush, at spill time, and in the merge
//! grouping loop (see [`crate::combine`]).
//!
//! # Task attempts and the commit protocol
//!
//! Map and reduce tasks are *retryable units*
//! ([`JobConfig::max_task_attempts`]), inheriting MapReduce's core
//! production guarantee: individual tasks fail and are transparently
//! re-executed. Idempotency comes from keeping every attempt's side
//! effects private until the attempt succeeds:
//!
//! * a **map attempt** stages emitted pairs task-locally and spills
//!   overfull staging into runs under an attempt-scoped directory
//!   ([`crate::spill::AttemptDir`], an RAII guard that deletes
//!   everything uncommitted on drop). On success the attempt
//!   **commits**: run files are renamed into the job spill directory
//!   under bucket-assigned sequence numbers, resident pairs are
//!   absorbed into the shared buckets (spilling buckets that outgrow
//!   their cap), and the attempt's privately-accumulated counters are
//!   folded into the job counters — so a failed attempt contributes
//!   nothing: no pairs, no files, no counts;
//! * a **reduce attempt** reads committed state only (run files plus a
//!   shared sorted tail) and publishes its output and counters on
//!   success. Run compaction is resumable across attempts
//!   ([`crate::merge::compact_runs`]).
//!
//! A task that fails every allowed attempt surfaces
//! [`EngineError::TaskFailed`] and aborts the job; each failed attempt
//! bumps `map_task_failures`/`reduce_task_failures` and each
//! re-execution bumps `task_retries`. Failures are driven
//! deterministically in tests by [`JobConfig::fault_plan`]
//! ([`crate::fault::FaultPlan`]).
//!
//! Within a reduce group, values arrive in a deterministic order for a
//! fixed schedule, but it is *commit order* across tasks (emission
//! order within a task) — the same contract real MapReduce offers.
//! Order-insensitive reducers (every builtin aggregate) produce
//! byte-identical output under any schedule, retries included.
//!
//! [`JobConfig::shuffle_buffer_bytes`]: crate::job::JobConfig::shuffle_buffer_bytes
//! [`JobConfig::combiner`]: crate::job::JobConfig::combiner
//! [`JobConfig::max_task_attempts`]: crate::job::JobConfig::max_task_attempts
//! [`JobConfig::fault_plan`]: crate::job::JobConfig::fault_plan

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mr_ir::value::Value;
use mr_storage::blockcodec::ShuffleCompression;
use mr_storage::fault::IoFaults;
use mr_storage::runfile::RunFileReader;
use parking_lot::Mutex as PlMutex;

use crate::allocstats;
use crate::combine::{pair_bytes, CombineStrategy};
use crate::counters::Counters;
use crate::dictctx::DictContext;
use crate::error::{EngineError, Result};
use crate::fault::FaultPlan;
use crate::input::SplitReader;
use crate::job::{JobConfig, OutputSpec};
use crate::mapper::MapperFactory;
use crate::merge::{compact_runs, LoserTree, RunStream};
use crate::partition::partition;
use crate::pool::BufferPool;
use crate::reducer::Reducer;
use crate::spill::{write_sorted_run, AttemptDir, ShuffleBucket, SpillDir, SpillRun};
use crate::spillwriter::{SpillWriter, SpillWriterCfg};

/// Where a job's time went, for bench tables that need to attribute
/// spill cost.
///
/// `map` and `reduce` are wall-clock spans of their phases (`map`
/// includes map-side spill writes; `reduce` includes the merge).
/// `shuffle` is *attributed* time — the total spent sorting buffers and
/// writing spill runs, summed across worker threads — so it overlaps
/// the other two and the three fields need not add up to
/// [`JobResult::elapsed`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Wall-clock span of the map phase.
    pub map: Duration,
    /// Cumulative cross-thread time sorting and writing shuffle runs.
    pub shuffle: Duration,
    /// Wall-clock span of the merge + reduce phase.
    pub reduce: Duration,
}

/// What a finished job hands back.
#[derive(Debug)]
pub struct JobResult {
    /// Counter snapshot.
    pub counters: crate::counters::CounterSnapshot,
    /// Output pairs (empty when writing to files).
    pub output: Vec<(Value, Value)>,
    /// Output files written (empty for in-memory output).
    pub output_files: Vec<std::path::PathBuf>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Per-phase breakdown of `elapsed`.
    pub phases: PhaseTimings,
}

impl JobResult {
    /// Spill compression ratio — bytes written to spill disk over the
    /// record-layer bytes they encode (`spill_bytes_written /
    /// spill_bytes_raw`). Below 1.0 the codec saved disk traffic; the
    /// stored-frame fallback bounds `raw` a few header bytes above 1.0.
    /// `None` when the job never spilled.
    pub fn compression_ratio(&self) -> Option<f64> {
        self.counters.spill_ratio()
    }
}

/// Everything the map phase threads through task attempts.
struct MapCtx<'a> {
    job: &'a JobConfig,
    num_reducers: usize,
    /// Per-worker staging budget (half the shuffle budget split across
    /// workers); `None` keeps staging unbounded (no attempt spills).
    local_cap: Option<usize>,
    /// Per-bucket resident budget for committed pairs.
    bucket_cap: Option<usize>,
    spill_dir: Option<&'a SpillDir>,
    combine: &'a CombineStrategy,
    compression: ShuffleCompression,
    /// Shared-dictionary authority (dict-trained codec only).
    dict: Option<&'a Arc<DictContext>>,
    fault: Option<&'a FaultPlan>,
    io: Option<&'a Arc<IoFaults>>,
    shuffle_nanos: &'a Arc<AtomicU64>,
    counters: &'a Arc<Counters>,
    buckets: &'a [PlMutex<ShuffleBucket>],
    pool: &'a Arc<BufferPool>,
    writer_threads: usize,
}

/// One planned map task. `first_reader` is the split reader opened at
/// planning time, consumed by attempt 0; retries re-open the split
/// (same input, same hint ⇒ same boundaries).
struct MapTask {
    id: usize,
    binding: usize,
    split: usize,
    mapper: Arc<dyn MapperFactory>,
    first_reader: Option<SplitReader>,
}

/// A successful map attempt's uncommitted side effects.
struct MapAttemptOutput {
    /// Resident staged pairs per partition (partial domain when a
    /// combiner is active).
    staged: Vec<Vec<(Value, Value)>>,
    /// Byte accounting for `staged`, per partition.
    staged_bytes: Vec<usize>,
    /// Attempt-scoped spill runs, in write order.
    runs: Vec<(usize, SpillRun)>,
    /// Attempt-local counters, folded into the job counters on commit.
    acc: Arc<Counters>,
    /// Keeps the attempt directory (and its files) alive until the
    /// commit renames them out; dropping it uncommitted deletes them.
    _dir: Option<AttemptDir>,
}

/// Spill one bucket: detach its buffer under the lock, but sort and
/// write the run *outside* it, so other committers flushing into the
/// same partition are not serialized behind the disk write. The spill
/// sequence number assigned at detach time keeps runs in commit order
/// however the writes interleave.
#[allow(clippy::too_many_arguments)]
fn spill_bucket(
    bucket: &PlMutex<ShuffleBucket>,
    p: usize,
    dir: &SpillDir,
    counters: &Counters,
    shuffle_nanos: &AtomicU64,
    combine: &CombineStrategy,
    compression: ShuffleCompression,
    dict: Option<&DictContext>,
    io: Option<&Arc<IoFaults>>,
    pool: &BufferPool,
) -> Result<()> {
    let Some((mut pairs, seq)) = bucket.lock().take_for_spill() else {
        return Ok(());
    };
    let t = Instant::now();
    let run = write_sorted_run(
        dir.path(),
        p,
        seq,
        &mut pairs,
        combine,
        compression,
        dict,
        counters,
        io,
        pool,
    )?;
    shuffle_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    Counters::add(&counters.spill_count, 1);
    Counters::add(&counters.spilled_records, run.pairs);
    Counters::add(&counters.spill_bytes_raw, run.raw_bytes);
    Counters::add(&counters.spill_bytes_written, run.bytes);
    let mut b = bucket.lock();
    b.record_run(run);
    // Hand the detached buffer's capacity back to the bucket so the
    // next absorb starts warm (bucket residents never enter the pool —
    // their lifecycle is per-bucket, not per-attempt).
    b.reclaim_resident(pairs);
    Ok(())
}

/// Run one map attempt: read the split, map, stage, and (with a
/// budget) spill overfull staging into attempt-scoped runs through the
/// background [`SpillWriter`]. Nothing here touches shared state — all
/// side effects live in the returned [`MapAttemptOutput`] until
/// [`commit_map_attempt`] publishes them.
///
/// This wrapper owns the attempt's resource discipline: whatever the
/// map loop does, the spill writer is joined *before* the attempt
/// directory can drop (a failing attempt must not delete run files
/// under an in-flight write) and every pooled buffer is either handed
/// to the commit or recycled.
fn run_map_attempt(
    ctx: &MapCtx<'_>,
    task: &mut MapTask,
    attempt: usize,
) -> Result<MapAttemptOutput> {
    let acc = Counters::new();
    let mut staging = Staging::new(ctx.num_reducers, ctx.pool);
    let mut attempt_dir: Option<AttemptDir> = None;
    let mut writer: Option<SpillWriter> = None;

    let body = map_attempt_loop(
        ctx,
        task,
        attempt,
        &acc,
        &mut staging,
        &mut attempt_dir,
        &mut writer,
    );
    let runs = match writer {
        Some(w) => w.finish(),
        None => Ok(Vec::new()),
    };
    let runs = match (body, runs) {
        (Ok(()), Ok(runs)) => runs,
        // A writer-side error is the root cause — the loop only saw
        // the placeholder from a failed submit.
        (_, Err(e)) | (Err(e), Ok(_)) => {
            staging.recycle(ctx.pool);
            return Err(e);
        }
    };
    let (staged, staged_bytes) = staging.into_parts(ctx.pool);
    Ok(MapAttemptOutput {
        staged,
        staged_bytes,
        runs,
        acc,
        _dir: attempt_dir,
    })
}

/// The fallible body of a map attempt: the record loop plus the final
/// fold and counter rollup. Separated from [`run_map_attempt`] so its
/// `?`-returns cannot skip the writer join / buffer recycling.
fn map_attempt_loop(
    ctx: &MapCtx<'_>,
    task: &mut MapTask,
    attempt: usize,
    acc: &Arc<Counters>,
    staging: &mut Staging,
    attempt_dir: &mut Option<AttemptDir>,
    writer: &mut Option<SpillWriter>,
) -> Result<()> {
    let mut reader = match task.first_reader.take() {
        Some(r) => r,
        None => reopen_split(ctx, task)?,
    };
    let mut mapper = task.mapper.create();
    let fire_at = ctx.fault.and_then(|f| f.map_fault(task.id, attempt));

    let mut emit_buf: Vec<(Value, Value)> = Vec::new();
    let mut records = 0u64;
    let mut outputs = 0u64;
    let mut instructions = 0u64;
    let mut effects = 0u64;
    let mut shuffle_bytes = 0u64;

    loop {
        if fire_at == Some(records) {
            return Err(EngineError::Injected(format!(
                "map task {} attempt {attempt} at record {records}",
                task.id
            )));
        }
        let Some(item) = reader.next() else { break };
        let (k, v) = item?;
        records += 1;
        emit_buf.clear();
        let stats = mapper.map(&k, &v, &mut emit_buf)?;
        instructions += stats.instructions;
        effects += stats.side_effects;
        outputs += emit_buf.len() as u64;
        for (ok, ov) in emit_buf.drain(..) {
            let bytes = pair_bytes(&ok, &ov);
            shuffle_bytes += bytes as u64;
            let p = partition(&ok, ctx.num_reducers);
            staging.push(p, (ok, ov), bytes);
        }
        if let Some(cap) = ctx.local_cap.filter(|cap| staging.total_bytes >= *cap) {
            // Fold first (combine site 1): with an active combiner a
            // low-cardinality staging buffer collapses to one partial
            // per key and often drops back under the cap without
            // touching disk — the cross-flush folding the shared
            // buckets used to provide. Only what folding cannot shrink
            // spills to attempt-scoped runs.
            staging.fold(ctx.combine, acc)?;
            if staging.total_bytes >= cap {
                spill_staging(ctx, acc, task.id, attempt, staging, attempt_dir, writer)?;
            }
        }
    }
    // Final fold: everything left resident enters commit in partial
    // domain, exactly as the old staging flush guaranteed.
    staging.fold(ctx.combine, acc)?;

    Counters::add(&acc.map_input_records, records);
    Counters::add(&acc.map_invocations, records);
    Counters::add(&acc.map_output_records, outputs);
    Counters::add(&acc.instructions_executed, instructions);
    Counters::add(&acc.side_effects, effects);
    Counters::add(&acc.shuffle_bytes, shuffle_bytes);
    Counters::add(&acc.input_bytes, reader.bytes_read());
    Ok(())
}

/// A map attempt's task-local staging, partitioned by reducer. Raw
/// emissions and already-folded partials are kept apart because
/// [`CombineStrategy::combine_staged`] *injects* raw values into the
/// partial domain — running it twice over the same pair would corrupt
/// aggregates whose inject is not idempotent (Count lifts any value to
/// 1). [`fold`](Staging::fold) injects only the raw tail, then
/// merge-folds it into the partials.
pub(crate) struct Staging {
    /// Unfolded emissions since the last fold, per partition.
    raw: Vec<Vec<(Value, Value)>>,
    raw_bytes: Vec<usize>,
    /// Folded partials (combiner active only), per partition, sorted.
    partials: Vec<Vec<(Value, Value)>>,
    partial_bytes: Vec<usize>,
    /// Total staged bytes across both buffers and all partitions.
    pub(crate) total_bytes: usize,
}

impl Staging {
    /// Every slot is a pooled loan: `2 × num_reducers` buffers come out
    /// of the pool here and every one goes back via
    /// [`into_parts`](Staging::into_parts) (commit puts the staged
    /// halves after absorbing them) or [`recycle`](Staging::recycle) on
    /// the error path.
    pub(crate) fn new(num_reducers: usize, pool: &BufferPool) -> Staging {
        Staging {
            raw: (0..num_reducers).map(|_| pool.get_pairs()).collect(),
            raw_bytes: vec![0; num_reducers],
            partials: (0..num_reducers).map(|_| pool.get_pairs()).collect(),
            partial_bytes: vec![0; num_reducers],
            total_bytes: 0,
        }
    }

    pub(crate) fn push(&mut self, p: usize, pair: (Value, Value), bytes: usize) {
        self.raw[p].push(pair);
        self.raw_bytes[p] += bytes;
        self.total_bytes += bytes;
    }

    /// Combine site 1: inject-fold each partition's raw tail and merge
    /// it into the partials. A pass-through without a combiner.
    pub(crate) fn fold(&mut self, combine: &CombineStrategy, acc: &Counters) -> Result<()> {
        if !combine.is_active() {
            return Ok(());
        }
        for p in 0..self.raw.len() {
            if self.raw[p].is_empty() {
                continue;
            }
            let mut chunk = std::mem::take(&mut self.raw[p]);
            combine.combine_staged(&mut chunk, self.raw_bytes[p], acc)?;
            self.raw_bytes[p] = 0;
            self.partials[p].append(&mut chunk);
            // Restore the drained (pooled) buffer so the slot keeps its
            // warmed-up capacity instead of reallocating from zero.
            self.raw[p] = chunk;
            // Both halves are sorted partials now; a stable sort plus a
            // merge-only fold collapses them to one partial per key.
            self.partials[p].sort_by(|a, b| a.0.cmp(&b.0));
            combine.combine_sorted(&mut self.partials[p], acc)?;
            self.partial_bytes[p] = self.partials[p].iter().map(|(k, v)| pair_bytes(k, v)).sum();
        }
        self.total_bytes = self.partial_bytes.iter().sum();
        Ok(())
    }

    /// Detach partition `p`'s staged pairs for a spill, replacing the
    /// slot with a fresh pooled loan so the mapper keeps staging while
    /// the detached buffer rides the background writer. With a combiner
    /// the raw tail must already be folded in (the spill path folds
    /// before writing).
    pub(crate) fn take(&mut self, p: usize, pool: &BufferPool) -> Vec<(Value, Value)> {
        debug_assert!(self.raw[p].is_empty() || self.partials[p].is_empty());
        self.total_bytes -= self.raw_bytes[p] + self.partial_bytes[p];
        self.raw_bytes[p] = 0;
        self.partial_bytes[p] = 0;
        let mut out = std::mem::replace(&mut self.partials[p], pool.get_pairs());
        out.append(&mut self.raw[p]);
        out
    }

    pub(crate) fn is_empty(&self, p: usize) -> bool {
        self.raw[p].is_empty() && self.partials[p].is_empty()
    }

    /// Tear down into `(pairs, bytes)` per partition for the commit.
    /// The merged buffer per partition stays on loan (the commit
    /// recycles it after absorbing); the emptied other half of each
    /// slot goes straight back to the pool here.
    fn into_parts(mut self, pool: &BufferPool) -> (Vec<Vec<(Value, Value)>>, Vec<usize>) {
        let mut staged = Vec::with_capacity(self.raw.len());
        let mut bytes = Vec::with_capacity(self.raw.len());
        for p in 0..self.raw.len() {
            bytes.push(self.raw_bytes[p] + self.partial_bytes[p]);
            let mut pairs = std::mem::take(&mut self.partials[p]);
            pairs.append(&mut self.raw[p]);
            pool.put_pairs(std::mem::take(&mut self.raw[p]));
            staged.push(pairs);
        }
        (staged, bytes)
    }

    /// Return every loaned buffer to the pool — the failed-attempt
    /// teardown.
    pub(crate) fn recycle(mut self, pool: &BufferPool) {
        for buf in self.raw.drain(..).chain(self.partials.drain(..)) {
            pool.put_pairs(buf);
        }
    }
}

/// Re-open one map task's split for a retry attempt.
fn reopen_split(ctx: &MapCtx<'_>, task: &MapTask) -> Result<SplitReader> {
    let readers = ctx.job.inputs[task.binding]
        .input
        .open_with_faults(ctx.job.map_parallelism.max(1), ctx.io)?;
    readers
        .into_iter()
        .nth(task.split)
        .ok_or_else(|| EngineError::Config(format!("split {} vanished on retry", task.split)))
}

/// Spill every nonempty (already-folded) staged partition of a map
/// attempt into attempt-scoped runs via the background
/// [`SpillWriter`]: detach the buffer, hand it to the writer, and keep
/// mapping — sort/compress/flush happen off the map loop (synchronously
/// when [`JobConfig::spill_writer_threads`] is 0). Spill counters go to
/// the attempt-local accumulator: only a committed attempt's spills
/// count.
fn spill_staging(
    ctx: &MapCtx<'_>,
    acc: &Arc<Counters>,
    task: usize,
    attempt: usize,
    staging: &mut Staging,
    attempt_dir: &mut Option<AttemptDir>,
    writer: &mut Option<SpillWriter>,
) -> Result<()> {
    for p in 0..ctx.num_reducers {
        if staging.is_empty(p) {
            continue;
        }
        let pairs = staging.take(p, ctx.pool);
        if writer.is_none() {
            let parent = ctx
                .spill_dir
                .expect("staging cap implies a shuffle budget and spill dir")
                .path();
            let dir = attempt_dir.insert(AttemptDir::create(parent, "map", task, attempt)?);
            *writer = Some(SpillWriter::new(
                SpillWriterCfg {
                    dir: dir.path().to_path_buf(),
                    combine: ctx.combine.clone(),
                    compression: ctx.compression,
                    dict: ctx.dict.map(Arc::clone),
                    counters: Arc::clone(acc),
                    io: ctx.io.map(Arc::clone),
                    pool: Arc::clone(ctx.pool),
                    shuffle_nanos: Arc::clone(ctx.shuffle_nanos),
                },
                ctx.writer_threads,
            ));
        }
        writer
            .as_mut()
            .expect("writer installed above")
            .submit(p, pairs)?;
    }
    Ok(())
}

/// Publish a successful map attempt: promote its runs into the job
/// spill directory under bucket-assigned sequence numbers, absorb the
/// resident pairs (spilling buckets past their cap), and fold the
/// attempt counters into the job counters. Commit errors are not
/// retryable — a failure mid-commit may have published part of the
/// attempt, so the caller aborts the job instead of re-running the
/// task.
fn commit_map_attempt(ctx: &MapCtx<'_>, out: MapAttemptOutput) -> Result<()> {
    for (p, run) in &out.runs {
        let dir = ctx
            .spill_dir
            .expect("attempt runs imply a spill dir")
            .path();
        let seq = ctx.buckets[*p].lock().alloc_seq();
        let dest = dir.join(format!("run-{p:05}-{seq:06}"));
        std::fs::rename(&run.path, &dest)?;
        ctx.buckets[*p].lock().record_run(SpillRun {
            seq,
            path: dest,
            pairs: run.pairs,
            raw_bytes: run.raw_bytes,
            bytes: run.bytes,
        });
    }
    for (p, mut pairs) in out.staged.into_iter().enumerate() {
        if pairs.is_empty() {
            ctx.pool.put_pairs(pairs);
            continue;
        }
        let over_cap = {
            let mut bucket = ctx.buckets[p].lock();
            bucket.absorb(&mut pairs, out.staged_bytes[p]);
            ctx.bucket_cap
                .is_some_and(|cap| bucket.resident_bytes() > cap)
        };
        // `absorb` drained the staged buffer; its capacity goes back to
        // the pool for the next attempt's staging slots.
        ctx.pool.put_pairs(pairs);
        if over_cap {
            if let Some(dir) = ctx.spill_dir {
                spill_bucket(
                    &ctx.buckets[p],
                    p,
                    dir,
                    ctx.counters,
                    ctx.shuffle_nanos,
                    ctx.combine,
                    ctx.compression,
                    ctx.dict.map(Arc::as_ref),
                    ctx.io,
                    ctx.pool,
                )?;
            }
        }
    }
    ctx.counters.absorb(&out.acc.snapshot());
    Ok(())
}

/// Reduce one completed key group and reset the value buffer — the
/// single flush block both the grouping-loop body and the trailing
/// flush of [`reduce_groups`] share. The combining merge loop reuses it
/// too: with a combiner active the "reducer" here is the
/// [`CombineStrategy::make_reducer`] wrapper that merges the group's
/// partials and finishes them.
fn flush_group(
    reducer: &mut dyn Reducer,
    key: &Value,
    values: &mut Vec<Value>,
    out: &mut Vec<(Value, Value)>,
    groups: &mut u64,
) -> Result<()> {
    *groups += 1;
    reducer.reduce(key, values, out)?;
    values.clear();
    Ok(())
}

/// Stream sorted pairs through the grouping loop, reducing one key
/// group at a time — only the current group's values are ever held, so
/// the partition is never materialized. Returns the group count.
pub(crate) fn reduce_groups(
    pairs: impl Iterator<Item = Result<(Value, Value)>>,
    reducer: &mut dyn Reducer,
    out: &mut Vec<(Value, Value)>,
) -> Result<u64> {
    let mut groups = 0u64;
    let mut cur_key: Option<Value> = None;
    let mut values: Vec<Value> = Vec::new();
    for item in pairs {
        let (k, v) = item?;
        match &cur_key {
            Some(ck) if *ck == k => values.push(v),
            Some(ck) => {
                flush_group(reducer, ck, &mut values, out, &mut groups)?;
                values.push(v);
                cur_key = Some(k);
            }
            None => {
                cur_key = Some(k);
                values.push(v);
            }
        }
    }
    if let Some(ck) = &cur_key {
        flush_group(reducer, ck, &mut values, out, &mut groups)?;
    }
    Ok(groups)
}

/// Injects a scheduled failure into a reduce attempt's merged pair
/// stream: fails when about to yield pair `fire_at` (0 fires before
/// anything, even on an empty partition).
pub(crate) struct FaultGate<I> {
    inner: I,
    fire_at: Option<u64>,
    seen: u64,
    partition: usize,
    attempt: usize,
}

impl<I> FaultGate<I> {
    /// Gate `inner`, failing when pair `fire_at` is about to be
    /// yielded for reduce `partition`, `attempt`.
    pub(crate) fn new(inner: I, fire_at: Option<u64>, partition: usize, attempt: usize) -> Self {
        FaultGate {
            inner,
            fire_at,
            seen: 0,
            partition,
            attempt,
        }
    }
}

impl<I: Iterator<Item = Result<(Value, Value)>>> Iterator for FaultGate<I> {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fire_at == Some(self.seen) {
            self.fire_at = None;
            return Some(Err(EngineError::Injected(format!(
                "reduce task {} attempt {} at record {}",
                self.partition, self.attempt, self.seen
            ))));
        }
        let item = self.inner.next()?;
        self.seen += 1;
        Some(item)
    }
}

/// The pairs of a single [`RunStream`] (or nothing), for the heap-free
/// one-stream reduce path.
pub(crate) struct StreamPairs(pub(crate) Option<RunStream>);

impl Iterator for StreamPairs {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.as_mut()?.next_pair()
    }
}

/// What one reduce attempt yields: input groups, records written, and
/// the collected output pairs (empty when streamed to a part file).
type ReduceAttemptOutput = (u64, u64, Vec<(Value, Value)>);

/// Everything the reduce phase threads through task attempts.
struct ReduceCtx<'a> {
    spill_dir: Option<&'a SpillDir>,
    combine: &'a CombineStrategy,
    compression: ShuffleCompression,
    /// Shared-dictionary authority (dict-trained codec only).
    dict: Option<&'a Arc<DictContext>>,
    fault: Option<&'a FaultPlan>,
    io: Option<&'a Arc<IoFaults>>,
    shuffle_nanos: &'a AtomicU64,
    counters: &'a Arc<Counters>,
    pool: &'a Arc<BufferPool>,
}

/// Run one reduce attempt over committed state: compact the runs
/// (resumable), merge them with the shared tail, and stream the result
/// through the grouping loop. The final allowed attempt takes the tail
/// by move (the seed's zero-copy path); earlier attempts share it so a
/// retry can replay it.
#[allow(clippy::too_many_arguments)]
fn run_reduce_attempt(
    ctx: &ReduceCtx<'_>,
    p: usize,
    attempt: usize,
    is_last: bool,
    runs: &mut Vec<SpillRun>,
    tail: &mut Option<Arc<Vec<(Value, Value)>>>,
    reducer: &mut dyn Reducer,
    out: &mut Vec<(Value, Value)>,
) -> Result<u64> {
    let fire_at = ctx.fault.and_then(|f| f.reduce_fault(p, attempt));
    let mut streams: Vec<RunStream> = Vec::new();
    if !runs.is_empty() {
        let dir = ctx.spill_dir.expect("spilled runs imply a spill dir");
        let t = Instant::now();
        compact_runs(
            runs,
            dir.path(),
            p,
            ctx.counters,
            ctx.combine,
            ctx.compression,
            ctx.dict.map(Arc::as_ref),
            ctx.io,
            ctx.pool,
        )?;
        ctx.shuffle_nanos
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        for r in runs.iter() {
            streams.push(RunStream::File(RunFileReader::open_with_faults(
                &r.path,
                ctx.io.cloned(),
            )?));
        }
    }
    let tail_has_pairs = tail.as_ref().is_some_and(|t| !t.is_empty());
    if tail_has_pairs {
        if is_last {
            let arc = tail.take().expect("tail present until the last attempt");
            let owned = Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone());
            streams.push(RunStream::Memory(owned.into_iter()));
        } else {
            let arc = tail.as_ref().expect("tail present");
            streams.push(RunStream::shared(Arc::clone(arc)));
        }
    }
    if streams.len() <= 1 {
        // One stream (or an empty partition): no merge state needed.
        let gate = FaultGate {
            inner: StreamPairs(streams.pop()),
            fire_at,
            seen: 0,
            partition: p,
            attempt,
        };
        reduce_groups(gate, reducer, out)
    } else {
        let gate = FaultGate {
            inner: LoserTree::new(streams)?,
            fire_at,
            seen: 0,
            partition: p,
            attempt,
        };
        reduce_groups(gate, reducer, out)
    }
}

/// Pipelined text output for one reduce partition: reduced pairs
/// stream to a hidden temp file as each key group completes, and the
/// file reaches its final `part-NNNNN` name by atomic rename only when
/// the attempt succeeds. A failed attempt's sink removes its temp file
/// on drop, so retries start clean and the output directory only ever
/// holds committed part files — the same write-then-rename idempotency
/// the spill commit uses.
struct TextSink {
    tmp: PathBuf,
    dest: PathBuf,
    file: Option<std::io::BufWriter<std::fs::File>>,
    pairs_written: u64,
}

impl TextSink {
    fn create(dir: &Path, p: usize, attempt: usize) -> Result<TextSink> {
        let dest = dir.join(format!("part-{p:05}"));
        let tmp = dir.join(format!(".part-{p:05}.attempt-{attempt}.tmp"));
        let file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        Ok(TextSink {
            tmp,
            dest,
            file: Some(file),
            pairs_written: 0,
        })
    }

    /// Drain `pairs` to the file as `key\tvalue` lines.
    fn write_pairs(&mut self, pairs: &mut Vec<(Value, Value)>) -> Result<()> {
        let f = self.file.as_mut().expect("sink written after finish");
        for (k, v) in pairs.drain(..) {
            writeln!(f, "{k}\t{v}")?;
            self.pairs_written += 1;
        }
        Ok(())
    }

    /// Flush and publish the part file; returns its final path and the
    /// pair count it carries.
    fn finish(mut self) -> Result<(PathBuf, u64)> {
        let mut f = self.file.take().expect("sink finished twice");
        f.flush()?;
        drop(f);
        std::fs::rename(&self.tmp, &self.dest)?;
        Ok((self.dest.clone(), self.pairs_written))
    }
}

impl Drop for TextSink {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Wraps an attempt's reducer so each finished group's output drains
/// straight to the [`TextSink`] instead of accumulating in memory —
/// the output end of the pipeline: merge, group, reduce and write
/// proceed in lockstep with bounded buffering, and a partition's
/// output never has to fit in memory.
struct StreamingReducer {
    inner: Box<dyn Reducer>,
    sink: TextSink,
}

impl Reducer for StreamingReducer {
    fn reduce(
        &mut self,
        key: &Value,
        values: &[Value],
        out: &mut Vec<(Value, Value)>,
    ) -> Result<()> {
        self.inner.reduce(key, values, out)?;
        self.sink.write_pairs(out)
    }
}

/// Run a job to completion.
///
/// # Example
///
/// Count words from a tiny sequence file with the shuffle capped at
/// 1 KiB, so part of it spills to disk and is merged back — the output
/// is identical to an uncapped run:
///
/// ```
/// use std::sync::Arc;
/// use mr_engine::{
///     run_job, Builtin, FnMapperFactory, InputBinding, InputSpec, JobConfig, OutputSpec,
/// };
/// use mr_ir::record::record;
/// use mr_ir::schema::{FieldType, Schema};
/// use mr_ir::value::Value;
///
/// let schema = Schema::new("T", vec![("word", FieldType::Str)]).into_arc();
/// let path = std::env::temp_dir().join(format!("run-job-doc-{}", std::process::id()));
/// let rows = (0..100).map(|i| record(&schema, vec![format!("w{}", i % 7).into()]));
/// mr_storage::write_seqfile(&path, Arc::clone(&schema), rows)?;
///
/// let mapper = FnMapperFactory(|_k: &Value, v: &Value, out: &mut Vec<(Value, Value)>| {
///     let word = v.as_record().unwrap().get("word").unwrap().clone();
///     out.push((word, Value::Int(1)));
/// });
/// let job = JobConfig {
///     name: "wordcount".into(),
///     inputs: vec![InputBinding {
///         input: InputSpec::SeqFile { path },
///         mapper: Arc::new(mapper),
///         join: None,
///     }],
///     num_reducers: 2,
///     reducer: Arc::new(Builtin::Count),
///     output: OutputSpec::InMemory,
///     map_parallelism: 2,
///     sort_output: true,
///     shuffle_buffer_bytes: Some(1024),
///     shuffle_compression: Default::default(),
///     spill_dir: None,
///     dict_store: None,
///     combiner: None,
///     max_task_attempts: 1,
///     fault_plan: None,
///     spill_writer_threads: 1,
///     buffer_pool: None,
///     backend: Default::default(),
/// };
/// let result = run_job(&job)?;
/// assert_eq!(result.output.len(), 7, "seven distinct words");
/// let total: i64 = result.output.iter().map(|(_, v)| v.as_int().unwrap()).sum();
/// assert_eq!(total, 100);
/// # Ok::<(), mr_engine::EngineError>(())
/// ```
pub fn run_job(job: &JobConfig) -> Result<JobResult> {
    crate::backend::dispatch(job)
}

/// The in-process scoped-thread execution path — the reference
/// implementation behind [`crate::backend::LocalBackend`], and the
/// behaviour every other backend must match byte for byte.
pub(crate) fn run_job_local(job: &JobConfig) -> Result<JobResult> {
    let start = Instant::now();
    if job.inputs.is_empty() {
        return Err(EngineError::Config("job has no inputs".into()));
    }
    let num_reducers = job.num_reducers.max(1);
    let max_attempts = job.max_task_attempts.max(1);
    let counters = Counters::new();
    let shuffle_nanos = Arc::new(AtomicU64::new(0));
    // Steady-state allocation accounting: snapshot the (feature-gated)
    // global-allocator counters around the job and report the delta.
    // Process-wide, so it attributes cleanly only when one job runs at
    // a time — exactly how the hot-path bench uses it.
    let (alloc_count0, alloc_bytes0) = allocstats::totals();
    // Staging buffers and run-writer scratch recycle through this pool;
    // a job-private pool unless the caller shares one across jobs.
    let pool: Arc<BufferPool> = job.buffer_pool.clone().unwrap_or_else(BufferPool::new);
    // The pluggable aggregation pipeline: pass-through without a
    // combiner, folding at every shuffle stage with one.
    let combine = CombineStrategy::new(job.combiner.clone());
    let fault: Option<&FaultPlan> = job.fault_plan.as_deref();
    // Fresh per run, so the same schedule fails the same operation on
    // every execution.
    let io: Option<Arc<IoFaults>> = fault.and_then(FaultPlan::io_faults);

    // One private, self-cleaning spill directory per job — only created
    // when a shuffle budget makes spilling possible.
    let spill_dir = match job.shuffle_buffer_bytes {
        Some(_) => Some(SpillDir::create(job.spill_dir.as_deref(), &job.name)?),
        None => None,
    };
    // Half the budget goes to the shared reducer buckets (split evenly) …
    let bucket_cap = job
        .shuffle_buffer_bytes
        .map(|b| (b / 2 / num_reducers).max(1));
    // The dict-trained codec's job-scoped dictionary authority: commits
    // `shuffle.dict` into the job spill directory (first trainer wins),
    // optionally deduplicating through a persistent store.
    let dict_ctx: Option<Arc<DictContext>> = match (&spill_dir, job.shuffle_compression) {
        (Some(dir), ShuffleCompression::DictTrained) => Some(Arc::new(DictContext::new(
            dir.path(),
            job.dict_store.clone(),
        ))),
        _ => None,
    };

    // ---- plan map tasks ------------------------------------------------
    let workers = job.map_parallelism.max(1);
    // … and the other half to the workers' task-local staging, spilled
    // into attempt-scoped runs once a worker's share fills — so total
    // resident shuffle memory stays within the budget (plus one flush
    // of slack).
    let local_cap = job.shuffle_buffer_bytes.map(|b| (b / 2 / workers).max(1));

    // Join roles wrap each binding's mapper (tagging / broadcast-table
    // probing) once here; broadcast build tables load a single time and
    // are shared by every task, retries included.
    let mappers = crate::join::effective_factories(&job.inputs)?;
    let mut tasks: VecDeque<MapTask> = VecDeque::new();
    for (binding_idx, binding) in job.inputs.iter().enumerate() {
        for (split_idx, reader) in binding
            .input
            .open_with_faults(workers, io.as_ref())?
            .into_iter()
            .enumerate()
        {
            tasks.push_back(MapTask {
                id: tasks.len(),
                binding: binding_idx,
                split: split_idx,
                mapper: Arc::clone(&mappers[binding_idx]),
                first_reader: Some(reader),
            });
        }
    }

    // ---- map phase ------------------------------------------------------
    let map_start = Instant::now();
    let buckets: Vec<PlMutex<ShuffleBucket>> = (0..num_reducers)
        .map(|_| PlMutex::new(ShuffleBucket::new()))
        .collect();
    let queue = Mutex::new(tasks);
    let failed: PlMutex<Option<EngineError>> = PlMutex::new(None);
    let abort = AtomicBool::new(false);
    let ctx = MapCtx {
        job,
        num_reducers,
        local_cap,
        bucket_cap,
        spill_dir: spill_dir.as_ref(),
        combine: &combine,
        compression: job.shuffle_compression,
        dict: dict_ctx.as_ref(),
        fault,
        io: io.as_ref(),
        shuffle_nanos: &shuffle_nanos,
        counters: &counters,
        buckets: &buckets,
        pool: &pool,
        writer_threads: job.spill_writer_threads,
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                let task = queue.lock().expect("queue lock").pop_front();
                let Some(mut task) = task else { return };
                let mut last_err: Option<EngineError> = None;
                let mut committed = false;
                for attempt in 0..max_attempts {
                    if abort.load(Ordering::Relaxed) {
                        return;
                    }
                    if attempt > 0 {
                        Counters::add(&counters.task_retries, 1);
                    }
                    match run_map_attempt(&ctx, &mut task, attempt) {
                        Ok(out) => {
                            if let Err(e) = commit_map_attempt(&ctx, out) {
                                *failed.lock() = Some(e);
                                abort.store(true, Ordering::Relaxed);
                                return;
                            }
                            committed = true;
                            break;
                        }
                        Err(e) => {
                            Counters::add(&counters.map_task_failures, 1);
                            last_err = Some(e);
                        }
                    }
                }
                if !committed {
                    let cause = last_err.expect("a failed task records its last error");
                    *failed.lock() = Some(EngineError::TaskFailed {
                        task: format!("map task {}", task.id),
                        attempts: max_attempts,
                        cause: Box::new(cause),
                    });
                    abort.store(true, Ordering::Relaxed);
                    return;
                }
            });
        }
    });
    if let Some(e) = failed.lock().take() {
        return Err(e);
    }
    let map_elapsed = map_start.elapsed();

    // ---- sort/merge + reduce phase ---------------------------------------
    let reduce_start = Instant::now();
    let reduce_outputs: Vec<PlMutex<Vec<(Value, Value)>>> = (0..num_reducers)
        .map(|_| PlMutex::new(Vec::new()))
        .collect();
    // Pipelined text output: with an unsorted TextDir destination each
    // partition's pairs stream to their part file as groups complete
    // (merge → reduce → write in lockstep) instead of buffering the
    // whole partition and writing it after the phase. Sorted output
    // still buffers — the final sort needs the full partition anyway.
    let streaming_dir: Option<PathBuf> = match &job.output {
        OutputSpec::TextDir(dir) if !job.sort_output => {
            std::fs::create_dir_all(dir)?;
            Some(dir.clone())
        }
        _ => None,
    };
    let part_paths: Vec<PlMutex<Option<PathBuf>>> =
        (0..num_reducers).map(|_| PlMutex::new(None)).collect();
    let partitions: Mutex<VecDeque<usize>> = Mutex::new((0..num_reducers).collect());
    let rctx = ReduceCtx {
        spill_dir: spill_dir.as_ref(),
        combine: &combine,
        compression: job.shuffle_compression,
        dict: dict_ctx.as_ref(),
        fault,
        io: io.as_ref(),
        shuffle_nanos: &shuffle_nanos,
        counters: &counters,
        pool: &pool,
    };

    std::thread::scope(|scope| {
        for _ in 0..workers.min(num_reducers) {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                let p = partitions.lock().expect("partition lock").pop_front();
                let Some(p) = p else { return };
                let bucket = std::mem::take(&mut *buckets[p].lock());
                let (mut tail_vec, mut runs) = bucket.into_parts();
                // Sort the resident tail once (stable, like every
                // spilled run); every attempt reads the same sorted
                // state.
                let t = Instant::now();
                tail_vec.sort_by(|a, b| a.0.cmp(&b.0));
                shuffle_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                let mut tail = Some(Arc::new(tail_vec));

                let mut last_err: Option<EngineError> = None;
                let mut committed = false;
                for attempt in 0..max_attempts {
                    if abort.load(Ordering::Relaxed) {
                        return;
                    }
                    if attempt > 0 {
                        Counters::add(&counters.task_retries, 1);
                    }
                    // Combine site 3: with a combiner, the grouping
                    // loop runs the merging/finishing wrapper instead
                    // of the raw reducer — the loop itself is shared.
                    // With a streaming destination the reducer is
                    // additionally wrapped in the [`TextSink`] drain.
                    let is_last = attempt + 1 == max_attempts;
                    let attempt_result = (|| -> Result<ReduceAttemptOutput> {
                        let mut out: Vec<(Value, Value)> = Vec::new();
                        match &streaming_dir {
                            Some(dir) => {
                                let mut reducer = StreamingReducer {
                                    inner: combine.make_reducer(&job.reducer),
                                    sink: TextSink::create(dir, p, attempt)?,
                                };
                                let groups = run_reduce_attempt(
                                    &rctx,
                                    p,
                                    attempt,
                                    is_last,
                                    &mut runs,
                                    &mut tail,
                                    &mut reducer,
                                    &mut out,
                                )?;
                                let (path, written) = reducer.sink.finish()?;
                                *part_paths[p].lock() = Some(path);
                                Ok((groups, written, out))
                            }
                            None => {
                                let mut reducer = combine.make_reducer(&job.reducer);
                                let groups = run_reduce_attempt(
                                    &rctx,
                                    p,
                                    attempt,
                                    is_last,
                                    &mut runs,
                                    &mut tail,
                                    reducer.as_mut(),
                                    &mut out,
                                )?;
                                let written = out.len() as u64;
                                Ok((groups, written, out))
                            }
                        }
                    })();
                    match attempt_result {
                        Ok((groups, written, out)) => {
                            Counters::add(&counters.reduce_input_groups, groups);
                            Counters::add(&counters.reduce_output_records, written);
                            *reduce_outputs[p].lock() = out;
                            committed = true;
                            break;
                        }
                        Err(e) => {
                            Counters::add(&counters.reduce_task_failures, 1);
                            last_err = Some(e);
                        }
                    }
                }
                if !committed {
                    let cause = last_err.expect("a failed task records its last error");
                    *failed.lock() = Some(EngineError::TaskFailed {
                        task: format!("reduce task {p}"),
                        attempts: max_attempts,
                        cause: Box::new(cause),
                    });
                    abort.store(true, Ordering::Relaxed);
                    return;
                }
            });
        }
    });
    if let Some(e) = failed.lock().take() {
        return Err(e);
    }
    let reduce_elapsed = reduce_start.elapsed();
    drop(spill_dir); // remove run files before output is declared done

    // ---- output ----------------------------------------------------------
    let mut output_files = Vec::new();
    let mut output = Vec::new();
    match &job.output {
        OutputSpec::InMemory => {
            for bucket in &reduce_outputs {
                output.append(&mut bucket.lock());
            }
            if job.sort_output {
                output.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            }
        }
        OutputSpec::TextDir(_) if streaming_dir.is_some() => {
            // Part files were streamed and committed during the reduce
            // phase; just collect their paths in partition order.
            for slot in &part_paths {
                let path = slot
                    .lock()
                    .take()
                    .expect("every committed partition published a part file");
                output_files.push(path);
            }
        }
        OutputSpec::TextDir(dir) => {
            std::fs::create_dir_all(dir)?;
            for (p, bucket) in reduce_outputs.iter().enumerate() {
                let path = dir.join(format!("part-{p:05}"));
                let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
                let mut pairs = std::mem::take(&mut *bucket.lock());
                if job.sort_output {
                    pairs.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                }
                for (k, v) in pairs {
                    writeln!(f, "{k}\t{v}")?;
                }
                f.flush()?;
                output_files.push(path);
            }
        }
    }

    let (alloc_count1, alloc_bytes1) = allocstats::totals();
    Counters::add(
        &counters.alloc_count,
        alloc_count1.saturating_sub(alloc_count0),
    );
    Counters::add(
        &counters.alloc_bytes,
        alloc_bytes1.saturating_sub(alloc_bytes0),
    );

    Ok(JobResult {
        counters: counters.snapshot(),
        output,
        output_files,
        elapsed: start.elapsed(),
        phases: PhaseTimings {
            map: map_elapsed,
            shuffle: Duration::from_nanos(shuffle_nanos.load(Ordering::Relaxed)),
            reduce: reduce_elapsed,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputSpec;
    use crate::job::InputBinding;
    use crate::reducer::Builtin;
    use mr_ir::asm::parse_function;
    use mr_ir::record::record;
    use mr_ir::schema::{FieldType, Schema};
    use mr_storage::seqfile::write_seqfile;
    use std::path::PathBuf;

    fn schema() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![("url", FieldType::Str), ("rank", FieldType::Int)],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn write_pages(name: &str, n: i64) -> PathBuf {
        let s = schema();
        let path = tmp(name);
        let records: Vec<_> = (0..n)
            .map(|i| {
                record(
                    &s,
                    vec![format!("http://s/{}", i % 10).into(), Value::Int(i % 100)],
                )
            })
            .collect();
        write_seqfile(&path, s, records).unwrap();
        path
    }

    /// SELECT rank, COUNT(*) WHERE rank > 89 GROUP BY rank.
    fn count_high_ranks() -> mr_ir::function::Function {
        parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 89
              r3 = cmp gt r1, r2
              br r3, t, e
            t:
              r4 = const 1
              emit r1, r4
            e:
              ret
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn group_by_count_end_to_end() {
        let path = write_pages("groupby", 1000);
        let job = JobConfig::ir_job(
            "count-high",
            InputSpec::SeqFile { path },
            count_high_ranks(),
            Builtin::Count,
        );
        let result = run_job(&job).unwrap();
        // Ranks 90..=99 each appear 10 times.
        assert_eq!(result.output.len(), 10);
        for (k, v) in &result.output {
            assert!(k.as_int().unwrap() > 89);
            assert_eq!(v, &Value::Int(10));
        }
        assert_eq!(result.counters.map_input_records, 1000);
        assert_eq!(result.counters.map_output_records, 100);
        assert_eq!(result.counters.reduce_input_groups, 10);
        assert!(result.counters.input_bytes > 0);
        assert!(result.counters.shuffle_bytes > 0);
        // No budget ⇒ no spills; no faults ⇒ no retries; phase spans
        // are recorded.
        assert_eq!(result.counters.spill_count, 0);
        assert_eq!(result.counters.task_retries, 0);
        assert_eq!(result.counters.map_task_failures, 0);
        assert!(result.phases.map + result.phases.reduce <= result.elapsed);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let path = write_pages("determinism", 2000);
        let mut results = Vec::new();
        for par in [1usize, 2, 8] {
            let job = JobConfig::ir_job(
                "count-high",
                InputSpec::SeqFile { path: path.clone() },
                count_high_ranks(),
                Builtin::Count,
            )
            .with_parallelism(par)
            .with_reducers(3);
            results.push(run_job(&job).unwrap().output);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn tiny_shuffle_budget_matches_unbounded_output() {
        let path = write_pages("spillsmall", 2000);
        let base = JobConfig::ir_job(
            "count-high",
            InputSpec::SeqFile { path: path.clone() },
            count_high_ranks(),
            Builtin::Count,
        );
        let unbounded = run_job(&base).unwrap();
        let capped = run_job(
            &JobConfig::ir_job(
                "count-high",
                InputSpec::SeqFile { path },
                count_high_ranks(),
                Builtin::Count,
            )
            .with_shuffle_buffer(64),
        )
        .unwrap();
        assert_eq!(capped.output, unbounded.output);
        assert!(capped.counters.spill_count > 0);
        assert_eq!(
            capped.counters.spilled_records, capped.counters.map_output_records,
            "a 64-byte budget spills every pair"
        );
        assert!(capped.counters.spill_bytes_written > 0);
        assert!(capped.phases.shuffle > Duration::ZERO);
    }

    #[test]
    fn sum_reducer_over_multiple_inputs() {
        let p1 = write_pages("multi1", 500);
        let p2 = write_pages("multi2", 500);
        let mapper = || {
            parse_function(
                r#"
                func map(key, value) {
                  r0 = param value
                  r1 = field r0.url
                  r2 = field r0.rank
                  emit r1, r2
                  ret
                }
                "#,
            )
            .unwrap()
        };
        let job = JobConfig {
            name: "multi".into(),
            inputs: vec![
                InputBinding::ir(InputSpec::SeqFile { path: p1 }, mapper()),
                InputBinding::ir(InputSpec::SeqFile { path: p2 }, mapper()),
            ],
            num_reducers: 4,
            reducer: Arc::new(Builtin::Sum),
            output: OutputSpec::InMemory,
            map_parallelism: 4,
            sort_output: true,
            shuffle_buffer_bytes: None,
            shuffle_compression: Default::default(),
            spill_dir: None,
            dict_store: None,
            combiner: None,
            max_task_attempts: 1,
            fault_plan: None,
            spill_writer_threads: 1,
            buffer_pool: None,
            backend: Default::default(),
        };
        let result = run_job(&job).unwrap();
        assert_eq!(result.output.len(), 10, "ten distinct urls");
        assert_eq!(result.counters.map_input_records, 1000);
        let total: i64 = result.output.iter().map(|(_, v)| v.as_int().unwrap()).sum();
        // Sum of (i % 100) over 0..500, twice.
        let expected: i64 = (0..500).map(|i| i % 100).sum::<i64>() * 2;
        assert_eq!(total, expected);
    }

    #[test]
    fn map_error_propagates_as_task_failure() {
        let path = write_pages("maperr", 10);
        // Mapper reads a nonexistent field.
        let bad = parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.nope
              emit r1, r1
              ret
            }
            "#,
        )
        .unwrap();
        let job = JobConfig::ir_job("bad", InputSpec::SeqFile { path }, bad, Builtin::Count);
        match run_job(&job) {
            Err(EngineError::TaskFailed {
                attempts, cause, ..
            }) => {
                assert_eq!(attempts, 1, "default is the seed's fail-fast behaviour");
                assert!(matches!(*cause, EngineError::Map(_)), "{cause}");
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_map_error_exhausts_retries() {
        let path = write_pages("maperr-retry", 10);
        let bad = parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.nope
              emit r1, r1
              ret
            }
            "#,
        )
        .unwrap();
        let job = JobConfig::ir_job("bad", InputSpec::SeqFile { path }, bad, Builtin::Count)
            .with_parallelism(1)
            .with_max_attempts(3);
        match run_job(&job) {
            Err(EngineError::TaskFailed { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn text_output_files_written() {
        let path = write_pages("textout", 100);
        let outdir = tmp("textout-dir");
        let _ = std::fs::remove_dir_all(&outdir);
        let job = JobConfig::ir_job(
            "text",
            InputSpec::SeqFile { path },
            count_high_ranks(),
            Builtin::Count,
        )
        .with_reducers(2)
        .with_text_output(&outdir);
        let result = run_job(&job).unwrap();
        assert_eq!(result.output_files.len(), 2);
        let mut lines = 0;
        for f in &result.output_files {
            lines += std::fs::read_to_string(f).unwrap().lines().count();
        }
        assert_eq!(lines as u64, result.counters.reduce_output_records);
    }

    #[test]
    fn empty_input_runs_clean() {
        let s = schema();
        let path = tmp("empty");
        write_seqfile(&path, s, Vec::new()).unwrap();
        let job = JobConfig::ir_job(
            "empty",
            InputSpec::SeqFile { path },
            count_high_ranks(),
            Builtin::Count,
        )
        .with_shuffle_buffer(16);
        let result = run_job(&job).unwrap();
        assert!(result.output.is_empty());
        assert_eq!(result.counters.map_input_records, 0);
        assert_eq!(result.counters.spill_count, 0);
    }

    #[test]
    fn no_inputs_is_config_error() {
        let job = JobConfig {
            name: "none".into(),
            inputs: vec![],
            num_reducers: 1,
            reducer: Arc::new(Builtin::Count),
            output: OutputSpec::InMemory,
            map_parallelism: 1,
            sort_output: false,
            shuffle_buffer_bytes: None,
            shuffle_compression: Default::default(),
            spill_dir: None,
            dict_store: None,
            combiner: None,
            max_task_attempts: 1,
            fault_plan: None,
            spill_writer_threads: 1,
            buffer_pool: None,
            backend: Default::default(),
        };
        assert!(matches!(run_job(&job), Err(EngineError::Config(_))));
    }
}
