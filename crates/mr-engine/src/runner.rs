//! The job runner: map → shuffle → sort → reduce.
//!
//! "The execution fabric retains the standard map-shuffle-reduce
//! sequence and is almost identical to standard MapReduce" (paper §2).
//! Map tasks run on a worker pool consuming input splits from a queue;
//! emitted pairs are hash-partitioned into per-reducer buckets; each
//! reduce partition sorts by key, groups equal keys, and applies the
//! reducer.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mr_ir::value::Value;
use parking_lot::Mutex as PlMutex;

use crate::counters::{CounterSnapshot, Counters};
use crate::error::{EngineError, Result};
use crate::input::SplitReader;
use crate::job::{JobConfig, OutputSpec};
use crate::mapper::MapperFactory;
use crate::partition::partition;

/// What a finished job hands back.
#[derive(Debug)]
pub struct JobResult {
    /// Counter snapshot.
    pub counters: CounterSnapshot,
    /// Output pairs (empty when writing to files).
    pub output: Vec<(Value, Value)>,
    /// Output files written (empty for in-memory output).
    pub output_files: Vec<std::path::PathBuf>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Run a job to completion.
pub fn run_job(job: &JobConfig) -> Result<JobResult> {
    let start = Instant::now();
    if job.inputs.is_empty() {
        return Err(EngineError::Config("job has no inputs".into()));
    }
    let num_reducers = job.num_reducers.max(1);
    let counters = Counters::new();

    // ---- plan map tasks ------------------------------------------------
    struct MapTask {
        reader: SplitReader,
        mapper: Arc<dyn MapperFactory>,
    }
    let mut tasks: VecDeque<MapTask> = VecDeque::new();
    for binding in &job.inputs {
        for reader in binding.input.open(job.map_parallelism)? {
            tasks.push_back(MapTask {
                reader,
                mapper: Arc::clone(&binding.mapper),
            });
        }
    }

    // ---- map phase ------------------------------------------------------
    let buckets: Vec<PlMutex<Vec<(Value, Value)>>> = (0..num_reducers)
        .map(|_| PlMutex::new(Vec::new()))
        .collect();
    let queue = Mutex::new(tasks);
    let failed: PlMutex<Option<EngineError>> = PlMutex::new(None);
    let abort = AtomicBool::new(false);
    let workers = job.map_parallelism.max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut emit_buf: Vec<(Value, Value)> = Vec::new();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        return;
                    }
                    let task = queue.lock().expect("queue lock").pop_front();
                    let Some(mut task) = task else { return };
                    let mut mapper = task.mapper.create();
                    let mut local: Vec<Vec<(Value, Value)>> =
                        (0..num_reducers).map(|_| Vec::new()).collect();
                    let mut records = 0u64;
                    let mut outputs = 0u64;
                    let mut instructions = 0u64;
                    let mut effects = 0u64;
                    let mut shuffle_bytes = 0u64;
                    let run = (|| -> Result<()> {
                        for item in task.reader.by_ref() {
                            let (k, v) = item?;
                            records += 1;
                            emit_buf.clear();
                            let stats = mapper.map(&k, &v, &mut emit_buf)?;
                            instructions += stats.instructions;
                            effects += stats.side_effects;
                            outputs += emit_buf.len() as u64;
                            for (ok, ov) in emit_buf.drain(..) {
                                shuffle_bytes += (ok.payload_size() + ov.payload_size()) as u64 + 2;
                                local[partition(&ok, num_reducers)].push((ok, ov));
                            }
                        }
                        Ok(())
                    })();
                    match run {
                        Ok(()) => {
                            Counters::add(&counters.map_input_records, records);
                            Counters::add(&counters.map_invocations, records);
                            Counters::add(&counters.map_output_records, outputs);
                            Counters::add(&counters.instructions_executed, instructions);
                            Counters::add(&counters.side_effects, effects);
                            Counters::add(&counters.shuffle_bytes, shuffle_bytes);
                            Counters::add(&counters.input_bytes, task.reader.bytes_read());
                            for (p, mut pairs) in local.into_iter().enumerate() {
                                buckets[p].lock().append(&mut pairs);
                            }
                        }
                        Err(e) => {
                            *failed.lock() = Some(e);
                            abort.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    if let Some(e) = failed.lock().take() {
        return Err(e);
    }

    // ---- sort + reduce phase ---------------------------------------------
    let reduce_outputs: Vec<PlMutex<Vec<(Value, Value)>>> = (0..num_reducers)
        .map(|_| PlMutex::new(Vec::new()))
        .collect();
    let partitions: Mutex<VecDeque<usize>> = Mutex::new((0..num_reducers).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(num_reducers) {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                let p = partitions.lock().expect("partition lock").pop_front();
                let Some(p) = p else { return };
                let mut pairs = std::mem::take(&mut *buckets[p].lock());
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                let mut reducer = job.reducer.create();
                let mut out: Vec<(Value, Value)> = Vec::new();
                let mut groups = 0u64;
                let run = (|| -> Result<()> {
                    let mut i = 0usize;
                    while i < pairs.len() {
                        let mut j = i + 1;
                        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
                            j += 1;
                        }
                        groups += 1;
                        let key = pairs[i].0.clone();
                        // Move the group's values out without cloning.
                        let values: Vec<Value> =
                            pairs[i..j].iter().map(|(_, v)| v.clone()).collect();
                        reducer.reduce(&key, &values, &mut out)?;
                        i = j;
                    }
                    Ok(())
                })();
                match run {
                    Ok(()) => {
                        Counters::add(&counters.reduce_input_groups, groups);
                        Counters::add(&counters.reduce_output_records, out.len() as u64);
                        *reduce_outputs[p].lock() = out;
                    }
                    Err(e) => {
                        *failed.lock() = Some(e);
                        abort.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = failed.lock().take() {
        return Err(e);
    }

    // ---- output ----------------------------------------------------------
    let mut output_files = Vec::new();
    let mut output = Vec::new();
    match &job.output {
        OutputSpec::InMemory => {
            for bucket in &reduce_outputs {
                output.append(&mut bucket.lock());
            }
            if job.sort_output {
                output.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            }
        }
        OutputSpec::TextDir(dir) => {
            std::fs::create_dir_all(dir)?;
            for (p, bucket) in reduce_outputs.iter().enumerate() {
                let path = dir.join(format!("part-{p:05}"));
                let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
                let mut pairs = std::mem::take(&mut *bucket.lock());
                if job.sort_output {
                    pairs.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                }
                for (k, v) in pairs {
                    writeln!(f, "{k}\t{v}")?;
                }
                f.flush()?;
                output_files.push(path);
            }
        }
    }

    Ok(JobResult {
        counters: counters.snapshot(),
        output,
        output_files,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputSpec;
    use crate::job::InputBinding;
    use crate::reducer::Builtin;
    use mr_ir::asm::parse_function;
    use mr_ir::record::record;
    use mr_ir::schema::{FieldType, Schema};
    use mr_storage::seqfile::write_seqfile;
    use std::path::PathBuf;

    fn schema() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![("url", FieldType::Str), ("rank", FieldType::Int)],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-runner-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn write_pages(name: &str, n: i64) -> PathBuf {
        let s = schema();
        let path = tmp(name);
        let records: Vec<_> = (0..n)
            .map(|i| {
                record(
                    &s,
                    vec![format!("http://s/{}", i % 10).into(), Value::Int(i % 100)],
                )
            })
            .collect();
        write_seqfile(&path, s, records).unwrap();
        path
    }

    /// SELECT rank, COUNT(*) WHERE rank > 89 GROUP BY rank.
    fn count_high_ranks() -> mr_ir::function::Function {
        parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 89
              r3 = cmp gt r1, r2
              br r3, t, e
            t:
              r4 = const 1
              emit r1, r4
            e:
              ret
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn group_by_count_end_to_end() {
        let path = write_pages("groupby", 1000);
        let job = JobConfig::ir_job(
            "count-high",
            InputSpec::SeqFile { path },
            count_high_ranks(),
            Builtin::Count,
        );
        let result = run_job(&job).unwrap();
        // Ranks 90..=99 each appear 10 times.
        assert_eq!(result.output.len(), 10);
        for (k, v) in &result.output {
            assert!(k.as_int().unwrap() > 89);
            assert_eq!(v, &Value::Int(10));
        }
        assert_eq!(result.counters.map_input_records, 1000);
        assert_eq!(result.counters.map_output_records, 100);
        assert_eq!(result.counters.reduce_input_groups, 10);
        assert!(result.counters.input_bytes > 0);
        assert!(result.counters.shuffle_bytes > 0);
    }

    #[test]
    fn deterministic_across_parallelism() {
        let path = write_pages("determinism", 2000);
        let mut results = Vec::new();
        for par in [1usize, 2, 8] {
            let job = JobConfig::ir_job(
                "count-high",
                InputSpec::SeqFile { path: path.clone() },
                count_high_ranks(),
                Builtin::Count,
            )
            .with_parallelism(par)
            .with_reducers(3);
            results.push(run_job(&job).unwrap().output);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn sum_reducer_over_multiple_inputs() {
        let p1 = write_pages("multi1", 500);
        let p2 = write_pages("multi2", 500);
        let mapper = || {
            parse_function(
                r#"
                func map(key, value) {
                  r0 = param value
                  r1 = field r0.url
                  r2 = field r0.rank
                  emit r1, r2
                  ret
                }
                "#,
            )
            .unwrap()
        };
        let job = JobConfig {
            name: "multi".into(),
            inputs: vec![
                InputBinding::ir(InputSpec::SeqFile { path: p1 }, mapper()),
                InputBinding::ir(InputSpec::SeqFile { path: p2 }, mapper()),
            ],
            num_reducers: 4,
            reducer: Arc::new(Builtin::Sum),
            output: OutputSpec::InMemory,
            map_parallelism: 4,
            sort_output: true,
        };
        let result = run_job(&job).unwrap();
        assert_eq!(result.output.len(), 10, "ten distinct urls");
        assert_eq!(result.counters.map_input_records, 1000);
        let total: i64 = result.output.iter().map(|(_, v)| v.as_int().unwrap()).sum();
        // Sum of (i % 100) over 0..500, twice.
        let expected: i64 = (0..500).map(|i| i % 100).sum::<i64>() * 2;
        assert_eq!(total, expected);
    }

    #[test]
    fn map_error_propagates() {
        let path = write_pages("maperr", 10);
        // Mapper reads a nonexistent field.
        let bad = parse_function(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.nope
              emit r1, r1
              ret
            }
            "#,
        )
        .unwrap();
        let job = JobConfig::ir_job("bad", InputSpec::SeqFile { path }, bad, Builtin::Count);
        assert!(matches!(run_job(&job), Err(EngineError::Map(_))));
    }

    #[test]
    fn text_output_files_written() {
        let path = write_pages("textout", 100);
        let outdir = tmp("textout-dir");
        let _ = std::fs::remove_dir_all(&outdir);
        let job = JobConfig::ir_job(
            "text",
            InputSpec::SeqFile { path },
            count_high_ranks(),
            Builtin::Count,
        )
        .with_reducers(2)
        .with_text_output(&outdir);
        let result = run_job(&job).unwrap();
        assert_eq!(result.output_files.len(), 2);
        let mut lines = 0;
        for f in &result.output_files {
            lines += std::fs::read_to_string(f).unwrap().lines().count();
        }
        assert_eq!(lines as u64, result.counters.reduce_output_records);
    }

    #[test]
    fn empty_input_runs_clean() {
        let s = schema();
        let path = tmp("empty");
        write_seqfile(&path, s, Vec::new()).unwrap();
        let job = JobConfig::ir_job(
            "empty",
            InputSpec::SeqFile { path },
            count_high_ranks(),
            Builtin::Count,
        );
        let result = run_job(&job).unwrap();
        assert!(result.output.is_empty());
        assert_eq!(result.counters.map_input_records, 0);
    }

    #[test]
    fn no_inputs_is_config_error() {
        let job = JobConfig {
            name: "none".into(),
            inputs: vec![],
            num_reducers: 1,
            reducer: Arc::new(Builtin::Count),
            output: OutputSpec::InMemory,
            map_parallelism: 1,
            sort_output: false,
        };
        assert!(matches!(run_job(&job), Err(EngineError::Config(_))));
    }
}
