//! Job configuration.

use std::path::PathBuf;
use std::sync::Arc;

use mr_ir::function::Function;
use mr_storage::blockcodec::ShuffleCompression;

use crate::combine::Combiner;
use crate::fault::FaultPlan;
use crate::input::InputSpec;
use crate::join::JoinSide;
use crate::mapper::{IrMapperFactory, MapperFactory};
use crate::pool::BufferPool;
use crate::reducer::{Builtin, ReducerFactory};

/// One input plus the mapper that processes it. A job may carry several
/// bindings — Hadoop's `MultipleInputs`, which the Pavlo join benchmark
/// needs (each joined table comes from a different source file with its
/// own mapper).
pub struct InputBinding {
    /// Where the records come from.
    pub input: InputSpec,
    /// The mapper applied to this input.
    pub mapper: Arc<dyn MapperFactory>,
    /// The binding's join role, when the job is a join stage
    /// ([`crate::join`]): `Build`/`Probe` shuffle the mapper's output
    /// as tagged unions for a repartition join, `Broadcast` probes a
    /// shared build table inline. `None` (the default) shuffles mapper
    /// output unchanged.
    pub join: Option<JoinSide>,
}

impl InputBinding {
    /// Bind a compiled IR map function to an input.
    pub fn ir(input: InputSpec, func: Function) -> InputBinding {
        InputBinding {
            input,
            mapper: IrMapperFactory::new(func),
            join: None,
        }
    }

    /// Bind a compiled IR map function to an input with a join role.
    pub fn ir_join(input: InputSpec, func: Function, join: JoinSide) -> InputBinding {
        InputBinding {
            input,
            mapper: IrMapperFactory::new(func),
            join: Some(join),
        }
    }
}

/// How many worker processes the process backend forks, and how they
/// are launched ([`BackendSpec::Process`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessCfg {
    /// Worker processes to fork. The coordinator respawns workers the
    /// fault plan kills, so this is the *concurrent* worker count, not
    /// a lifetime total.
    pub workers: usize,
    /// Command line that starts a worker (program + leading args); the
    /// coordinator appends the control-socket path and the worker id.
    /// `None` re-executes [`std::env::current_exe`] with the hidden
    /// `__mr-worker` argument — right for binaries that install the
    /// worker entrypoint (the `manimal` CLI, the bench bins); tests
    /// spawning a *different* binary set this explicitly.
    pub worker_cmd: Option<Vec<String>>,
    /// Launch speculative duplicate attempts for straggling tasks: when
    /// the task queue is empty and a worker sits idle, the
    /// longest-running in-flight task is duplicated onto it and the two
    /// attempts race — the first to finish commits by rename, the loser
    /// is discarded (its attempt dir cleans up by RAII). Byte-identical
    /// output either way.
    pub speculate: bool,
}

impl Default for ProcessCfg {
    fn default() -> ProcessCfg {
        ProcessCfg {
            workers: 2,
            worker_cmd: None,
            speculate: false,
        }
    }
}

/// Which execution backend runs the job (see [`crate::backend`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum BackendSpec {
    /// In-process scoped-thread runner — the reference implementation.
    #[default]
    Local,
    /// Coordinator + forked worker processes over a Unix-socket task
    /// protocol. Requires a wire-serializable job: IR mappers/reducers
    /// and builtin reducers travel; native `Fn` factories do not and
    /// are rejected with a config error.
    Process(ProcessCfg),
}

impl BackendSpec {
    /// Parse a CLI/env spec: `local`, `process`, or `process:N` for N
    /// workers.
    pub fn parse(spec: &str) -> Result<BackendSpec, String> {
        match spec {
            "local" => Ok(BackendSpec::Local),
            "process" => Ok(BackendSpec::Process(ProcessCfg::default())),
            _ => match spec.strip_prefix("process:") {
                Some(n) => {
                    let workers: usize = n
                        .parse()
                        .map_err(|_| format!("`{spec}`: worker count `{n}` is not a number"))?;
                    if workers == 0 {
                        return Err(format!("`{spec}`: worker count must be at least 1"));
                    }
                    Ok(BackendSpec::Process(ProcessCfg {
                        workers,
                        ..ProcessCfg::default()
                    }))
                }
                None => Err(format!("`{spec}`: expected local, process or process:N")),
            },
        }
    }

    /// The spec name (`local` or `process`/`process:N`), parseable by
    /// [`parse`](Self::parse) — worker_cmd/speculate are runtime
    /// wiring, not part of the spec.
    pub fn name(&self) -> String {
        match self {
            BackendSpec::Local => "local".into(),
            BackendSpec::Process(cfg) => format!("process:{}", cfg.workers),
        }
    }
}

/// Where reduce output goes.
#[derive(Debug, Clone)]
pub enum OutputSpec {
    /// Collect `(key, value)` pairs in memory (returned in
    /// [`JobResult::output`](crate::runner::JobResult)).
    InMemory,
    /// Write one `key\tvalue` text file per reduce partition:
    /// `part-00000`, `part-00001`, … in the given directory.
    TextDir(PathBuf),
}

/// A complete MapReduce job description.
pub struct JobConfig {
    /// Job name (diagnostics only).
    pub name: String,
    /// Inputs with their mappers.
    pub inputs: Vec<InputBinding>,
    /// Number of reduce partitions.
    pub num_reducers: usize,
    /// The reduce function.
    pub reducer: Arc<dyn ReducerFactory>,
    /// Output destination.
    pub output: OutputSpec,
    /// Map-side worker threads (also the input-split hint).
    pub map_parallelism: usize,
    /// Sort the final in-memory output by key (stable across plans, for
    /// equivalence checks).
    pub sort_output: bool,
    /// Shuffle memory budget in bytes. `None` (the default) keeps every
    /// emitted pair resident — the seed behaviour, fine for
    /// laptop-scale jobs. With a budget set, half is split evenly
    /// across the reducer buckets and half across the map workers'
    /// staging buffers; a bucket that outgrows its share sorts its
    /// buffer and spills it as a run file, and reduce k-way merges the
    /// runs with the resident tail. Accounting uses each pair's
    /// *serialized payload size* (the same estimate as the
    /// `shuffle_bytes` counter), not its heap footprint — actual
    /// resident memory runs a small constant factor above the budget
    /// (enum + allocator overhead per `Value`), so size the knob with
    /// headroom. Output is identical either way.
    pub shuffle_buffer_bytes: Option<usize>,
    /// Block codec for spill-run I/O
    /// ([`mr_storage::blockcodec::ShuffleCompression`]). The default
    /// [`ShuffleCompression::None`] streams raw pairs — the seed
    /// behaviour; `Dict`/`Delta` compress each spilled run (and every
    /// compaction rewrite) below the record layer, cutting spill-disk
    /// traffic when the shuffle is redundant, and `Raw` frames without
    /// compressing (CRC detection only). Output is byte-identical
    /// under every variant, retries included: frames live inside run
    /// files, and run files commit/retry by whole-file rename. Only
    /// meaningful when [`shuffle_buffer_bytes`](Self::shuffle_buffer_bytes)
    /// makes spilling possible.
    pub shuffle_compression: ShuffleCompression,
    /// Parent directory for spill runs. Each job spills into a private
    /// subdirectory that is removed when the job finishes; `None` uses
    /// [`std::env::temp_dir`].
    pub spill_dir: Option<PathBuf>,
    /// Persistent trained-dictionary store for the
    /// [`ShuffleCompression::DictTrained`] codec. When set, a job whose
    /// training corpus hashes to an already-stored dictionary *reuses*
    /// it instead of training a new one, and freshly trained
    /// dictionaries are saved back (content-addressed, so identical
    /// corpora across jobs share one artifact). `None` trains per job
    /// with no cross-job reuse. Ignored by the other codecs.
    pub dict_store: Option<PathBuf>,
    /// Map-side combiner. `None` (the default) runs the plain
    /// emit→spill→merge pipeline; with a combiner, emitted pairs are
    /// folded at the staging flush, at spill time, and in the merge
    /// grouping loop — output stays identical to the combiner-free run
    /// (see [`crate::combine`]). The builtin reducers declare safe
    /// combiners via [`Builtin::combiner`];
    /// [`with_declared_combiner`](Self::with_declared_combiner) engages
    /// whatever the job's reducer declares.
    pub combiner: Option<Arc<dyn Combiner>>,
    /// How many times each map/reduce task may run before the job
    /// fails — Hadoop's `mapreduce.map.maxattempts`. `1` (the default)
    /// is the seed behaviour: the first task failure aborts the job.
    /// With more attempts a failed task is transparently re-executed
    /// from its input split: a task attempt's side effects (staged
    /// pairs, attempt-scoped spill runs) are only *committed* into
    /// shared shuffle state on success, so retries never duplicate or
    /// lose pairs and the output is byte-identical to a fault-free
    /// run. A task that fails `max_task_attempts` times surfaces
    /// [`EngineError::TaskFailed`](crate::error::EngineError::TaskFailed).
    ///
    /// Retry insurance has a cost on the reduce side: every attempt
    /// before the last streams the partition's resident tail by
    /// *cloning* pairs (the tail must survive for a potential retry);
    /// only the final allowed attempt — and therefore every attempt
    /// when this is 1 — takes the zero-copy move path. With a shuffle
    /// budget the tail is small and the cost negligible; for large
    /// fully-resident partitions, weigh retries against the extra
    /// allocation traffic.
    pub max_task_attempts: usize,
    /// A deterministic failure schedule for tests and fault drills
    /// ([`FaultPlan`]); `None` injects nothing.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Background spill-writer threads per map attempt. `1` (the
    /// default) double-buffers the spill pipeline: a mapper detaches
    /// its full staging buffer, hands it to the writer thread and keeps
    /// mapping into a recycled buffer while the spill sorts,
    /// compresses and flushes in the background. More threads deepen
    /// the pipeline (useful when compression dominates); `0` restores
    /// fully synchronous spilling — the pre-pipeline behaviour, and
    /// the byte-identity reference in the differential tests. Output
    /// is identical at every setting.
    pub spill_writer_threads: usize,
    /// The [`BufferPool`] staging buffers and run-writer scratch
    /// recycle through. `None` (the default) gives the job a private
    /// pool; pass a shared pool to keep buffers warm across a sequence
    /// of jobs (the tuned-vs-baseline bench pairs do). A
    /// [`BufferPool::disabled`] pool re-allocates on every loan — the
    /// A/B control the hot-path bench measures the allocation tax
    /// with.
    pub buffer_pool: Option<Arc<BufferPool>>,
    /// Which execution backend runs the job
    /// ([`BackendSpec::Local`] by default — the in-process reference;
    /// [`BackendSpec::Process`] shards tasks across forked worker
    /// processes). Output is byte-identical across backends.
    pub backend: BackendSpec,
}

impl JobConfig {
    /// A job with a single IR-mapped input and a builtin reducer —
    /// the common case.
    pub fn ir_job(
        name: impl Into<String>,
        input: InputSpec,
        mapper: Function,
        reducer: Builtin,
    ) -> JobConfig {
        JobConfig {
            name: name.into(),
            inputs: vec![InputBinding::ir(input, mapper)],
            num_reducers: 4,
            reducer: Arc::new(reducer),
            output: OutputSpec::InMemory,
            map_parallelism: available_parallelism(),
            sort_output: true,
            shuffle_buffer_bytes: None,
            shuffle_compression: ShuffleCompression::None,
            spill_dir: None,
            dict_store: None,
            combiner: None,
            max_task_attempts: 1,
            fault_plan: None,
            spill_writer_threads: 1,
            buffer_pool: None,
            backend: BackendSpec::Local,
        }
    }

    /// Override the reducer count.
    pub fn with_reducers(mut self, n: usize) -> Self {
        self.num_reducers = n.max(1);
        self
    }

    /// Override map parallelism.
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.map_parallelism = n.max(1);
        self
    }

    /// Send output to a text directory.
    pub fn with_text_output(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output = OutputSpec::TextDir(dir.into());
        self
    }

    /// Bound the shuffle's memory footprint: emitted pairs beyond
    /// `bytes` (accounted across all reducer buckets) spill to sorted
    /// run files and are merged back at reduce time.
    pub fn with_shuffle_buffer(mut self, bytes: usize) -> Self {
        self.shuffle_buffer_bytes = Some(bytes);
        self
    }

    /// Compress spill-run I/O with `codec`
    /// ([`JobConfig::shuffle_compression`]).
    pub fn with_shuffle_codec(mut self, codec: ShuffleCompression) -> Self {
        self.shuffle_compression = codec;
        self
    }

    /// Put spill runs under `dir` instead of the system temp dir.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Deduplicate trained dictionaries through a persistent store
    /// ([`JobConfig::dict_store`]).
    pub fn with_dict_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dict_store = Some(dir.into());
        self
    }

    /// Plug in an explicit map-side combiner.
    pub fn with_combiner(mut self, combiner: Arc<dyn Combiner>) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Engage the combiner the job's reducer declares for itself, if
    /// any ([`ReducerFactory::combiner`]) — the way analysis-approved
    /// plans switch combining on without naming a combiner themselves.
    pub fn with_declared_combiner(mut self) -> Self {
        self.combiner = self.reducer.combiner();
        self
    }

    /// Allow each task up to `n` attempts before the job fails.
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_task_attempts = n.max(1);
        self
    }

    /// Inject the given failure schedule.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Set the background spill-writer thread count (`0` = spill
    /// synchronously inside the map loop).
    pub fn with_spill_writer_threads(mut self, n: usize) -> Self {
        self.spill_writer_threads = n;
        self
    }

    /// Recycle buffers through `pool` instead of a job-private one.
    pub fn with_buffer_pool(mut self, pool: Arc<BufferPool>) -> Self {
        self.buffer_pool = Some(pool);
        self
    }

    /// Run the job on the given execution backend.
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }
}

/// Threads to use by default.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}
