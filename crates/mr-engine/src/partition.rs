//! The shuffle partitioner.

use std::hash::{Hash, Hasher};

use mr_ir::value::Value;

/// Deterministically assign a key to one of `n` reduce partitions —
/// Hadoop's default hash partitioner.
pub fn partition(key: &Value, n: usize) -> usize {
    debug_assert!(n > 0);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_in_range() {
        for n in [1usize, 2, 7, 16] {
            for i in 0..100 {
                let k = Value::Int(i);
                let p = partition(&k, n);
                assert!(p < n);
                assert_eq!(p, partition(&k, n), "deterministic");
            }
        }
    }

    #[test]
    fn equal_values_one_partition() {
        // Int(2) and Double(2.0) compare equal, so they must land in the
        // same partition (Hash is consistent with Eq? Our Value::hash
        // hashes the kind tag, so they do NOT — but they also never mix
        // as map output keys of a single job; assert the documented
        // behaviour for same-kind keys).
        assert_eq!(
            partition(&Value::str("abc"), 8),
            partition(&Value::str("abc"), 8)
        );
    }

    #[test]
    fn spreads_keys() {
        let n = 8;
        let mut seen = vec![false; n];
        for i in 0..1000 {
            seen[partition(&Value::Int(i), n)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all partitions used");
    }
}
