//! Streaming k-way merge of sorted shuffle runs.
//!
//! The reduce side of the external shuffle: instead of materializing a
//! whole partition and sorting it, reduce merges the partition's
//! spilled runs (see [`crate::spill`]) with the still-resident tail,
//! one pair at a time, holding one head per run. Key ties break by run
//! index — runs are numbered in spill (= emission) order and the
//! resident tail is last — so the merged stream is exactly what a
//! stable in-memory sort of the whole partition would have produced,
//! and the grouping iterator downstream cannot tell the two paths
//! apart.
//!
//! Two interchangeable merge engines implement that contract:
//! [`LoserTree`] — a tournament tree doing exactly ⌈log₂ k⌉ comparisons
//! per pair, what the hot path uses — and the original binary-heap
//! [`KWayMerge`], kept as the executable specification the loser tree
//! is property-tested against (`tests/loser_tree.rs` asserts the two
//! produce identical streams on random runs).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::path::Path;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use mr_ir::value::Value;
use mr_storage::blockcodec::ShuffleCompression;
use mr_storage::fault::IoFaults;
use mr_storage::runfile::{RunFileReader, RunFileStats, RunFileWriter, RunScratch};
use mr_storage::trained::TrainedDict;

use crate::combine::CombineStrategy;
use crate::counters::Counters;
use crate::dictctx::DictContext;
use crate::error::{EngineError, Result};
use crate::pool::BufferPool;
use crate::spill::SpillRun;

/// The most runs one merge pass opens at once — Hadoop's
/// `io.sort.factor`. A tiny budget over a large input can spill
/// thousands of runs per partition; without this cap the final merge
/// would hold one open file (and `BufReader`) per run and exhaust the
/// process fd limit exactly in the large-data regime spilling exists
/// for.
pub const MERGE_FACTOR: usize = 64;

/// Compact `runs` (in spill order, updated in place) down to at most
/// [`MERGE_FACTOR`] by merging batches of consecutive runs into
/// intermediate runs under `dir`, deleting the sources. Batches are
/// consecutive and each result takes its batch's position, so the
/// `(key, run index)` tie-break — and therefore the final merged
/// stream — is identical to a flat merge of the original runs.
/// Rewritten bytes are charged to the `spill_bytes_raw` /
/// `spill_bytes_written` counters (they are real spill-disk traffic,
/// compressed through the same `compression` codec as map-side
/// spills); `spill_count`/`spilled_records` stay map-side only. An active `combine` strategy folds duplicate keys
/// while rewriting, so compacted runs shrink like spill-time runs do.
///
/// Compaction is **resumable**: on error, `runs` is left describing
/// exactly the still-valid run files — batches already merged plus the
/// untouched remainder (sources are deleted only after their batch
/// succeeds) — so a retried reduce attempt picks up where the failed
/// one stopped instead of re-reading deleted files. Intermediate file
/// names are process-unique, never reusing the name of a live run.
#[allow(clippy::too_many_arguments)]
pub fn compact_runs(
    runs: &mut Vec<SpillRun>,
    dir: &Path,
    partition: usize,
    counters: &Counters,
    combine: &CombineStrategy,
    compression: ShuffleCompression,
    dict: Option<&DictContext>,
    io: Option<&Arc<IoFaults>>,
    pool: &BufferPool,
) -> Result<()> {
    // Resolve the shared dictionary once per compaction, not per
    // batch: by compaction time the map side has committed it, so this
    // is a cache or file load — never a retrain.
    let trained = match (compression, dict, runs.len() > MERGE_FACTOR) {
        (ShuffleCompression::DictTrained, Some(ctx), true) => {
            Some(ctx.resolve_or_train(&[], counters)?)
        }
        (ShuffleCompression::DictTrained, None, true) => {
            return Err(EngineError::Config(
                "dict-trained shuffle codec needs a dictionary context".into(),
            ));
        }
        _ => None,
    };
    while runs.len() > MERGE_FACTOR {
        let source = std::mem::take(runs);
        let mut next: Vec<SpillRun> = Vec::with_capacity(source.len().div_ceil(MERGE_FACTOR));
        let mut idx = 0;
        while idx < source.len() {
            let end = (idx + MERGE_FACTOR).min(source.len());
            if end - idx == 1 {
                next.push(source[idx].clone());
                idx = end;
                continue;
            }
            match merge_batch(
                &source[idx..end],
                dir,
                partition,
                counters,
                combine,
                compression,
                trained.clone(),
                io,
                pool,
            ) {
                Ok(run) => {
                    next.push(run);
                    idx = end;
                }
                Err(e) => {
                    next.extend(source[idx..].iter().cloned());
                    *runs = next;
                    return Err(e);
                }
            }
        }
        *runs = next;
    }
    Ok(())
}

/// Merge one batch of consecutive runs into a single intermediate run
/// and delete the sources (only after the merged run is durable — a
/// failed batch leaves its sources intact for the retry). The result
/// inherits the batch's first spill sequence so relative order among
/// surviving runs is preserved. With an active combiner the merged
/// stream is folded on the fly — one pair per key survives the
/// rewrite.
#[allow(clippy::too_many_arguments)]
fn merge_batch(
    batch: &[SpillRun],
    dir: &Path,
    partition: usize,
    counters: &Counters,
    combine: &CombineStrategy,
    compression: ShuffleCompression,
    trained: Option<Arc<TrainedDict>>,
    io: Option<&Arc<IoFaults>>,
    pool: &BufferPool,
) -> Result<SpillRun> {
    // Process-unique intermediate names: a retried compaction must
    // never truncate a merged run an earlier pass already produced.
    static NEXT_MERGE_FILE: AtomicU64 = AtomicU64::new(0);
    let unique = NEXT_MERGE_FILE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    let seq = batch[0].seq;
    let mut streams = Vec::with_capacity(batch.len());
    for r in batch {
        streams.push(RunStream::File(RunFileReader::open_with_faults(
            &r.path,
            io.cloned(),
        )?));
    }
    let path = dir.join(format!("merge-{partition:05}-{unique:08}"));
    let scratch = pool.get_scratch();
    let (stats, seen, kept) =
        match write_merged(&path, streams, combine, compression, trained, io, scratch) {
            Ok((stats, scratch, seen, kept)) => {
                pool.put_scratch(scratch);
                (stats, seen, kept)
            }
            Err(e) => {
                // The dead writer kept the loaned buffers; balance the
                // loan so pool accounting stays exact on fault paths.
                pool.put_scratch(RunScratch::new());
                return Err(e);
            }
        };
    // Charge counters only after the batch is durable, so a failed
    // batch that is retried cannot double-count.
    if seen > 0 || kept > 0 {
        Counters::add(&counters.combine_in, seen);
        Counters::add(&counters.combine_out, kept);
    }
    Counters::add(&counters.spill_bytes_raw, stats.raw_bytes);
    Counters::add(&counters.spill_bytes_written, stats.file_bytes);
    for r in batch {
        let _ = std::fs::remove_file(&r.path);
    }
    Ok(SpillRun {
        seq,
        path,
        pairs: stats.pairs,
        raw_bytes: stats.raw_bytes,
        bytes: stats.file_bytes,
    })
}

/// The fallible core of [`merge_batch`]: merge `streams` through the
/// loser tree into a new run at `path`, folding on the fly with an
/// active combiner. Returns the run stats, the reclaimed scratch and
/// the `(combine_in, combine_out)` pair counts.
fn write_merged(
    path: &Path,
    streams: Vec<RunStream>,
    combine: &CombineStrategy,
    compression: ShuffleCompression,
    trained: Option<Arc<TrainedDict>>,
    io: Option<&Arc<IoFaults>>,
    scratch: RunScratch,
) -> Result<(RunFileStats, RunScratch, u64, u64)> {
    let mut w = match trained {
        Some(dict) => RunFileWriter::create_trained_pooled(path, dict, io.cloned(), scratch)?,
        None => RunFileWriter::create_pooled(path, compression, io.cloned(), scratch)?,
    };
    let mut seen = 0u64;
    let mut kept = 0u64;
    match combine.active() {
        None => {
            for item in LoserTree::new(streams)? {
                let (k, v) = item?;
                w.append(&k, &v)?;
            }
        }
        Some(combiner) => {
            let mut cur: Option<(Value, Value)> = None;
            for item in LoserTree::new(streams)? {
                let (k, v) = item?;
                seen += 1;
                cur = Some(match cur {
                    Some((ck, acc)) if ck == k => (ck, combiner.merge(&k, acc, &v)?),
                    Some((ck, acc)) => {
                        w.append(&ck, &acc)?;
                        kept += 1;
                        (k, v)
                    }
                    None => (k, v),
                });
            }
            if let Some((ck, acc)) = cur {
                w.append(&ck, &acc)?;
                kept += 1;
            }
        }
    }
    let (stats, scratch) = w.finish_reclaim()?;
    Ok((stats, scratch, seen, kept))
}

/// One sorted input to the merge.
pub enum RunStream {
    /// A spilled run streamed from disk.
    File(RunFileReader),
    /// The sorted resident tail, consumed by this merge.
    Memory(std::vec::IntoIter<(Value, Value)>),
    /// The sorted resident tail, shared: pairs are cloned out so the
    /// vector survives for another reduce attempt. Used only when task
    /// retries are possible — the final (or sole) attempt takes the
    /// move-semantics [`Memory`](RunStream::Memory) path.
    Shared {
        /// The shared tail.
        pairs: Arc<Vec<(Value, Value)>>,
        /// Next pair to yield.
        pos: usize,
    },
}

impl RunStream {
    /// A shared stream over `pairs`, starting at the beginning.
    pub fn shared(pairs: Arc<Vec<(Value, Value)>>) -> RunStream {
        RunStream::Shared { pairs, pos: 0 }
    }

    pub(crate) fn next_pair(&mut self) -> Option<Result<(Value, Value)>> {
        match self {
            RunStream::File(r) => r.next().map(|p| p.map_err(EngineError::from)),
            RunStream::Memory(it) => it.next().map(Ok),
            RunStream::Shared { pairs, pos } => {
                let pair = pairs.get(*pos)?.clone();
                *pos += 1;
                Some(Ok(pair))
            }
        }
    }
}

/// A heap entry: the next pair of run `run`.
struct Head {
    key: Value,
    value: Value,
    run: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values never participate: within a run the file order is
        // already the emission order, and across runs the run index is
        // the stable-sort tiebreak.
        self.key.cmp(&other.key).then(self.run.cmp(&other.run))
    }
}

/// Merges `k` sorted streams into one sorted pair stream.
pub struct KWayMerge {
    streams: Vec<RunStream>,
    heap: BinaryHeap<Reverse<Head>>,
    pending_error: Option<EngineError>,
}

impl KWayMerge {
    /// Prime the heap with the first pair of every stream.
    pub fn new(streams: Vec<RunStream>) -> Result<KWayMerge> {
        let mut merge = KWayMerge {
            heap: BinaryHeap::with_capacity(streams.len()),
            streams,
            pending_error: None,
        };
        for run in 0..merge.streams.len() {
            merge.refill(run)?;
        }
        Ok(merge)
    }

    /// Number of input streams.
    pub fn width(&self) -> usize {
        self.streams.len()
    }

    fn refill(&mut self, run: usize) -> Result<()> {
        match self.streams[run].next_pair() {
            Some(Ok((key, value))) => {
                self.heap.push(Reverse(Head { key, value, run }));
                Ok(())
            }
            Some(Err(e)) => Err(e),
            None => Ok(()),
        }
    }
}

impl Iterator for KWayMerge {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(e) = self.pending_error.take() {
            return Some(Err(e));
        }
        let Reverse(head) = self.heap.pop()?;
        // Refill before yielding; an error is held back one step so the
        // popped pair is not lost.
        if let Err(e) = self.refill(head.run) {
            self.pending_error = Some(e);
        }
        Some(Ok((head.key, head.value)))
    }
}

/// Sentinel for a tournament node not yet contested during the build.
const NO_LEAF: usize = usize::MAX;

/// Merges `k` sorted streams through a tournament (loser) tree.
///
/// The heap pays up to `2·log₂ k` comparisons per pair (sift-down
/// compares both children at every level); a loser tree replays only
/// the popped stream's path — each internal node on it holds the loser
/// of its subtree's last tournament, so one comparison per level,
/// `⌈log₂ k⌉` total, decides the next winner. Stream `j` is leaf
/// `k + j` in the implicit array; `tree[i]` (for `i ≥ 1`) is the leaf
/// index parked at internal node `i` and `tree[0]` the tournament
/// winner.
///
/// Ordering is *identical* to [`KWayMerge`]: `(key, stream index)`
/// ascending, an exhausted stream ranking above every live one — the
/// tie-break that makes external and in-memory shuffles byte-identical.
pub struct LoserTree {
    streams: Vec<RunStream>,
    heads: Vec<Option<(Value, Value)>>,
    /// `tree[0]`: winner leaf; `tree[1..k]`: parked losers.
    tree: Vec<usize>,
    pending_error: Option<EngineError>,
}

impl LoserTree {
    /// Prime every stream's head and play the initial tournament.
    pub fn new(streams: Vec<RunStream>) -> Result<LoserTree> {
        let k = streams.len();
        let mut merge = LoserTree {
            streams,
            heads: Vec::with_capacity(k),
            tree: vec![NO_LEAF; k.max(1)],
            pending_error: None,
        };
        for run in 0..k {
            let head = match merge.streams[run].next_pair() {
                Some(Ok(pair)) => Some(pair),
                Some(Err(e)) => return Err(e),
                None => None,
            };
            merge.heads.push(head);
        }
        for run in (0..k).rev() {
            merge.replay(run);
        }
        Ok(merge)
    }

    /// Number of input streams.
    pub fn width(&self) -> usize {
        self.streams.len()
    }

    /// Does leaf `a`'s head beat leaf `b`'s? Exhausted heads are
    /// +infinity; every tie breaks toward the lower stream index, which
    /// is exactly the [`Head`] ordering of the heap merge.
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.heads[a], &self.heads[b]) {
            (Some(x), Some(y)) => match x.0.cmp(&y.0) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Replay leaf `run`'s path to the root: at each node the winner
    /// advances and the loser stays parked. During the initial build a
    /// first-visited (empty) node parks the contender and stops — the
    /// rest of the path is contested by later replays.
    fn replay(&mut self, run: usize) {
        let k = self.streams.len();
        let mut winner = run;
        let mut node = (k + run) / 2;
        while node > 0 {
            match self.tree[node] {
                NO_LEAF => {
                    self.tree[node] = winner;
                    return;
                }
                parked if self.beats(parked, winner) => {
                    self.tree[node] = winner;
                    winner = parked;
                }
                _ => {}
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }
}

impl Iterator for LoserTree {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(e) = self.pending_error.take() {
            return Some(Err(e));
        }
        if self.streams.is_empty() {
            return None;
        }
        let winner = self.tree[0];
        // The winner is the minimum; it is exhausted only when every
        // stream is.
        let pair = self.heads[winner].take()?;
        match self.streams[winner].next_pair() {
            Some(Ok(next)) => self.heads[winner] = Some(next),
            Some(Err(e)) => self.pending_error = Some(e),
            None => {}
        }
        self.replay(winner);
        Some(Ok(pair))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(pairs: Vec<(i64, &str)>) -> RunStream {
        RunStream::Memory(
            pairs
                .into_iter()
                .map(|(k, v)| (Value::Int(k), Value::str(v)))
                .collect::<Vec<_>>()
                .into_iter(),
        )
    }

    fn collect(m: KWayMerge) -> Vec<(i64, Value)> {
        m.map(|p| p.unwrap())
            .map(|(k, v)| (k.as_int().unwrap(), v))
            .collect()
    }

    fn write_run(dir: &std::path::Path, seq: usize, mut pairs: Vec<(Value, Value)>) -> SpillRun {
        crate::spill::write_sorted_run(
            dir,
            0,
            seq,
            &mut pairs,
            &CombineStrategy::passthrough(),
            ShuffleCompression::None,
            None,
            &Counters::new(),
            None,
            &BufferPool::new(),
        )
        .unwrap()
    }

    /// Build `n` sorted runs with overlapping keys plus the flat-merge
    /// expectation (a stable sort of the concatenated runs).
    fn overlapping_runs(dir: &std::path::Path, n: usize) -> (Vec<SpillRun>, Vec<(Value, Value)>) {
        let mut runs = Vec::new();
        let mut concat: Vec<(Value, Value)> = Vec::new();
        for seq in 0..n {
            let mut pairs: Vec<(Value, Value)> = (0..3)
                .map(|j| {
                    (
                        Value::Int(((seq * 5 + j * 2) % 8) as i64),
                        Value::Int((seq * 10 + j) as i64),
                    )
                })
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            concat.extend(pairs.iter().cloned());
            runs.push(write_run(dir, seq, pairs));
        }
        concat.sort_by(|a, b| a.0.cmp(&b.0));
        (runs, concat)
    }

    fn merge_all(runs: &[SpillRun]) -> Vec<(Value, Value)> {
        let streams = runs
            .iter()
            .map(|r| RunStream::File(RunFileReader::open(&r.path).unwrap()))
            .collect();
        KWayMerge::new(streams)
            .unwrap()
            .map(|p| p.unwrap())
            .collect()
    }

    /// Exactly `MERGE_FACTOR` runs fit one merge pass: compaction must
    /// not rewrite anything.
    #[test]
    fn compaction_noop_at_exactly_merge_factor() {
        let dir = crate::spill::SpillDir::create(None, "factor-exact").unwrap();
        let (mut compacted, expect) = overlapping_runs(dir.path(), MERGE_FACTOR);
        let paths: Vec<_> = compacted.iter().map(|r| r.path.clone()).collect();
        let counters = Counters::new();
        compact_runs(
            &mut compacted,
            dir.path(),
            0,
            &counters,
            &CombineStrategy::passthrough(),
            ShuffleCompression::None,
            None,
            None,
            &BufferPool::new(),
        )
        .unwrap();
        assert_eq!(compacted.len(), MERGE_FACTOR, "no compaction round");
        let kept: Vec<_> = compacted.iter().map(|r| r.path.clone()).collect();
        assert_eq!(kept, paths, "original run files untouched");
        assert_eq!(
            counters.snapshot().spill_bytes_written,
            0,
            "nothing rewritten"
        );
        assert_eq!(merge_all(&compacted), expect);
    }

    /// One run past the boundary forces exactly one compaction round,
    /// the merged stream stays byte-identical, and the surviving fan-in
    /// is bounded by `MERGE_FACTOR` (the fd guarantee).
    #[test]
    fn compaction_one_round_at_merge_factor_plus_one() {
        let dir = crate::spill::SpillDir::create(None, "factor-plus1").unwrap();
        let (mut compacted, expect) = overlapping_runs(dir.path(), MERGE_FACTOR + 1);
        let counters = Counters::new();
        compact_runs(
            &mut compacted,
            dir.path(),
            0,
            &counters,
            &CombineStrategy::passthrough(),
            ShuffleCompression::None,
            None,
            None,
            &BufferPool::new(),
        )
        .unwrap();
        // 65 runs → one merged batch of 64 plus the leftover run.
        assert_eq!(compacted.len(), 2, "one merge batch + one leftover");
        assert!(compacted.len() <= MERGE_FACTOR, "fan-in bounded");
        assert!(
            counters.snapshot().spill_bytes_written > 0,
            "one round rewrote bytes"
        );
        // Exactly one batch merged: one intermediate file.
        let intermediates: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("merge-"))
            .collect();
        assert_eq!(intermediates.len(), 1);
        assert_eq!(merge_all(&compacted), expect);
    }

    /// An IO fault mid-compaction leaves `runs` describing exactly the
    /// files still on disk, and a retry completes with the same merged
    /// stream as a fault-free pass — the resumability the reduce
    /// attempt loop depends on.
    #[test]
    fn compaction_resumes_after_io_fault() {
        let dir = crate::spill::SpillDir::create(None, "factor-resume").unwrap();
        let (mut runs, expect) = overlapping_runs(dir.path(), MERGE_FACTOR + 2);
        let counters = Counters::new();
        // Fail the very first run-file read of the first batch.
        let io = Arc::new(IoFaults::new().with_fault(mr_storage::fault::IoSite::RunRead, 0));
        let err = compact_runs(
            &mut runs,
            dir.path(),
            0,
            &counters,
            &CombineStrategy::passthrough(),
            ShuffleCompression::None,
            None,
            Some(&io),
            &BufferPool::new(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Storage(_)), "{err}");
        assert_eq!(runs.len(), MERGE_FACTOR + 2, "nothing merged yet");
        for r in &runs {
            assert!(r.path.exists(), "sources intact after failed batch");
        }
        // Retry with the (now disarmed) injector: completes normally.
        compact_runs(
            &mut runs,
            dir.path(),
            0,
            &counters,
            &CombineStrategy::passthrough(),
            ShuffleCompression::None,
            None,
            Some(&io),
            &BufferPool::new(),
        )
        .unwrap();
        assert!(runs.len() <= MERGE_FACTOR);
        assert_eq!(merge_all(&runs), expect);
    }

    #[test]
    fn merges_three_streams_in_order() {
        let m = KWayMerge::new(vec![
            mem(vec![(1, "a"), (4, "d"), (7, "g")]),
            mem(vec![(2, "b"), (5, "e")]),
            mem(vec![(3, "c"), (6, "f"), (8, "h"), (9, "i")]),
        ])
        .unwrap();
        assert_eq!(m.width(), 3);
        let out = collect(m);
        let keys: Vec<i64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn key_ties_break_by_run_index() {
        let m = KWayMerge::new(vec![
            mem(vec![(1, "run0-a"), (1, "run0-b")]),
            mem(vec![(1, "run1-a")]),
            mem(vec![(0, "run2"), (1, "run2-a")]),
        ])
        .unwrap();
        let out = collect(m);
        assert_eq!(
            out,
            vec![
                (0, Value::str("run2")),
                (1, Value::str("run0-a")),
                (1, Value::str("run0-b")),
                (1, Value::str("run1-a")),
                (1, Value::str("run2-a")),
            ]
        );
    }

    #[test]
    fn empty_and_exhausted_streams_ok() {
        let m = KWayMerge::new(vec![mem(vec![]), mem(vec![(1, "x")]), mem(vec![])]).unwrap();
        assert_eq!(collect(m), vec![(1, Value::str("x"))]);
        let m = KWayMerge::new(vec![]).unwrap();
        assert_eq!(collect(m), vec![]);
    }

    /// A shared tail yields the same stream as a consuming one — and
    /// can be merged again from the same vector.
    #[test]
    fn shared_stream_is_replayable() {
        let tail: Arc<Vec<(Value, Value)>> = Arc::new(
            vec![(1i64, "a"), (3, "c")]
                .into_iter()
                .map(|(k, v)| (Value::Int(k), Value::str(v)))
                .collect(),
        );
        for _ in 0..2 {
            let m = KWayMerge::new(vec![
                RunStream::shared(Arc::clone(&tail)),
                mem(vec![(2, "b")]),
            ])
            .unwrap();
            let keys: Vec<i64> = m.map(|p| p.unwrap().0.as_int().unwrap()).collect();
            assert_eq!(keys, vec![1, 2, 3]);
        }
    }

    #[test]
    fn compact_runs_equals_flat_merge() {
        let dir = crate::spill::SpillDir::create(None, "compact").unwrap();
        // 150 runs of 4 pairs with heavily overlapping keys — enough to
        // force two merge generations (150 → 3 → done).
        let mut runs = Vec::new();
        let mut concat: Vec<(Value, Value)> = Vec::new();
        for seq in 0..150usize {
            let mut pairs: Vec<(Value, Value)> = (0..4)
                .map(|j| {
                    (
                        Value::Int(((seq * 7 + j * 3) % 10) as i64),
                        Value::Int((seq * 10 + j) as i64),
                    )
                })
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            concat.extend(pairs.iter().cloned());
            runs.push(write_run(dir.path(), seq, pairs));
        }
        // A flat merge with run-index tie-break is exactly a stable sort
        // of the concatenated sorted runs.
        concat.sort_by(|a, b| a.0.cmp(&b.0));

        let counters = Counters::new();
        let mut compacted = runs;
        compact_runs(
            &mut compacted,
            dir.path(),
            0,
            &counters,
            &CombineStrategy::passthrough(),
            ShuffleCompression::None,
            None,
            None,
            &BufferPool::new(),
        )
        .unwrap();
        assert!(
            counters.snapshot().spill_bytes_written > 0,
            "compaction rewrites are charged to spill_bytes_written"
        );
        assert!(compacted.len() <= MERGE_FACTOR);
        assert!(compacted.len() >= 2, "150 runs batch into several");
        let mut streams = Vec::new();
        for r in &compacted {
            streams.push(RunStream::File(RunFileReader::open(&r.path).unwrap()));
        }
        let merged: Vec<(Value, Value)> = KWayMerge::new(streams)
            .unwrap()
            .map(|p| p.unwrap())
            .collect();
        assert_eq!(merged, concat);
        // Sources were deleted; only the intermediate runs remain.
        let files = std::fs::read_dir(dir.path()).unwrap().count();
        assert_eq!(files, compacted.len());
    }

    fn collect_lt(m: LoserTree) -> Vec<(i64, Value)> {
        m.map(|p| p.unwrap())
            .map(|(k, v)| (k.as_int().unwrap(), v))
            .collect()
    }

    // The loser-tree suite mirrors the heap tests above: same inputs,
    // same expectations — the two merge engines are interchangeable.

    #[test]
    fn loser_tree_merges_three_streams_in_order() {
        let m = LoserTree::new(vec![
            mem(vec![(1, "a"), (4, "d"), (7, "g")]),
            mem(vec![(2, "b"), (5, "e")]),
            mem(vec![(3, "c"), (6, "f"), (8, "h"), (9, "i")]),
        ])
        .unwrap();
        assert_eq!(m.width(), 3);
        let out = collect_lt(m);
        let keys: Vec<i64> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn loser_tree_key_ties_break_by_run_index() {
        let m = LoserTree::new(vec![
            mem(vec![(1, "run0-a"), (1, "run0-b")]),
            mem(vec![(1, "run1-a")]),
            mem(vec![(0, "run2"), (1, "run2-a")]),
        ])
        .unwrap();
        let out = collect_lt(m);
        assert_eq!(
            out,
            vec![
                (0, Value::str("run2")),
                (1, Value::str("run0-a")),
                (1, Value::str("run0-b")),
                (1, Value::str("run1-a")),
                (1, Value::str("run2-a")),
            ]
        );
    }

    #[test]
    fn loser_tree_empty_and_exhausted_streams_ok() {
        let m = LoserTree::new(vec![mem(vec![]), mem(vec![(1, "x")]), mem(vec![])]).unwrap();
        assert_eq!(collect_lt(m), vec![(1, Value::str("x"))]);
        let m = LoserTree::new(vec![]).unwrap();
        assert_eq!(collect_lt(m), vec![]);
        let m = LoserTree::new(vec![mem(vec![(2, "only")])]).unwrap();
        assert_eq!(collect_lt(m), vec![(2, Value::str("only"))]);
    }

    #[test]
    fn loser_tree_shared_stream_is_replayable() {
        let tail: Arc<Vec<(Value, Value)>> = Arc::new(
            vec![(1i64, "a"), (3, "c")]
                .into_iter()
                .map(|(k, v)| (Value::Int(k), Value::str(v)))
                .collect(),
        );
        for _ in 0..2 {
            let m = LoserTree::new(vec![
                RunStream::shared(Arc::clone(&tail)),
                mem(vec![(2, "b")]),
            ])
            .unwrap();
            let keys: Vec<i64> = m.map(|p| p.unwrap().0.as_int().unwrap()).collect();
            assert_eq!(keys, vec![1, 2, 3]);
        }
    }

    /// The executable-spec check at every width that exercises a
    /// distinct tree shape near powers of two: loser tree ≡ heap on
    /// file-backed runs with heavy key overlap.
    #[test]
    fn loser_tree_matches_heap_at_every_width() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 17] {
            let dir = crate::spill::SpillDir::create(None, &format!("lt-width-{n}")).unwrap();
            let (runs, expect) = overlapping_runs(dir.path(), n);
            let open = |runs: &[SpillRun]| -> Vec<RunStream> {
                runs.iter()
                    .map(|r| RunStream::File(RunFileReader::open(&r.path).unwrap()))
                    .collect()
            };
            let tree: Vec<(Value, Value)> = LoserTree::new(open(&runs))
                .unwrap()
                .map(|p| p.unwrap())
                .collect();
            let heap: Vec<(Value, Value)> = KWayMerge::new(open(&runs))
                .unwrap()
                .map(|p| p.unwrap())
                .collect();
            assert_eq!(tree, heap, "width {n}");
            assert_eq!(tree, expect, "width {n} vs stable sort");
        }
    }

    #[test]
    fn file_stream_roundtrip() {
        let dir = std::env::temp_dir().join("mr-merge-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("run-{}", std::process::id()));
        let mut w = mr_storage::runfile::RunFileWriter::create(&path).unwrap();
        for i in [0i64, 2, 4] {
            w.append(&Value::Int(i), &Value::Null).unwrap();
        }
        w.finish().unwrap();
        let m = KWayMerge::new(vec![
            RunStream::File(RunFileReader::open(&path).unwrap()),
            mem(vec![(1, "x"), (3, "y")]),
        ])
        .unwrap();
        let keys: Vec<i64> = m.map(|p| p.unwrap().0.as_int().unwrap()).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }
}
