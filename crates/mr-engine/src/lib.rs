//! # mr-engine — the execution fabric
//!
//! A deterministic, multi-threaded, single-process MapReduce runtime:
//! input splits → map worker pool → hash partition → per-partition sort
//! → reduce workers → output. "The execution fabric retains the standard
//! map-shuffle-reduce sequence and is almost identical to standard
//! MapReduce" (paper §2); the Manimal-specific parts are the pluggable
//! [`input`] formats (B+Tree ranges, projected, delta- and
//! dictionary-compressed files).
//!
//! Map functions are compiled MR-IR run through the interpreter (one
//! [`mapper::IrMapper`] per task, so member variables have the real Java
//! `Mapper`-object lifetime); reducers are native Rust shared by every
//! plan, baseline and optimized alike.
//!
//! The shuffle runs in one of two modes. By default every emitted pair
//! stays resident and each partition is sorted in memory. With
//! [`JobConfig::shuffle_buffer_bytes`](job::JobConfig::shuffle_buffer_bytes)
//! set, the shuffle is *external*: overfull buckets spill sorted runs
//! to disk ([`spill`]) and reduce streams a k-way merge over them
//! ([`merge`]) — same output, memory bounded by the budget. Spill-run
//! I/O can additionally be block-compressed
//! ([`JobConfig::shuffle_compression`](job::JobConfig::shuffle_compression),
//! re-exported [`ShuffleCompression`]) — same output again, with
//! spill-disk traffic cut whenever the shuffle is redundant.
//!
//! Orthogonally, [`JobConfig::combiner`](job::JobConfig::combiner)
//! plugs a map-side combiner into every stage of that pipeline
//! ([`combine`]): emitted pairs fold at the staging flush, at spill
//! time, and in the merge grouping loop — same output again, with the
//! shuffle traffic of an algebraic aggregate collapsed near the key
//! cardinality.
//!
//! Tasks are retryable units
//! ([`JobConfig::max_task_attempts`](job::JobConfig::max_task_attempts)):
//! a failed map/reduce task is transparently re-executed with
//! idempotent side effects (attempt-scoped spill paths, commit on
//! success — see [`runner`]), and the whole machinery is driven
//! deterministically in tests by a seedable [`fault::FaultPlan`].
//!
//! Execution is pluggable behind [`backend::ExecBackend`]: the
//! scoped-thread runner above is the reference [`LocalBackend`], and
//! [`ProcessBackend`] drives the same job over forked worker processes
//! and a Unix-socket task protocol — surviving whole-worker `SIGKILL`
//! and racing speculative attempts, with byte-identical output
//! (selected per job via [`job::BackendSpec`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocstats;
pub mod backend;
pub mod combine;
pub mod counters;
pub mod dictctx;
pub mod error;
pub mod fault;
pub mod input;
pub mod job;
pub mod join;
pub mod mapper;
pub mod merge;
pub mod partition;
pub mod pool;
pub mod reducer;
pub mod runner;
pub mod spill;
pub mod spillwriter;

pub use backend::{maybe_worker_entry, worker_main, ExecBackend, LocalBackend, ProcessBackend};
pub use combine::{CombineStrategy, Combiner};
pub use counters::{CounterSnapshot, Counters};
pub use dictctx::DictContext;
pub use error::{EngineError, Result};
pub use fault::{FaultPlan, TaskFault};
pub use input::{InputSpec, SplitReader};
pub use job::{BackendSpec, InputBinding, JobConfig, OutputSpec, ProcessCfg};
pub use join::{BroadcastSpec, JoinSide};
pub use mapper::{FnMapperFactory, IrMapperFactory, Mapper, MapperFactory};
pub use merge::{KWayMerge, LoserTree, RunStream};
pub use mr_storage::blockcodec::ShuffleCompression;
pub use pool::{BufferPool, PoolStats};
pub use reducer::{
    Builtin, FnReducerFactory, IrReducer, IrReducerFactory, Reducer, ReducerFactory,
};
pub use runner::{run_job, JobResult, PhaseTimings};
pub use spill::{AttemptDir, ShuffleBucket, SpillDir, SpillRun};
pub use spillwriter::{SpillWriter, SpillWriterCfg};
