//! Reduce tasks and the builtin reducer library.
//!
//! The paper analyzes only `map()` ("we plan to examine reduce() in
//! future work", §3.2), so the builtin reducers are native Rust — the
//! same reducers run under the baseline plan and every optimized plan,
//! which is what makes output-equivalence checks between plans
//! meaningful. [`IrReducer`] goes one step further: a user-submitted IR
//! `reduce(key, values)` run through the interpreter, which is what
//! gives the `mr-analysis` combine pass something to prove things
//! about (see [`crate::combine`]).

use std::sync::Arc;

use mr_ir::function::Function;
use mr_ir::interp::Interpreter;
use mr_ir::value::Value;

use crate::error::{EngineError, Result};

/// A reduce task instance: called once per key group.
pub trait Reducer: Send {
    /// Reduce one `(key, values)` group into zero or more output pairs.
    fn reduce(
        &mut self,
        key: &Value,
        values: &[Value],
        out: &mut Vec<(Value, Value)>,
    ) -> Result<()>;
}

/// Creates per-task reducer instances.
pub trait ReducerFactory: Send + Sync {
    /// New reducer.
    fn create(&self) -> Box<dyn Reducer>;

    /// The map-side combiner this reducer declares for itself, when it
    /// is an associative, commutative aggregate (see
    /// [`crate::combine`]). The default is `None` — combining never
    /// engages for a reducer that has not declared (or been proven) an
    /// algebraic decomposition.
    fn combiner(&self) -> Option<std::sync::Arc<dyn crate::combine::Combiner>> {
        None
    }

    /// The builtin reducer behind this factory, when there is one. The
    /// process backend ships builtin reducers to worker processes by
    /// name; the default is `None`.
    fn as_builtin(&self) -> Option<Builtin> {
        None
    }

    /// The compiled IR reduce function behind this factory, when there
    /// is one. The process backend ships IR reducers to worker
    /// processes as IR assembly; factories that return `None` here and
    /// from [`ReducerFactory::as_builtin`] (native closures) are not
    /// wire-serializable and are rejected with a config error.
    fn ir_function(&self) -> Option<&Function> {
        None
    }
}

/// The builtin reducers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// Sum numeric values per key.
    Sum,
    /// Count values per key.
    Count,
    /// Maximum value per key.
    Max,
    /// Minimum value per key.
    Min,
    /// Pass every value through unchanged.
    Identity,
    /// Emit only the first value of each group.
    First,
    /// Sum numeric values per key but drop the key from the output
    /// (the paper's Table 6 program: "groups these sums by destURL, but
    /// does not in the end emit the URL").
    SumDropKey,
    /// Repartition-join reducer: each value is a tagged union
    /// `[tag, payload]` (tag `0` = build side, `1` = probe side — see
    /// [`crate::join`]); the group is partitioned by tag with arrival
    /// order preserved and the build×probe cross product is emitted as
    /// `(key, [build_payload, probe_payload])`. Declares no combiner —
    /// folding tagged values would corrupt them, and dispatch rejects
    /// any combiner configured alongside it
    /// ([`EngineError::CombinerRejected`]).
    JoinTagged,
}

impl Builtin {
    /// Every builtin reducer, in declaration order.
    pub const ALL: [Builtin; 8] = [
        Builtin::Sum,
        Builtin::Count,
        Builtin::Max,
        Builtin::Min,
        Builtin::Identity,
        Builtin::First,
        Builtin::SumDropKey,
        Builtin::JoinTagged,
    ];

    /// Stable wire name of this builtin (round-trips through
    /// [`Builtin::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Sum => "sum",
            Builtin::Count => "count",
            Builtin::Max => "max",
            Builtin::Min => "min",
            Builtin::Identity => "identity",
            Builtin::First => "first",
            Builtin::SumDropKey => "sum-drop-key",
            Builtin::JoinTagged => "join-tagged",
        }
    }

    /// Look a builtin up by its wire name.
    pub fn parse(name: &str) -> Option<Builtin> {
        Builtin::ALL.into_iter().find(|b| b.name() == name)
    }
}

impl Reducer for Builtin {
    fn reduce(
        &mut self,
        key: &Value,
        values: &[Value],
        out: &mut Vec<(Value, Value)>,
    ) -> Result<()> {
        match self {
            Builtin::Sum => {
                let mut int_sum: i64 = 0;
                let mut float_sum: f64 = 0.0;
                let mut any_float = false;
                for v in values {
                    match v {
                        Value::Int(i) => int_sum = int_sum.wrapping_add(*i),
                        Value::Double(d) => {
                            any_float = true;
                            float_sum += d;
                        }
                        other => {
                            return Err(EngineError::Reduce(format!(
                                "Sum: non-numeric value {other} for key {key}"
                            )))
                        }
                    }
                }
                let total = if any_float {
                    Value::Double(float_sum + int_sum as f64)
                } else {
                    Value::Int(int_sum)
                };
                out.push((key.clone(), total));
            }
            Builtin::Count => {
                out.push((key.clone(), Value::Int(values.len() as i64)));
            }
            Builtin::Max => {
                if let Some(m) = values.iter().max() {
                    out.push((key.clone(), m.clone()));
                }
            }
            Builtin::Min => {
                if let Some(m) = values.iter().min() {
                    out.push((key.clone(), m.clone()));
                }
            }
            Builtin::Identity => {
                for v in values {
                    out.push((key.clone(), v.clone()));
                }
            }
            Builtin::First => {
                if let Some(v) = values.first() {
                    out.push((key.clone(), v.clone()));
                }
            }
            Builtin::SumDropKey => {
                let mut sum: i64 = 0;
                for v in values {
                    match v.as_int() {
                        Some(i) => sum = sum.wrapping_add(i),
                        None => {
                            return Err(EngineError::Reduce(format!(
                                "SumDropKey: non-integer value {v}"
                            )))
                        }
                    }
                }
                out.push((Value::Null, Value::Int(sum)));
            }
            Builtin::JoinTagged => {
                crate::join::reduce_tagged_group(key, values, out)?;
            }
        }
        Ok(())
    }
}

impl ReducerFactory for Builtin {
    fn create(&self) -> Box<dyn Reducer> {
        Box::new(*self)
    }

    fn combiner(&self) -> Option<std::sync::Arc<dyn crate::combine::Combiner>> {
        Builtin::combiner(self)
    }

    fn as_builtin(&self) -> Option<Builtin> {
        Some(*self)
    }
}

/// Runs a compiled MR-IR `reduce(key, values)` through the interpreter:
/// the group's values are passed as the `values` list parameter and the
/// function's emits become the group's output pairs. Per-task member
/// state gets the same Java `Reducer`-object lifetime as [`IrMapper`].
///
/// [`IrMapper`]: crate::mapper::IrMapper
pub struct IrReducer {
    func: Arc<Function>,
    interp: Interpreter,
}

impl IrReducer {
    /// Build a reducer instance for one task.
    pub fn new(func: Arc<Function>) -> IrReducer {
        let interp = Interpreter::new(&func);
        IrReducer { func, interp }
    }
}

impl Reducer for IrReducer {
    fn reduce(
        &mut self,
        key: &Value,
        values: &[Value],
        out: &mut Vec<(Value, Value)>,
    ) -> Result<()> {
        let list = Value::list(values.to_vec());
        let output = self
            .interp
            .invoke_map(&self.func, key, &list)
            .map_err(|e| EngineError::Reduce(e.to_string()))?;
        out.extend(output.emits);
        Ok(())
    }
}

/// Factory for [`IrReducer`]s, optionally carrying a map-side combiner
/// a caller has *proven* safe for the function (the engine trusts the
/// proof — `manimal`'s `ir_reducer` runs the `mr-analysis` combine pass
/// to produce it).
pub struct IrReducerFactory {
    /// The compiled reduce function.
    pub func: Arc<Function>,
    combiner: Option<Arc<dyn crate::combine::Combiner>>,
}

impl IrReducerFactory {
    /// Wrap a compiled reduce function with no combiner.
    pub fn new(func: Function) -> Arc<IrReducerFactory> {
        IrReducerFactory::with_combiner(func, None)
    }

    /// Wrap a compiled reduce function together with the combiner
    /// proven equivalent to it.
    pub fn with_combiner(
        func: Function,
        combiner: Option<Arc<dyn crate::combine::Combiner>>,
    ) -> Arc<IrReducerFactory> {
        Arc::new(IrReducerFactory {
            func: Arc::new(func),
            combiner,
        })
    }
}

impl ReducerFactory for IrReducerFactory {
    fn create(&self) -> Box<dyn Reducer> {
        Box::new(IrReducer::new(Arc::clone(&self.func)))
    }

    fn combiner(&self) -> Option<Arc<dyn crate::combine::Combiner>> {
        self.combiner.clone()
    }

    fn ir_function(&self) -> Option<&Function> {
        Some(&self.func)
    }
}

/// A native closure reducer.
pub struct FnReducer<F>(pub F);

impl<F> Reducer for FnReducer<F>
where
    F: FnMut(&Value, &[Value], &mut Vec<(Value, Value)>) -> Result<()> + Send,
{
    fn reduce(
        &mut self,
        key: &Value,
        values: &[Value],
        out: &mut Vec<(Value, Value)>,
    ) -> Result<()> {
        (self.0)(key, values, out)
    }
}

/// Factory wrapping a cloneable closure reducer.
pub struct FnReducerFactory<F>(pub F);

impl<F> ReducerFactory for FnReducerFactory<F>
where
    F: Fn(&Value, &[Value], &mut Vec<(Value, Value)>) -> Result<()> + Send + Sync + Clone + 'static,
{
    fn create(&self) -> Box<dyn Reducer> {
        Box::new(FnReducer(self.0.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(b: Builtin, key: Value, values: Vec<Value>) -> Vec<(Value, Value)> {
        let mut out = Vec::new();
        b.create().reduce(&key, &values, &mut out).unwrap();
        out
    }

    #[test]
    fn sum_ints_and_floats() {
        let out = run(
            Builtin::Sum,
            Value::str("k"),
            vec![1.into(), 2.into(), 3.into()],
        );
        assert_eq!(out, vec![(Value::str("k"), Value::Int(6))]);
        let out = run(
            Builtin::Sum,
            Value::str("k"),
            vec![Value::Int(1), Value::Double(0.5)],
        );
        assert_eq!(out, vec![(Value::str("k"), Value::Double(1.5))]);
    }

    #[test]
    fn sum_rejects_strings() {
        let mut out = Vec::new();
        let err = Builtin::Sum
            .create()
            .reduce(&Value::str("k"), &[Value::str("x")], &mut out)
            .unwrap_err();
        assert!(matches!(err, EngineError::Reduce(_)));
    }

    #[test]
    fn count_max_min_first_identity() {
        let vals: Vec<Value> = vec![5.into(), 1.into(), 3.into()];
        assert_eq!(
            run(Builtin::Count, Value::Int(0), vals.clone())[0].1,
            Value::Int(3)
        );
        assert_eq!(
            run(Builtin::Max, Value::Int(0), vals.clone())[0].1,
            Value::Int(5)
        );
        assert_eq!(
            run(Builtin::Min, Value::Int(0), vals.clone())[0].1,
            Value::Int(1)
        );
        assert_eq!(
            run(Builtin::First, Value::Int(0), vals.clone())[0].1,
            Value::Int(5)
        );
        assert_eq!(run(Builtin::Identity, Value::Int(0), vals).len(), 3);
    }

    #[test]
    fn sum_drop_key_hides_key() {
        let out = run(
            Builtin::SumDropKey,
            Value::str("http://compressed-or-not"),
            vec![3.into(), 4.into()],
        );
        assert_eq!(out, vec![(Value::Null, Value::Int(7))]);
    }

    #[test]
    fn ir_reducer_runs_reduce_function_per_group() {
        let f = mr_ir::asm::parse_function(
            r#"
            func reduce(key, values) {
              r0 = param value
              r1 = call list.len(r0)
              r2 = param key
              emit r2, r1
              ret
            }
            "#,
        )
        .unwrap();
        let factory = IrReducerFactory::new(f);
        assert!(factory.combiner().is_none(), "no combiner unless proven");
        let mut r = factory.create();
        let mut out = Vec::new();
        r.reduce(
            &Value::str("k"),
            &[Value::Int(9), Value::Int(9), Value::Int(9)],
            &mut out,
        )
        .unwrap();
        assert_eq!(out, vec![(Value::str("k"), Value::Int(3))]);
    }

    #[test]
    fn ir_reducer_factory_carries_proven_combiner() {
        let f = mr_ir::asm::parse_function("func reduce(key, values) {\n  ret\n}\n").unwrap();
        let factory = IrReducerFactory::with_combiner(f, Builtin::Sum.combiner());
        assert_eq!(factory.combiner().unwrap().name(), "sum");
    }

    #[test]
    fn empty_groups_are_quiet() {
        assert!(run(Builtin::Max, Value::Int(0), vec![]).is_empty());
        assert!(run(Builtin::First, Value::Int(0), vec![]).is_empty());
        assert_eq!(
            run(Builtin::Count, Value::Int(0), vec![])[0].1,
            Value::Int(0)
        );
    }
}
