//! Input formats: how the execution fabric turns a physical layout into
//! `(key, value)` pairs for map tasks.
//!
//! The execution descriptor chooses one of these per input (paper §2.2
//! Step 3). `SeqFile` is what "standard Hadoop" uses; the others are the
//! Manimal-optimized paths — including the B+Tree range format, "the
//! modifications to support B+Tree-indexed input formats".

use std::path::PathBuf;
use std::sync::Arc;

use mr_ir::schema::Schema;
use mr_ir::value::Value;
use mr_storage::btree::{BTreeIndex, BTreeScanner, ScanBound};
use mr_storage::delta::{DeltaFileMeta, DeltaFileReader};
use mr_storage::dict::DictFileReader;
use mr_storage::fault::IoFaults;
use mr_storage::seqfile::{SeqFileMeta, SeqFileReader};

use crate::error::{EngineError, Result};

/// Which physical layout to read, and how.
#[derive(Debug, Clone)]
pub enum InputSpec {
    /// Plain sequence file, split across map tasks. Keys are record
    /// positions (what Hadoop's byte offsets stand for).
    SeqFile {
        /// The file path.
        path: PathBuf,
    },
    /// B+Tree index range scan: only records whose index key falls in
    /// one of the ranges are read. Keys are the index keys.
    BTreeRanges {
        /// The index path.
        path: PathBuf,
        /// Ranges to scan (disjoint, sorted).
        ranges: Vec<(ScanBound, ScanBound)>,
    },
    /// Projected file, widened back to the declared schema.
    Projected {
        /// The projected file path.
        path: PathBuf,
        /// The wide schema the map function declares.
        source_schema: Arc<Schema>,
    },
    /// Delta-compressed file (sequential; single split). When the file
    /// was also projected, `widen_to` carries the declared wide schema
    /// so map sees its full parameter type (dropped fields read as
    /// defaults the analyzer proved unobserved).
    Delta {
        /// The file path.
        path: PathBuf,
        /// Widen records back to this schema, if projected.
        widen_to: Option<Arc<Schema>>,
    },
    /// Dictionary-compressed file (sequential; map sees integer codes
    /// in place of compressed strings).
    Dict {
        /// The file path.
        path: PathBuf,
    },
}

impl InputSpec {
    /// Open the input as a set of independent split readers; `hint` is
    /// the desired parallelism.
    pub fn open(&self, hint: usize) -> Result<Vec<SplitReader>> {
        self.open_with_faults(hint, None)
    }

    /// [`open`](Self::open) with an IO fault injector threaded into
    /// the sequence-file readers (`SeqFile` and `Projected`; the
    /// other formats have no injection hooks). Split boundaries depend
    /// only on `hint`, so re-opening the same input with the same hint
    /// — how a retried map task re-reads its split — always yields the
    /// same splits.
    pub fn open_with_faults(
        &self,
        hint: usize,
        io: Option<&Arc<IoFaults>>,
    ) -> Result<Vec<SplitReader>> {
        match self {
            InputSpec::SeqFile { path } => {
                let meta = SeqFileMeta::open(path)?;
                let splits = meta.splits(hint.max(1));
                let mut out = Vec::with_capacity(splits.len());
                let mut first_record = 0u64;
                for sp in splits {
                    let records = sp.records;
                    out.push(SplitReader::Seq {
                        reader: meta.read_split_with_faults(&sp, io.cloned())?,
                        next_key: first_record,
                    });
                    first_record += records;
                }
                Ok(out)
            }
            InputSpec::BTreeRanges { path, ranges } => {
                let idx = BTreeIndex::open(path)?;
                let mut out = Vec::with_capacity(ranges.len());
                for (low, high) in ranges {
                    out.push(SplitReader::BTree {
                        scanner: idx.scan(low.clone(), high.clone())?,
                    });
                }
                Ok(out)
            }
            InputSpec::Projected {
                path,
                source_schema,
            } => {
                let meta = SeqFileMeta::open(path)?;
                let splits = meta.splits(hint.max(1));
                let mut out = Vec::with_capacity(splits.len());
                let mut first_record = 0u64;
                for sp in splits {
                    let records = sp.records;
                    out.push(SplitReader::Widened {
                        reader: meta.read_split_with_faults(&sp, io.cloned())?,
                        next_key: first_record,
                        target: Arc::clone(source_schema),
                    });
                    first_record += records;
                }
                Ok(out)
            }
            InputSpec::Delta { path, widen_to } => {
                let meta = DeltaFileMeta::open(path)?;
                let mut out = Vec::new();
                for (off, before, records) in meta.splits(hint.max(1)) {
                    out.push(SplitReader::Delta {
                        reader: meta.read_split(off, records)?,
                        next_key: before,
                        widen_to: widen_to.clone(),
                    });
                }
                Ok(out)
            }
            InputSpec::Dict { path } => {
                let whole = DictFileReader::open(path)?;
                let mut out = Vec::new();
                for (off, records) in whole.splits(hint.max(1)) {
                    let mut before = 0;
                    for &(boff, bbefore) in &whole.blocks {
                        if boff == off {
                            before = bbefore;
                            break;
                        }
                    }
                    out.push(SplitReader::Dict {
                        reader: whole.read_split(off, records)?,
                        next_key: before,
                    });
                }
                Ok(out)
            }
        }
    }

    /// The schema map tasks will observe from this input.
    pub fn observed_schema(&self) -> Result<Arc<Schema>> {
        match self {
            InputSpec::SeqFile { path } => Ok(Arc::clone(&SeqFileMeta::open(path)?.schema)),
            InputSpec::BTreeRanges { path, .. } => Ok(Arc::clone(BTreeIndex::open(path)?.schema())),
            InputSpec::Projected { source_schema, .. } => Ok(Arc::clone(source_schema)),
            InputSpec::Delta { path, widen_to } => match widen_to {
                Some(s) => Ok(Arc::clone(s)),
                None => Ok(Arc::clone(DeltaFileReader::open(path)?.schema())),
            },
            InputSpec::Dict { path } => Ok(Arc::clone(DictFileReader::open(path)?.schema())),
        }
    }
}

/// One split's record stream.
pub enum SplitReader {
    /// Sequence-file split.
    Seq {
        /// Underlying reader.
        reader: SeqFileReader,
        /// Next synthetic record key.
        next_key: u64,
    },
    /// B+Tree range scan.
    BTree {
        /// Underlying scanner.
        scanner: BTreeScanner,
    },
    /// Projected file widened to the declared schema.
    Widened {
        /// Underlying reader.
        reader: SeqFileReader,
        /// Next synthetic record key.
        next_key: u64,
        /// Wide schema.
        target: Arc<Schema>,
    },
    /// Delta-compressed stream.
    Delta {
        /// Underlying reader.
        reader: DeltaFileReader,
        /// Next synthetic record key.
        next_key: u64,
        /// Widen records back to this schema, if projected.
        widen_to: Option<Arc<Schema>>,
    },
    /// Dictionary-compressed stream.
    Dict {
        /// Underlying reader.
        reader: DictFileReader,
        /// Next synthetic record key.
        next_key: u64,
    },
}

impl SplitReader {
    /// Bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        match self {
            SplitReader::Seq { reader, .. } => reader.bytes_read(),
            SplitReader::BTree { scanner } => scanner.bytes_read(),
            SplitReader::Widened { reader, .. } => reader.bytes_read(),
            SplitReader::Delta { reader, .. } => reader.bytes_read(),
            SplitReader::Dict { reader, .. } => reader.bytes_read(),
        }
    }
}

impl Iterator for SplitReader {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            SplitReader::Seq { reader, next_key } => {
                let rec = reader.next()?;
                let key = *next_key;
                *next_key += 1;
                Some(
                    rec.map(|r| (Value::Int(key as i64), Value::from(r)))
                        .map_err(EngineError::from),
                )
            }
            SplitReader::BTree { scanner } => {
                let entry = scanner.next()?;
                Some(
                    entry
                        .map(|(k, r)| (k, Value::from(r)))
                        .map_err(EngineError::from),
                )
            }
            SplitReader::Widened {
                reader,
                next_key,
                target,
            } => {
                let rec = reader.next()?;
                let key = *next_key;
                *next_key += 1;
                Some(
                    rec.map(|r| {
                        (
                            Value::Int(key as i64),
                            Value::from(r.project_to(Arc::clone(target))),
                        )
                    })
                    .map_err(EngineError::from),
                )
            }
            SplitReader::Delta {
                reader,
                next_key,
                widen_to,
            } => {
                let rec = reader.next()?;
                let key = *next_key;
                *next_key += 1;
                Some(
                    rec.map(|r| {
                        let r = match widen_to {
                            Some(s) => r.project_to(Arc::clone(s)),
                            None => r,
                        };
                        (Value::Int(key as i64), Value::from(r))
                    })
                    .map_err(EngineError::from),
                )
            }
            SplitReader::Dict { reader, next_key } => {
                let rec = reader.next()?;
                let key = *next_key;
                *next_key += 1;
                Some(
                    rec.map(|r| (Value::Int(key as i64), Value::from(r)))
                        .map_err(EngineError::from),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::record::record;
    use mr_ir::schema::FieldType;
    use mr_storage::btree::BTreeWriter;
    use mr_storage::seqfile::write_seqfile;

    fn schema() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![("url", FieldType::Str), ("rank", FieldType::Int)],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-engine-input-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn seqfile_input_covers_all_records() {
        let s = schema();
        let path = tmp("seq");
        let records: Vec<_> = (0..500)
            .map(|i| record(&s, vec![format!("u{i}").into(), Value::Int(i)]))
            .collect();
        write_seqfile(&path, Arc::clone(&s), records).unwrap();
        let spec = InputSpec::SeqFile { path };
        let readers = spec.open(4).unwrap();
        let mut ranks: Vec<i64> = Vec::new();
        for rd in readers {
            for item in rd {
                let (_, v) = item.unwrap();
                ranks.push(
                    v.as_record()
                        .unwrap()
                        .get("rank")
                        .unwrap()
                        .as_int()
                        .unwrap(),
                );
            }
        }
        ranks.sort_unstable();
        assert_eq!(ranks, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn btree_input_reads_only_ranges() {
        let s = schema();
        let path = tmp("btree");
        let mut w = BTreeWriter::with_page_size(&path, Arc::clone(&s), 4096).unwrap();
        for i in 0..1000 {
            let r = record(&s, vec![format!("u{i}").into(), Value::Int(i)]);
            w.append(&Value::Int(i), &Value::Int(i), &r).unwrap();
        }
        w.finish().unwrap();
        let spec = InputSpec::BTreeRanges {
            path,
            ranges: vec![
                (
                    ScanBound::Incl(Value::Int(10)),
                    ScanBound::Excl(Value::Int(15)),
                ),
                (ScanBound::Incl(Value::Int(990)), ScanBound::Unbounded),
            ],
        };
        let readers = spec.open(4).unwrap();
        assert_eq!(readers.len(), 2, "one split per range");
        let mut keys: Vec<i64> = Vec::new();
        for rd in readers {
            for item in rd {
                keys.push(item.unwrap().0.as_int().unwrap());
            }
        }
        keys.sort_unstable();
        let expected: Vec<i64> = (10..15).chain(990..1000).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn observed_schema_per_format() {
        let s = schema();
        let seq_path = tmp("schema-seq");
        write_seqfile(&seq_path, Arc::clone(&s), vec![]).unwrap();
        let spec = InputSpec::SeqFile { path: seq_path };
        assert_eq!(spec.observed_schema().unwrap().name(), "WebPage");
    }
}
