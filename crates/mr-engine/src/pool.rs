//! The shuffle buffer pool: reusable pair buffers and run-file scratch.
//!
//! The external shuffle used to pay an allocation tax on its hottest
//! path: every staging flush left fresh empty `Vec`s behind, every
//! spilled run built new frame/block scratch, and every attempt started
//! from nothing. This pool closes that loop — map-staging pair buffers
//! and [`RunScratch`] writer scratch are *loaned* out, used, and
//! returned with their capacity intact, so steady-state spilling
//! allocates nothing new (the `bench-alloc` feature makes that an
//! asserted invariant, not a vibe).
//!
//! The protocol is strict and leak-tested: every
//! [`get_pairs`](BufferPool::get_pairs)/[`get_scratch`](BufferPool::get_scratch)
//! must be matched by exactly one
//! [`put_pairs`](BufferPool::put_pairs)/[`put_scratch`](BufferPool::put_scratch),
//! on every path — commit, spill, *and* task-attempt failure
//! ([`outstanding`](BufferPool::outstanding) is 0 after a job ends,
//! fault schedules included). A pool can be shared across jobs
//! ([`JobConfig::buffer_pool`](crate::job::JobConfig::buffer_pool)) so
//! warm buffers survive from one job to the next.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use mr_ir::value::Value;
use mr_storage::runfile::RunScratch;
use parking_lot::Mutex as PlMutex;

/// How many idle buffers of each kind a default pool retains. Sized
/// for the worst steady-state demand: every map worker can have one
/// staging buffer per partition plus one buffer in flight to the spill
/// writer.
pub const DEFAULT_POOL_BUFFERS: usize = 256;

/// A point-in-time view of pool traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Loans served from an idle buffer (no allocation).
    pub hits: u64,
    /// Loans that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers currently loaned out and not yet returned. 0 when the
    /// protocol is intact and no job is mid-flight.
    pub outstanding: i64,
}

/// A bounded free-list of pair buffers and run-writer scratch.
#[derive(Debug)]
pub struct BufferPool {
    pairs: PlMutex<Vec<Vec<(Value, Value)>>>,
    scratch: PlMutex<Vec<RunScratch>>,
    /// Idle buffers retained per kind; 0 disables reuse (every loan
    /// allocates, every return drops) while keeping the leak
    /// accounting live.
    max_idle: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    outstanding: AtomicI64,
}

impl BufferPool {
    /// A pool retaining up to [`DEFAULT_POOL_BUFFERS`] idle buffers per
    /// kind.
    pub fn new() -> Arc<BufferPool> {
        BufferPool::with_capacity(DEFAULT_POOL_BUFFERS)
    }

    /// A pool retaining up to `max_idle` idle buffers per kind.
    pub fn with_capacity(max_idle: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            pairs: PlMutex::new(Vec::new()),
            scratch: PlMutex::new(Vec::new()),
            max_idle,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            outstanding: AtomicI64::new(0),
        })
    }

    /// A pool that never reuses anything: every loan allocates fresh
    /// and every return is dropped. The A/B control for the hot-path
    /// bench (`scale_hotpath` runs it as the "tax" configuration) and
    /// the synthetic regression the CI bench gate must catch.
    pub fn disabled() -> Arc<BufferPool> {
        BufferPool::with_capacity(0)
    }

    /// Borrow an empty pair buffer (capacity reused when available).
    pub fn get_pairs(&self) -> Vec<(Value, Value)> {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        match self.pairs.lock().pop() {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Return a pair buffer. The contents are dropped here (outside
    /// any bucket lock); the spine keeps its capacity for the next
    /// loan.
    pub fn put_pairs(&self, mut buf: Vec<(Value, Value)>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        buf.clear();
        if buf.capacity() > 0 {
            let mut idle = self.pairs.lock();
            if idle.len() < self.max_idle {
                idle.push(buf);
            }
        }
    }

    /// Borrow run-writer scratch.
    pub fn get_scratch(&self) -> RunScratch {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        match self.scratch.lock().pop() {
            Some(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                s
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                RunScratch::new()
            }
        }
    }

    /// Return run-writer scratch.
    pub fn put_scratch(&self, s: RunScratch) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut idle = self.scratch.lock();
        if idle.len() < self.max_idle {
            idle.push(s);
        }
    }

    /// Buffers currently loaned out. The leak invariant: 0 whenever no
    /// job is mid-flight, on success *and* failure paths alike.
    pub fn outstanding(&self) -> i64 {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Traffic snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            outstanding: self.outstanding.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loans_balance_and_capacity_survives() {
        let pool = BufferPool::new();
        let mut buf = pool.get_pairs();
        assert_eq!(pool.outstanding(), 1);
        buf.push((Value::Int(1), Value::Null));
        buf.reserve(100);
        let cap = buf.capacity();
        pool.put_pairs(buf);
        assert_eq!(pool.outstanding(), 0);
        let back = pool.get_pairs();
        assert!(back.is_empty(), "returned buffers come back cleared");
        assert!(back.capacity() >= cap, "capacity is what the pool keeps");
        pool.put_pairs(back);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn disabled_pool_tracks_but_never_reuses() {
        let pool = BufferPool::disabled();
        let mut buf = pool.get_pairs();
        buf.reserve(64);
        pool.put_pairs(buf);
        let again = pool.get_pairs();
        assert_eq!(again.capacity(), 0, "disabled pools always allocate");
        pool.put_pairs(again);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn scratch_roundtrip() {
        let pool = BufferPool::with_capacity(2);
        let s = pool.get_scratch();
        pool.put_scratch(s);
        let s = pool.get_scratch();
        assert_eq!(pool.outstanding(), 1);
        pool.put_scratch(s);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn idle_cap_bounds_retention() {
        let pool = BufferPool::with_capacity(1);
        let (a, b) = (pool.get_pairs(), pool.get_pairs());
        let mut a = a;
        a.reserve(8);
        let mut b = b;
        b.reserve(8);
        pool.put_pairs(a);
        pool.put_pairs(b); // over the idle cap: dropped
        assert_eq!(pool.outstanding(), 0);
        let x = pool.get_pairs();
        let y = pool.get_pairs();
        assert!(x.capacity() > 0, "one buffer was retained");
        assert_eq!(y.capacity(), 0, "the second was dropped at the cap");
        pool.put_pairs(x);
        pool.put_pairs(y);
    }
}
