//! Payload codecs for the task protocol: how a [`JobConfig`] and the
//! task/result messages travel between the coordinator and its worker
//! processes.
//!
//! Payloads are compact JSON ([`mr_json`]) with two conventions on top:
//!
//! * `u64` quantities (counters, byte totals) are **decimal strings**,
//!   never JSON numbers — exactness must not depend on a reader's
//!   number representation.
//! * Binary leaves — [`Value`]s and [`Schema`]s — ride as lowercase hex
//!   of their rowcodec encoding (docs/FORMATS.md), so the wire reuses
//!   the storage layer's one canonical byte format instead of
//!   inventing a JSON mapping for typed values.
//!
//! Code travels as text: mappers and IR reducers are shipped as MR-IR
//! assembly and re-parsed in the worker; builtin reducers and combiners
//! go by name. A job built from native `Fn` factories has no such
//! representation and is rejected with a [`EngineError::Config`] before
//! any worker is forked.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_ir::asm::parse_function;
use mr_ir::printer::to_asm;
use mr_ir::schema::Schema;
use mr_ir::value::Value;
use mr_json::Json;
use mr_storage::blockcodec::ShuffleCompression;
use mr_storage::{rowcodec, ScanBound, StorageError};

use crate::combine::{combiner_by_name, Combiner};
use crate::counters::CounterSnapshot;
use crate::error::{EngineError, Result};
use crate::fault::FaultPlan;
use crate::input::InputSpec;
use crate::job::{InputBinding, JobConfig};
use crate::join::{BroadcastSpec, JoinSide};
use crate::mapper::IrMapperFactory;
use crate::reducer::{Builtin, IrReducerFactory, ReducerFactory};

fn bad(detail: impl Into<String>) -> EngineError {
    EngineError::Storage(StorageError::corrupt("task-protocol payload", detail))
}

// ---- scalar helpers ----------------------------------------------------

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(bad("odd-length hex string"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| bad("non-hex digit")))
        .collect()
}

fn value_hex(v: &Value) -> Result<String> {
    let mut buf = Vec::new();
    rowcodec::encode_value(v, &mut buf).map_err(EngineError::Storage)?;
    Ok(hex_encode(&buf))
}

fn value_from_hex(s: &str) -> Result<Value> {
    let buf = hex_decode(s)?;
    let (v, _) = rowcodec::decode_value(&buf).map_err(EngineError::Storage)?;
    Ok(v)
}

fn schema_hex(schema: &Schema) -> String {
    let mut buf = Vec::new();
    rowcodec::encode_schema(schema, &mut buf);
    hex_encode(&buf)
}

fn schema_from_hex(s: &str) -> Result<Arc<Schema>> {
    let buf = hex_decode(s)?;
    let (schema, _) = rowcodec::decode_schema(&buf).map_err(EngineError::Storage)?;
    Ok(schema.into_arc())
}

fn u64_json(v: u64) -> Json {
    Json::str(v.to_string())
}

fn usize_json(v: usize) -> Json {
    Json::Int(v as i64)
}

fn path_json(p: &Path) -> Result<Json> {
    p.to_str()
        .map(Json::str)
        .ok_or_else(|| EngineError::Config(format!("non-UTF-8 path {p:?} cannot travel")))
}

fn u64_field(j: &Json, key: &str) -> Result<u64> {
    j.get(key)
        .and_then(Json::as_str)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("missing or non-decimal u64 field `{key}`")))
}

fn usize_field(j: &Json, key: &str) -> Result<usize> {
    j.get(key)
        .and_then(Json::as_i64)
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| bad(format!("missing or negative field `{key}`")))
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing string field `{key}`")))
}

fn path_field(j: &Json, key: &str) -> Result<PathBuf> {
    Ok(PathBuf::from(str_field(j, key)?))
}

fn parse_payload(payload: &[u8]) -> Result<Json> {
    let text = std::str::from_utf8(payload).map_err(|_| bad("payload is not UTF-8"))?;
    mr_json::parse(text).map_err(|e| bad(format!("payload is not JSON: {e}")))
}

// ---- counters ----------------------------------------------------------

macro_rules! counter_fields {
    ($m:ident) => {
        $m!(
            map_input_records,
            map_invocations,
            map_output_records,
            input_bytes,
            shuffle_bytes,
            spill_count,
            spilled_records,
            spill_bytes_raw,
            spill_bytes_written,
            dict_trained,
            dict_reused,
            combine_in,
            combine_out,
            reduce_input_groups,
            reduce_output_records,
            instructions_executed,
            side_effects,
            map_task_failures,
            reduce_task_failures,
            task_retries,
            speculative_tasks,
            workers_killed,
            alloc_count,
            alloc_bytes
        )
    };
}

fn snapshot_json(s: &CounterSnapshot) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    macro_rules! put {
        ($($f:ident),*) => {
            $( fields.push((stringify!($f).into(), u64_json(s.$f))); )*
        };
    }
    counter_fields!(put);
    Json::Obj(fields)
}

fn snapshot_from_json(j: &Json) -> Result<CounterSnapshot> {
    let mut s = CounterSnapshot::default();
    macro_rules! get {
        ($($f:ident),*) => {
            $( s.$f = u64_field(j, stringify!($f))?; )*
        };
    }
    counter_fields!(get);
    Ok(s)
}

// ---- inputs ------------------------------------------------------------

fn bound_json(b: &ScanBound) -> Result<Json> {
    Ok(match b {
        ScanBound::Unbounded => Json::obj([("t", Json::str("u"))]),
        ScanBound::Incl(v) => Json::obj([("t", Json::str("i")), ("v", Json::str(value_hex(v)?))]),
        ScanBound::Excl(v) => Json::obj([("t", Json::str("e")), ("v", Json::str(value_hex(v)?))]),
    })
}

fn bound_from_json(j: &Json) -> Result<ScanBound> {
    match str_field(j, "t")? {
        "u" => Ok(ScanBound::Unbounded),
        "i" => Ok(ScanBound::Incl(value_from_hex(str_field(j, "v")?)?)),
        "e" => Ok(ScanBound::Excl(value_from_hex(str_field(j, "v")?)?)),
        other => Err(bad(format!("unknown scan bound tag `{other}`"))),
    }
}

fn input_json(spec: &InputSpec) -> Result<Json> {
    Ok(match spec {
        InputSpec::SeqFile { path } => {
            Json::obj([("kind", Json::str("seq")), ("path", path_json(path)?)])
        }
        InputSpec::BTreeRanges { path, ranges } => {
            let mut arr = Vec::with_capacity(ranges.len());
            for (lo, hi) in ranges {
                arr.push(Json::Arr(vec![bound_json(lo)?, bound_json(hi)?]));
            }
            Json::obj([
                ("kind", Json::str("btree")),
                ("path", path_json(path)?),
                ("ranges", Json::Arr(arr)),
            ])
        }
        InputSpec::Projected {
            path,
            source_schema,
        } => Json::obj([
            ("kind", Json::str("proj")),
            ("path", path_json(path)?),
            ("schema", Json::str(schema_hex(source_schema))),
        ]),
        InputSpec::Delta { path, widen_to } => Json::obj([
            ("kind", Json::str("delta")),
            ("path", path_json(path)?),
            (
                "widen",
                match widen_to {
                    Some(s) => Json::str(schema_hex(s)),
                    None => Json::Null,
                },
            ),
        ]),
        InputSpec::Dict { path } => {
            Json::obj([("kind", Json::str("dict")), ("path", path_json(path)?)])
        }
    })
}

fn input_from_json(j: &Json) -> Result<InputSpec> {
    let path = path_field(j, "path")?;
    match str_field(j, "kind")? {
        "seq" => Ok(InputSpec::SeqFile { path }),
        "btree" => {
            let mut ranges = Vec::new();
            for r in j
                .get("ranges")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("btree input without ranges"))?
            {
                let pair = r
                    .as_arr()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| bad("scan range is not a two-element array"))?;
                ranges.push((bound_from_json(&pair[0])?, bound_from_json(&pair[1])?));
            }
            Ok(InputSpec::BTreeRanges { path, ranges })
        }
        "proj" => Ok(InputSpec::Projected {
            path,
            source_schema: schema_from_hex(str_field(j, "schema")?)?,
        }),
        "delta" => Ok(InputSpec::Delta {
            path,
            widen_to: match j.get("widen") {
                Some(Json::Null) | None => None,
                Some(w) => Some(schema_from_hex(
                    w.as_str()
                        .ok_or_else(|| bad("delta widen schema is not a string"))?,
                )?),
            },
        }),
        "dict" => Ok(InputSpec::Dict { path }),
        other => Err(bad(format!("unknown input kind `{other}`"))),
    }
}

// ---- the job -----------------------------------------------------------

/// A [`JobConfig`] as a worker process sees it: the wire-travelling
/// subset (inputs, code, knobs that shape task execution) plus the
/// shared job directory everything commits into. Output routing,
/// backend choice, and pool wiring stay coordinator-side.
pub(crate) struct WireJob {
    /// Shared job spill directory (attempt dirs and committed runs).
    pub job_dir: PathBuf,
    /// Reduce partition count (pre-clamped, ≥ 1).
    pub num_reducers: usize,
    /// Split hint — must match the coordinator's task planning so both
    /// sides see identical split boundaries.
    pub map_parallelism: usize,
    /// Shuffle budget; workers derive their staging cap from it.
    pub shuffle_buffer_bytes: Option<usize>,
    /// Spill-run codec.
    pub compression: ShuffleCompression,
    /// Persistent trained-dictionary store for the dict-trained codec
    /// ([`JobConfig::dict_store`]), if any.
    pub dict_store: Option<PathBuf>,
    /// Map-side combiner (by-name builtin), if any.
    pub combiner: Option<Arc<dyn Combiner>>,
    /// Record-level fault schedule (the worker consults map/reduce
    /// record faults only; process-level kill/slow sites are the
    /// coordinator's job, and io-site faults do not run in workers).
    pub fault: Option<FaultPlan>,
    /// The reduce function.
    pub reducer: Arc<dyn ReducerFactory>,
    /// Inputs with their (IR) mappers.
    pub inputs: Vec<InputBinding>,
    /// Straggler injection: sleep this long before every task this
    /// worker runs (0 = no delay).
    pub slow_ms: u64,
}

/// Serialize the wire-travelling subset of `job` for one worker.
/// Fails with [`EngineError::Config`] when the job contains native
/// closures (mapper or reducer without an IR/builtin representation)
/// or a combiner outside the builtin library.
pub(crate) fn encode_job(job: &JobConfig, job_dir: &Path, slow_ms: u64) -> Result<Vec<u8>> {
    let reducer = if let Some(b) = job.reducer.as_builtin() {
        Json::obj([("builtin", Json::str(b.name()))])
    } else if let Some(f) = job.reducer.ir_function() {
        Json::obj([("ir", Json::str(to_asm(f)))])
    } else {
        return Err(EngineError::Config(
            "process backend requires a wire-serializable reducer \
             (builtin or IR); a native closure factory cannot travel"
                .into(),
        ));
    };
    let combiner = match &job.combiner {
        None => Json::Null,
        Some(c) => {
            let name = c.name();
            if combiner_by_name(name).is_none() {
                return Err(EngineError::Config(format!(
                    "process backend cannot ship combiner `{name}`: \
                     not in the builtin combiner library"
                )));
            }
            Json::str(name)
        }
    };
    let mut inputs = Vec::with_capacity(job.inputs.len());
    for (i, binding) in job.inputs.iter().enumerate() {
        let Some(func) = binding.mapper.ir_function() else {
            return Err(EngineError::Config(format!(
                "process backend requires IR mappers; input {i} has a \
                 native closure mapper that cannot travel"
            )));
        };
        // Join roles travel as markers; a broadcast role ships its
        // build input plus build-mapper IR, and the worker re-loads the
        // table locally (build rows never cross the socket).
        let join = match &binding.join {
            None => Json::Null,
            Some(JoinSide::Build) => Json::str("build"),
            Some(JoinSide::Probe) => Json::str("probe"),
            Some(JoinSide::Broadcast(spec)) => Json::obj([
                ("input", input_json(&spec.input)?),
                ("mapper", Json::str(to_asm(&spec.mapper))),
            ]),
        };
        inputs.push(Json::obj([
            ("mapper", Json::str(to_asm(func))),
            ("input", input_json(&binding.input)?),
            ("join", join),
        ]));
    }
    let obj = Json::obj([
        ("job_dir", path_json(job_dir)?),
        ("num_reducers", usize_json(job.num_reducers.max(1))),
        ("map_parallelism", usize_json(job.map_parallelism.max(1))),
        (
            "shuffle_buffer_bytes",
            match job.shuffle_buffer_bytes {
                Some(b) => usize_json(b),
                None => Json::Null,
            },
        ),
        ("compression", Json::str(job.shuffle_compression.name())),
        (
            "dict_store",
            match &job.dict_store {
                Some(p) => path_json(p)?,
                None => Json::Null,
            },
        ),
        ("combiner", combiner),
        (
            "fault",
            match &job.fault_plan {
                Some(p) => Json::str(p.to_string()),
                None => Json::Null,
            },
        ),
        ("reducer", reducer),
        ("inputs", Json::Arr(inputs)),
        ("slow_ms", u64_json(slow_ms)),
    ]);
    Ok(obj.to_string_compact().into_bytes())
}

/// Decode a job payload in a worker process.
pub(crate) fn decode_job(payload: &[u8]) -> Result<WireJob> {
    let j = parse_payload(payload)?;
    let reducer_json = j.get("reducer").ok_or_else(|| bad("missing reducer"))?;
    let reducer: Arc<dyn ReducerFactory> = if let Some(name) =
        reducer_json.get("builtin").and_then(Json::as_str)
    {
        Arc::new(
            Builtin::parse(name).ok_or_else(|| bad(format!("unknown builtin reducer `{name}`")))?,
        )
    } else if let Some(asm) = reducer_json.get("ir").and_then(Json::as_str) {
        IrReducerFactory::new(
            parse_function(asm).map_err(|e| bad(format!("reduce IR does not parse: {e}")))?,
        )
    } else {
        return Err(bad("reducer is neither builtin nor IR"));
    };
    let combiner = match j.get("combiner") {
        Some(Json::Null) | None => None,
        Some(c) => {
            let name = c.as_str().ok_or_else(|| bad("combiner is not a string"))?;
            Some(combiner_by_name(name).ok_or_else(|| bad(format!("unknown combiner `{name}`")))?)
        }
    };
    let fault = match j.get("fault") {
        Some(Json::Null) | None => None,
        Some(f) => {
            let spec = f
                .as_str()
                .ok_or_else(|| bad("fault spec is not a string"))?;
            Some(FaultPlan::from_spec(spec).map_err(|e| bad(format!("bad fault spec: {e}")))?)
        }
    };
    let mut inputs = Vec::new();
    for b in j
        .get("inputs")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing inputs"))?
    {
        let asm = str_field(b, "mapper")?;
        let func = parse_function(asm).map_err(|e| bad(format!("map IR does not parse: {e}")))?;
        let join = match b.get("join") {
            Some(Json::Null) | None => None,
            Some(role) => Some(match role.as_str() {
                Some("build") => JoinSide::Build,
                Some("probe") => JoinSide::Probe,
                Some(other) => return Err(bad(format!("unknown join role `{other}`"))),
                None => {
                    let asm = str_field(role, "mapper")?;
                    let func = parse_function(asm)
                        .map_err(|e| bad(format!("broadcast build IR does not parse: {e}")))?;
                    JoinSide::Broadcast(BroadcastSpec {
                        input: input_from_json(
                            role.get("input")
                                .ok_or_else(|| bad("broadcast join without input"))?,
                        )?,
                        mapper: Arc::new(func),
                    })
                }
            }),
        };
        inputs.push(InputBinding {
            input: input_from_json(b.get("input").ok_or_else(|| bad("binding without input"))?)?,
            mapper: IrMapperFactory::new(func),
            join,
        });
    }
    Ok(WireJob {
        job_dir: path_field(&j, "job_dir")?,
        num_reducers: usize_field(&j, "num_reducers")?.max(1),
        map_parallelism: usize_field(&j, "map_parallelism")?.max(1),
        shuffle_buffer_bytes: match j.get("shuffle_buffer_bytes") {
            Some(Json::Null) | None => None,
            Some(_) => Some(usize_field(&j, "shuffle_buffer_bytes")?),
        },
        compression: {
            let name = str_field(&j, "compression")?;
            ShuffleCompression::parse(name)
                .ok_or_else(|| bad(format!("unknown shuffle codec `{name}`")))?
        },
        dict_store: match j.get("dict_store") {
            Some(Json::Null) | None => None,
            Some(_) => Some(path_field(&j, "dict_store")?),
        },
        combiner,
        fault,
        reducer,
        inputs,
        slow_ms: u64_field(&j, "slow_ms")?,
    })
}

// ---- task and result messages ------------------------------------------

/// Coordinator → worker: run one map attempt.
pub(crate) struct MapAssign {
    /// Global map task id (fault-plan coordinate).
    pub task: usize,
    /// Index into [`WireJob::inputs`].
    pub binding: usize,
    /// Split index within the binding.
    pub split: usize,
    /// Attempt number (monotonic per task across retries and
    /// speculative duplicates — attempt directories never collide).
    pub attempt: usize,
}

impl MapAssign {
    pub(crate) fn encode(&self) -> Vec<u8> {
        Json::obj([
            ("task", usize_json(self.task)),
            ("binding", usize_json(self.binding)),
            ("split", usize_json(self.split)),
            ("attempt", usize_json(self.attempt)),
        ])
        .to_string_compact()
        .into_bytes()
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<MapAssign> {
        let j = parse_payload(payload)?;
        Ok(MapAssign {
            task: usize_field(&j, "task")?,
            binding: usize_field(&j, "binding")?,
            split: usize_field(&j, "split")?,
            attempt: usize_field(&j, "attempt")?,
        })
    }
}

/// Coordinator → worker: run one reduce attempt over the named
/// committed runs (paths inside the shared job directory).
pub(crate) struct ReduceAssign {
    /// Reduce partition.
    pub partition: usize,
    /// Attempt number.
    pub attempt: usize,
    /// Committed run files for this partition, in sequence order.
    pub runs: Vec<PathBuf>,
}

impl ReduceAssign {
    pub(crate) fn encode(&self) -> Result<Vec<u8>> {
        let mut runs = Vec::with_capacity(self.runs.len());
        for r in &self.runs {
            runs.push(path_json(r)?);
        }
        Ok(Json::obj([
            ("partition", usize_json(self.partition)),
            ("attempt", usize_json(self.attempt)),
            ("runs", Json::Arr(runs)),
        ])
        .to_string_compact()
        .into_bytes())
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<ReduceAssign> {
        let j = parse_payload(payload)?;
        let runs = j
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing runs"))?
            .iter()
            .map(|r| {
                r.as_str()
                    .map(PathBuf::from)
                    .ok_or_else(|| bad("run path is not a string"))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ReduceAssign {
            partition: usize_field(&j, "partition")?,
            attempt: usize_field(&j, "attempt")?,
            runs,
        })
    }
}

/// One uncommitted spill run a map attempt produced (still inside the
/// attempt directory; the coordinator renames it on commit).
pub(crate) struct WireRun {
    /// Reduce partition the run belongs to.
    pub partition: usize,
    /// Path inside the attempt directory.
    pub path: PathBuf,
    /// Pairs in the run.
    pub pairs: u64,
    /// Record-layer bytes before the codec.
    pub raw_bytes: u64,
    /// File size in bytes.
    pub bytes: u64,
}

/// Worker → coordinator: a map attempt finished.
pub(crate) struct MapDone {
    /// Task id (echoed).
    pub task: usize,
    /// Attempt number (echoed).
    pub attempt: usize,
    /// Runs awaiting commit, one entry per (partition, spill).
    pub runs: Vec<WireRun>,
    /// The attempt's counters, absorbed on commit only.
    pub counters: CounterSnapshot,
    /// Time this attempt spent sorting/writing shuffle runs.
    pub shuffle_nanos: u64,
}

impl MapDone {
    pub(crate) fn encode(&self) -> Result<Vec<u8>> {
        let mut runs = Vec::with_capacity(self.runs.len());
        for r in &self.runs {
            runs.push(Json::obj([
                ("partition", usize_json(r.partition)),
                ("path", path_json(&r.path)?),
                ("pairs", u64_json(r.pairs)),
                ("raw_bytes", u64_json(r.raw_bytes)),
                ("bytes", u64_json(r.bytes)),
            ]));
        }
        Ok(Json::obj([
            ("task", usize_json(self.task)),
            ("attempt", usize_json(self.attempt)),
            ("runs", Json::Arr(runs)),
            ("counters", snapshot_json(&self.counters)),
            ("shuffle_nanos", u64_json(self.shuffle_nanos)),
        ])
        .to_string_compact()
        .into_bytes())
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<MapDone> {
        let j = parse_payload(payload)?;
        let mut runs = Vec::new();
        for r in j
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing runs"))?
        {
            runs.push(WireRun {
                partition: usize_field(r, "partition")?,
                path: path_field(r, "path")?,
                pairs: u64_field(r, "pairs")?,
                raw_bytes: u64_field(r, "raw_bytes")?,
                bytes: u64_field(r, "bytes")?,
            });
        }
        Ok(MapDone {
            task: usize_field(&j, "task")?,
            attempt: usize_field(&j, "attempt")?,
            runs,
            counters: snapshot_from_json(
                j.get("counters").ok_or_else(|| bad("missing counters"))?,
            )?,
            shuffle_nanos: u64_field(&j, "shuffle_nanos")?,
        })
    }
}

/// Worker → coordinator: a reduce attempt finished; its output pairs
/// sit in a run file inside the attempt directory awaiting commit.
pub(crate) struct ReduceDone {
    /// Partition (echoed).
    pub partition: usize,
    /// Attempt number (echoed).
    pub attempt: usize,
    /// Output run file inside the attempt directory.
    pub out: PathBuf,
    /// Key groups reduced.
    pub groups: u64,
    /// Output pairs written.
    pub written: u64,
    /// The attempt's counters.
    pub counters: CounterSnapshot,
    /// Time spent in shuffle-attributed work (merge reads).
    pub shuffle_nanos: u64,
}

impl ReduceDone {
    pub(crate) fn encode(&self) -> Result<Vec<u8>> {
        Ok(Json::obj([
            ("partition", usize_json(self.partition)),
            ("attempt", usize_json(self.attempt)),
            ("out", path_json(&self.out)?),
            ("groups", u64_json(self.groups)),
            ("written", u64_json(self.written)),
            ("counters", snapshot_json(&self.counters)),
            ("shuffle_nanos", u64_json(self.shuffle_nanos)),
        ])
        .to_string_compact()
        .into_bytes())
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<ReduceDone> {
        let j = parse_payload(payload)?;
        Ok(ReduceDone {
            partition: usize_field(&j, "partition")?,
            attempt: usize_field(&j, "attempt")?,
            out: path_field(&j, "out")?,
            groups: u64_field(&j, "groups")?,
            written: u64_field(&j, "written")?,
            counters: snapshot_from_json(
                j.get("counters").ok_or_else(|| bad("missing counters"))?,
            )?,
            shuffle_nanos: u64_field(&j, "shuffle_nanos")?,
        })
    }
}

/// Worker → coordinator: a task attempt failed.
pub(crate) struct TaskErr {
    /// `"map"` or `"reduce"`.
    pub kind: String,
    /// Task id / partition.
    pub task: usize,
    /// Attempt number.
    pub attempt: usize,
    /// Whether the failure was an injected [`EngineError::Injected`]
    /// fault (drills assert on this).
    pub injected: bool,
    /// The error, stringified.
    pub msg: String,
}

impl TaskErr {
    pub(crate) fn encode(&self) -> Vec<u8> {
        Json::obj([
            ("kind", Json::str(&self.kind)),
            ("task", usize_json(self.task)),
            ("attempt", usize_json(self.attempt)),
            ("injected", Json::Bool(self.injected)),
            ("msg", Json::str(&self.msg)),
        ])
        .to_string_compact()
        .into_bytes()
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<TaskErr> {
        let j = parse_payload(payload)?;
        Ok(TaskErr {
            kind: str_field(&j, "kind")?.to_string(),
            task: usize_field(&j, "task")?,
            attempt: usize_field(&j, "attempt")?,
            injected: j
                .get("injected")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad("missing injected flag"))?,
            msg: str_field(&j, "msg")?.to_string(),
        })
    }
}

/// Encode a worker hello (the worker id in decimal).
pub(crate) fn encode_hello(worker: usize) -> Vec<u8> {
    worker.to_string().into_bytes()
}

/// Decode a worker hello.
pub(crate) fn decode_hello(payload: &[u8]) -> Result<usize> {
    std::str::from_utf8(payload)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("hello payload is not a worker id"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobConfig, OutputSpec};
    use crate::mapper::FnMapperFactory;

    fn ir_mapper() -> Arc<IrMapperFactory> {
        IrMapperFactory::new(
            parse_function(
                r#"
                func map(key, value) {
                  r0 = param value
                  emit r0, r0
                  ret
                }
                "#,
            )
            .unwrap(),
        )
    }

    fn wire_job() -> JobConfig {
        JobConfig {
            name: "wire-test".into(),
            inputs: vec![
                InputBinding {
                    input: InputSpec::SeqFile {
                        path: "/tmp/a.seq".into(),
                    },
                    mapper: ir_mapper(),
                    join: None,
                },
                InputBinding {
                    input: InputSpec::BTreeRanges {
                        path: "/tmp/a.idx".into(),
                        ranges: vec![(
                            ScanBound::Incl(Value::Int(3)),
                            ScanBound::Excl(Value::str("zz")),
                        )],
                    },
                    mapper: ir_mapper(),
                    join: None,
                },
            ],
            num_reducers: 3,
            reducer: Arc::new(Builtin::Sum),
            output: OutputSpec::InMemory,
            map_parallelism: 2,
            sort_output: true,
            shuffle_buffer_bytes: Some(4096),
            shuffle_compression: ShuffleCompression::Dict,
            spill_dir: None,
            dict_store: Some("/tmp/dict-store".into()),
            combiner: Builtin::Sum.combiner(),
            max_task_attempts: 2,
            fault_plan: Some(Arc::new(
                FaultPlan::new().fail_map(0, 0, 5).slow_worker(1, 20),
            )),
            spill_writer_threads: 1,
            buffer_pool: None,
            backend: Default::default(),
        }
    }

    #[test]
    fn job_round_trips() {
        let job = wire_job();
        let payload = encode_job(&job, Path::new("/tmp/jobdir"), 7).unwrap();
        let wire = decode_job(&payload).unwrap();
        assert_eq!(wire.job_dir, PathBuf::from("/tmp/jobdir"));
        assert_eq!(wire.num_reducers, 3);
        assert_eq!(wire.map_parallelism, 2);
        assert_eq!(wire.shuffle_buffer_bytes, Some(4096));
        assert_eq!(wire.compression, ShuffleCompression::Dict);
        assert_eq!(wire.dict_store, Some(PathBuf::from("/tmp/dict-store")));
        assert_eq!(wire.combiner.as_deref().map(Combiner::name), Some("sum"));
        assert_eq!(wire.slow_ms, 7);
        assert_eq!(wire.inputs.len(), 2);
        let fault = wire.fault.unwrap();
        assert_eq!(fault.map_fault(0, 0), Some(5));
        assert_eq!(fault.worker_slow(1), Some(20));
        assert!(wire.reducer.as_builtin() == Some(Builtin::Sum));
        match &wire.inputs[1].input {
            InputSpec::BTreeRanges { ranges, .. } => {
                assert_eq!(
                    ranges,
                    &[(
                        ScanBound::Incl(Value::Int(3)),
                        ScanBound::Excl(Value::str("zz")),
                    )]
                );
            }
            other => panic!("wrong input decoded: {other:?}"),
        }
    }

    #[test]
    fn join_roles_round_trip() {
        let mut job = wire_job();
        job.combiner = None;
        job.reducer = Arc::new(Builtin::JoinTagged);
        job.inputs[0].join = Some(JoinSide::Build);
        job.inputs[1].join = Some(JoinSide::Probe);
        let wire = decode_job(&encode_job(&job, Path::new("/tmp/d"), 0).unwrap()).unwrap();
        assert!(matches!(wire.inputs[0].join, Some(JoinSide::Build)));
        assert!(matches!(wire.inputs[1].join, Some(JoinSide::Probe)));
        assert_eq!(wire.reducer.as_builtin(), Some(Builtin::JoinTagged));

        let mut job = wire_job();
        job.combiner = None;
        job.inputs.truncate(1);
        job.inputs[0].join = Some(JoinSide::Broadcast(BroadcastSpec {
            input: InputSpec::SeqFile {
                path: "/tmp/build.seq".into(),
            },
            mapper: Arc::new(
                parse_function(
                    "func map(key, value) {\n  r0 = param value\n  emit r0, r0\n  ret\n}\n",
                )
                .unwrap(),
            ),
        }));
        let wire = decode_job(&encode_job(&job, Path::new("/tmp/d"), 0).unwrap()).unwrap();
        match &wire.inputs[0].join {
            Some(JoinSide::Broadcast(spec)) => {
                assert!(matches!(
                    &spec.input,
                    InputSpec::SeqFile { path } if path == Path::new("/tmp/build.seq")
                ));
                assert_eq!(spec.mapper.name, "map");
            }
            other => panic!("broadcast role lost in transit: {other:?}"),
        }
    }

    #[test]
    fn native_closures_are_rejected_with_config_errors() {
        let mut job = wire_job();
        job.inputs[0].mapper = Arc::new(FnMapperFactory(
            |_: &Value, _: &Value, _: &mut Vec<(Value, Value)>| {},
        ));
        let err = encode_job(&job, Path::new("/tmp/d"), 0).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");

        let mut job = wire_job();
        job.reducer = Arc::new(crate::reducer::FnReducerFactory(
            |_: &Value, _: &[Value], _: &mut Vec<(Value, Value)>| Ok(()),
        ));
        let err = encode_job(&job, Path::new("/tmp/d"), 0).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn ir_reducer_travels_as_asm() {
        let mut job = wire_job();
        job.reducer = IrReducerFactory::new(
            parse_function(
                r#"
                func reduce(key, values) {
                  r0 = param value
                  r1 = call list.len(r0)
                  r2 = param key
                  emit r2, r1
                  ret
                }
                "#,
            )
            .unwrap(),
        );
        let payload = encode_job(&job, Path::new("/tmp/d"), 0).unwrap();
        let wire = decode_job(&payload).unwrap();
        assert!(wire.reducer.as_builtin().is_none());
        assert!(wire.reducer.ir_function().is_some());
    }

    #[test]
    fn messages_round_trip() {
        let done = MapDone {
            task: 4,
            attempt: 1,
            runs: vec![WireRun {
                partition: 2,
                path: "/tmp/j/attempt-map-00004-001/run-00002-000000".into(),
                pairs: 100,
                raw_bytes: 2048,
                bytes: 512,
            }],
            counters: CounterSnapshot {
                map_input_records: u64::MAX,
                spill_count: 1,
                ..Default::default()
            },
            shuffle_nanos: 12345,
        };
        let d = MapDone::decode(&done.encode().unwrap()).unwrap();
        assert_eq!(d.task, 4);
        assert_eq!(d.runs[0].partition, 2);
        assert_eq!(d.counters.map_input_records, u64::MAX, "u64 exactness");
        assert_eq!(d.counters.spill_count, 1);

        let assign = ReduceAssign {
            partition: 1,
            attempt: 0,
            runs: vec!["/tmp/j/run-00001-000000".into()],
        };
        let a = ReduceAssign::decode(&assign.encode().unwrap()).unwrap();
        assert_eq!(a.runs.len(), 1);

        let err = TaskErr {
            kind: "map".into(),
            task: 3,
            attempt: 2,
            injected: true,
            msg: "injected fault: map task 3".into(),
        };
        let e = TaskErr::decode(&err.encode()).unwrap();
        assert!(e.injected);
        assert_eq!(e.kind, "map");

        assert_eq!(decode_hello(&encode_hello(17)).unwrap(), 17);
    }
}
