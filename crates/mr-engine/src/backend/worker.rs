//! The worker process half of the process backend.
//!
//! A worker is a single-threaded task executor: connect to the
//! coordinator's control socket, say hello, receive the serialized job,
//! then loop running whatever task attempts the coordinator sends.
//! Every attempt's side effects stay inside an [`AttemptDir`] under the
//! shared job directory until the coordinator answers the result frame:
//! `COMMIT_ACK` means the run files were already renamed out (drop the
//! now-empty directory), `DISCARD` means the attempt lost a speculative
//! race (drop the directory with everything in it). A worker that is
//! SIGKILLed mid-attempt cannot run this cleanup — the coordinator
//! removes the dead attempt's directory itself.
//!
//! Deliberate deviations from the in-process runner, chosen so output
//! stays byte-identical while the plumbing is simpler:
//!
//! * **All map output spills.** There is no cross-process resident
//!   tail, so after the final fold every staged partition is written as
//!   a sorted run (the spill counters therefore report total shuffle
//!   disk traffic, which is higher than the local backend's for the
//!   same job).
//! * **No io-site faults.** `io:` fault sites are operation-counted
//!   per process and would fire nondeterministically across workers;
//!   record-level `map:`/`reduce:` faults keep their exact semantics.
//! * **Synchronous spill writes.** `spill_writer_threads` shapes the
//!   local backend's background writer only; workers write runs inline.
//! * **Reduce reads runs read-only.** Committed runs are shared by
//!   speculative attempts, so the destructive merge compaction does not
//!   run; every reduce attempt streams the runs as-is.

use std::io::{BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Instant;

use mr_ir::value::Value;

use mr_storage::blockcodec::ShuffleCompression;

use crate::combine::{pair_bytes, CombineStrategy};
use crate::counters::Counters;
use crate::dictctx::DictContext;
use crate::error::{EngineError, Result};
use crate::merge::{LoserTree, RunStream};
use crate::partition::partition;
use crate::pool::BufferPool;
use crate::runner::{reduce_groups, FaultGate, Staging, StreamPairs};
use crate::spill::{write_sorted_run, AttemptDir, SpillRun};

use super::protocol::*;
use super::wire::{
    decode_job, encode_hello, MapAssign, MapDone, ReduceAssign, ReduceDone, TaskErr, WireJob,
    WireRun,
};

/// Run the worker loop: connect to `socket`, identify as `worker_id`,
/// and execute task attempts until the coordinator says shutdown (or
/// hangs up). This is what the hidden `__mr-worker` entrypoint and the
/// `mr_worker` test binary call; it never returns into normal program
/// flow on success — callers exit the process with its status.
pub fn worker_main(socket: &str, worker_id: usize) -> Result<()> {
    let stream = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, TAG_HELLO, &encode_hello(worker_id))?;

    let mut job = match read_frame(&mut reader)? {
        Some((TAG_JOB, payload)) => decode_job(&payload)?,
        Some((tag, _)) => {
            return Err(EngineError::Config(format!(
                "worker expected job frame, got tag {tag}"
            )))
        }
        None => return Ok(()), // coordinator gave up before sending the job
    };
    // Join roles wrap each binding's decoded mapper here, once per
    // worker process: broadcast build tables load a single time and are
    // shared by every task attempt this worker runs.
    let effective = crate::join::effective_factories(&job.inputs)?;
    for (binding, mapper) in job.inputs.iter_mut().zip(effective) {
        binding.mapper = mapper;
    }
    let combine = CombineStrategy::new(job.combiner.clone());
    let pool = BufferPool::new();
    // The dict-trained codec's dictionary authority. Committing into
    // the *shared* job directory (hard-link, first trainer wins) keeps
    // concurrent workers and speculative attempts on one dictionary.
    let dict = (job.compression == ShuffleCompression::DictTrained)
        .then(|| DictContext::new(&job.job_dir, job.dict_store.clone()));

    loop {
        let (tag, payload) = match read_frame(&mut reader)? {
            Some(frame) => frame,
            None => return Ok(()), // coordinator hung up: nothing left to do
        };
        match tag {
            TAG_SHUTDOWN => return Ok(()),
            TAG_MAP_TASK => {
                let assign = MapAssign::decode(&payload)?;
                straggle(&job);
                match run_map_attempt(&job, &combine, &pool, dict.as_ref(), &assign) {
                    Ok((done, dir)) => {
                        write_frame(&mut writer, TAG_MAP_DONE, &done.encode()?)?;
                        await_verdict(&mut reader, dir)?;
                    }
                    Err(e) => report_failure(&mut writer, "map", assign.task, assign.attempt, e)?,
                }
            }
            TAG_REDUCE_TASK => {
                let assign = ReduceAssign::decode(&payload)?;
                straggle(&job);
                match run_reduce_attempt(&job, &combine, &assign) {
                    Ok((done, dir)) => {
                        write_frame(&mut writer, TAG_REDUCE_DONE, &done.encode()?)?;
                        await_verdict(&mut reader, dir)?;
                    }
                    Err(e) => {
                        report_failure(&mut writer, "reduce", assign.partition, assign.attempt, e)?
                    }
                }
            }
            other => {
                return Err(EngineError::Config(format!(
                    "worker got unexpected frame tag {other}"
                )))
            }
        }
    }
}

/// Injected straggling: sleep before every task when the fault plan
/// marked this worker slow (the coordinator folds the per-worker delay
/// into the job frame, so the worker need not know its own id here).
fn straggle(job: &WireJob) {
    if job.slow_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(job.slow_ms));
    }
}

/// Wait for the coordinator's verdict on a submitted attempt. On
/// `COMMIT_ACK` the run files were renamed out already; on `DISCARD`
/// (or a shutdown/hangup racing the verdict) they are still inside the
/// attempt dir. Either way dropping the [`AttemptDir`] removes exactly
/// what is left — this RAII drop is the loser-cleanup half of the
/// speculative-execution protocol.
fn await_verdict(reader: &mut impl std::io::Read, dir: AttemptDir) -> Result<()> {
    let verdict = read_frame(reader)?;
    drop(dir);
    match verdict {
        Some((TAG_COMMIT_ACK, _)) | Some((TAG_DISCARD, _)) | Some((TAG_SHUTDOWN, _)) | None => {
            Ok(())
        }
        Some((tag, _)) => Err(EngineError::Config(format!(
            "worker expected commit verdict, got tag {tag}"
        ))),
    }
}

/// Send a task failure upstream; the attempt dir (if any) has already
/// been dropped by the failing attempt's scope.
fn report_failure(
    writer: &mut impl std::io::Write,
    kind: &str,
    task: usize,
    attempt: usize,
    e: EngineError,
) -> Result<()> {
    let err = TaskErr {
        kind: kind.into(),
        task,
        attempt,
        injected: matches!(e, EngineError::Injected(_)),
        msg: e.to_string(),
    };
    write_frame(writer, TAG_TASK_ERR, &err.encode())
}

/// One map attempt: read the split, map, stage (folding at the combine
/// sites exactly like the local runner), and spill *everything* as
/// sorted runs into a fresh attempt directory. Side effects stay in
/// the returned [`AttemptDir`]; counters stay in the returned snapshot
/// until the coordinator commits them.
fn run_map_attempt(
    job: &WireJob,
    combine: &CombineStrategy,
    pool: &Arc<BufferPool>,
    dict: Option<&DictContext>,
    assign: &MapAssign,
) -> Result<(MapDone, AttemptDir)> {
    let acc = Counters::new();
    let dir = AttemptDir::create(&job.job_dir, "map", assign.task, assign.attempt)?;
    let mut staging = Staging::new(job.num_reducers, pool);
    let mut seqs = vec![0usize; job.num_reducers];
    let mut runs: Vec<(usize, SpillRun)> = Vec::new();
    let mut shuffle_nanos = 0u64;

    let body = map_attempt_loop(
        job,
        combine,
        pool,
        dict,
        assign,
        &acc,
        &dir,
        &mut staging,
        &mut seqs,
        &mut runs,
        &mut shuffle_nanos,
    );
    staging.recycle(pool);
    body?;

    let wire_runs = runs
        .into_iter()
        .map(|(p, r)| WireRun {
            partition: p,
            path: r.path,
            pairs: r.pairs,
            raw_bytes: r.raw_bytes,
            bytes: r.bytes,
        })
        .collect();
    Ok((
        MapDone {
            task: assign.task,
            attempt: assign.attempt,
            runs: wire_runs,
            counters: acc.snapshot(),
            shuffle_nanos,
        },
        dir,
    ))
}

/// The fallible body of a map attempt, separated so the caller's
/// buffer recycling cannot be skipped by a `?`.
#[allow(clippy::too_many_arguments)]
fn map_attempt_loop(
    job: &WireJob,
    combine: &CombineStrategy,
    pool: &Arc<BufferPool>,
    dict: Option<&DictContext>,
    assign: &MapAssign,
    acc: &Arc<Counters>,
    dir: &AttemptDir,
    staging: &mut Staging,
    seqs: &mut [usize],
    runs: &mut Vec<(usize, SpillRun)>,
    shuffle_nanos: &mut u64,
) -> Result<()> {
    let binding = job
        .inputs
        .get(assign.binding)
        .ok_or_else(|| EngineError::Config(format!("no input binding {}", assign.binding)))?;
    let mut reader = binding
        .input
        .open(job.map_parallelism)?
        .into_iter()
        .nth(assign.split)
        .ok_or_else(|| EngineError::Config(format!("no split {} in binding", assign.split)))?;
    let mut mapper = binding.mapper.create();
    let fire_at = job
        .fault
        .as_ref()
        .and_then(|f| f.map_fault(assign.task, assign.attempt));
    // Same budget split as the local runner: half the budget to map-side
    // staging, divided across the map slots.
    let local_cap = job
        .shuffle_buffer_bytes
        .map(|b| (b / 2 / job.map_parallelism).max(1));

    let mut emit_buf: Vec<(Value, Value)> = Vec::new();
    let mut records = 0u64;
    let mut outputs = 0u64;
    let mut instructions = 0u64;
    let mut effects = 0u64;
    let mut shuffle_bytes = 0u64;

    loop {
        if fire_at == Some(records) {
            return Err(EngineError::Injected(format!(
                "map task {} attempt {} at record {records}",
                assign.task, assign.attempt
            )));
        }
        let Some(item) = reader.next() else { break };
        let (k, v) = item?;
        records += 1;
        emit_buf.clear();
        let stats = mapper.map(&k, &v, &mut emit_buf)?;
        instructions += stats.instructions;
        effects += stats.side_effects;
        outputs += emit_buf.len() as u64;
        for (ok, ov) in emit_buf.drain(..) {
            let bytes = pair_bytes(&ok, &ov);
            shuffle_bytes += bytes as u64;
            let p = partition(&ok, job.num_reducers);
            staging.push(p, (ok, ov), bytes);
        }
        if let Some(cap) = local_cap.filter(|cap| staging.total_bytes >= *cap) {
            staging.fold(combine, acc)?;
            if staging.total_bytes >= cap {
                spill_all(
                    job,
                    combine,
                    pool,
                    dict,
                    acc,
                    dir,
                    staging,
                    seqs,
                    runs,
                    shuffle_nanos,
                )?;
            }
        }
    }
    // Final fold + spill-everything: with no resident tail to hand
    // back, whatever is staged becomes the attempt's last runs.
    staging.fold(combine, acc)?;
    spill_all(
        job,
        combine,
        pool,
        dict,
        acc,
        dir,
        staging,
        seqs,
        runs,
        shuffle_nanos,
    )?;

    Counters::add(&acc.map_input_records, records);
    Counters::add(&acc.map_invocations, records);
    Counters::add(&acc.map_output_records, outputs);
    Counters::add(&acc.instructions_executed, instructions);
    Counters::add(&acc.side_effects, effects);
    Counters::add(&acc.shuffle_bytes, shuffle_bytes);
    Counters::add(&acc.input_bytes, reader.bytes_read());
    Ok(())
}

/// Spill every nonempty staged partition as one sorted run in the
/// attempt directory, with attempt-local sequence numbers (the
/// coordinator renumbers on commit).
#[allow(clippy::too_many_arguments)]
fn spill_all(
    job: &WireJob,
    combine: &CombineStrategy,
    pool: &Arc<BufferPool>,
    dict: Option<&DictContext>,
    acc: &Arc<Counters>,
    dir: &AttemptDir,
    staging: &mut Staging,
    seqs: &mut [usize],
    runs: &mut Vec<(usize, SpillRun)>,
    shuffle_nanos: &mut u64,
) -> Result<()> {
    for (p, seq) in seqs.iter_mut().enumerate().take(job.num_reducers) {
        if staging.is_empty(p) {
            continue;
        }
        let mut pairs = staging.take(p, pool);
        let t = Instant::now();
        let run = write_sorted_run(
            dir.path(),
            p,
            *seq,
            &mut pairs,
            combine,
            job.compression,
            dict,
            acc,
            None,
            pool,
        )?;
        *shuffle_nanos += t.elapsed().as_nanos() as u64;
        *seq += 1;
        Counters::add(&acc.spill_count, 1);
        Counters::add(&acc.spilled_records, run.pairs);
        Counters::add(&acc.spill_bytes_raw, run.raw_bytes);
        Counters::add(&acc.spill_bytes_written, run.bytes);
        runs.push((p, run));
        pool.put_pairs(pairs);
    }
    Ok(())
}

/// One reduce attempt: stream the committed runs (read-only — they are
/// shared with any speculative sibling) through the merge and grouping
/// loop, writing the output pairs to a run file inside the attempt
/// directory for the coordinator to commit by rename.
fn run_reduce_attempt(
    job: &WireJob,
    combine: &CombineStrategy,
    assign: &ReduceAssign,
) -> Result<(ReduceDone, AttemptDir)> {
    let acc = Counters::new();
    let dir = AttemptDir::create(&job.job_dir, "reduce", assign.partition, assign.attempt)?;
    let fire_at = job
        .fault
        .as_ref()
        .and_then(|f| f.reduce_fault(assign.partition, assign.attempt));

    let mut streams: Vec<RunStream> = Vec::new();
    for path in &assign.runs {
        streams.push(RunStream::File(mr_storage::RunFileReader::open(path)?));
    }
    let mut reducer = combine.make_reducer(&job.reducer);
    let mut out: Vec<(Value, Value)> = Vec::new();
    let groups = if streams.len() <= 1 {
        let gate = FaultGate::new(
            StreamPairs(streams.pop()),
            fire_at,
            assign.partition,
            assign.attempt,
        );
        reduce_groups(gate, reducer.as_mut(), &mut out)?
    } else {
        let gate = FaultGate::new(
            LoserTree::new(streams)?,
            fire_at,
            assign.partition,
            assign.attempt,
        );
        reduce_groups(gate, reducer.as_mut(), &mut out)?
    };

    let out_path = dir.path().join("out");
    let mut w = mr_storage::RunFileWriter::create(&out_path)?;
    for (k, v) in &out {
        w.append(k, v)?;
    }
    w.finish()?;

    Counters::add(&acc.reduce_input_groups, groups);
    Counters::add(&acc.reduce_output_records, out.len() as u64);
    Ok((
        ReduceDone {
            partition: assign.partition,
            attempt: assign.attempt,
            out: out_path,
            groups,
            written: out.len() as u64,
            counters: acc.snapshot(),
            shuffle_nanos: 0,
        },
        dir,
    ))
}
