//! The process backend coordinator: fork worker processes and drive
//! the job over the Unix-socket task protocol.
//!
//! The coordinator owns everything the local runner's shared state
//! owned, but across a process boundary:
//!
//! * **Task scheduling** — a queue of `(kind, task)` work items behind
//!   a mutex + condvar; one handler thread per worker slot pops work,
//!   ships it as a task frame, and blocks on the response.
//! * **Attempt/commit** — workers stage all side effects in attempt
//!   directories under the shared job spill dir; the *coordinator*
//!   commits a finished attempt by renaming its run files to their
//!   job-level names (`run-{p:05}-{seq:06}`, `out-{p:05}`) under the
//!   scheduler lock. First commit wins; a second finisher of the same
//!   task gets `DISCARD` and its attempt dir cleans up by RAII. This
//!   is the whole speculative-execution story: duplicate attempts race
//!   on rename-into-place, exactly like Hadoop's output committer.
//! * **Counter absorption** — each attempt carries its own counter
//!   snapshot; only a committed attempt's counters are absorbed.
//! * **Fault hooks** — `kill:W:N` sites SIGKILL worker `W`'s process
//!   right after its `N`-th task frame is sent (the attempt is failed
//!   and the slot respawns a fresh worker with a new id); `slow:W:MS`
//!   sites are folded into the worker's job frame as a per-task delay,
//!   which is what makes a deterministic straggler for speculation
//!   drills. Record-level `map:`/`reduce:` faults travel to workers
//!   and keep their exact local semantics.
//!
//! Killing a worker races its own progress: the SIGKILL may land
//! before, during, or after the worker finishes the task. All three
//! interleavings converge — the handler never reads the worker's
//! result frame, so the attempt is failed and requeued either way, and
//! the dead attempt's directory (which SIGKILL prevented the worker
//! from dropping) is removed coordinator-side. Respawned workers get
//! fresh monotonically-increasing ids, so each `kill:`/`slow:` site is
//! naturally one-shot.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mr_ir::value::Value;

use crate::allocstats;
use crate::counters::Counters;
use crate::error::{EngineError, Result};
use crate::fault::FaultPlan;
use crate::job::{JobConfig, OutputSpec, ProcessCfg};
use crate::runner::{JobResult, PhaseTimings};
use crate::spill::SpillDir;

use super::protocol::*;
use super::wire::{self, MapAssign, MapDone, ReduceAssign, ReduceDone, TaskErr};
use super::ExecBackend;

/// How long a handler waits for its freshly-forked worker to connect
/// and say hello before declaring the spawn failed.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Coordinator-side executor forking worker processes (see the module
/// docs). Construct with the job's [`ProcessCfg`]; [`run`] drives one
/// job end to end and reaps every child before returning.
///
/// [`run`]: ExecBackend::run
pub struct ProcessBackend {
    cfg: ProcessCfg,
}

impl ProcessBackend {
    /// Backend for the given worker configuration.
    pub fn new(cfg: ProcessCfg) -> ProcessBackend {
        ProcessBackend { cfg }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Map,
    Reduce,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Map => "map",
            Kind::Reduce => "reduce",
        }
    }
}

#[derive(Debug, Default)]
struct TaskState {
    /// Attempts launched (retries and speculative duplicates included);
    /// the next attempt number — attempt directories never collide.
    launches: usize,
    failures: usize,
    running: usize,
    committed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Map,
    Reduce,
    Done,
}

struct SchedState {
    phase: Phase,
    queue: VecDeque<(Kind, usize)>,
    maps: Vec<TaskState>,
    /// `(binding, split)` per map task.
    map_meta: Vec<(usize, usize)>,
    reduces: Vec<TaskState>,
    committed_maps: usize,
    committed_reduces: usize,
    /// Committed run paths per partition, in sequence order.
    partition_runs: Vec<Vec<PathBuf>>,
    partition_seq: Vec<usize>,
    out_paths: Vec<Option<PathBuf>>,
    error: Option<EngineError>,
    map_done_at: Option<Instant>,
    reduce_done_at: Option<Instant>,
}

/// What a handler does next.
enum Next {
    Map(MapAssign),
    Reduce(ReduceAssign),
    Shutdown,
}

struct Sched {
    state: Mutex<SchedState>,
    cv: Condvar,
    max_attempts: usize,
    speculate: bool,
    counters: Arc<Counters>,
}

impl Sched {
    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().expect("scheduler lock poisoned")
    }

    /// Block until there is work for an idle worker — or, with
    /// speculation on and the queue dry, duplicate the first in-flight
    /// singleton attempt so the two race.
    fn next(&self) -> Next {
        let mut st = self.lock();
        loop {
            if st.error.is_some() || st.phase == Phase::Done {
                return Next::Shutdown;
            }
            if let Some((kind, task)) = st.queue.pop_front() {
                return self.launch(&mut st, kind, task);
            }
            if self.speculate {
                if let Some((kind, task)) = Self::straggler(&st) {
                    Counters::add(&self.counters.speculative_tasks, 1);
                    return self.launch(&mut st, kind, task);
                }
            }
            st = self.cv.wait(st).expect("scheduler lock poisoned");
        }
    }

    /// The lowest-numbered uncommitted task of the current phase with
    /// exactly one attempt in flight (bounding every task to two
    /// concurrent attempts).
    fn straggler(st: &SchedState) -> Option<(Kind, usize)> {
        let (kind, tasks) = match st.phase {
            Phase::Map => (Kind::Map, &st.maps),
            Phase::Reduce => (Kind::Reduce, &st.reduces),
            Phase::Done => return None,
        };
        tasks
            .iter()
            .position(|t| t.running == 1 && !t.committed)
            .map(|task| (kind, task))
    }

    fn launch(&self, st: &mut SchedState, kind: Kind, task: usize) -> Next {
        let t = match kind {
            Kind::Map => &mut st.maps[task],
            Kind::Reduce => &mut st.reduces[task],
        };
        let attempt = t.launches;
        t.launches += 1;
        t.running += 1;
        match kind {
            Kind::Map => {
                let (binding, split) = st.map_meta[task];
                Next::Map(MapAssign {
                    task,
                    binding,
                    split,
                    attempt,
                })
            }
            Kind::Reduce => Next::Reduce(ReduceAssign {
                partition: task,
                attempt,
                runs: st.partition_runs[task].clone(),
            }),
        }
    }

    /// Commit a finished map attempt (rename its runs into the job
    /// directory under fresh sequence numbers) unless another attempt
    /// of the task got there first. Returns whether the attempt won.
    /// A rename failure mid-commit is not retryable — part of the
    /// attempt may already be published — so it aborts the job.
    fn commit_map(&self, done: &MapDone, job_dir: &Path) -> Result<bool> {
        let mut st = self.lock();
        st.maps[done.task].running -= 1;
        if st.maps[done.task].committed {
            self.cv.notify_all();
            return Ok(false);
        }
        for r in &done.runs {
            let seq = st.partition_seq[r.partition];
            let dest = job_dir.join(format!("run-{:05}-{seq:06}", r.partition));
            std::fs::rename(&r.path, &dest).map_err(|e| {
                let err: EngineError = e.into();
                st.error = Some(EngineError::TaskFailed {
                    task: format!("map task {} commit", done.task),
                    attempts: 1,
                    cause: Box::new(err),
                });
                self.cv.notify_all();
                EngineError::Config("commit failed".into())
            })?;
            st.partition_seq[r.partition] = seq + 1;
            st.partition_runs[r.partition].push(dest);
        }
        st.maps[done.task].committed = true;
        st.committed_maps += 1;
        self.counters.absorb(&done.counters);
        if st.committed_maps == st.maps.len() {
            st.phase = Phase::Reduce;
            st.map_done_at = Some(Instant::now());
            let reduces = st.reduces.len();
            st.queue = (0..reduces).map(|p| (Kind::Reduce, p)).collect();
        }
        self.cv.notify_all();
        Ok(true)
    }

    /// Commit a finished reduce attempt by renaming its output run to
    /// `out-{p:05}`, first-wins like the map commit.
    fn commit_reduce(&self, done: &ReduceDone, job_dir: &Path) -> Result<bool> {
        let mut st = self.lock();
        st.reduces[done.partition].running -= 1;
        if st.reduces[done.partition].committed {
            self.cv.notify_all();
            return Ok(false);
        }
        let dest = job_dir.join(format!("out-{:05}", done.partition));
        if let Err(e) = std::fs::rename(&done.out, &dest) {
            let err: EngineError = e.into();
            st.error = Some(EngineError::TaskFailed {
                task: format!("reduce task {} commit", done.partition),
                attempts: 1,
                cause: Box::new(err),
            });
            self.cv.notify_all();
            return Err(EngineError::Config("commit failed".into()));
        }
        st.out_paths[done.partition] = Some(dest);
        st.reduces[done.partition].committed = true;
        st.committed_reduces += 1;
        self.counters.absorb(&done.counters);
        if st.committed_reduces == st.reduces.len() {
            st.phase = Phase::Done;
            st.reduce_done_at = Some(Instant::now());
        }
        self.cv.notify_all();
        Ok(true)
    }

    /// Record a failed attempt: count it, requeue the task when no
    /// sibling attempt is still in flight, fail the job when the task
    /// is out of attempts. Failures of attempts whose task already
    /// committed (a speculative loser dying late) are ignored entirely.
    fn fail(&self, kind: Kind, task: usize, cause: EngineError) {
        let mut st = self.lock();
        let t = match kind {
            Kind::Map => &mut st.maps[task],
            Kind::Reduce => &mut st.reduces[task],
        };
        t.running -= 1;
        if t.committed {
            self.cv.notify_all();
            return;
        }
        t.failures += 1;
        let exhausted = t.failures >= self.max_attempts;
        let requeue = !exhausted && t.running == 0;
        match kind {
            Kind::Map => Counters::add(&self.counters.map_task_failures, 1),
            Kind::Reduce => Counters::add(&self.counters.reduce_task_failures, 1),
        }
        if exhausted {
            if st.error.is_none() {
                st.error = Some(EngineError::TaskFailed {
                    task: format!("{} task {task}", kind.label()),
                    attempts: self.max_attempts,
                    cause: Box::new(cause),
                });
            }
        } else if requeue {
            st.queue.push_back((kind, task));
            Counters::add(&self.counters.task_retries, 1);
        }
        self.cv.notify_all();
    }

    /// Abort the job with an infrastructure error (spawn failure,
    /// connect timeout, protocol violation).
    fn abort(&self, e: EngineError) {
        let mut st = self.lock();
        if st.error.is_none() {
            st.error = Some(e);
        }
        self.cv.notify_all();
    }

    fn finished(&self) -> bool {
        let st = self.lock();
        st.error.is_some() || st.phase == Phase::Done
    }
}

/// Routes incoming worker connections to the handler that spawned the
/// worker, keyed by the id in the hello frame.
struct Broker {
    conns: Mutex<HashMap<usize, UnixStream>>,
    cv: Condvar,
}

impl Broker {
    fn new() -> Broker {
        Broker {
            conns: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }

    fn accept_loop(&self, listener: &UnixListener, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // The hello is tiny and workers send it immediately
                    // after connecting; a short read timeout keeps a
                    // wedged connection from blocking the broker.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let hello = {
                        let mut r = &stream;
                        read_frame(&mut r)
                    };
                    if let Ok(Some((TAG_HELLO, payload))) = hello {
                        if let Ok(id) = wire::decode_hello(&payload) {
                            let _ = stream.set_read_timeout(None);
                            self.conns
                                .lock()
                                .expect("broker lock poisoned")
                                .insert(id, stream);
                            self.cv.notify_all();
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }

    /// Wait for worker `id`'s routed connection.
    fn wait_for(&self, id: usize, timeout: Duration) -> Result<UnixStream> {
        let deadline = Instant::now() + timeout;
        let mut conns = self.conns.lock().expect("broker lock poisoned");
        loop {
            if let Some(s) = conns.remove(&id) {
                return Ok(s);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(EngineError::Remote(format!(
                    "worker {id} did not connect within {timeout:?}"
                )));
            }
            let (guard, _) = self
                .cv
                .wait_timeout(conns, deadline - now)
                .expect("broker lock poisoned");
            conns = guard;
        }
    }
}

/// Everything one worker-slot handler thread needs.
struct HandlerCtx<'a> {
    job: &'a JobConfig,
    cfg: &'a ProcessCfg,
    sched: &'a Sched,
    broker: &'a Broker,
    job_dir: &'a Path,
    socket: &'a Path,
    fault: Option<&'a FaultPlan>,
    next_id: &'a AtomicUsize,
    shuffle_nanos: &'a AtomicU64,
}

fn spawn_worker(ctx: &HandlerCtx<'_>, id: usize) -> Result<Child> {
    let (program, mut args) = match &ctx.cfg.worker_cmd {
        Some(cmd) if !cmd.is_empty() => (PathBuf::from(&cmd[0]), cmd[1..].to_vec()),
        _ => (
            std::env::current_exe()?,
            vec![super::WORKER_ARG.to_string()],
        ),
    };
    args.push(ctx.socket.to_string_lossy().into_owned());
    args.push(id.to_string());
    Command::new(&program)
        .args(&args)
        .stdin(Stdio::null())
        .spawn()
        .map_err(|e| EngineError::Remote(format!("spawning worker {program:?}: {e}")))
}

/// Drive one worker slot: spawn a worker, feed it tasks, commit or
/// fail its results; on worker death (fault-plan kill or otherwise),
/// respawn under a fresh id until the job finishes.
fn worker_slot(ctx: &HandlerCtx<'_>) {
    'respawn: loop {
        if ctx.sched.finished() {
            return;
        }
        let id = ctx.next_id.fetch_add(1, Ordering::Relaxed);
        let mut child = match spawn_worker(ctx, id) {
            Ok(c) => c,
            Err(e) => {
                ctx.sched.abort(e);
                return;
            }
        };
        let stream = match ctx.broker.wait_for(id, CONNECT_TIMEOUT) {
            Ok(s) => s,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                ctx.sched.abort(e);
                return;
            }
        };
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                ctx.sched.abort(e.into());
                return;
            }
        });
        let mut writer = BufWriter::new(stream);
        let slow_ms = ctx.fault.and_then(|f| f.worker_slow(id)).unwrap_or(0);
        let payload = match wire::encode_job(ctx.job, ctx.job_dir, slow_ms) {
            Ok(p) => p,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                ctx.sched.abort(e);
                return;
            }
        };
        if write_frame(&mut writer, TAG_JOB, &payload).is_err() {
            let _ = child.wait();
            continue 'respawn; // worker died before the job frame; try again
        }

        let mut ordinal = 0u64;
        loop {
            let next = ctx.sched.next();
            let (kind, task, attempt, frame) = match &next {
                Next::Shutdown => {
                    let _ = write_frame(&mut writer, TAG_SHUTDOWN, b"");
                    let _ = child.wait();
                    return;
                }
                Next::Map(a) => (Kind::Map, a.task, a.attempt, (TAG_MAP_TASK, a.encode())),
                Next::Reduce(a) => match a.encode() {
                    Ok(p) => (Kind::Reduce, a.partition, a.attempt, (TAG_REDUCE_TASK, p)),
                    Err(e) => {
                        ctx.sched.fail(Kind::Reduce, a.partition, e);
                        continue;
                    }
                },
            };
            if write_frame(&mut writer, frame.0, &frame.1).is_err() {
                // Worker died between tasks: fail this attempt, respawn.
                let _ = child.wait();
                ctx.sched.fail(
                    kind,
                    task,
                    EngineError::Remote("worker connection lost".into()),
                );
                continue 'respawn;
            }
            let this_ordinal = ordinal;
            ordinal += 1;
            if ctx.fault.is_some_and(|f| f.worker_kill(id, this_ordinal)) {
                // Whole-worker fault injection: SIGKILL, no cleanup on
                // the worker side — remove its dead attempt dir here,
                // fail the attempt, and respawn under a fresh id.
                let _ = child.kill();
                let _ = child.wait();
                Counters::add(&ctx.sched.counters.workers_killed, 1);
                let dead = ctx
                    .job_dir
                    .join(format!("attempt-{}-{task:05}-{attempt:03}", kind.label()));
                let _ = std::fs::remove_dir_all(&dead);
                ctx.sched.fail(
                    kind,
                    task,
                    EngineError::Remote(format!("worker {id} killed by fault plan")),
                );
                continue 'respawn;
            }
            match read_frame(&mut reader) {
                Ok(Some((TAG_MAP_DONE, p))) => match MapDone::decode(&p) {
                    Ok(done) => {
                        ctx.shuffle_nanos
                            .fetch_add(done.shuffle_nanos, Ordering::Relaxed);
                        match ctx.sched.commit_map(&done, ctx.job_dir) {
                            Ok(true) => {
                                if write_frame(&mut writer, TAG_COMMIT_ACK, b"").is_err() {
                                    // Committed but the worker is gone;
                                    // its attempt dir (already drained
                                    // of runs) will not self-clean.
                                    let dead = ctx
                                        .job_dir
                                        .join(format!("attempt-map-{task:05}-{attempt:03}"));
                                    let _ = std::fs::remove_dir_all(&dead);
                                    let _ = child.wait();
                                    continue 'respawn;
                                }
                            }
                            Ok(false) => {
                                let _ = write_frame(&mut writer, TAG_DISCARD, b"");
                            }
                            Err(_) => {
                                let _ = write_frame(&mut writer, TAG_DISCARD, b"");
                            }
                        }
                    }
                    Err(e) => {
                        ctx.sched.fail(kind, task, e);
                    }
                },
                Ok(Some((TAG_REDUCE_DONE, p))) => match ReduceDone::decode(&p) {
                    Ok(done) => {
                        ctx.shuffle_nanos
                            .fetch_add(done.shuffle_nanos, Ordering::Relaxed);
                        match ctx.sched.commit_reduce(&done, ctx.job_dir) {
                            Ok(true) => {
                                if write_frame(&mut writer, TAG_COMMIT_ACK, b"").is_err() {
                                    let dead = ctx
                                        .job_dir
                                        .join(format!("attempt-reduce-{task:05}-{attempt:03}"));
                                    let _ = std::fs::remove_dir_all(&dead);
                                    let _ = child.wait();
                                    continue 'respawn;
                                }
                            }
                            Ok(false) => {
                                let _ = write_frame(&mut writer, TAG_DISCARD, b"");
                            }
                            Err(_) => {
                                let _ = write_frame(&mut writer, TAG_DISCARD, b"");
                            }
                        }
                    }
                    Err(e) => {
                        ctx.sched.fail(kind, task, e);
                    }
                },
                Ok(Some((TAG_TASK_ERR, p))) => {
                    let cause = match TaskErr::decode(&p) {
                        Ok(err) if err.injected => EngineError::Injected(err.msg),
                        Ok(err) => EngineError::Remote(err.msg),
                        Err(e) => e,
                    };
                    ctx.sched.fail(kind, task, cause);
                }
                Ok(Some((tag, _))) => {
                    ctx.sched.abort(EngineError::Remote(format!(
                        "unexpected frame tag {tag} from worker {id}"
                    )));
                    let _ = child.kill();
                    let _ = child.wait();
                    return;
                }
                Ok(None) | Err(_) => {
                    // The worker died mid-task (crash, or a kill racing
                    // a previous slot's shutdown): fail the attempt and
                    // respawn. Its attempt dir may survive the SIGKILL;
                    // remove it like the kill path does.
                    let _ = child.wait();
                    let dead = ctx
                        .job_dir
                        .join(format!("attempt-{}-{task:05}-{attempt:03}", kind.label()));
                    let _ = std::fs::remove_dir_all(&dead);
                    ctx.sched.fail(
                        kind,
                        task,
                        EngineError::Remote(format!("worker {id} died mid-task")),
                    );
                    continue 'respawn;
                }
            }
        }
    }
}

impl ExecBackend for ProcessBackend {
    fn name(&self) -> &'static str {
        "process"
    }

    fn run(&self, job: &JobConfig) -> Result<JobResult> {
        let start = Instant::now();
        if job.inputs.is_empty() {
            return Err(EngineError::Config("job has no inputs".into()));
        }
        let num_reducers = job.num_reducers.max(1);
        let max_attempts = job.max_task_attempts.max(1);
        let workers = self.cfg.workers.max(1);
        let (alloc_count0, alloc_bytes0) = allocstats::totals();

        // The job directory is the shared commit space: attempt dirs,
        // committed runs, reduce outputs, and the control socket all
        // live here and vanish together when the SpillDir drops.
        let spill_dir = SpillDir::create(job.spill_dir.as_deref(), &job.name)?;
        let job_dir = spill_dir.path().to_path_buf();
        // Reject non-serializable jobs before any fork.
        wire::encode_job(job, &job_dir, 0)?;

        // Plan map tasks exactly like the local runner: one task per
        // split at the job's parallelism hint. Workers re-open splits
        // with the same hint, so boundaries agree.
        let hint = job.map_parallelism.max(1);
        let mut map_meta: Vec<(usize, usize)> = Vec::new();
        for (bi, binding) in job.inputs.iter().enumerate() {
            let splits = binding.input.open(hint)?.len();
            for s in 0..splits {
                map_meta.push((bi, s));
            }
        }

        let socket = job_dir.join("ctl.sock");
        let listener = UnixListener::bind(&socket)?;
        listener.set_nonblocking(true)?;

        let counters = Counters::new();
        let shuffle_nanos = AtomicU64::new(0);
        let map_count = map_meta.len();
        let mut state = SchedState {
            phase: Phase::Map,
            queue: (0..map_count).map(|t| (Kind::Map, t)).collect(),
            maps: (0..map_count).map(|_| TaskState::default()).collect(),
            map_meta,
            reduces: (0..num_reducers).map(|_| TaskState::default()).collect(),
            committed_maps: 0,
            committed_reduces: 0,
            partition_runs: vec![Vec::new(); num_reducers],
            partition_seq: vec![0; num_reducers],
            out_paths: vec![None; num_reducers],
            error: None,
            map_done_at: None,
            reduce_done_at: None,
        };
        if map_count == 0 {
            // Degenerate but legal: no splits at all — straight to
            // reduce over empty partitions.
            state.phase = Phase::Reduce;
            state.map_done_at = Some(Instant::now());
            state.queue = (0..num_reducers).map(|p| (Kind::Reduce, p)).collect();
        }
        let sched = Sched {
            state: Mutex::new(state),
            cv: Condvar::new(),
            max_attempts,
            speculate: self.cfg.speculate,
            counters: Arc::clone(&counters),
        };

        let broker = Broker::new();
        let stop_broker = AtomicBool::new(false);
        let next_id = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            scope.spawn(|| broker.accept_loop(&listener, &stop_broker));
            let mut handlers = Vec::new();
            for _ in 0..workers {
                let ctx = HandlerCtx {
                    job,
                    cfg: &self.cfg,
                    sched: &sched,
                    broker: &broker,
                    job_dir: &job_dir,
                    socket: &socket,
                    fault: job.fault_plan.as_deref(),
                    next_id: &next_id,
                    shuffle_nanos: &shuffle_nanos,
                };
                handlers.push(scope.spawn(move || worker_slot(&ctx)));
            }
            for h in handlers {
                let _ = h.join();
            }
            stop_broker.store(true, Ordering::Relaxed);
        });

        let st = sched.state.into_inner().expect("scheduler lock poisoned");
        if let Some(e) = st.error {
            return Err(e);
        }

        // ---- assemble output (coordinator-side, like the local
        // runner's output stage) --------------------------------------
        let mut output: Vec<(Value, Value)> = Vec::new();
        let mut output_files: Vec<PathBuf> = Vec::new();
        let read_partition = |p: usize| -> Result<Vec<(Value, Value)>> {
            let path = st.out_paths[p]
                .as_ref()
                .expect("every partition commits before Done");
            let mut pairs = Vec::new();
            for item in mr_storage::RunFileReader::open(path)? {
                pairs.push(item?);
            }
            Ok(pairs)
        };
        match &job.output {
            OutputSpec::InMemory => {
                for p in 0..num_reducers {
                    output.extend(read_partition(p)?);
                }
                if job.sort_output {
                    output.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                }
            }
            OutputSpec::TextDir(dir) => {
                std::fs::create_dir_all(dir)?;
                for p in 0..num_reducers {
                    let mut pairs = read_partition(p)?;
                    if job.sort_output {
                        pairs.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                    }
                    let path = dir.join(format!("part-{p:05}"));
                    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
                    for (k, v) in pairs {
                        writeln!(f, "{k}\t{v}")?;
                    }
                    f.flush()?;
                    output_files.push(path);
                }
            }
        }
        drop(spill_dir); // runs, outs, attempt dirs, socket — all gone

        let (alloc_count1, alloc_bytes1) = allocstats::totals();
        Counters::add(
            &counters.alloc_count,
            alloc_count1.saturating_sub(alloc_count0),
        );
        Counters::add(
            &counters.alloc_bytes,
            alloc_bytes1.saturating_sub(alloc_bytes0),
        );

        let map_done = st.map_done_at.unwrap_or_else(Instant::now);
        let reduce_done = st.reduce_done_at.unwrap_or_else(Instant::now);
        Ok(JobResult {
            counters: counters.snapshot(),
            output,
            output_files,
            elapsed: start.elapsed(),
            phases: PhaseTimings {
                map: map_done.duration_since(start),
                shuffle: Duration::from_nanos(shuffle_nanos.load(Ordering::Relaxed)),
                reduce: reduce_done.duration_since(map_done),
            },
        })
    }
}
