//! Pluggable execution backends.
//!
//! [`ExecBackend`] is the seam between *what* a job is (inputs,
//! mappers, reducers, knobs — [`JobConfig`]) and *how* its tasks get
//! scheduled, attempted, committed, and counted:
//!
//! * [`LocalBackend`] — the original in-process scoped-thread runner,
//!   and the reference semantics every other backend must match
//!   byte-for-byte.
//! * [`ProcessBackend`] — a coordinator that fork/execs worker
//!   processes and drives them over a length-prefixed Unix-socket task
//!   protocol ([`protocol`], `wire`); shuffle data travels through a
//!   shared job spill directory and attempts commit by rename.
//!
//! Jobs pick a backend with
//! [`JobConfig::backend`](crate::job::JobConfig::backend); [`run_job`]
//! dispatches. Binaries that want to double as workers (so tests and
//! the CLI need no separate worker executable) call
//! [`maybe_worker_entry`] first thing in `main`.
//!
//! [`run_job`]: crate::runner::run_job

pub mod local;
pub mod process;
pub mod protocol;
pub(crate) mod wire;
pub mod worker;

pub use local::LocalBackend;
pub use process::ProcessBackend;
pub use worker::worker_main;

use crate::error::Result;
use crate::job::{BackendSpec, JobConfig};
use crate::runner::JobResult;

/// The hidden `argv[1]` sentinel that flips a coordinator binary into
/// worker mode (see [`maybe_worker_entry`]). Deliberately not a valid
/// CLI flag or subcommand name.
pub const WORKER_ARG: &str = "__mr-worker";

/// An execution strategy for MapReduce jobs.
///
/// Implementations own the full task lifecycle: scheduling map/reduce
/// attempts, the attempt/commit protocol (staged side effects,
/// first-commit-wins), absorbing counters from committed attempts
/// only, and honoring the job's [`FaultPlan`](crate::fault::FaultPlan)
/// hooks. A backend must produce the same committed output as
/// [`LocalBackend`] for the same job.
pub trait ExecBackend: Send + Sync {
    /// Short human-readable name (`"local"`, `"process"`).
    fn name(&self) -> &'static str;
    /// Execute the job to completion and return its result.
    fn run(&self, job: &JobConfig) -> Result<JobResult>;
}

/// Route a job to the backend its config names, after the join-stage
/// validity check ([`crate::join::validate_job`]) — rejections like a
/// combiner on a join stage surface here, before any task runs, on
/// every backend.
pub(crate) fn dispatch(job: &JobConfig) -> Result<JobResult> {
    crate::join::validate_job(job)?;
    match &job.backend {
        BackendSpec::Local => LocalBackend.run(job),
        BackendSpec::Process(cfg) => ProcessBackend::new(cfg.clone()).run(job),
    }
}

/// Turn the current process into a task-protocol worker if it was
/// invoked as one, never returning in that case.
///
/// The process backend re-execs its own coordinator binary with
/// `argv = [exe, "__mr-worker", socket, worker_id]` when no explicit
/// `worker_cmd` is configured. Call this as the first line of `main`
/// in any binary that may coordinate a process-backend job; it is a
/// no-op (returns immediately) under any other argv.
pub fn maybe_worker_entry() {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some(WORKER_ARG) {
        return;
    }
    let (socket, id) = match (args.next(), args.next().and_then(|s| s.parse().ok())) {
        (Some(socket), Some(id)) => (socket, id),
        _ => {
            eprintln!("usage: <exe> {WORKER_ARG} <socket> <worker-id>");
            std::process::exit(2);
        }
    };
    match worker_main(&socket, id) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("mr-worker {id}: {e}");
            std::process::exit(1);
        }
    }
}
