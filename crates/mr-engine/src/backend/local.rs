//! The in-process reference backend.

use crate::error::Result;
use crate::job::JobConfig;
use crate::runner::JobResult;

use super::ExecBackend;

/// Runs the whole job inside the calling process on scoped threads —
/// the original runner, unchanged, now behind the [`ExecBackend`]
/// seam. Every other backend is judged against this one: same inputs,
/// same bytes out.
pub struct LocalBackend;

impl ExecBackend for LocalBackend {
    fn name(&self) -> &'static str {
        "local"
    }

    fn run(&self, job: &JobConfig) -> Result<JobResult> {
        crate::runner::run_job_local(job)
    }
}
