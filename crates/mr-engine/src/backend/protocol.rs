//! The length-prefixed task protocol the process backend speaks over
//! its Unix control socket.
//!
//! Every message is one *frame* reusing the blockcodec stream framing
//! discipline (docs/FORMATS.md):
//!
//! ```text
//! [tag u8][payload_len varint][payload bytes][crc32(payload) u32 LE]
//! ```
//!
//! The checksum covers the payload only — the tag and length are
//! structural, and a mismatch anywhere (short read, oversized length,
//! bad crc) surfaces as a typed
//! [`StorageError::Corrupt`](mr_storage::StorageError) wrapped in
//! [`EngineError::Storage`], never as garbage data. A clean EOF at a
//! frame boundary reads as `Ok(None)`: that is how a worker sees the
//! coordinator hang up.
//!
//! Payloads are compact JSON (see `backend/wire.rs`) except where a
//! message is a bare number; the protocol layer does not care.

use std::io::{Read, Write};

use mr_storage::blockcodec::crc32;
use mr_storage::varint::encode_u64;
use mr_storage::StorageError;

use crate::error::{EngineError, Result};

/// Worker → coordinator: first frame on a fresh connection; the payload
/// is the worker id in decimal, so the broker can route the socket to
/// the handler that spawned this worker.
pub const TAG_HELLO: u8 = 1;
/// Coordinator → worker: the serialized job (`backend/wire.rs`), sent
/// once after the hello.
pub const TAG_JOB: u8 = 2;
/// Coordinator → worker: run one map task attempt.
pub const TAG_MAP_TASK: u8 = 3;
/// Coordinator → worker: run one reduce task attempt.
pub const TAG_REDUCE_TASK: u8 = 4;
/// Worker → coordinator: a map attempt succeeded; runs are staged in
/// the attempt directory awaiting commit.
pub const TAG_MAP_DONE: u8 = 5;
/// Worker → coordinator: a reduce attempt succeeded.
pub const TAG_REDUCE_DONE: u8 = 6;
/// Worker → coordinator: a task attempt failed (the job-level retry
/// logic decides what happens next).
pub const TAG_TASK_ERR: u8 = 7;
/// Coordinator → worker: the attempt was committed; drop the attempt
/// directory (its run files were renamed out already).
pub const TAG_COMMIT_ACK: u8 = 8;
/// Coordinator → worker: the attempt lost (another attempt committed
/// first); drop the attempt directory with everything in it.
pub const TAG_DISCARD: u8 = 9;
/// Coordinator → worker: no more tasks; exit cleanly.
pub const TAG_SHUTDOWN: u8 = 10;

/// Frames larger than this are rejected as corrupt before any
/// allocation — a defense against reading a garbage length from a
/// torn stream, not a real limit (payloads are control messages, not
/// data; shuffle bytes travel through the filesystem).
pub const MAX_PAYLOAD: usize = 64 << 20;

fn corrupt(detail: impl Into<String>) -> EngineError {
    EngineError::Storage(StorageError::corrupt("task-protocol frame", detail))
}

/// Write one frame and flush it (frames are request/response turns;
/// buffering across them would deadlock both ends).
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<()> {
    let mut head = Vec::with_capacity(11);
    head.push(tag);
    encode_u64(payload.len() as u64, &mut head);
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read one frame. `Ok(None)` means the peer closed the stream cleanly
/// at a frame boundary; EOF anywhere *inside* a frame, a length past
/// [`MAX_PAYLOAD`], or a checksum mismatch is a typed `Corrupt` error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>> {
    let mut tag = [0u8; 1];
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = match mr_storage::varint::read_u64_from(r) {
        Ok(Some((len, _))) => len,
        Ok(None) => return Err(corrupt("eof in frame length")),
        Err(e) => return Err(EngineError::Storage(e)),
    };
    if len as usize > MAX_PAYLOAD {
        return Err(corrupt(format!("frame length {len} exceeds {MAX_PAYLOAD}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| corrupt(format!("eof in frame payload: {e}")))?;
    let mut crc = [0u8; 4];
    r.read_exact(&mut crc)
        .map_err(|e| corrupt(format!("eof in frame checksum: {e}")))?;
    let want = u32::from_le_bytes(crc);
    let got = crc32(&payload);
    if want != got {
        return Err(corrupt(format!(
            "checksum mismatch: stored {want:#010x}, computed {got:#010x}"
        )));
    }
    Ok(Some((tag[0], payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_corrupt(e: &EngineError) -> bool {
        matches!(
            e,
            EngineError::Storage(StorageError::Corrupt { context, .. })
                if context == "task-protocol frame"
        )
    }

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_JOB, b"hello world").unwrap();
        write_frame(&mut buf, TAG_SHUTDOWN, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((TAG_JOB, b"hello world".to_vec()))
        );
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((TAG_SHUTDOWN, Vec::new()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean eof");
    }

    #[test]
    fn truncation_anywhere_is_corrupt_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_MAP_DONE, b"payload bytes").unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            let err = read_frame(&mut r).unwrap_err();
            assert!(is_corrupt(&err), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn payload_bit_flip_is_corrupt() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_MAP_DONE, b"some payload").unwrap();
        // Flip one bit inside the payload region (tag + 1-byte varint
        // length precede it for a payload this small).
        buf[4] ^= 0x10;
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(is_corrupt(&err), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = vec![TAG_JOB];
        encode_u64((MAX_PAYLOAD as u64) + 1, &mut buf);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(is_corrupt(&err), "{err}");
    }
}
