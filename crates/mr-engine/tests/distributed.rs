//! Kill drills for the process backend: SIGKILL a worker mid-map and
//! mid-reduce under seeded schedules and prove the job still completes
//! with output byte-identical to the local backend, exact retry
//! counters, no orphaned attempt directories, and no leaked worker
//! processes — plus a proptest hammering the task-protocol framing
//! with truncation and bit flips, all typed as `Corrupt`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_engine::backend::protocol::{read_frame, write_frame, MAX_PAYLOAD};
use mr_engine::{
    run_job, BackendSpec, BroadcastSpec, Builtin, EngineError, FaultPlan, InputBinding, InputSpec,
    JobConfig, JobResult, JoinSide, ProcessCfg,
};
use mr_ir::asm::parse_function;
use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::seqfile::write_seqfile;
use mr_storage::StorageError;
use proptest::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-engine-distributed-tests");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn schema() -> Arc<Schema> {
    Schema::new("T", vec![("k", FieldType::Str), ("v", FieldType::Int)]).into_arc()
}

fn emit_kv_mapper() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.k
          r2 = field r0.v
          emit r1, r2
          ret
        }
        "#,
    )
    .unwrap()
}

fn write_data(name: &str, n: usize, keys: usize) -> PathBuf {
    let s = schema();
    let records: Vec<Record> = (0..n)
        .map(|i| {
            record(
                &s,
                vec![format!("k{}", i % keys).into(), Value::Int(i as i64 % 91)],
            )
        })
        .collect();
    let path = tmp(name);
    write_seqfile(&path, s, records).unwrap();
    path
}

/// The process backend pointed at the dedicated worker binary — the
/// default re-exec convention would re-run this test executable.
fn process(workers: usize, speculate: bool) -> BackendSpec {
    BackendSpec::Process(ProcessCfg {
        workers,
        worker_cmd: Some(vec![env!("CARGO_BIN_EXE_mr_worker").to_string()]),
        speculate,
    })
}

struct Drill<'a> {
    path: &'a Path,
    parallelism: usize,
    attempts: usize,
    budget: Option<usize>,
    fault: Option<FaultPlan>,
    backend: BackendSpec,
    spill_parent: &'a Path,
}

impl Drill<'_> {
    fn build(&self) -> JobConfig {
        let mut j = JobConfig::ir_job(
            "kill-drill",
            InputSpec::SeqFile {
                path: self.path.to_path_buf(),
            },
            emit_kv_mapper(),
            Builtin::Sum,
        )
        .with_reducers(3)
        .with_parallelism(self.parallelism)
        .with_max_attempts(self.attempts)
        .with_spill_dir(self.spill_parent)
        .with_backend(self.backend.clone());
        j.shuffle_buffer_bytes = self.budget;
        if let Some(plan) = self.fault.clone() {
            j = j.with_fault_plan(Arc::new(plan));
        }
        j
    }

    fn run(&self) -> JobResult {
        run_job(&self.build()).unwrap()
    }
}

/// Scan `/proc` for any live process whose cmdline mentions `marker`
/// (every worker is invoked with its socket path, which lives under
/// the drill's unique spill parent).
fn live_processes_mentioning(marker: &str) -> Vec<u32> {
    let mut hits = Vec::new();
    let me = std::process::id();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return hits;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        if pid == me {
            continue;
        }
        let Ok(cmdline) = std::fs::read(entry.path().join("cmdline")) else {
            continue;
        };
        if String::from_utf8_lossy(&cmdline).contains(marker) {
            hits.push(pid);
        }
    }
    hits
}

/// Assert the drill left nothing behind: the spill parent holds no
/// job dir (so no attempt dirs either) and no worker process that was
/// pointed at it is still alive.
fn assert_clean(parent: &Path) {
    assert_eq!(
        std::fs::read_dir(parent).unwrap().count(),
        0,
        "job dir (and its attempt dirs) must not outlive the job"
    );
    // Workers are reaped synchronously (`child.wait`) before the job
    // returns, so a single scan suffices.
    let leaked = live_processes_mentioning(parent.to_str().unwrap());
    assert!(leaked.is_empty(), "leaked worker processes: {leaked:?}");
}

fn drill<'a>(path: &'a Path, parent: &'a Path) -> Drill<'a> {
    Drill {
        path,
        parallelism: 2,
        attempts: 2,
        budget: None,
        fault: None,
        backend: process(2, false),
        spill_parent: parent,
    }
}

/// Baseline sanity: the process backend with no faults produces output
/// byte-identical to the local backend, resident and spilling alike.
#[test]
fn process_backend_matches_local_output() {
    let path = write_data("match", 3000, 7);
    let parent = tmp("match-spills");
    std::fs::create_dir_all(&parent).unwrap();
    for budget in [None, Some(512)] {
        let mut local = drill(&path, &parent);
        local.backend = BackendSpec::Local;
        local.budget = budget;
        let local = local.run();
        let mut proc = drill(&path, &parent);
        proc.budget = budget;
        let proc = proc.run();
        assert_eq!(proc.output, local.output, "budget {budget:?}");
        assert_eq!(proc.counters.task_retries, 0);
        assert_eq!(proc.counters.workers_killed, 0);
        assert_eq!(
            proc.counters.map_input_records,
            local.counters.map_input_records
        );
        assert_eq!(
            proc.counters.reduce_output_records,
            local.counters.reduce_output_records
        );
        assert_clean(&parent);
    }
}

/// SIGKILL a worker on its very first assignment — mid-map. The job
/// completes on the respawned worker with byte-identical output and
/// exactly one retry. A single-worker fleet pins the schedule: with a
/// sibling racing, worker 0's first assignment could be any task.
#[test]
fn worker_killed_mid_map_job_completes() {
    let path = write_data("kill-map", 3000, 7);
    let parent = tmp("kill-map-spills");
    std::fs::create_dir_all(&parent).unwrap();
    let mut local = drill(&path, &parent);
    local.backend = BackendSpec::Local;
    let local = local.run();

    let mut d = drill(&path, &parent);
    d.backend = process(1, false);
    d.fault = Some(FaultPlan::new().kill_worker(0, 0));
    let killed = d.run();
    assert_eq!(killed.output, local.output, "kill must not change output");
    assert_eq!(killed.counters.workers_killed, 1);
    assert_eq!(killed.counters.task_retries, 1);
    assert_eq!(killed.counters.map_task_failures, 1);
    assert_eq!(killed.counters.reduce_task_failures, 0);
    assert_eq!(
        killed.counters.map_input_records, local.counters.map_input_records,
        "the killed attempt's counters must not be absorbed"
    );
    assert_clean(&parent);
}

/// SIGKILL mid-reduce: one worker slot runs the whole schedule (one
/// map split, then three reduces), and the kill lands on its third
/// assignment — a reduce task, after the map phase committed.
#[test]
fn worker_killed_mid_reduce_job_completes() {
    let path = write_data("kill-reduce", 2000, 7);
    let parent = tmp("kill-reduce-spills");
    std::fs::create_dir_all(&parent).unwrap();
    let mut local = drill(&path, &parent);
    local.backend = BackendSpec::Local;
    local.parallelism = 1;
    let local = local.run();

    let mut d = drill(&path, &parent);
    d.parallelism = 1; // exactly one map task
    d.backend = process(1, false);
    d.fault = Some(FaultPlan::new().kill_worker(0, 2));
    let killed = d.run();
    assert_eq!(killed.output, local.output);
    assert_eq!(killed.counters.workers_killed, 1);
    assert_eq!(killed.counters.task_retries, 1);
    assert_eq!(killed.counters.map_task_failures, 0, "map phase was done");
    assert_eq!(killed.counters.reduce_task_failures, 1);
    assert_eq!(
        killed.counters.reduce_input_groups, local.counters.reduce_input_groups,
        "groups counted once despite the killed attempt"
    );
    assert_clean(&parent);
}

/// Two kills against a two-attempt budget on the *same* task exhaust
/// it: the job fails typed, and still cleans up every worker and
/// attempt dir.
#[test]
fn repeated_kills_exhaust_attempts_typed() {
    let path = write_data("kill-fatal", 800, 5);
    let parent = tmp("kill-fatal-spills");
    std::fs::create_dir_all(&parent).unwrap();
    let mut d = drill(&path, &parent);
    d.parallelism = 1;
    d.backend = process(1, false);
    // Worker ids are monotonic across respawns: the replacement worker
    // is id 1, killed again on its first assignment — same map task.
    d.fault = Some(FaultPlan::new().kill_worker(0, 0).kill_worker(1, 0));
    let err = run_job(&d.build()).unwrap_err();
    match err {
        EngineError::TaskFailed { task, attempts, .. } => {
            assert_eq!(task, "map task 0");
            assert_eq!(attempts, 2);
        }
        other => panic!("expected TaskFailed, got {other}"),
    }
    assert_clean(&parent);
}

/// The speculative race: worker 0 straggles deterministically
/// (`slow:0:…`), the healthy worker duplicates its in-flight task, and
/// first-commit-by-rename wins — byte-identical output, speculative
/// attempts counted, zero retries.
#[test]
fn speculative_race_first_commit_wins() {
    let path = write_data("spec", 3000, 7);
    let parent = tmp("spec-spills");
    std::fs::create_dir_all(&parent).unwrap();
    let mut local = drill(&path, &parent);
    local.backend = BackendSpec::Local;
    local.parallelism = 4;
    let local = local.run();

    let mut d = drill(&path, &parent);
    d.parallelism = 4;
    d.backend = process(2, true);
    d.fault = Some(FaultPlan::new().slow_worker(0, 200));
    let raced = d.run();
    assert_eq!(raced.output, local.output, "speculation changed output");
    assert!(
        raced.counters.speculative_tasks >= 1,
        "straggler never speculated: {:?}",
        raced.counters
    );
    assert_eq!(
        raced.counters.task_retries, 0,
        "speculation duplicates, never retries"
    );
    assert_clean(&parent);
}

/// Kills compose with record-level injected faults and spilling
/// shuffles in one schedule, and the retry accounting stays exact.
/// A single-worker fleet pins worker 0's first assignment to map
/// task 0, so the kill/record failure split is deterministic.
#[test]
fn kill_composes_with_record_faults() {
    let path = write_data("compose", 3000, 7);
    let parent = tmp("compose-spills");
    std::fs::create_dir_all(&parent).unwrap();
    let mut local = drill(&path, &parent);
    local.backend = BackendSpec::Local;
    local.budget = Some(512);
    let local = local.run();

    let mut d = drill(&path, &parent);
    d.budget = Some(512);
    d.attempts = 3;
    d.backend = process(1, false);
    d.fault = Some(FaultPlan::new().kill_worker(0, 0).fail_reduce(1, 0, 2));
    let faulted = d.run();
    assert_eq!(faulted.output, local.output);
    assert_eq!(faulted.counters.workers_killed, 1);
    assert_eq!(faulted.counters.task_retries, 2);
    assert_eq!(faulted.counters.map_task_failures, 1);
    assert_eq!(faulted.counters.reduce_task_failures, 1);
    assert_clean(&parent);
}

// ---- join drills -----------------------------------------------------

fn build_schema() -> Arc<Schema> {
    Schema::new(
        "Build",
        vec![("url", FieldType::Str), ("rank", FieldType::Int)],
    )
    .into_arc()
}

fn probe_schema() -> Arc<Schema> {
    Schema::new(
        "Probe",
        vec![("url", FieldType::Str), ("ip", FieldType::Str)],
    )
    .into_arc()
}

/// Emit `(url, whole record)` — the join-side mapper shape.
fn emit_record_mapper() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.url
          emit r1, r0
          ret
        }
        "#,
    )
    .unwrap()
}

/// A build side of `n` urls and a probe side of `m` visits over `keys`
/// colliding urls (every probe url has a build match; some build urls
/// go unmatched).
fn write_join_data(name: &str, n: usize, m: usize, keys: usize) -> (PathBuf, PathBuf) {
    let bs = build_schema();
    let build: Vec<Record> = (0..n)
        .map(|i| {
            record(
                &bs,
                vec![format!("u{}", i % (keys * 2)).into(), Value::Int(i as i64)],
            )
        })
        .collect();
    let build_path = tmp(&format!("{name}-build"));
    write_seqfile(&build_path, bs, build).unwrap();

    let ps = probe_schema();
    let probe: Vec<Record> = (0..m)
        .map(|i| {
            record(
                &ps,
                vec![
                    format!("u{}", i % keys).into(),
                    format!("10.0.{}.{}", i / 250, i % 250).into(),
                ],
            )
        })
        .collect();
    let probe_path = tmp(&format!("{name}-probe"));
    write_seqfile(&probe_path, ps, probe).unwrap();
    (build_path, probe_path)
}

/// A join job under `plan`, built on the drill scaffolding.
fn join_job(
    build: &Path,
    probe: &Path,
    repartition: bool,
    parent: &Path,
    backend: BackendSpec,
) -> JobConfig {
    let build_spec = InputSpec::SeqFile {
        path: build.to_path_buf(),
    };
    let probe_spec = InputSpec::SeqFile {
        path: probe.to_path_buf(),
    };
    let mut j = JobConfig::ir_job(
        "join-drill",
        probe_spec.clone(),
        emit_record_mapper(),
        Builtin::Identity,
    )
    .with_reducers(3)
    .with_parallelism(1)
    .with_max_attempts(2)
    .with_spill_dir(parent)
    .with_backend(backend);
    if repartition {
        j.inputs = vec![
            InputBinding::ir_join(build_spec, emit_record_mapper(), JoinSide::Build),
            InputBinding::ir_join(probe_spec, emit_record_mapper(), JoinSide::Probe),
        ];
        j.reducer = Arc::new(Builtin::JoinTagged);
    } else {
        j.inputs = vec![InputBinding::ir_join(
            probe_spec,
            emit_record_mapper(),
            JoinSide::Broadcast(BroadcastSpec {
                input: build_spec,
                mapper: Arc::new(emit_record_mapper()),
            }),
        )];
    }
    j
}

/// SIGKILL the lone worker mid-join-reduce, on both physical plans: the
/// respawn completes the job with output byte-identical to the
/// fault-free local run of *either* plan, exactly one retry charged to
/// the reduce phase, and no orphaned attempt dirs or leaked workers.
#[test]
fn worker_killed_mid_join_reduce_both_plans() {
    let (build, probe) = write_join_data("kill-join", 40, 2000, 13);
    let parent = tmp("kill-join-spills");
    std::fs::create_dir_all(&parent).unwrap();

    // The reference: repartition, local, fault-free.
    let reference = run_job(&join_job(&build, &probe, true, &parent, BackendSpec::Local)).unwrap();
    assert!(!reference.output.is_empty(), "degenerate join drill");

    for repartition in [true, false] {
        // With one worker the schedule is pinned: map assignments come
        // first (two bindings under repartition, one under broadcast),
        // then three reduces — so the kill index of the first reduce
        // assignment is the binding count.
        let maps = if repartition { 2 } else { 1 };
        let mut j = join_job(&build, &probe, repartition, &parent, process(1, false));
        j = j.with_fault_plan(Arc::new(FaultPlan::new().kill_worker(0, maps)));
        let killed = run_job(&j).unwrap();
        assert_eq!(
            killed.output,
            reference.output,
            "kill changed {} join output",
            if repartition {
                "repartition"
            } else {
                "broadcast"
            }
        );
        assert_eq!(killed.counters.workers_killed, 1);
        assert_eq!(killed.counters.task_retries, 1, "exactly one retry");
        assert_eq!(killed.counters.map_task_failures, 0, "map phase was done");
        assert_eq!(killed.counters.reduce_task_failures, 1);
        assert_clean(&parent);
    }
}

/// A combiner configured on a join stage is rejected with the typed
/// `CombinerRejected` — on both backends, before any task runs — never
/// silently folded across tagged-union values.
#[test]
fn join_stage_rejects_declared_combiner_typed() {
    let (build, probe) = write_join_data("combine-join", 10, 50, 5);
    let parent = tmp("combine-join-spills");
    std::fs::create_dir_all(&parent).unwrap();
    for backend in [BackendSpec::Local, process(1, false)] {
        for repartition in [true, false] {
            let mut j = join_job(&build, &probe, repartition, &parent, backend.clone());
            j.combiner = Builtin::Sum.combiner();
            let err = run_job(&j).unwrap_err();
            match err {
                EngineError::CombinerRejected { reducer, reason } => {
                    assert_eq!(
                        reducer,
                        j.reducer.as_builtin().unwrap().name(),
                        "rejection names the configured reducer"
                    );
                    assert!(
                        reason.contains("tagged"),
                        "reason must explain the corruption risk: {reason}"
                    );
                }
                other => panic!("expected CombinerRejected, got {other}"),
            }
        }
        assert_clean(&parent);
    }
}

fn is_corrupt(e: &EngineError) -> bool {
    matches!(
        e,
        EngineError::Storage(StorageError::Corrupt { context, .. })
            if context == "task-protocol frame"
    )
}

proptest! {
    /// Random frame sequences round-trip exactly; any truncation or
    /// single-bit flip inside a frame surfaces as a typed `Corrupt`
    /// error (never a wrong payload, never a clean EOF).
    #[test]
    fn task_protocol_frames_survive_round_trip_and_type_corruption(
        frames in prop::collection::vec(
            (1u8..11, prop::collection::vec(any::<u8>(), 0..200)),
            1..5,
        ),
        cut_frac in 0.0f64..1.0,
        flip in (0usize..usize::MAX, 0u8..8),
    ) {
        let mut buf = Vec::new();
        for (tag, payload) in &frames {
            write_frame(&mut buf, *tag, payload).unwrap();
        }

        // Round trip.
        let mut r = &buf[..];
        for (tag, payload) in &frames {
            let got = read_frame(&mut r).unwrap().expect("frame present");
            prop_assert_eq!(got.0, *tag);
            prop_assert_eq!(&got.1, payload);
        }
        prop_assert_eq!(read_frame(&mut r).unwrap(), None, "clean eof after all frames");

        // Truncation mid-stream: reading the cut stream must end in
        // either fewer clean frames or a typed Corrupt — never junk.
        let cut = 1 + ((buf.len() - 2) as f64 * cut_frac) as usize;
        let mut r = &buf[..cut];
        let mut clean = 0usize;
        loop {
            match read_frame(&mut r) {
                Ok(Some((tag, payload))) => {
                    prop_assert_eq!(tag, frames[clean].0);
                    prop_assert_eq!(&payload, &frames[clean].1);
                    clean += 1;
                }
                Ok(None) => break, // cut landed exactly on a frame boundary
                Err(e) => {
                    prop_assert!(is_corrupt(&e), "truncation typed wrong: {}", e);
                    break;
                }
            }
        }
        prop_assert!(clean <= frames.len());

        // A bit flip anywhere must never let a *wrong payload* through:
        // either every decoded frame still carries its original payload
        // (the flip hit a tag byte), or decoding ends in a typed
        // storage error or an early end-of-stream. crc32 covers every
        // payload byte, so a silently altered payload is the one
        // outcome framing must make impossible.
        let (pos, bit) = flip;
        let pos = pos % buf.len();
        buf[pos] ^= 1 << bit;
        let mut r = &buf[..];
        let mut idx = 0usize;
        loop {
            match read_frame(&mut r) {
                Ok(Some((_tag, payload))) => {
                    prop_assert!(
                        idx < frames.len() && payload == frames[idx].1,
                        "bit flip at byte {} produced a wrong payload that passed crc", pos
                    );
                    idx += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(matches!(e, EngineError::Storage(_)),
                        "flip typed wrong: {}", e);
                    break;
                }
            }
        }
    }

    /// Oversized declared lengths are rejected before any allocation.
    #[test]
    fn oversized_frame_lengths_are_corrupt(extra in 1u64..1 << 20) {
        let mut buf = vec![3u8];
        mr_storage::varint::encode_u64(MAX_PAYLOAD as u64 + extra, &mut buf);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        prop_assert!(is_corrupt(&err), "{}", err);
    }
}
