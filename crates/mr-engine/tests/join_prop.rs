//! Property tests for the repartition-join reducer and the physical
//! join pipeline.
//!
//! The reducer-level property pins the semantics of
//! [`mr_engine::join::reduce_tagged_group`] under arbitrary
//! interleavings of tagged build/probe values: the output is exactly
//! the build×probe cross product, build-major, with arrival order
//! preserved on both sides. The job-level property runs a repartition
//! join over skewed, colliding URLs twice — fully resident and under a
//! tiny spill budget — and requires byte-identical output (tie order
//! must not shift across spill-run boundaries) that multiset-matches a
//! nested-loop reference join.

use std::path::PathBuf;
use std::sync::Arc;

use mr_engine::join::{reduce_tagged_group, tag_value, BUILD_TAG, PROBE_TAG};
use mr_engine::{run_job, Builtin, InputBinding, InputSpec, JobConfig, JoinSide};
use mr_ir::asm::parse_function;
use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::seqfile::write_seqfile;
use proptest::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-engine-join-prop-tests");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

// ---- reducer-level: arrival-order cross product ----------------------

/// One tagged value in a shuffled key group: side plus a payload that
/// records its arrival position so order violations are visible.
fn tagged_group() -> impl Strategy<Value = Vec<(bool, i64)>> {
    prop::collection::vec((any::<bool>(), 0i64..1000), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any interleaving of tagged values the reducer emits the
    /// build×probe cross product, build-major, with each side's
    /// arrival order preserved — and nothing else.
    #[test]
    fn reducer_emits_arrival_ordered_cross_product(group in tagged_group()) {
        let key = Value::from("k");
        let values: Vec<Value> = group
            .iter()
            .map(|(is_build, payload)| {
                let tag = if *is_build { BUILD_TAG } else { PROBE_TAG };
                tag_value(tag, Value::Int(*payload))
            })
            .collect();

        let mut out = Vec::new();
        reduce_tagged_group(&key, &values, &mut out).unwrap();

        let builds: Vec<i64> = group.iter().filter(|(b, _)| *b).map(|(_, p)| *p).collect();
        let probes: Vec<i64> = group.iter().filter(|(b, _)| !*b).map(|(_, p)| *p).collect();
        let mut expected: Vec<(Value, Value)> = Vec::new();
        for b in &builds {
            for p in &probes {
                expected.push((
                    key.clone(),
                    Value::list(vec![Value::Int(*b), Value::Int(*p)]),
                ));
            }
        }
        prop_assert_eq!(out, expected);
    }

    /// Untagged values are a typed reduce error, not silent garbage —
    /// the failure mode of wiring a plain binding into a join stage.
    #[test]
    fn reducer_rejects_untagged_values(v in 0i64..100) {
        let mut out = Vec::new();
        let err = reduce_tagged_group(
            &Value::from("k"),
            &[Value::Int(v)],
            &mut out,
        )
        .unwrap_err();
        prop_assert!(err.to_string().contains("tagged union"), "got: {err}");
    }
}

// ---- job-level: spill boundaries never reorder ties ------------------

fn build_schema() -> Arc<Schema> {
    Schema::new(
        "Build",
        vec![("url", FieldType::Str), ("rank", FieldType::Int)],
    )
    .into_arc()
}

fn probe_schema() -> Arc<Schema> {
    Schema::new(
        "Probe",
        vec![("url", FieldType::Str), ("visit", FieldType::Int)],
    )
    .into_arc()
}

/// Emit `(url, whole record)` — the join-side mapper shape.
fn emit_record_mapper() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.url
          emit r1, r0
          ret
        }
        "#,
    )
    .unwrap()
}

/// Skewed URL indices: most rows collide on `u0`, the rest spread over
/// a small tail — the shape that makes one reduce group much larger
/// than the others and forces multi-run groups under a spill budget.
fn skewed_url() -> impl Strategy<Value = usize> {
    (0usize..20).prop_map(|x| if x < 15 { 0 } else { 1 + x % 4 })
}

fn repartition_join(
    build: &std::path::Path,
    probe: &std::path::Path,
    name: &str,
    spill_budget: Option<usize>,
) -> JobConfig {
    let mut j = JobConfig::ir_job(
        name,
        InputSpec::SeqFile {
            path: probe.to_path_buf(),
        },
        emit_record_mapper(),
        Builtin::JoinTagged,
    )
    .with_reducers(2)
    .with_parallelism(2)
    .with_spill_dir(tmp(&format!("{name}-spills")));
    j.inputs = vec![
        InputBinding::ir_join(
            InputSpec::SeqFile {
                path: build.to_path_buf(),
            },
            emit_record_mapper(),
            JoinSide::Build,
        ),
        InputBinding::ir_join(
            InputSpec::SeqFile {
                path: probe.to_path_buf(),
            },
            emit_record_mapper(),
            JoinSide::Probe,
        ),
    ];
    if let Some(bytes) = spill_budget {
        j = j.with_shuffle_buffer(bytes);
    }
    j
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A repartition join over skewed, colliding URLs produces the
    /// same bytes fully resident and under a spill budget small enough
    /// to force multi-run merges — ties inside a key group must not be
    /// reordered by spill boundaries — and both match a nested-loop
    /// reference join as a multiset.
    #[test]
    fn spill_boundaries_never_reorder_join_ties(
        build_urls in prop::collection::vec(skewed_url(), 5..25),
        probe_urls in prop::collection::vec(skewed_url(), 40..120),
    ) {
        let bs = build_schema();
        let build_rows: Vec<Record> = build_urls
            .iter()
            .enumerate()
            .map(|(i, u)| record(&bs, vec![format!("u{u}").into(), Value::Int(i as i64)]))
            .collect();
        let build_path = tmp("prop-build");
        write_seqfile(&build_path, bs, build_rows.clone()).unwrap();

        let ps = probe_schema();
        let probe_rows: Vec<Record> = probe_urls
            .iter()
            .enumerate()
            .map(|(i, u)| record(&ps, vec![format!("u{u}").into(), Value::Int(i as i64)]))
            .collect();
        let probe_path = tmp("prop-probe");
        write_seqfile(&probe_path, ps, probe_rows.clone()).unwrap();

        let resident =
            run_job(&repartition_join(&build_path, &probe_path, "prop-resident", None)).unwrap();
        let spilled =
            run_job(&repartition_join(&build_path, &probe_path, "prop-spilled", Some(1 << 9)))
                .unwrap();
        prop_assert!(
            spilled.counters.spill_count > 0,
            "spill budget too generous to exercise merge boundaries"
        );
        prop_assert_eq!(&resident.output, &spilled.output);

        let mut reference: Vec<(Value, Value)> = Vec::new();
        for b in &build_rows {
            let url = b.get("url").unwrap();
            for p in &probe_rows {
                if p.get("url").unwrap() == url {
                    reference.push((
                        url.clone(),
                        Value::list(vec![
                            Value::from(b.clone()),
                            Value::from(p.clone()),
                        ]),
                    ));
                }
            }
        }
        reference.sort();
        let mut got = resident.output.clone();
        got.sort();
        prop_assert_eq!(got, reference);
    }
}
