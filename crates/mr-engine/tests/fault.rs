//! Fault-tolerant task execution, driven by deterministic injection:
//! retried map/reduce attempts produce output byte-identical to a
//! fault-free run, counters account failures exactly once, exhausted
//! tasks surface `EngineError::TaskFailed`, and no spill file outlives
//! the attempt (or job) that wrote it.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_engine::{run_job, Builtin, EngineError, FaultPlan, InputSpec, JobConfig, JobResult};
use mr_ir::asm::parse_function;
use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::fault::IoSite;
use mr_storage::seqfile::write_seqfile;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-engine-fault-tests");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn schema() -> Arc<Schema> {
    Schema::new("T", vec![("k", FieldType::Str), ("v", FieldType::Int)]).into_arc()
}

fn emit_kv_mapper() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.k
          r2 = field r0.v
          emit r1, r2
          ret
        }
        "#,
    )
    .unwrap()
}

fn write_data(name: &str, n: usize, keys: usize) -> PathBuf {
    let s = schema();
    let records: Vec<Record> = (0..n)
        .map(|i| {
            record(
                &s,
                vec![format!("k{}", i % keys).into(), Value::Int(i as i64 % 91)],
            )
        })
        .collect();
    let path = tmp(name);
    write_seqfile(&path, s, records).unwrap();
    path
}

struct JobSpec<'a> {
    path: &'a Path,
    reducer: Builtin,
    budget: Option<usize>,
    combining: bool,
    parallelism: usize,
    attempts: usize,
    fault: Option<FaultPlan>,
    spill_parent: Option<&'a Path>,
}

impl JobSpec<'_> {
    fn build(self) -> JobConfig {
        let mut j = JobConfig::ir_job(
            "fault-suite",
            InputSpec::SeqFile {
                path: self.path.to_path_buf(),
            },
            emit_kv_mapper(),
            self.reducer,
        )
        .with_reducers(3)
        .with_parallelism(self.parallelism)
        .with_max_attempts(self.attempts);
        j.shuffle_buffer_bytes = self.budget;
        if self.combining {
            j = j.with_declared_combiner();
        }
        if let Some(plan) = self.fault {
            j = j.with_fault_plan(Arc::new(plan));
        }
        if let Some(dir) = self.spill_parent {
            j = j.with_spill_dir(dir);
        }
        j
    }

    fn run(self) -> JobResult {
        run_job(&self.build()).unwrap()
    }
}

fn spec(path: &Path) -> JobSpec<'_> {
    JobSpec {
        path,
        reducer: Builtin::Sum,
        budget: None,
        combining: false,
        parallelism: 2,
        attempts: 1,
        fault: None,
        spill_parent: None,
    }
}

/// The acceptance scenario: an injected single-map-task failure with
/// `max_task_attempts ≥ 2` completes with identical output and nonzero
/// `task_retries`.
#[test]
fn retried_map_fault_matches_fault_free_output() {
    let path = write_data("map-retry", 3000, 7);
    let clean = spec(&path).run();
    let mut s = spec(&path);
    s.attempts = 2;
    s.fault = Some(FaultPlan::new().fail_map(0, 0, 50));
    let faulted = s.run();
    assert_eq!(faulted.output, clean.output, "retry must not change output");
    assert_eq!(faulted.counters.task_retries, 1);
    assert_eq!(faulted.counters.map_task_failures, 1);
    assert_eq!(faulted.counters.reduce_task_failures, 0);
    // A retried attempt never double-counts its input.
    assert_eq!(
        faulted.counters.map_input_records,
        clean.counters.map_input_records
    );
    assert_eq!(
        faulted.counters.map_output_records,
        clean.counters.map_output_records
    );
}

/// The other half of the acceptance criterion: with
/// `max_task_attempts = 1` the same fault is fatal and typed.
#[test]
fn unretried_map_fault_is_typed_task_failure() {
    let path = write_data("map-fatal", 500, 5);
    let mut s = spec(&path);
    s.fault = Some(FaultPlan::new().fail_map(0, 0, 0));
    let err = run_job(&s.build()).unwrap_err();
    match err {
        EngineError::TaskFailed {
            task,
            attempts,
            cause,
        } => {
            assert_eq!(task, "map task 0");
            assert_eq!(attempts, 1);
            assert!(matches!(*cause, EngineError::Injected(_)), "{cause}");
        }
        other => panic!("expected TaskFailed, got {other}"),
    }
}

#[test]
fn reduce_faults_retry_on_both_shuffle_paths() {
    let path = write_data("reduce-retry", 3000, 7);
    for budget in [None, Some(512)] {
        let mut clean = spec(&path);
        clean.budget = budget;
        let clean = clean.run();
        let mut s = spec(&path);
        s.budget = budget;
        s.attempts = 3;
        // Partition 0 fails twice (mid-stream, then immediately),
        // partition 2 once.
        s.fault = Some(
            FaultPlan::new()
                .fail_reduce(0, 0, 40)
                .fail_reduce(0, 1, 0)
                .fail_reduce(2, 0, 1),
        );
        let faulted = s.run();
        assert_eq!(faulted.output, clean.output, "budget {budget:?}");
        assert_eq!(faulted.counters.task_retries, 3);
        assert_eq!(faulted.counters.reduce_task_failures, 3);
        assert_eq!(
            faulted.counters.reduce_input_groups, clean.counters.reduce_input_groups,
            "groups counted once despite retries"
        );
    }
}

#[test]
fn exhausted_reduce_attempts_fail_typed() {
    let path = write_data("reduce-fatal", 300, 3);
    let mut s = spec(&path);
    s.attempts = 2;
    s.fault = Some(FaultPlan::new().fail_reduce_attempts(1, 2));
    let err = run_job(&s.build()).unwrap_err();
    match err {
        EngineError::TaskFailed { task, attempts, .. } => {
            assert_eq!(task, "reduce task 1");
            assert_eq!(attempts, 2);
        }
        other => panic!("expected TaskFailed, got {other}"),
    }
}

/// Transient IO errors in the sequence-file reader (map input) are
/// survived by a retry with identical output.
#[test]
fn transient_seq_read_fault_is_retried() {
    let path = write_data("seq-io", 2000, 5);
    let clean = spec(&path).run();
    let mut s = spec(&path);
    s.attempts = 2;
    s.fault = Some(FaultPlan::new().fail_io(IoSite::SeqRead, 17));
    let faulted = s.run();
    assert_eq!(faulted.output, clean.output);
    assert_eq!(faulted.counters.task_retries, 1);
    assert_eq!(faulted.counters.map_task_failures, 1);
}

/// Transient IO errors in the run-file reader (reduce-side merge) are
/// survived by a reduce retry with identical output.
#[test]
fn transient_run_read_fault_is_retried() {
    let path = write_data("run-io", 3000, 7);
    let mut clean = spec(&path);
    clean.budget = Some(256);
    let clean = clean.run();
    assert!(clean.counters.spill_count > 0, "budget must force spills");
    let mut s = spec(&path);
    s.budget = Some(256);
    s.attempts = 2;
    s.fault = Some(FaultPlan::new().fail_io(IoSite::RunRead, 3));
    let faulted = s.run();
    assert_eq!(faulted.output, clean.output);
    assert!(faulted.counters.task_retries >= 1);
    assert!(faulted.counters.reduce_task_failures >= 1);
}

/// Transient IO errors writing an attempt's spill runs fail that map
/// attempt; the retry rewrites the runs and commits once.
#[test]
fn transient_run_write_fault_is_retried() {
    let path = write_data("runw-io", 3000, 200);
    let mut clean = spec(&path);
    clean.budget = Some(256);
    clean.parallelism = 1;
    let clean = clean.run();
    assert!(clean.counters.spill_count > 0);
    let mut s = spec(&path);
    s.budget = Some(256);
    s.parallelism = 1;
    s.attempts = 2;
    s.fault = Some(FaultPlan::new().fail_io(IoSite::RunWrite, 0));
    let faulted = s.run();
    assert_eq!(faulted.output, clean.output);
    assert_eq!(faulted.counters.task_retries, 1);
    assert_eq!(faulted.counters.map_task_failures, 1);
    // No double-count: committed spill traffic matches the clean run.
    assert_eq!(
        faulted.counters.spilled_records,
        clean.counters.spilled_records
    );
}

/// Satellite: counter invariants under faults. `combine_in ≥
/// combine_out` always, and spill counters are unchanged by retried
/// attempts (no double-count) under a deterministic single-worker
/// schedule.
#[test]
fn counter_invariants_under_retries() {
    let path = write_data("counters", 4000, 9);
    let run_one = |fault: Option<FaultPlan>, attempts: usize| {
        let mut s = spec(&path);
        s.budget = Some(512);
        s.combining = true;
        s.parallelism = 1;
        s.attempts = attempts;
        s.fault = fault;
        s.run()
    };
    let clean = run_one(None, 1);
    let faulted = run_one(
        Some(
            FaultPlan::new()
                .fail_map(0, 0, 100)
                .fail_reduce(1, 0, 2)
                .fail_io(IoSite::SeqRead, 700),
        ),
        3,
    );
    for r in [&clean, &faulted] {
        assert!(r.counters.combine_in >= r.counters.combine_out);
        assert!(r.counters.combine_in > 0, "combiner engaged");
    }
    assert_eq!(faulted.output, clean.output);
    assert_eq!(
        faulted.counters.spilled_records, clean.counters.spilled_records,
        "retried attempts must not double-count spilled records"
    );
    assert_eq!(faulted.counters.spill_count, clean.counters.spill_count);
    assert_eq!(
        faulted.counters.map_input_records,
        clean.counters.map_input_records
    );
    assert_eq!(faulted.counters.combine_in, clean.counters.combine_in);
    assert!(faulted.counters.task_retries >= 2);
}

/// Satellite: the spill temp-file RAII guards. After a job that
/// errored out mid-flight (attempts exhausted between spill and
/// merge), and after a successful job with retried spilling attempts,
/// the spill parent directory is empty — no run or attempt file leaks.
#[test]
fn spill_files_never_leak() {
    let path = write_data("leak", 3000, 7);
    let parent = tmp("leak-spills");
    std::fs::create_dir_all(&parent).unwrap();
    let count_entries = || std::fs::read_dir(&parent).unwrap().count();

    // Failure path: a map task dies on every attempt after spilling.
    let mut s = spec(&path);
    s.budget = Some(128);
    s.attempts = 2;
    s.fault = Some(FaultPlan::new().fail_map(0, 0, 500).fail_map(0, 1, 500));
    s.spill_parent = Some(&parent);
    let err = run_job(&s.build()).unwrap_err();
    assert!(matches!(err, EngineError::TaskFailed { .. }));
    assert_eq!(count_entries(), 0, "failed job must clean its spill dir");

    // Success path with a retried, spilling attempt.
    let mut s = spec(&path);
    s.budget = Some(128);
    s.attempts = 2;
    s.fault = Some(FaultPlan::new().fail_map(0, 0, 500));
    s.spill_parent = Some(&parent);
    let result = s.run();
    assert_eq!(result.counters.task_retries, 1);
    assert!(result.counters.spill_count > 0);
    assert_eq!(count_entries(), 0, "successful job leaves nothing behind");
}

/// Faults interact cleanly with the whole configuration space: for
/// every (budget × combining × reducer) cell, a schedule retrying map
/// and reduce tasks yields output identical to the cell's fault-free
/// run.
#[test]
fn fault_schedules_compose_with_engine_axes() {
    let path = write_data("axes", 2500, 11);
    for budget in [None, Some(384)] {
        for combining in [false, true] {
            for reducer in [Builtin::Sum, Builtin::Count, Builtin::SumDropKey] {
                let mut clean = spec(&path);
                clean.reducer = reducer;
                clean.budget = budget;
                clean.combining = combining;
                let clean = clean.run();
                let mut s = spec(&path);
                s.reducer = reducer;
                s.budget = budget;
                s.combining = combining;
                s.attempts = 3;
                s.fault = Some(
                    FaultPlan::new()
                        .fail_map_attempts(0, 2)
                        .fail_reduce(1, 0, 0),
                );
                let faulted = s.run();
                assert_eq!(
                    faulted.output, clean.output,
                    "budget {budget:?}, combining {combining}, {reducer:?}"
                );
                assert_eq!(faulted.counters.task_retries, 3);
            }
        }
    }
}

/// A fault at exactly the task's record count fires at end-of-input —
/// after every record, before the attempt commits (the
/// commit-adjacent window) — and the retry reprocesses the split with
/// identical output.
#[test]
fn eof_fault_fires_after_all_records() {
    let path = write_data("eof", 100, 3);
    let mut clean = spec(&path);
    clean.parallelism = 1;
    let clean = clean.run();
    assert_eq!(clean.counters.map_input_records, 100);
    let mut s = spec(&path);
    s.parallelism = 1; // one split ⇒ the task sees all 100 records
    s.attempts = 2;
    s.fault = Some(FaultPlan::new().fail_map(0, 0, 100));
    let faulted = s.run();
    assert_eq!(faulted.counters.task_retries, 1, "EOF fault must fire");
    assert_eq!(faulted.output, clean.output);
    assert_eq!(faulted.counters.map_input_records, 100);
}

/// A fault scheduled at a record the task never reaches simply does
/// not fire.
#[test]
fn out_of_range_faults_never_fire() {
    let path = write_data("range", 100, 3);
    let mut s = spec(&path);
    s.attempts = 2;
    s.fault = Some(
        FaultPlan::new()
            .fail_map(0, 0, 1_000_000)
            .fail_reduce(0, 0, 1_000_000)
            .fail_map(999, 0, 0),
    );
    let result = s.run();
    assert_eq!(result.counters.task_retries, 0);
    assert_eq!(result.counters.map_task_failures, 0);
    assert_eq!(result.counters.reduce_task_failures, 0);
}

/// Reduce faults at record 0 fire even for empty partitions — every
/// reduce task is a real, retryable unit.
#[test]
fn empty_partition_reduce_fault_fires_and_retries() {
    let s = schema();
    let path = tmp("empty-part");
    // One key ⇒ at most one nonempty partition out of three.
    let records: Vec<Record> = (0..50)
        .map(|i| record(&s, vec!["only-key".into(), Value::Int(i)]))
        .collect();
    write_seqfile(&path, s, records).unwrap();
    let mut with_fault = spec(&path);
    with_fault.attempts = 2;
    with_fault.fault = Some(
        FaultPlan::new()
            .fail_reduce_attempts(0, 1)
            .fail_reduce_attempts(1, 1)
            .fail_reduce_attempts(2, 1),
    );
    let result = with_fault.run();
    assert_eq!(result.counters.reduce_task_failures, 3);
    assert_eq!(result.counters.task_retries, 3);
    assert_eq!(result.output.len(), 1);
}
