//! The compressed-shuffle contract: with any `ShuffleCompression`
//! codec, spilled jobs produce output byte-identical to the
//! uncompressed, unbounded path — across combiners, hierarchical
//! compaction, task retries, and injected IO faults inside the
//! compressed streams — while the `spill_bytes_raw` /
//! `spill_bytes_written` counters expose what the codec saved.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_engine::{run_job, Builtin, FaultPlan, InputSpec, JobConfig, ShuffleCompression};
use mr_ir::asm::parse_function;
use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::fault::IoSite;
use mr_storage::seqfile::write_seqfile;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-engine-compress-tests");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn schema() -> Arc<Schema> {
    Schema::new("T", vec![("k", FieldType::Str), ("v", FieldType::Int)]).into_arc()
}

fn emit_kv_mapper() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.k
          r2 = field r0.v
          emit r1, r2
          ret
        }
        "#,
    )
    .unwrap()
}

/// A low-cardinality input: the redundancy the codecs exploit.
fn low_cardinality_input(name: &str, n: i64, keys: i64) -> PathBuf {
    let s = schema();
    let records: Vec<Record> = (0..n)
        .map(|i| {
            record(
                &s,
                vec![
                    format!("http://site.example.com/page/{:03}", i % keys).into(),
                    Value::Int(i % 11),
                ],
            )
        })
        .collect();
    let path = tmp(name);
    write_seqfile(&path, s, records).unwrap();
    path
}

fn job(input: &Path, budget: Option<usize>, codec: ShuffleCompression) -> JobConfig {
    let mut j = JobConfig::ir_job(
        "compress-test",
        InputSpec::SeqFile {
            path: input.to_path_buf(),
        },
        emit_kv_mapper(),
        Builtin::Sum,
    )
    .with_reducers(3)
    .with_parallelism(2)
    .with_shuffle_codec(codec);
    j.shuffle_buffer_bytes = budget;
    j
}

/// Every codec produces output byte-identical to the uncompressed,
/// unbounded baseline, and the byte counters prove compression
/// actually engaged (or didn't, for `None`/`Raw`).
#[test]
fn every_codec_matches_uncompressed_output() {
    let input = low_cardinality_input("identity", 3000, 7);
    let baseline = run_job(&job(&input, None, ShuffleCompression::None)).unwrap();
    for codec in ShuffleCompression::ALL {
        let capped = run_job(&job(&input, Some(512), codec)).unwrap();
        assert_eq!(capped.output, baseline.output, "{codec}");
        let c = &capped.counters;
        assert!(c.spill_count > 0, "{codec}: the budget must force spills");
        assert!(c.spill_bytes_raw > 0, "{codec}");
        match codec {
            ShuffleCompression::None => {
                assert_eq!(c.spill_bytes_written, c.spill_bytes_raw, "{codec}")
            }
            ShuffleCompression::Raw => assert!(
                // Frame headers cost a little; CRCs buy detection.
                c.spill_bytes_written >= c.spill_bytes_raw,
                "{codec}"
            ),
            ShuffleCompression::Dict
            | ShuffleCompression::Delta
            | ShuffleCompression::DictTrained => assert!(
                c.spill_bytes_written < c.spill_bytes_raw,
                "{codec}: {} written vs {} raw",
                c.spill_bytes_written,
                c.spill_bytes_raw
            ),
        }
        if codec == ShuffleCompression::DictTrained {
            assert!(c.dict_trained >= 1, "the job must train a dictionary");
        } else {
            assert_eq!(c.dict_trained + c.dict_reused, 0, "{codec}");
        }
        assert!(
            capped.compression_ratio().is_some(),
            "{codec}: spilled jobs report a ratio"
        );
    }
}

/// Compressed frames survive the attempt/commit protocol: scheduled
/// task failures and transient IO faults *inside* the compressed
/// streams (`block-read` fires per frame) retry idempotently and the
/// output stays byte-identical to the fault-free uncompressed run.
#[test]
fn compressed_frames_commit_and_retry_idempotently() {
    let input = low_cardinality_input("retry", 2500, 9);
    let baseline = run_job(&job(&input, None, ShuffleCompression::None)).unwrap();
    let schedules: Vec<FaultPlan> = vec![
        FaultPlan::new().fail_map(0, 0, 5),
        FaultPlan::new().fail_reduce(0, 0, 0),
        FaultPlan::new()
            .fail_io(IoSite::BlockRead, 1)
            .fail_io(IoSite::BlockWrite, 3),
        FaultPlan::new()
            .fail_map(1, 0, 0)
            .fail_reduce(1, 0, 2)
            .fail_io(IoSite::RunRead, 2)
            .fail_io(IoSite::BlockRead, 0),
    ];
    for codec in [
        ShuffleCompression::Dict,
        ShuffleCompression::Delta,
        ShuffleCompression::DictTrained,
    ] {
        for (i, plan) in schedules.iter().enumerate() {
            let mut j = job(&input, Some(400), codec);
            j.max_task_attempts = 3;
            j.fault_plan = Some(Arc::new(plan.clone()));
            let result = run_job(&j).unwrap_or_else(|e| panic!("{codec} schedule {i}: {e}"));
            assert_eq!(
                result.output, baseline.output,
                "{codec} schedule {i} diverged"
            );
            assert!(
                result.counters.task_retries > 0,
                "{codec} schedule {i}: the schedule must actually bite"
            );
        }
    }
}

/// An injected `block-read` fault with no retries surfaces as a typed
/// task failure — compression does not turn IO errors into bad data.
#[test]
fn unretried_block_fault_fails_the_job() {
    let input = low_cardinality_input("failfast", 1200, 5);
    let mut j = job(&input, Some(256), ShuffleCompression::Dict);
    j.fault_plan = Some(Arc::new(FaultPlan::new().fail_io(IoSite::BlockRead, 0)));
    match run_job(&j) {
        Err(mr_engine::EngineError::TaskFailed { .. }) => {}
        other => panic!("expected TaskFailed, got {other:?}"),
    }
}

/// Hierarchical compaction rewrites compressed runs into compressed
/// intermediates (> MERGE_FACTOR runs per partition) and the merged
/// output is still byte-identical.
#[test]
fn compaction_rewrites_stay_compressed_and_identical() {
    let input = low_cardinality_input("compact", 1500, 6);
    let baseline = run_job(&job(&input, None, ShuffleCompression::None)).unwrap();
    for codec in [
        ShuffleCompression::None,
        ShuffleCompression::Dict,
        ShuffleCompression::DictTrained,
    ] {
        // One worker + one reducer + a starvation budget: every few
        // records spill, so the single partition collects far more
        // than MERGE_FACTOR runs and must compact.
        let mut j = job(&input, Some(64), codec)
            .with_reducers(1)
            .with_parallelism(1);
        j.sort_output = true;
        let result = run_job(&j).unwrap();
        assert!(
            result.counters.spill_count > mr_engine::merge::MERGE_FACTOR as u64,
            "{codec}: wanted > {} runs, got {}",
            mr_engine::merge::MERGE_FACTOR,
            result.counters.spill_count
        );
        assert_eq!(result.output, baseline.output, "{codec}");
    }
}

/// The cross-job dedup acceptance: with a persistent dictionary store,
/// a second job over identical data hashes to the same training corpus,
/// finds the stored artifact, and trains zero new dictionaries — the
/// store holds exactly one content-addressed file after both jobs.
/// (Corpus identity is deterministic at `map_parallelism = 1`; under
/// parallel schedules the store is a best-effort cache.)
#[test]
fn second_job_over_identical_data_trains_nothing() {
    let input = low_cardinality_input("dict-store", 2000, 8);
    let store = tmp("dict-store-dir");
    let run = || {
        let mut j = job(&input, Some(400), ShuffleCompression::DictTrained).with_parallelism(1);
        j.dict_store = Some(store.clone());
        run_job(&j).unwrap()
    };

    let first = run();
    assert_eq!(first.counters.dict_trained, 1, "first job trains");
    let count_store = || std::fs::read_dir(&store).unwrap().count();
    assert_eq!(count_store(), 1, "one content-addressed artifact saved");

    let second = run();
    assert_eq!(
        second.counters.dict_trained, 0,
        "identical corpus must hit the store, not retrain"
    );
    assert!(second.counters.dict_reused >= 1);
    assert_eq!(count_store(), 1, "no new artifact appears");
    assert_eq!(second.output, first.output);
}

/// Train-once discipline under retries: a map task that fails *after*
/// its first spill trained and committed the job dictionary must, on
/// retry, *reuse* the committed artifact — never train a second one.
/// The committed counters absorb successful attempts only, so a clean
/// retry signature is `dict_trained == 0 && dict_reused >= 1`.
#[test]
fn retried_map_task_reuses_the_committed_dictionary() {
    let input = low_cardinality_input("dict-retry", 2500, 9);
    let baseline = run_job(&job(&input, None, ShuffleCompression::None)).unwrap();

    // Fault-free reference first: one map slot trains exactly once.
    let clean =
        run_job(&job(&input, Some(400), ShuffleCompression::DictTrained).with_parallelism(1))
            .unwrap();
    assert_eq!(clean.counters.dict_trained, 1, "one slot, one training");
    assert_eq!(clean.output, baseline.output);

    let schedules: Vec<FaultPlan> = vec![
        // Record-level failure far past the first spill.
        FaultPlan::new().fail_map(0, 0, 2000),
        // IO faults inside the compressed block streams.
        FaultPlan::new()
            .fail_io(IoSite::BlockWrite, 6)
            .fail_io(IoSite::BlockRead, 1),
    ];
    for (i, plan) in schedules.iter().enumerate() {
        let mut j = job(&input, Some(400), ShuffleCompression::DictTrained).with_parallelism(1);
        j.max_task_attempts = 3;
        j.fault_plan = Some(Arc::new(plan.clone()));
        let result = run_job(&j).unwrap_or_else(|e| panic!("schedule {i}: {e}"));
        assert_eq!(result.output, baseline.output, "schedule {i} diverged");
        assert!(result.counters.task_retries > 0, "schedule {i} must bite");
        let c = &result.counters;
        assert_eq!(
            c.dict_trained, 0,
            "schedule {i}: the committed (successful) attempts must reuse \
             the dictionary the failed first attempt committed, not retrain"
        );
        assert!(c.dict_reused >= 1, "schedule {i}: reuse must be recorded");
    }
}

/// The codec composes with map-side combining: folding happens above
/// the block layer, so the combined + compressed pipeline still
/// matches the plain baseline byte for byte.
#[test]
fn codec_composes_with_combiners() {
    let input = low_cardinality_input("combine", 4000, 5);
    let baseline = run_job(&job(&input, None, ShuffleCompression::None)).unwrap();
    for codec in [
        ShuffleCompression::Dict,
        ShuffleCompression::Delta,
        ShuffleCompression::DictTrained,
    ] {
        let j = job(&input, Some(512), codec).with_declared_combiner();
        let result = run_job(&j).unwrap();
        assert_eq!(result.output, baseline.output, "{codec}");
        assert!(result.counters.combine_in > result.counters.combine_out);
    }
}
