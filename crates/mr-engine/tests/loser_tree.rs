//! Property tests for the loser-tree k-way merge: for arbitrary run
//! sets it must produce exactly the sequence the [`KWayMerge`] binary
//! heap produces — which is itself the stable sort of the
//! concatenation, because both break key ties by run index. The heap
//! stays in the tree as the executable reference precisely so this
//! differential suite can hold the replacement to byte-equivalence.

use std::sync::Arc;

use proptest::prelude::*;

use mr_engine::{KWayMerge, LoserTree, RunStream};
use mr_ir::value::Value;

/// Sorted runs from a proptest-generated ragged list of i64 keys.
fn make_runs(raw: &[Vec<i64>]) -> Vec<Vec<(Value, Value)>> {
    raw.iter()
        .enumerate()
        .map(|(run, keys)| {
            let mut pairs: Vec<(Value, Value)> = keys
                .iter()
                .enumerate()
                // The value encodes (run, position) so equal keys from
                // different runs stay distinguishable in the output —
                // any tie-break deviation changes the merged sequence.
                .map(|(i, k)| (Value::Int(*k), Value::str(format!("r{run}p{i}"))))
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            pairs
        })
        .collect()
}

fn streams_of(runs: &[Vec<(Value, Value)>]) -> Vec<RunStream> {
    runs.iter()
        .map(|r| RunStream::shared(Arc::new(r.clone())))
        .collect()
}

fn collect(iter: impl Iterator<Item = mr_engine::Result<(Value, Value)>>) -> Vec<(Value, Value)> {
    iter.map(|r| r.unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loser tree ≡ heap ≡ stable sort, for every width the generator
    /// produces (including 0, 1, and non-power-of-two widths) and for
    /// key distributions heavy with cross-run ties.
    #[test]
    fn loser_tree_matches_heap_on_random_runs(
        raw in proptest::collection::vec(
            proptest::collection::vec(-8i64..8, 0..40),
            0..12,
        ),
    ) {
        let runs = make_runs(&raw);

        let tree = collect(LoserTree::new(streams_of(&runs)).unwrap());
        let heap = collect(KWayMerge::new(streams_of(&runs)).unwrap());
        prop_assert_eq!(&tree, &heap, "loser tree diverged from the heap");

        // Both must equal the stable sort of run-order concatenation:
        // ties break by run index, then by position within the run.
        let mut reference: Vec<(Value, Value)> = runs.concat();
        reference.sort_by(|a, b| a.0.cmp(&b.0));
        prop_assert_eq!(&tree, &reference, "merge is not the stable sort");
    }

    /// Pulling through the tree is oblivious to how pairs are sliced
    /// into runs: re-chunking the same sorted data yields the same
    /// sequence of keys (values differ — they encode provenance).
    #[test]
    fn chunking_is_invisible_to_key_order(
        keys in proptest::collection::vec(-20i64..20, 1..120),
        cut in 1usize..6,
    ) {
        let mut sorted = keys.clone();
        sorted.sort_unstable();

        // One big run vs `cut`-way round-robin split of the same keys.
        let whole = make_runs(std::slice::from_ref(&keys));
        let mut parts: Vec<Vec<i64>> = vec![Vec::new(); cut];
        for (i, k) in keys.iter().enumerate() {
            parts[i % cut].push(*k);
        }
        let split = make_runs(&parts);

        let whole_keys: Vec<i64> = collect(LoserTree::new(streams_of(&whole)).unwrap())
            .into_iter()
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        let split_keys: Vec<i64> = collect(LoserTree::new(streams_of(&split)).unwrap())
            .into_iter()
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        prop_assert_eq!(&whole_keys, &sorted);
        prop_assert_eq!(&split_keys, &sorted);
    }
}
