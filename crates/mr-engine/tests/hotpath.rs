//! Hot-path integration tests: buffer-pool loan accounting across
//! whole jobs (success, retries, injected I/O errors, exhausted
//! attempts) and byte-identity of the spill/merge pipeline across
//! writer-thread counts and pool configurations.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_engine::{
    run_job, BufferPool, Builtin, FaultPlan, InputSpec, JobConfig, ShuffleCompression,
};
use mr_ir::asm::parse_function;
use mr_ir::record::record;
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::seqfile::write_seqfile;
use mr_storage::IoSite;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-engine-hotpath");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn write_input(name: &str, n: i64) -> PathBuf {
    let schema = Schema::new("T", vec![("k", FieldType::Str), ("v", FieldType::Int)]).into_arc();
    let path = tmp(name);
    let records: Vec<_> = (0..n)
        .map(|i| {
            record(
                &schema,
                vec![format!("key-{}", i % 17).into(), Value::Int(i % 50)],
            )
        })
        .collect();
    write_seqfile(&path, schema, records).unwrap();
    path
}

fn sum_mapper() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.k
          r2 = field r0.v
          emit r1, r2
          ret
        }
        "#,
    )
    .unwrap()
}

fn spilling_job(path: &Path, pool: &Arc<BufferPool>) -> JobConfig {
    JobConfig::ir_job(
        "hotpath",
        InputSpec::SeqFile {
            path: path.to_path_buf(),
        },
        sum_mapper(),
        Builtin::Sum,
    )
    .with_shuffle_buffer(512)
    .with_buffer_pool(Arc::clone(pool))
}

#[test]
fn pool_balances_after_clean_spilling_job() {
    let path = write_input("clean", 2000);
    let pool = BufferPool::new();
    let result = run_job(&spilling_job(&path, &pool)).unwrap();
    assert!(result.counters.spill_count > 0, "budget forces spills");
    assert_eq!(pool.outstanding(), 0, "every pooled loan returned");
    let stats = pool.stats();
    assert!(stats.hits > 0, "steady state reuses buffers: {stats:?}");
}

#[test]
fn pool_stays_warm_across_jobs() {
    let path = write_input("warm", 1500);
    let pool = BufferPool::new();
    run_job(&spilling_job(&path, &pool)).unwrap();
    let after_first = pool.stats();
    run_job(&spilling_job(&path, &pool)).unwrap();
    let after_second = pool.stats();
    assert_eq!(pool.outstanding(), 0);
    // The second job starts against a populated pool, so its share of
    // hits only grows.
    assert!(after_second.hits > after_first.hits);
}

#[test]
fn pool_balances_through_retried_failures() {
    let path = write_input("retry", 2000);
    let pool = BufferPool::new();
    // A map attempt dies mid-split (staging part-full), a reduce
    // attempt dies at its first record, and one run-file write fails —
    // all retried to success.
    let plan = FaultPlan::new()
        .fail_map(0, 0, 150)
        .fail_reduce(1, 0, 0)
        .fail_io(IoSite::RunWrite, 2);
    let job = spilling_job(&path, &pool)
        .with_max_attempts(3)
        .with_fault_plan(Arc::new(plan));
    let faulted = run_job(&job).unwrap();
    assert!(faulted.counters.task_retries > 0, "faults actually fired");
    assert_eq!(pool.outstanding(), 0, "failed attempts recycle their loans");

    // Same output as the fault-free run off a fresh pool.
    let clean = run_job(&spilling_job(&path, &BufferPool::new())).unwrap();
    assert_eq!(faulted.output, clean.output);
}

#[test]
fn pool_balances_when_the_job_fails() {
    let path = write_input("fatal", 1000);
    let pool = BufferPool::new();
    // Every attempt of map task 0 dies after spill-worthy staging.
    let plan = FaultPlan::new().fail_map_attempts(0, 2);
    let job = spilling_job(&path, &pool)
        .with_parallelism(2)
        .with_max_attempts(2)
        .with_fault_plan(Arc::new(plan));
    run_job(&job).unwrap_err();
    assert_eq!(
        pool.outstanding(),
        0,
        "even an aborted job returns every loan"
    );
}

#[test]
fn output_identical_across_writer_threads_and_pools() {
    let path = write_input("ident", 2500);
    let reference = {
        let job = JobConfig::ir_job(
            "hotpath-ref",
            InputSpec::SeqFile { path: path.clone() },
            sum_mapper(),
            Builtin::Sum,
        );
        run_job(&job).unwrap().output
    };
    for codec in ShuffleCompression::ALL {
        for threads in [0usize, 1, 2, 4] {
            for pool in [
                BufferPool::new(),
                BufferPool::disabled(),
                BufferPool::with_capacity(1),
            ] {
                let job = spilling_job(&path, &pool)
                    .with_shuffle_codec(codec)
                    .with_spill_writer_threads(threads);
                let result = run_job(&job).unwrap();
                assert_eq!(
                    result.output, reference,
                    "codec {codec:?}, {threads} writer threads"
                );
                assert!(result.counters.spill_count > 0);
                assert_eq!(pool.outstanding(), 0);
            }
        }
    }
}
