//! Property-based tests for the execution fabric: determinism across
//! parallelism levels and reducer counts, for arbitrary inputs — and
//! under arbitrary deterministic fault schedules.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use mr_engine::{run_job, Builtin, FaultPlan, InputSpec, JobConfig};
use mr_ir::asm::parse_function;
use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::seqfile::write_seqfile;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-engine-proptests");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn schema() -> Arc<Schema> {
    Schema::new("T", vec![("k", FieldType::Str), ("v", FieldType::Int)]).into_arc()
}

fn group_sum_mapper() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.k
          r2 = field r0.v
          emit r1, r2
          ret
        }
        "#,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Group-by sums are identical for every (parallelism, reducers)
    /// combination and match a sequential reference computation.
    #[test]
    fn job_output_independent_of_parallelism(
        pairs in proptest::collection::vec(("[a-e]", -100i64..100), 0..200),
    ) {
        let s = schema();
        let records: Vec<Record> = pairs
            .iter()
            .map(|(k, v)| record(&s, vec![k.as_str().into(), Value::Int(*v)]))
            .collect();
        let path = tmp("par");
        write_seqfile(&path, Arc::clone(&s), records).unwrap();

        // Sequential reference.
        let mut expected: std::collections::BTreeMap<String, i64> = Default::default();
        for (k, v) in &pairs {
            *expected.entry(k.clone()).or_default() += v;
        }

        for (par, reducers) in [(1usize, 1usize), (2, 3), (8, 1), (4, 7)] {
            let job = JobConfig::ir_job(
                "sum",
                InputSpec::SeqFile { path: path.clone() },
                group_sum_mapper(),
                Builtin::Sum,
            )
            .with_parallelism(par)
            .with_reducers(reducers);
            let result = run_job(&job).unwrap();
            let got: std::collections::BTreeMap<String, i64> = result
                .output
                .iter()
                .map(|(k, v)| {
                    (
                        k.as_str().unwrap().to_string(),
                        v.as_int().unwrap(),
                    )
                })
                .collect();
            prop_assert_eq!(&got, &expected, "par={} reducers={}", par, reducers);
            prop_assert_eq!(
                result.counters.map_input_records as usize,
                pairs.len()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// Counters are conserved: map outputs equal the sum of reduce
    /// group sizes, and every record is read exactly once.
    #[test]
    fn counter_conservation(
        pairs in proptest::collection::vec(("[a-c]", 0i64..10), 1..100),
        reducers in 1usize..6,
    ) {
        let s = schema();
        let records: Vec<Record> = pairs
            .iter()
            .map(|(k, v)| record(&s, vec![k.as_str().into(), Value::Int(*v)]))
            .collect();
        let path = tmp("conserve");
        write_seqfile(&path, Arc::clone(&s), records).unwrap();
        let job = JobConfig::ir_job(
            "count",
            InputSpec::SeqFile { path: path.clone() },
            group_sum_mapper(),
            Builtin::Count,
        )
        .with_reducers(reducers);
        let result = run_job(&job).unwrap();
        let c = result.counters;
        prop_assert_eq!(c.map_input_records as usize, pairs.len());
        prop_assert_eq!(c.map_output_records as usize, pairs.len());
        // Count reducer: one output per group; group counts sum to the
        // map output count.
        let total: i64 = result.output.iter().map(|(_, v)| v.as_int().unwrap()).sum();
        prop_assert_eq!(total as usize, pairs.len());
        prop_assert_eq!(c.reduce_output_records, c.reduce_input_groups);
        std::fs::remove_file(&path).ok();
    }

    /// The fault-tolerance contract, property-tested: for random fault
    /// schedules × shuffle budgets × map parallelism × builtin
    /// reducers, output is byte-identical to the fault-free in-memory
    /// run and `task_retries` matches the schedule exactly.
    #[test]
    fn fault_schedules_preserve_output_and_retry_counts(
        pairs in proptest::collection::vec(("[a-e]", -100i64..100), 1..160),
        seed in 0u64..10_000,
        budget in prop_oneof![Just(None), (96usize..1024).prop_map(Some)],
        parallelism in 1usize..4,
        reducer_pick in 0usize..4,
    ) {
        let reducer = [Builtin::Sum, Builtin::Count, Builtin::Max, Builtin::Min][reducer_pick];
        let s = schema();
        let records: Vec<Record> = pairs
            .iter()
            .map(|(k, v)| record(&s, vec![k.as_str().into(), Value::Int(*v)]))
            .collect();
        let path = tmp("fault");
        write_seqfile(&path, Arc::clone(&s), records).unwrap();

        let num_reducers = 3usize;
        let base = || JobConfig::ir_job(
                "fault-prop",
                InputSpec::SeqFile { path: path.clone() },
                group_sum_mapper(),
                reducer,
            )
            .with_parallelism(parallelism)
            .with_reducers(num_reducers);

        // Fault-free, fully-resident reference.
        let reference = run_job(&base()).unwrap();

        // A seeded schedule: each task gets 0..=2 immediately-failing
        // attempts; 3 allowed attempts means every task eventually
        // commits and the retry count is exactly predictable.
        let map_tasks = InputSpec::SeqFile { path: path.clone() }
            .open(parallelism)
            .unwrap()
            .len();
        let max_attempts = 3;
        let plan = FaultPlan::scattered(seed, map_tasks, num_reducers, max_attempts - 1);
        prop_assert!(!plan.exhausts(map_tasks, num_reducers, max_attempts));
        let expected_retries = plan.expected_retries(map_tasks, num_reducers, max_attempts);

        let mut job = base().with_max_attempts(max_attempts).with_fault_plan(Arc::new(plan));
        job.shuffle_buffer_bytes = budget;
        let faulted = run_job(&job).unwrap();

        prop_assert_eq!(
            &faulted.output, &reference.output,
            "seed {} budget {:?} par {} {:?}", seed, budget, parallelism, reducer
        );
        prop_assert_eq!(faulted.counters.task_retries, expected_retries);
        prop_assert_eq!(
            faulted.counters.map_task_failures + faulted.counters.reduce_task_failures,
            expected_retries,
            "every scheduled failure was retried exactly once"
        );
        prop_assert_eq!(faulted.counters.map_input_records as usize, pairs.len());
        std::fs::remove_file(&path).ok();
    }
}
