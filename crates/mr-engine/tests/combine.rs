//! The map-side combining contract: with a combiner plugged in, a job —
//! spilling or not — produces output byte-identical to the combiner-free
//! run, while the spill counters collapse on low-cardinality group-bys
//! and `combine_in > combine_out` proves pairs were folded.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;

use mr_engine::{run_job, Builtin, InputSpec, JobConfig, JobResult};
use mr_ir::asm::parse_function;
use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::seqfile::write_seqfile;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-engine-combine-tests");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn schema() -> Arc<Schema> {
    Schema::new("T", vec![("k", FieldType::Str), ("v", FieldType::Int)]).into_arc()
}

fn emit_kv_mapper() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.k
          r2 = field r0.v
          emit r1, r2
          ret
        }
        "#,
    )
    .unwrap()
}

fn write_pairs(name: &str, pairs: &[(String, i64)]) -> PathBuf {
    let s = schema();
    let records: Vec<Record> = pairs
        .iter()
        .map(|(k, v)| record(&s, vec![k.as_str().into(), Value::Int(*v)]))
        .collect();
    let path = tmp(name);
    write_seqfile(&path, s, records).unwrap();
    path
}

fn run(path: &Path, reducer: Builtin, budget: Option<usize>, combining: bool) -> JobResult {
    let mut j = JobConfig::ir_job(
        "combine-contract",
        InputSpec::SeqFile {
            path: path.to_path_buf(),
        },
        emit_kv_mapper(),
        reducer,
    )
    .with_reducers(2)
    // Pin the worker count so each worker's staging share is large
    // enough to hold many pairs — the regime combiners exist for (a
    // share of a few bytes flushes pairs one at a time and leaves
    // nothing to fold).
    .with_parallelism(2);
    j.shuffle_buffer_bytes = budget;
    if combining {
        j = j.with_declared_combiner();
        assert!(j.combiner.is_some(), "{reducer:?} declares a combiner");
    }
    run_job(&j).unwrap()
}

/// The acceptance-criteria test: a low-cardinality group-by forced
/// through ≥3 spills per reducer produces byte-identical output with
/// the combiner active, while spilled records and bytes drop ≥5× and
/// the combine counters prove the folding.
#[test]
fn spilling_combined_sum_is_byte_identical_and_5x_smaller() {
    let num_reducers = 2u64;
    // 6000 pairs over 8 distinct keys: the shape combiners exist for.
    let pairs: Vec<(String, i64)> = (0..6000)
        .map(|i| (format!("key-{}", i % 8), i % 101))
        .collect();
    let path = write_pairs("accept", &pairs);

    // 2 KiB across 2 workers + 2 reducers: each worker stages ~40 pairs
    // per flush (folded to ≤8 partials) and each bucket spills ~40
    // resident pairs per run — ≥3 spills per reducer either way.
    let plain = run(&path, Builtin::Sum, Some(2048), false);
    let combined = run(&path, Builtin::Sum, Some(2048), true);

    assert!(
        plain.counters.spill_count >= 3 * num_reducers,
        "baseline must spill ≥3 times per reducer, got {}",
        plain.counters.spill_count
    );
    assert_eq!(plain.output, combined.output, "output must be identical");

    // The whole point: the shuffle's disk traffic collapses.
    assert!(
        plain.counters.spilled_records >= 5 * combined.counters.spilled_records.max(1),
        "spilled records {} vs {}",
        plain.counters.spilled_records,
        combined.counters.spilled_records
    );
    assert!(
        plain.counters.spill_bytes_written >= 5 * combined.counters.spill_bytes_written.max(1),
        "spill bytes {} vs {}",
        plain.counters.spill_bytes_written,
        combined.counters.spill_bytes_written
    );

    // Counter hygiene: folding happened, and only on the combining run.
    assert!(combined.counters.combine_in > combined.counters.combine_out);
    assert_eq!(plain.counters.combine_in, 0);
    assert_eq!(plain.counters.combine_out, 0);
    // Emission-side counters are pre-combine, so they agree across runs.
    assert_eq!(
        plain.counters.map_output_records,
        combined.counters.map_output_records
    );
    assert_eq!(
        plain.counters.reduce_input_groups,
        combined.counters.reduce_input_groups
    );
}

/// Text-file output is byte-for-byte identical too (the same check the
/// spill suite applies to the external shuffle).
#[test]
fn combined_text_output_files_byte_identical() {
    let pairs: Vec<(String, i64)> = (0..3000).map(|i| (format!("k{}", i % 5), i % 47)).collect();
    let path = write_pairs("textout", &pairs);
    let outdirs = (tmp("plain-out"), tmp("combined-out"));
    let job = |outdir: &PathBuf, combining: bool| {
        let mut j = JobConfig::ir_job(
            "text",
            InputSpec::SeqFile { path: path.clone() },
            emit_kv_mapper(),
            Builtin::Sum,
        )
        .with_reducers(3)
        .with_shuffle_buffer(200)
        .with_text_output(outdir);
        if combining {
            j = j.with_declared_combiner();
        }
        j
    };
    let plain = run_job(&job(&outdirs.0, false)).unwrap();
    let combined = run_job(&job(&outdirs.1, true)).unwrap();
    assert_eq!(plain.output_files.len(), combined.output_files.len());
    for (a, b) in plain.output_files.iter().zip(&combined.output_files) {
        let pa = std::fs::read(a).unwrap();
        let pb = std::fs::read(b).unwrap();
        assert!(!pa.is_empty());
        assert_eq!(pa, pb, "{} != {}", a.display(), b.display());
    }
}

/// Every builtin that declares a combiner matches its combiner-free
/// output, spilling and resident alike.
#[test]
fn all_declared_combiners_match_raw_reducers() {
    let pairs: Vec<(String, i64)> = (0..2500)
        .map(|i| (format!("key-{}", (i * 7) % 11), (i % 201) - 100))
        .collect();
    let path = write_pairs("builtins", &pairs);
    for reducer in [
        Builtin::Sum,
        Builtin::Count,
        Builtin::Max,
        Builtin::Min,
        Builtin::SumDropKey,
    ] {
        for budget in [None, Some(128), Some(2048)] {
            let plain = run(&path, reducer, budget, false);
            let combined = run(&path, reducer, budget, true);
            assert_eq!(
                plain.output, combined.output,
                "{reducer:?} with budget {budget:?}"
            );
        }
    }
}

/// Reducers without a declared combiner run the plain pipeline even
/// when asked — `with_declared_combiner` is a no-op for them.
#[test]
fn undeclared_combiners_fall_back_cleanly() {
    let pairs: Vec<(String, i64)> = (0..500).map(|i| (format!("k{}", i % 3), i)).collect();
    let path = write_pairs("fallback", &pairs);
    for reducer in [Builtin::Identity, Builtin::First] {
        let j = JobConfig::ir_job(
            "fallback",
            InputSpec::SeqFile { path: path.clone() },
            emit_kv_mapper(),
            reducer,
        )
        .with_shuffle_buffer(128)
        .with_declared_combiner();
        assert!(j.combiner.is_none());
        let result = run_job(&j).unwrap();
        assert_eq!(result.counters.combine_in, 0);
        assert!(result.counters.spill_count > 0);
    }
}

/// A combiner error (non-numeric value under Sum) surfaces as a job
/// error instead of corrupting output.
#[test]
fn combiner_error_propagates() {
    let s = Schema::new("S", vec![("k", FieldType::Str), ("v", FieldType::Str)]).into_arc();
    let records: Vec<Record> = (0..10)
        .map(|i| record(&s, vec!["k".into(), format!("s{i}").into()]))
        .collect();
    let path = tmp("badsum");
    write_seqfile(&path, s, records).unwrap();
    let j = JobConfig::ir_job(
        "badsum",
        InputSpec::SeqFile { path },
        emit_kv_mapper(),
        Builtin::Sum,
    )
    .with_declared_combiner();
    // The combiner fails inside a map attempt, so the job surfaces an
    // exhausted task whose cause is the combiner error.
    match run_job(&j) {
        Err(mr_engine::EngineError::TaskFailed { cause, .. }) => {
            assert!(
                matches!(*cause, mr_engine::EngineError::Combine(_)),
                "{cause}"
            );
        }
        other => panic!("expected TaskFailed(Combine), got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary key distributions, reducers, parallelism, and
    /// budgets, the combining pipeline equals the combiner-free one.
    #[test]
    fn combined_output_equals_plain_output(
        pairs in proptest::collection::vec(("[a-e]{1,2}", -500i64..500), 0..300),
        reducer_pick in 0usize..4,
        budget in prop_oneof![Just(None), (64usize..2048).prop_map(Some)],
        parallelism in 1usize..5,
    ) {
        let reducer = [Builtin::Sum, Builtin::Count, Builtin::Max, Builtin::Min][reducer_pick];
        let path = write_pairs("prop", &pairs);
        let run = |combining: bool| {
            let mut j = JobConfig::ir_job(
                "prop",
                InputSpec::SeqFile { path: path.clone() },
                emit_kv_mapper(),
                reducer,
            )
            .with_reducers(3)
            .with_parallelism(parallelism);
            j.shuffle_buffer_bytes = budget;
            if combining {
                j = j.with_declared_combiner();
            }
            run_job(&j).unwrap()
        };
        let plain = run(false);
        let combined = run(true);
        prop_assert_eq!(&plain.output, &combined.output);
        prop_assert_eq!(
            plain.counters.reduce_input_groups,
            combined.counters.reduce_input_groups
        );
        // A combiner can only shrink the spill, never grow it.
        prop_assert!(
            combined.counters.spilled_records <= plain.counters.spilled_records
        );
        std::fs::remove_file(&path).ok();
    }
}
