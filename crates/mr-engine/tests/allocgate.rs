//! Allocation-counter integration test, compiled only under the
//! `bench-alloc` feature (the counting global allocator is
//! process-wide, so it lives in its own test binary). Run with
//! `cargo test -p mr-engine --features bench-alloc --test allocgate`.
#![cfg(feature = "bench-alloc")]

use std::sync::Arc;

use mr_engine::{allocstats, run_job, BufferPool, Builtin, InputSpec, JobConfig};
use mr_ir::asm::parse_function;
use mr_ir::record::record;
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::seqfile::write_seqfile;

#[test]
fn jobs_report_alloc_deltas_and_pooling_reduces_them() {
    assert!(allocstats::enabled());

    let schema = Schema::new("T", vec![("k", FieldType::Str), ("v", FieldType::Int)]).into_arc();
    let path = std::env::temp_dir().join(format!("allocgate-{}", std::process::id()));
    let records: Vec<_> = (0..4000)
        .map(|i| {
            record(
                &schema,
                vec![format!("key-{}", i % 13).into(), Value::Int(i % 50)],
            )
        })
        .collect();
    write_seqfile(&path, schema, records).unwrap();

    let job = |pool: Arc<BufferPool>| {
        JobConfig::ir_job(
            "allocgate",
            InputSpec::SeqFile { path: path.clone() },
            parse_function(
                r#"
                func map(key, value) {
                  r0 = param value
                  r1 = field r0.k
                  r2 = field r0.v
                  emit r1, r2
                  ret
                }
                "#,
            )
            .unwrap(),
            Builtin::Sum,
        )
        .with_shuffle_buffer(1024)
        .with_parallelism(1)
        .with_buffer_pool(pool)
    };

    // Warm a shared pool, then measure a pooled run against a
    // disabled-pool run of the same job. Serial (parallelism 1), so
    // the process-wide counters attribute cleanly.
    let warm = BufferPool::new();
    run_job(&job(Arc::clone(&warm))).unwrap();

    let pooled = run_job(&job(Arc::clone(&warm))).unwrap();
    let unpooled = run_job(&job(BufferPool::disabled())).unwrap();

    assert!(
        pooled.counters.alloc_count > 0,
        "allocator counting is live"
    );
    assert!(unpooled.counters.alloc_count > 0);
    assert!(
        pooled.counters.alloc_count < unpooled.counters.alloc_count,
        "warm pool must allocate less: pooled {} vs disabled {}",
        pooled.counters.alloc_count,
        unpooled.counters.alloc_count
    );
    std::fs::remove_file(&path).ok();
}
