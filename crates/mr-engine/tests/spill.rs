//! The external-shuffle contract: a job run with a tiny
//! `shuffle_buffer_bytes` budget — spilling sorted runs and k-way
//! merging them at reduce time — produces output byte-identical to the
//! unbounded in-memory path, and the spill counters account for the
//! detour.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use mr_engine::{run_job, Builtin, InputSpec, JobConfig};
use mr_ir::asm::parse_function;
use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::seqfile::write_seqfile;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-engine-spill-tests");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn schema() -> Arc<Schema> {
    Schema::new("T", vec![("k", FieldType::Str), ("v", FieldType::Int)]).into_arc()
}

fn emit_kv_mapper() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.k
          r2 = field r0.v
          emit r1, r2
          ret
        }
        "#,
    )
    .unwrap()
}

fn write_pairs(name: &str, pairs: &[(String, i64)]) -> PathBuf {
    let s = schema();
    let records: Vec<Record> = pairs
        .iter()
        .map(|(k, v)| record(&s, vec![k.as_str().into(), Value::Int(*v)]))
        .collect();
    let path = tmp(name);
    write_seqfile(&path, s, records).unwrap();
    path
}

/// The acceptance-criteria test: a budget far below the input size
/// forces ≥3 spills per reducer (visible in the counters) and the text
/// output files are byte-for-byte the unbounded path's.
#[test]
fn forced_spills_output_byte_identical() {
    let num_reducers = 2usize;
    // ~4000 pairs × ≥12 accounted bytes ≫ the 256-byte budget.
    let pairs: Vec<(String, i64)> = (0..4000)
        .map(|i| (format!("key-{:03}", i % 200), i))
        .collect();
    let path = write_pairs("forced", &pairs);

    let job = |budget: Option<usize>, outdir: &PathBuf| {
        let mut j = JobConfig::ir_job(
            "spill-vs-memory",
            InputSpec::SeqFile { path: path.clone() },
            emit_kv_mapper(),
            Builtin::Sum,
        )
        .with_reducers(num_reducers)
        .with_text_output(outdir);
        j.shuffle_buffer_bytes = budget;
        j
    };

    let mem_dir = tmp("forced-mem-out");
    let spill_dir = tmp("forced-spill-out");
    let unbounded = run_job(&job(None, &mem_dir)).unwrap();
    let capped = run_job(&job(Some(256), &spill_dir)).unwrap();

    assert_eq!(unbounded.counters.spill_count, 0);
    assert!(
        capped.counters.spill_count >= 3 * num_reducers as u64,
        "expected ≥3 spills per reducer, got {} total",
        capped.counters.spill_count
    );
    assert!(capped.counters.spilled_records > 0);
    assert!(capped.counters.spill_bytes_written > 0);

    assert_eq!(unbounded.output_files.len(), capped.output_files.len());
    for (a, b) in unbounded.output_files.iter().zip(&capped.output_files) {
        let mem_bytes = std::fs::read(a).unwrap();
        let spill_bytes = std::fs::read(b).unwrap();
        assert!(!mem_bytes.is_empty());
        assert_eq!(mem_bytes, spill_bytes, "{} != {}", a.display(), b.display());
    }
}

/// With one map worker the emission order is deterministic, so even an
/// order-sensitive reducer (Identity, no final output sort) must see
/// the exact same value sequence from the merge as from the in-memory
/// stable sort — this pins the run-index tie-break.
#[test]
fn merge_preserves_emission_order_within_keys() {
    let pairs: Vec<(String, i64)> = (0..1500).map(|i| (format!("k{}", i % 7), i)).collect();
    let path = write_pairs("order", &pairs);
    let run = |budget: Option<usize>| {
        let mut j = JobConfig::ir_job(
            "order",
            InputSpec::SeqFile { path: path.clone() },
            emit_kv_mapper(),
            Builtin::Identity,
        )
        .with_parallelism(1)
        .with_reducers(3);
        j.sort_output = false;
        j.shuffle_buffer_bytes = budget;
        run_job(&j).unwrap()
    };
    let unbounded = run(None);
    // A 32-byte budget spills on every flush — hundreds of runs per
    // partition, far past MERGE_FACTOR, so the hierarchical compaction
    // path is exercised by this order-sensitive comparison too.
    let capped = run(Some(32));
    assert!(
        capped.counters.spill_count > 3 * mr_engine::merge::MERGE_FACTOR as u64,
        "want enough runs to force multi-pass merging, got {}",
        capped.counters.spill_count
    );
    assert_eq!(unbounded.output, capped.output);
}

/// Spill runs live in a private directory that is removed when the job
/// finishes — even when the parent dir is user-supplied.
#[test]
fn spill_dir_cleaned_up() {
    let pairs: Vec<(String, i64)> = (0..500).map(|i| (format!("k{i}"), i)).collect();
    let path = write_pairs("cleanup", &pairs);
    let parent = tmp("cleanup-parent");
    std::fs::create_dir_all(&parent).unwrap();
    let job = JobConfig::ir_job(
        "cleanup",
        InputSpec::SeqFile { path },
        emit_kv_mapper(),
        Builtin::Count,
    )
    .with_shuffle_buffer(64)
    .with_spill_dir(&parent);
    let result = run_job(&job).unwrap();
    assert!(result.counters.spill_count > 0);
    let leftovers = std::fs::read_dir(&parent).unwrap().count();
    assert_eq!(leftovers, 0, "spill subdirectory should be removed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary key distributions, reducer counts, and budgets,
    /// the spilled k-way merge path equals the in-memory sort path.
    #[test]
    fn spilled_merge_equals_in_memory_sort(
        pairs in proptest::collection::vec(("[a-h]{1,3}", -1000i64..1000), 0..400),
        reducers in 1usize..5,
        budget in 32usize..4096,
    ) {
        let path = write_pairs("prop", &pairs);
        let run = |budget: Option<usize>| {
            let mut j = JobConfig::ir_job(
                "prop",
                InputSpec::SeqFile { path: path.clone() },
                emit_kv_mapper(),
                Builtin::Sum,
            )
            .with_reducers(reducers);
            j.shuffle_buffer_bytes = budget;
            run_job(&j).unwrap()
        };
        let unbounded = run(None);
        let capped = run(Some(budget));
        prop_assert_eq!(&unbounded.output, &capped.output);
        prop_assert_eq!(
            unbounded.counters.reduce_input_groups,
            capped.counters.reduce_input_groups
        );
        // Conservation: a pair spills at most once, and only emitted
        // pairs can spill.
        prop_assert!(
            capped.counters.spilled_records <= capped.counters.map_output_records
        );
        std::fs::remove_file(&path).ok();
    }
}
