//! Failure injection: every file reader must reject corrupted,
//! truncated, bit-flipped or wholly random input with a clean error —
//! never a panic, never an infinite loop, never garbage records
//! accepted as valid row data beyond what the format cannot detect.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use mr_ir::record::record;
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::btree::{BTreeIndex, BTreeWriter, ScanBound};
use mr_storage::delta::{DeltaFileMeta, DeltaFileWriter};
use mr_storage::dict::{DictFileReader, DictFileWriter};
use mr_storage::seqfile::{write_seqfile, SeqFileMeta};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-fault-tests");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn schema() -> Arc<Schema> {
    Schema::new("T", vec![("s", FieldType::Str), ("n", FieldType::Int)]).into_arc()
}

/// Build a valid sequence file and return its bytes.
fn valid_seqfile_bytes() -> Vec<u8> {
    let s = schema();
    let path = tmp("valid-seq");
    let records: Vec<_> = (0..50)
        .map(|i| record(&s, vec![format!("row{i}").into(), Value::Int(i)]))
        .collect();
    write_seqfile(&path, s, records).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Open-and-drain helpers must return Result errors, not panic.
fn try_read_seqfile(bytes: &[u8]) {
    let path = tmp("fuzz-seq");
    std::fs::write(&path, bytes).unwrap();
    if let Ok(meta) = SeqFileMeta::open(&path) {
        if let Ok(reader) = meta.read_all() {
            // Take a bounded number of records; errors are fine.
            for item in reader.take(1000) {
                if item.is_err() {
                    break;
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes never panic the sequence-file reader.
    #[test]
    fn seqfile_survives_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        try_read_seqfile(&bytes);
    }

    /// A valid file with one flipped bit never panics the reader.
    #[test]
    fn seqfile_survives_bit_flips(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = valid_seqfile_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        try_read_seqfile(&bytes);
    }

    /// A valid file truncated anywhere never panics the reader.
    #[test]
    fn seqfile_survives_truncation(keep_frac in 0.0f64..1.0) {
        let bytes = valid_seqfile_bytes();
        let keep = (bytes.len() as f64 * keep_frac) as usize;
        try_read_seqfile(&bytes[..keep]);
    }

    /// Same discipline for the B+Tree.
    #[test]
    fn btree_survives_corruption(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let s = schema();
        let path = tmp("fuzz-btree-src");
        let mut w = BTreeWriter::with_page_size(&path, Arc::clone(&s), 512).unwrap();
        for i in 0..200i64 {
            let r = record(&s, vec![format!("k{i}").into(), Value::Int(i)]);
            w.append(&Value::Int(i), &Value::Int(i), &r).unwrap();
        }
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;

        let corrupt = tmp("fuzz-btree");
        std::fs::write(&corrupt, &bytes).unwrap();
        if let Ok(idx) = BTreeIndex::open(&corrupt) {
            if let Ok(scan) = idx.scan(ScanBound::Unbounded, ScanBound::Unbounded) {
                for item in scan.take(1000) {
                    if item.is_err() {
                        break;
                    }
                }
            }
        }
        std::fs::remove_file(&corrupt).ok();
    }

    /// Delta files reject corruption cleanly.
    #[test]
    fn delta_survives_corruption(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let s = schema();
        let path = tmp("fuzz-delta-src");
        let mut w = DeltaFileWriter::create(&path, Arc::clone(&s), &["n".into()]).unwrap();
        for i in 0..100i64 {
            w.append(&record(&s, vec![format!("k{i}").into(), Value::Int(i)])).unwrap();
        }
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;

        let corrupt = tmp("fuzz-delta");
        std::fs::write(&corrupt, &bytes).unwrap();
        if let Ok(meta) = DeltaFileMeta::open(&corrupt) {
            if let Ok(reader) = meta.read_all() {
                for item in reader.take(1000) {
                    if item.is_err() {
                        break;
                    }
                }
            }
        }
        std::fs::remove_file(&corrupt).ok();
    }

    /// Dict files reject corruption cleanly.
    #[test]
    fn dict_survives_corruption(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let s = schema();
        let path = tmp("fuzz-dict-src");
        let mut w = DictFileWriter::create(&path, Arc::clone(&s), &["s".into()]).unwrap();
        for i in 0..100i64 {
            w.append(&record(&s, vec![format!("k{}", i % 7).into(), Value::Int(i)])).unwrap();
        }
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;

        let corrupt = tmp("fuzz-dict");
        std::fs::write(&corrupt, &bytes).unwrap();
        if let Ok(reader) = DictFileReader::open(&corrupt) {
            for item in reader.take(1000) {
                if item.is_err() {
                    break;
                }
            }
        }
        std::fs::remove_file(&corrupt).ok();
    }
}
