//! Failure injection: every file reader must reject corrupted,
//! truncated, bit-flipped or wholly random input with a clean error —
//! never a panic, never an infinite loop, never garbage records
//! accepted as valid row data beyond what the format cannot detect.
//! The deterministic [`IoFaults`] layer additionally proves that the
//! run/seq readers and writers fail *exactly* the scheduled operation,
//! once, and then proceed — the contract the engine's task retries are
//! built on.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use mr_ir::record::record;
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::btree::{BTreeIndex, BTreeWriter, ScanBound};
use mr_storage::delta::{DeltaFileMeta, DeltaFileWriter};
use mr_storage::dict::{DictFileReader, DictFileWriter};
use mr_storage::fault::{IoFaults, IoSite};
use mr_storage::runfile::{RunFileReader, RunFileWriter};
use mr_storage::seqfile::{write_seqfile, SeqFileMeta, SeqFileWriter};
use mr_storage::StorageError;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-fault-tests");
    std::fs::create_dir_all(&dir).unwrap();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

fn schema() -> Arc<Schema> {
    Schema::new("T", vec![("s", FieldType::Str), ("n", FieldType::Int)]).into_arc()
}

/// Build a valid sequence file and return its bytes.
fn valid_seqfile_bytes() -> Vec<u8> {
    let s = schema();
    let path = tmp("valid-seq");
    let records: Vec<_> = (0..50)
        .map(|i| record(&s, vec![format!("row{i}").into(), Value::Int(i)]))
        .collect();
    write_seqfile(&path, s, records).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Open-and-drain helpers must return Result errors, not panic.
fn try_read_seqfile(bytes: &[u8]) {
    let path = tmp("fuzz-seq");
    std::fs::write(&path, bytes).unwrap();
    if let Ok(meta) = SeqFileMeta::open(&path) {
        if let Ok(reader) = meta.read_all() {
            // Take a bounded number of records; errors are fine.
            for item in reader.take(1000) {
                if item.is_err() {
                    break;
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

/// The scheduled run-file read fails — exactly that one, exactly once.
#[test]
fn run_reader_fails_scheduled_op_then_recovers() {
    let path = tmp("io-run");
    let mut w = RunFileWriter::create(&path).unwrap();
    for i in 0..10i64 {
        w.append(&Value::Int(i), &Value::Null).unwrap();
    }
    w.finish().unwrap();

    let faults = Arc::new(IoFaults::new().with_fault(IoSite::RunRead, 4));
    let mut rd = RunFileReader::open_with_faults(&path, Some(Arc::clone(&faults))).unwrap();
    for i in 0..4i64 {
        assert_eq!(rd.next().unwrap().unwrap().0, Value::Int(i));
    }
    let err = rd.next().unwrap().unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "{err}");
    // A fresh reader sharing the (now-disarmed) injector reads clean —
    // the transient-fault model a task retry relies on.
    let rd = RunFileReader::open_with_faults(&path, Some(faults)).unwrap();
    let pairs: Vec<_> = rd.map(|p| p.unwrap()).collect();
    assert_eq!(pairs.len(), 10);
}

/// The scheduled run-file append fails without corrupting the pairs
/// already written.
#[test]
fn run_writer_fails_scheduled_append() {
    let path = tmp("io-runw");
    let faults = Arc::new(IoFaults::new().with_fault(IoSite::RunWrite, 2));
    let mut w = RunFileWriter::create_with_faults(&path, Some(faults)).unwrap();
    w.append(&Value::Int(0), &Value::Null).unwrap();
    w.append(&Value::Int(1), &Value::Null).unwrap();
    assert!(w.append(&Value::Int(2), &Value::Null).is_err());
    // The failed append wrote nothing; the file holds the first two.
    let stats = w.finish().unwrap();
    assert_eq!(stats.pairs, 2);
    let back: Vec<_> = RunFileReader::open(&path)
        .unwrap()
        .map(|p| p.unwrap())
        .collect();
    assert_eq!(back.len(), 2);
}

/// Sequence-file reads and writes honor their scheduled faults too,
/// with operation counters shared across readers of the same handle.
#[test]
fn seq_reader_and_writer_fail_scheduled_ops() {
    let s = schema();
    let path = tmp("io-seq");
    let faults = Arc::new(IoFaults::new().with_fault(IoSite::SeqWrite, 1));
    let mut w = SeqFileWriter::create_with_faults(&path, Arc::clone(&s), Some(faults)).unwrap();
    w.append(&record(&s, vec!["a".into(), Value::Int(0)]))
        .unwrap();
    assert!(w
        .append(&record(&s, vec!["b".into(), Value::Int(1)]))
        .is_err());
    w.append(&record(&s, vec!["c".into(), Value::Int(2)]))
        .unwrap();
    w.finish().unwrap();

    let meta = SeqFileMeta::open(&path).unwrap();
    assert_eq!(meta.record_count, 2);
    let read_faults = Arc::new(IoFaults::new().with_fault(IoSite::SeqRead, 1));
    let mut rd = meta
        .read_split_with_faults(
            &mr_storage::Split {
                offset: meta.data_start,
                records: meta.record_count,
            },
            Some(read_faults),
        )
        .unwrap();
    assert!(rd.next().unwrap().is_ok());
    assert!(rd.next().unwrap().is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes never panic the sequence-file reader.
    #[test]
    fn seqfile_survives_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        try_read_seqfile(&bytes);
    }

    /// A valid file with one flipped bit never panics the reader.
    #[test]
    fn seqfile_survives_bit_flips(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = valid_seqfile_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        try_read_seqfile(&bytes);
    }

    /// A valid file truncated anywhere never panics the reader.
    #[test]
    fn seqfile_survives_truncation(keep_frac in 0.0f64..1.0) {
        let bytes = valid_seqfile_bytes();
        let keep = (bytes.len() as f64 * keep_frac) as usize;
        try_read_seqfile(&bytes[..keep]);
    }

    /// Same discipline for the B+Tree.
    #[test]
    fn btree_survives_corruption(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let s = schema();
        let path = tmp("fuzz-btree-src");
        let mut w = BTreeWriter::with_page_size(&path, Arc::clone(&s), 512).unwrap();
        for i in 0..200i64 {
            let r = record(&s, vec![format!("k{i}").into(), Value::Int(i)]);
            w.append(&Value::Int(i), &Value::Int(i), &r).unwrap();
        }
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;

        let corrupt = tmp("fuzz-btree");
        std::fs::write(&corrupt, &bytes).unwrap();
        if let Ok(idx) = BTreeIndex::open(&corrupt) {
            if let Ok(scan) = idx.scan(ScanBound::Unbounded, ScanBound::Unbounded) {
                for item in scan.take(1000) {
                    if item.is_err() {
                        break;
                    }
                }
            }
        }
        std::fs::remove_file(&corrupt).ok();
    }

    /// Delta files reject corruption cleanly.
    #[test]
    fn delta_survives_corruption(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let s = schema();
        let path = tmp("fuzz-delta-src");
        let mut w = DeltaFileWriter::create(&path, Arc::clone(&s), &["n".into()]).unwrap();
        for i in 0..100i64 {
            w.append(&record(&s, vec![format!("k{i}").into(), Value::Int(i)])).unwrap();
        }
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;

        let corrupt = tmp("fuzz-delta");
        std::fs::write(&corrupt, &bytes).unwrap();
        if let Ok(meta) = DeltaFileMeta::open(&corrupt) {
            if let Ok(reader) = meta.read_all() {
                for item in reader.take(1000) {
                    if item.is_err() {
                        break;
                    }
                }
            }
        }
        std::fs::remove_file(&corrupt).ok();
    }

    /// Dict files reject corruption cleanly.
    #[test]
    fn dict_survives_corruption(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let s = schema();
        let path = tmp("fuzz-dict-src");
        let mut w = DictFileWriter::create(&path, Arc::clone(&s), &["s".into()]).unwrap();
        for i in 0..100i64 {
            w.append(&record(&s, vec![format!("k{}", i % 7).into(), Value::Int(i)])).unwrap();
        }
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;

        let corrupt = tmp("fuzz-dict");
        std::fs::write(&corrupt, &bytes).unwrap();
        if let Ok(reader) = DictFileReader::open(&corrupt) {
            for item in reader.take(1000) {
                if item.is_err() {
                    break;
                }
            }
        }
        std::fs::remove_file(&corrupt).ok();
    }
}

// ---- the block-compressed variants -------------------------------------

use mr_storage::blockcodec::ShuffleCompression;
use mr_storage::seqfile::write_seqfile_with;

/// The block layer has its own injection sites: a scheduled
/// `block-read` fault fires inside a *compressed* run stream (where
/// the record-level `run-read` site alone could never model a frame
/// decode failure), once, and a retry proceeds past it.
#[test]
fn block_read_fault_fires_inside_compressed_run() {
    let path = tmp("io-block-read");
    let mut w = RunFileWriter::create_with(&path, ShuffleCompression::Dict, None).unwrap();
    for i in 0..50i64 {
        w.append(&Value::Int(i / 10), &Value::str("payload"))
            .unwrap();
    }
    w.finish().unwrap();

    let faults = Arc::new(IoFaults::new().with_fault(IoSite::BlockRead, 0));
    let mut rd = RunFileReader::open_with_faults(&path, Some(Arc::clone(&faults))).unwrap();
    let err = rd.next().unwrap().unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "{err}");
    assert!(err.to_string().contains("block-read"), "{err}");

    // Disarmed on retry: the same handle now reads the run end-to-end.
    let rd = RunFileReader::open_with_faults(&path, Some(faults)).unwrap();
    let pairs: Vec<_> = rd.collect::<Result<_, _>>().unwrap();
    assert_eq!(pairs.len(), 50);
}

/// A scheduled `block-write` fault fails a compressed spill write; the
/// record-layer writer surfaces it as a storage error, not a panic.
#[test]
fn block_write_fault_fails_compressed_run_write() {
    let path = tmp("io-block-write");
    let faults = Arc::new(IoFaults::new().with_fault(IoSite::BlockWrite, 0));
    let mut w = RunFileWriter::create_with(&path, ShuffleCompression::Delta, Some(faults)).unwrap();
    // Fill past one block so a frame must be emitted mid-append.
    let big = "x".repeat(4096);
    let mut failed = false;
    for i in 0..64i64 {
        if w.append(&Value::Int(i), &Value::str(&big)).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "the armed frame write must fail an append");
}

/// A corrupted frame inside a compressed sequence file is a typed
/// `Corrupt` error at read time — never silently-truncated records.
#[test]
fn corrupt_compressed_seqfile_frame_is_typed() {
    let s = schema();
    let path = tmp("corrupt-seq-frame");
    let records: Vec<_> = (0..2000)
        .map(|i| record(&s, vec![format!("row{}", i % 5).into(), Value::Int(i)]))
        .collect();
    write_seqfile_with(&path, Arc::clone(&s), ShuffleCompression::Dict, records).unwrap();

    let meta = SeqFileMeta::open(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a byte in the middle of the first data frame.
    let at = meta.data_start as usize + 200;
    bytes[at] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();

    let meta = SeqFileMeta::open(&path).unwrap();
    let mut clean = 0u64;
    let mut typed_corruption = false;
    for item in meta.read_all().unwrap() {
        match item {
            Ok(_) => clean += 1,
            Err(e) => {
                assert!(matches!(e, StorageError::Corrupt { .. }), "{e}");
                typed_corruption = true;
                break;
            }
        }
    }
    assert!(
        typed_corruption,
        "flip must be detected (read {clean} rows first)"
    );
    assert!(
        clean < meta.record_count,
        "corruption cannot read as complete data"
    );
}

/// Random bytes never panic the compressed-seqfile reader either.
#[test]
fn compressed_seqfile_survives_random_prefix_corruption() {
    let s = schema();
    let path = tmp("fuzz-comp-seq");
    let records: Vec<_> = (0..300)
        .map(|i| record(&s, vec![format!("r{i}").into(), Value::Int(i)]))
        .collect();
    write_seqfile_with(&path, Arc::clone(&s), ShuffleCompression::Delta, records).unwrap();
    let valid = std::fs::read(&path).unwrap();
    for cut in [7usize, 9, 30, valid.len() / 2, valid.len() - 5] {
        let mut mangled = valid.clone();
        mangled.truncate(cut);
        mangled.extend_from_slice(&valid[..(valid.len() - cut).min(64)]);
        std::fs::write(&path, &mangled).unwrap();
        if let Ok(meta) = SeqFileMeta::open(&path) {
            if let Ok(reader) = meta.read_all() {
                for item in reader.take(1000) {
                    if item.is_err() {
                        break;
                    }
                }
            }
        }
    }
}
