//! Property-based tests for the storage layer: codec roundtrips and the
//! B+Tree's range-scan contract.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_storage::btree::{BTreeIndex, BTreeWriter, ScanBound};
use mr_storage::rowcodec::{decode_row, decode_value, encode_row, encode_value};
use mr_storage::varint::{decode_i64, decode_u64, encode_i64, encode_u64};
use mr_storage::{DeltaFileReader, DeltaFileWriter, DictFileReader, DictFileWriter};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mr-storage-proptests");
    std::fs::create_dir_all(&dir).unwrap();
    // Unique per call: proptest runs many cases.
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    dir.join(format!("{name}-{}-{n}", std::process::id()))
}

proptest! {
    #[test]
    fn varint_u64_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        encode_u64(v, &mut buf);
        let (back, n) = decode_u64(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn varint_i64_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        encode_i64(v, &mut buf);
        let (back, n) = decode_i64(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn varint_ordering_never_decodes_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..12)) {
        // Decoding arbitrary bytes either fails cleanly or consumes a
        // prefix that re-encodes to the same value.
        if let Ok((v, n)) = decode_u64(&bytes) {
            let mut re = Vec::new();
            encode_u64(v, &mut re);
            // Canonical encodings round-trip; non-canonical (overlong)
            // ones may be shorter when re-encoded.
            prop_assert!(re.len() <= n);
        }
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Double),
        "[a-zA-Z0-9:/. -]{0,40}".prop_map(|s| Value::str(&s)),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(|b| Value::bytes(&b)),
    ]
}

proptest! {
    #[test]
    fn value_codec_roundtrip(v in value_strategy()) {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf).unwrap();
        let (back, n) = decode_value(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn list_value_codec_roundtrip(items in proptest::collection::vec(value_strategy(), 0..8)) {
        let v = Value::list(items);
        let mut buf = Vec::new();
        encode_value(&v, &mut buf).unwrap();
        let (back, _) = decode_value(&buf).unwrap();
        prop_assert_eq!(back, v);
    }
}

fn test_schema() -> Arc<Schema> {
    Schema::new(
        "P",
        vec![
            ("name", FieldType::Str),
            ("n", FieldType::Int),
            ("big", FieldType::Long),
            ("d", FieldType::Double),
            ("flag", FieldType::Bool),
            ("blob", FieldType::Bytes),
        ],
    )
    .into_arc()
}

fn row_strategy() -> impl Strategy<Value = Record> {
    (
        "[a-z]{0,20}",
        any::<i32>(),
        any::<i64>(),
        any::<f64>(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..30),
    )
        .prop_map(|(name, n, big, d, flag, blob)| {
            record(
                &test_schema(),
                vec![
                    name.into(),
                    Value::Int(n as i64),
                    Value::Int(big),
                    Value::Double(d),
                    Value::Bool(flag),
                    Value::bytes(&blob),
                ],
            )
        })
}

proptest! {
    #[test]
    fn row_codec_roundtrip(r in row_strategy()) {
        let mut buf = Vec::new();
        encode_row(&r, &mut buf).unwrap();
        let (back, n) = decode_row(&test_schema(), &buf).unwrap();
        prop_assert_eq!(back, r);
        prop_assert_eq!(n, buf.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The B+Tree range-scan contract: a scan over [lo, hi] returns
    /// exactly the entries a full scan + filter would, in order.
    #[test]
    fn btree_range_scan_equals_filter(
        mut keys in proptest::collection::vec(-200i64..200, 1..300),
        lo in -250i64..250,
        width in 0i64..200,
    ) {
        keys.sort_unstable();
        let hi = lo + width;
        let schema = Schema::new("E", vec![("k", FieldType::Int)]).into_arc();
        let path = tmp("btree");
        let mut w = BTreeWriter::with_page_size(&path, Arc::clone(&schema), 512).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            let r = record(&schema, vec![Value::Int(k)]);
            w.append(&Value::Int(k), &Value::Int(i as i64), &r).unwrap();
        }
        w.finish().unwrap();

        let idx = BTreeIndex::open(&path).unwrap();
        let scanned: Vec<i64> = idx
            .scan(ScanBound::Incl(Value::Int(lo)), ScanBound::Incl(Value::Int(hi)))
            .unwrap()
            .map(|r| r.unwrap().1.get("k").unwrap().as_int().unwrap())
            .collect();
        let expected: Vec<i64> = keys
            .iter()
            .copied()
            .filter(|&k| k >= lo && k <= hi)
            .collect();
        prop_assert_eq!(scanned, expected);
        std::fs::remove_file(&path).ok();
    }

    /// Delta files reproduce arbitrary integer sequences exactly.
    #[test]
    fn delta_roundtrip_arbitrary_ints(values in proptest::collection::vec(any::<i64>(), 0..200)) {
        let schema = Schema::new("T", vec![("v", FieldType::Int)]).into_arc();
        let path = tmp("delta");
        let mut w = DeltaFileWriter::create(&path, Arc::clone(&schema), &["v".into()]).unwrap();
        for &v in &values {
            w.append(&record(&schema, vec![Value::Int(v)])).unwrap();
        }
        w.finish().unwrap();
        let back: Vec<i64> = DeltaFileReader::open(&path)
            .unwrap()
            .map(|r| r.unwrap().get("v").unwrap().as_int().unwrap())
            .collect();
        prop_assert_eq!(back, values);
        std::fs::remove_file(&path).ok();
    }

    /// Dictionary codes preserve the equality relation exactly.
    #[test]
    fn dict_codes_preserve_equality(strings in proptest::collection::vec("[a-d]{0,4}", 1..150)) {
        let schema = Schema::new("T", vec![("s", FieldType::Str)]).into_arc();
        let path = tmp("dict");
        let mut w = DictFileWriter::create(&path, Arc::clone(&schema), &["s".into()]).unwrap();
        for s in &strings {
            w.append(&record(&schema, vec![s.as_str().into()])).unwrap();
        }
        w.finish().unwrap();
        let codes: Vec<i64> = DictFileReader::open(&path)
            .unwrap()
            .map(|r| r.unwrap().get("s").unwrap().as_int().unwrap())
            .collect();
        prop_assert_eq!(codes.len(), strings.len());
        for i in 0..strings.len() {
            for j in 0..strings.len() {
                prop_assert_eq!(
                    strings[i] == strings[j],
                    codes[i] == codes[j],
                    "equality must be preserved at ({}, {})", i, j
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

// ---- block codec layer ---------------------------------------------------

use mr_storage::blockcodec::{BlockCodec, BlockReader, BlockWriter, ShuffleCompression};
use mr_storage::StorageError;
use std::io::{Read, Write};

/// Round-trip `payload` through the frame layer, writing it in chunks
/// of `chunk` bytes — adversarial write boundaries must not leak into
/// the decoded stream.
fn frame_roundtrip(codec: ShuffleCompression, payload: &[u8], chunk: usize) -> Vec<u8> {
    let mut w = BlockWriter::new(Vec::new(), codec.codec(), None);
    for piece in payload.chunks(chunk.max(1)) {
        w.write_all(piece).unwrap();
    }
    w.flush().unwrap();
    let framed = w.into_inner().unwrap();
    let mut back = Vec::new();
    BlockReader::new(framed.as_slice(), codec.codec().is_some(), None)
        .read_to_end(&mut back)
        .unwrap();
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every codec round-trips arbitrary bytes under arbitrary write
    /// chunking (1-byte writes, block-size-straddling writes, …).
    #[test]
    fn block_codecs_roundtrip_random_bytes(
        payload in proptest::collection::vec(any::<u8>(), 0..40_000),
        chunk in 1usize..70_000,
    ) {
        for codec in ShuffleCompression::ALL {
            prop_assert_eq!(&frame_roundtrip(codec, &payload, chunk), &payload, "{}", codec);
        }
    }

    /// Repetitive payloads (the spill-run shape) round-trip at every
    /// alignment of the repeat period against the block boundary.
    #[test]
    fn block_codecs_roundtrip_periodic_payloads(
        period in 1usize..200,
        reps in 1usize..2_000,
        phase in 0usize..97,
        seed in any::<u64>(),
    ) {
        let unit: Vec<u8> = (0..period).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 32) as u8).collect();
        let mut payload = unit.repeat(reps);
        payload.drain(..phase.min(payload.len()));
        for codec in [ShuffleCompression::Dict, ShuffleCompression::Delta] {
            prop_assert_eq!(&frame_roundtrip(codec, &payload, 8192), &payload, "{}", codec);
        }
    }

    /// The raw codec trait round-trips directly at block granularity,
    /// including empty and single-byte blocks (adversarial boundaries
    /// for the stride probe and the LZW first-symbol path).
    #[test]
    fn codec_trait_roundtrips_blocks(payload in proptest::collection::vec(any::<u8>(), 0..5_000)) {
        use mr_storage::blockcodec::{DeltaVarint, DictBlock, Raw};
        let codecs: [&dyn BlockCodec; 3] = [&Raw, &DictBlock, &DeltaVarint];
        for codec in codecs {
            let mut comp = Vec::new();
            codec.compress(&payload, &mut comp);
            let mut back = Vec::new();
            codec.decompress(&comp, payload.len(), &mut back).unwrap();
            prop_assert_eq!(&back, &payload, "{}", codec.name());
        }
    }

    /// Bit-flips anywhere in a framed stream never decode to *wrong
    /// bytes*: the reader either returns the original payload (the flip
    /// landed in slack) or a typed error — silent corruption is the one
    /// outcome the CRC exists to rule out.
    #[test]
    fn frame_bitflips_are_detected_or_harmless(
        payload in proptest::collection::vec(any::<u8>(), 1..4_000),
        flip_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut w = BlockWriter::new(Vec::new(), ShuffleCompression::Dict.codec(), None);
        w.write_all(&payload).unwrap();
        w.flush().unwrap();
        let mut framed = w.into_inner().unwrap();
        let at = flip_seed % framed.len();
        framed[at] ^= 1 << bit;
        let mut back = Vec::new();
        match BlockReader::new(framed.as_slice(), true, None).read_to_end(&mut back) {
            Ok(_) => prop_assert_eq!(&back, &payload, "accepted bytes must be the original"),
            Err(e) => {
                let typed: StorageError = e.into();
                let msg = typed.to_string();
                prop_assert!(
                    matches!(typed, StorageError::Corrupt { .. } | StorageError::Io(_)),
                    "{}", msg
                );
            }
        }
    }
}

// ---- trained dictionaries ------------------------------------------------

use mr_storage::trained::{DictTrainer, TrainedDict};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dictionaries trained on arbitrary corpora at arbitrary sampling
    /// caps decode every frame they encode — including payloads the
    /// trainer never saw.
    #[test]
    fn trained_dict_roundtrips_any_corpus_and_payload(
        corpus in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..600), 0..12),
        cap in 1usize..4_096,
        payload in proptest::collection::vec(any::<u8>(), 0..3_000),
    ) {
        let mut trainer = DictTrainer::with_sample_cap(cap);
        for chunk in &corpus {
            trainer.observe(chunk);
        }
        let dict = trainer.train();

        let mut comp = Vec::new();
        dict.compress(&payload, &mut comp);
        let mut back = Vec::new();
        dict.decompress(&comp, payload.len(), &mut back).unwrap();
        prop_assert_eq!(&back, &payload);

        // Corpus-shaped payloads too — the case the seed actually helps.
        let corpus_payload: Vec<u8> = corpus.concat();
        comp.clear();
        dict.compress(&corpus_payload, &mut comp);
        back.clear();
        dict.decompress(&comp, corpus_payload.len(), &mut back).unwrap();
        prop_assert_eq!(&back, &corpus_payload);
    }

    /// The serialized artifact round-trips exactly: identical hashes,
    /// identical bytes, identical frames from both copies.
    #[test]
    fn trained_artifact_roundtrip_preserves_identity(
        corpus in proptest::collection::vec(any::<u8>(), 0..4_000),
        payload in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let mut trainer = DictTrainer::new();
        trainer.observe(&corpus);
        let dict = trainer.train();
        let bytes = dict.to_bytes();
        let reloaded = TrainedDict::from_bytes(&bytes).unwrap();
        prop_assert_eq!(reloaded.dict_hash(), dict.dict_hash());
        prop_assert_eq!(reloaded.corpus_hash(), dict.corpus_hash());
        prop_assert_eq!(reloaded.to_bytes(), bytes);
        let mut a = Vec::new();
        dict.compress(&payload, &mut a);
        let mut b = Vec::new();
        reloaded.compress(&payload, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Any single-bit corruption of the artifact is a *typed* Corrupt
    /// error: the CRC and structural checks never let a damaged
    /// dictionary load silently.
    #[test]
    fn trained_artifact_bitflips_are_typed(
        corpus in proptest::collection::vec(any::<u8>(), 1..2_000),
        flip_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut trainer = DictTrainer::new();
        trainer.observe(&corpus);
        let mut bytes = trainer.train().to_bytes();
        let at = flip_seed % bytes.len();
        bytes[at] ^= 1 << bit;
        match TrainedDict::from_bytes(&bytes) {
            Err(StorageError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error type: {e}"),
            Ok(_) => prop_assert!(false, "corrupt artifact loaded silently"),
        }
    }

    /// Sampling caps bound what the trainer *learns*, never what it
    /// *identifies*: the corpus hash keeps covering bytes past the cap.
    #[test]
    fn corpus_hash_covers_bytes_past_the_sample_cap(
        head in proptest::collection::vec(any::<u8>(), 0..300),
        tail in proptest::collection::vec(any::<u8>(), 1..300),
        cap in 1usize..128,
    ) {
        let mut with_tail = DictTrainer::with_sample_cap(cap);
        with_tail.observe(&head);
        with_tail.observe(&tail);
        let mut without_tail = DictTrainer::with_sample_cap(cap);
        without_tail.observe(&head);
        prop_assert_ne!(with_tail.corpus_hash(), without_tail.corpus_hash());
    }
}
