//! # mr-storage — physical layouts for Manimal
//!
//! Every on-disk format the optimizer can choose between:
//!
//! * [`seqfile`] — the baseline format "standard Hadoop" reads: a
//!   schema-carrying header plus length-prefixed binary rows and a
//!   sparse block index for input splits;
//! * [`btree`] — clustered B+Tree indexes for the selection
//!   optimization (paper §2.1): leaf entries hold full (or projected)
//!   records, so a range scan replaces the original file;
//! * [`colfile`] — projected copies storing only analyzer-proven-used
//!   fields (§1, App. D Table 4);
//! * [`colgroups`] — the §2.1 column-group extension: one file per
//!   field group, so a single layout serves many projections;
//! * [`delta`] — zig-zag varint delta encoding of integer fields
//!   (App. C/D, Table 5);
//! * [`dict`] — dictionary compression with direct operation on codes
//!   (App. D Table 6);
//! * [`runfile`] — sorted-run files the execution fabric spills shuffle
//!   buckets into and k-way merges at reduce time (the external-shuffle
//!   path; Hadoop's `IFile` analog);
//! * [`blockcodec`] — the pluggable block-compression layer under the
//!   streaming formats (runfile, seqfile): CRC'd, length-prefixed
//!   codec frames with raw / dictionary / delta implementations;
//! * [`trained`] — per-corpus trained LZW seed dictionaries: train
//!   once on the first spill's bytes, commit first-trainer-wins,
//!   reference by content hash from the columnar (v2) run layout;
//! * [`rowcodec`] / [`varint`] — the shared codecs;
//! * [`fault`] — deterministic IO fault injection for the run/seq
//!   readers and writers (and the block-frame layer), driving the
//!   engine's task-retry tests.
//!
//! Every layout is specified byte-by-byte in `docs/FORMATS.md` at the
//! repository root.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blockcodec;
pub mod btree;
pub mod colfile;
pub mod colgroups;
pub mod delta;
pub mod dict;
pub mod error;
pub mod fault;
pub mod rowcodec;
pub mod runfile;
pub mod seqfile;
pub mod trained;
pub mod varint;

pub use blockcodec::{BlockCodec, BlockReader, BlockWriter, ShuffleCompression};
pub use btree::{BTreeIndex, BTreeScanner, BTreeStats, BTreeWriter, ScanBound};
pub use colfile::{write_projected, ProjectedFile};
pub use colgroups::{write_column_groups, ColumnGroupReader, ColumnGroups};
pub use delta::{DeltaFileReader, DeltaFileWriter};
pub use dict::{DictFileReader, DictFileWriter, Dictionary};
pub use error::{Result, StorageError};
pub use fault::{IoFaults, IoSite};
pub use runfile::{RunFileReader, RunFileStats, RunFileWriter, RunScratch};
pub use seqfile::{write_seqfile, SeqFileMeta, SeqFileReader, SeqFileWriter, Split};
pub use trained::{DictTrainer, TrainedDict};
