//! Binary row and value codecs.
//!
//! All raw input data is "in a binary, not textual, format" (paper
//! App. D). [`encode_row`]/[`decode_row`] serialize a record against its
//! schema (no per-row schema overhead); [`encode_value`]/[`decode_value`]
//! serialize a self-describing `Value` (used for B+Tree keys).
//!
//! Numeric fields are **fixed-width** (`Int` = 4 bytes, `Long` = 8,
//! `Double` = 8), like Hadoop's `IntWritable`/`LongWritable` — the
//! baseline the paper's delta-compression is measured against. The
//! "size-sensitive representation" (zig-zag varints) is applied only by
//! the delta file format, so Table 5's space saving is reproducible.

use std::sync::Arc;

use mr_ir::record::Record;
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;

use crate::error::{Result, StorageError};
use crate::varint::{decode_i64, decode_u64, encode_i64, encode_u64};

/// Append the schema-typed encoding of `record` to `out`.
///
/// Field layout per type: `Bool` = 1 byte; `Int` = 4 bytes LE;
/// `Long` = 8 bytes LE; `Double` = 8 bytes LE; `Str`/`Bytes` = varint
/// length + payload.
pub fn encode_row(record: &Record, out: &mut Vec<u8>) -> Result<()> {
    for (fd, v) in record.schema().fields().iter().zip(record.values()) {
        encode_field(fd.ty, v, &fd.name, out)?;
    }
    Ok(())
}

/// Append the schema-typed encoding of one field value.
pub fn encode_field(ty: FieldType, v: &Value, name: &str, out: &mut Vec<u8>) -> Result<()> {
    match (ty, v) {
        (FieldType::Bool, Value::Bool(b)) => out.push(*b as u8),
        (FieldType::Int, Value::Int(i)) => {
            let narrowed = i32::try_from(*i).map_err(|_| {
                StorageError::Schema(format!("field `{name}`: {i} exceeds Int range"))
            })?;
            out.extend_from_slice(&narrowed.to_le_bytes());
        }
        (FieldType::Long, Value::Int(i)) => out.extend_from_slice(&i.to_le_bytes()),
        (FieldType::Double, Value::Double(d)) => out.extend_from_slice(&d.to_bits().to_le_bytes()),
        (FieldType::Str, Value::Str(s)) => {
            encode_u64(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        (FieldType::Bytes, Value::Bytes(b)) => {
            encode_u64(b.len() as u64, out);
            out.extend_from_slice(b);
        }
        (ty, v) => {
            return Err(StorageError::Schema(format!(
                "field `{name}` declared {ty} but value is {}",
                v.kind_name()
            )))
        }
    }
    Ok(())
}

/// Decode one schema-typed field value from the front of `buf`.
pub fn decode_field(ty: FieldType, buf: &[u8]) -> Result<(Value, usize)> {
    Ok(match ty {
        FieldType::Bool => {
            let b = *buf
                .first()
                .ok_or_else(|| StorageError::corrupt("field", "truncated bool"))?;
            (Value::Bool(b != 0), 1)
        }
        FieldType::Int => {
            let bytes: [u8; 4] = buf
                .get(..4)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| StorageError::corrupt("field", "truncated int"))?;
            (Value::Int(i32::from_le_bytes(bytes) as i64), 4)
        }
        FieldType::Long => {
            let bytes: [u8; 8] = buf
                .get(..8)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| StorageError::corrupt("field", "truncated long"))?;
            (Value::Int(i64::from_le_bytes(bytes)), 8)
        }
        FieldType::Double => {
            if buf.len() < 8 {
                return Err(StorageError::corrupt("field", "truncated double"));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[..8]);
            (Value::Double(f64::from_bits(u64::from_le_bytes(b))), 8)
        }
        FieldType::Str => {
            let (len, n) = decode_u64(buf)?;
            let len = len as usize;
            let payload = buf
                .get(n..n + len)
                .ok_or_else(|| StorageError::corrupt("field", "truncated string"))?;
            let s = std::str::from_utf8(payload)
                .map_err(|_| StorageError::corrupt("field", "invalid utf-8"))?;
            (Value::str(s), n + len)
        }
        FieldType::Bytes => {
            let (len, n) = decode_u64(buf)?;
            let len = len as usize;
            let payload = buf
                .get(n..n + len)
                .ok_or_else(|| StorageError::corrupt("field", "truncated bytes"))?;
            (Value::bytes(payload), n + len)
        }
    })
}

/// Decode one row of `schema` from the front of `buf`; returns the
/// record and bytes consumed.
pub fn decode_row(schema: &Arc<Schema>, buf: &[u8]) -> Result<(Record, usize)> {
    let mut pos = 0usize;
    let mut values = Vec::with_capacity(schema.len());
    for fd in schema.fields() {
        let (v, n) = decode_field(fd.ty, &buf[pos..])?;
        values.push(v);
        pos += n;
    }
    let record =
        Record::new(Arc::clone(schema), values).map_err(|e| StorageError::Schema(e.to_string()))?;
    Ok((record, pos))
}

// Value-codec tags.
const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_DOUBLE: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_RECORD: u8 = 8;

/// Append a self-describing encoding of `v`.
///
/// Records carry their schema inline (schema header + schema-typed
/// row), so whole-record payloads — the join fabric ships them as
/// tagged-union values — survive spill runs and the worker wire.
/// Maps are not supported (they never appear as shuffle data that
/// needs persistence); encoding one is a schema error.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) -> Result<()> {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            encode_i64(*i, out);
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_u64(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            encode_u64(b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            encode_u64(items.len() as u64, out);
            for item in items.iter() {
                encode_value(item, out)?;
            }
        }
        Value::Record(r) => {
            out.push(TAG_RECORD);
            encode_schema(r.schema(), out);
            encode_row(r, out)?;
        }
        Value::Map(_) => {
            return Err(StorageError::Schema(format!(
                "cannot persist a {} value",
                v.kind_name()
            )))
        }
    }
    Ok(())
}

/// Decode a self-describing value from the front of `buf`.
pub fn decode_value(buf: &[u8]) -> Result<(Value, usize)> {
    let tag = *buf
        .first()
        .ok_or_else(|| StorageError::corrupt("value", "empty"))?;
    let rest = &buf[1..];
    Ok(match tag {
        TAG_NULL => (Value::Null, 1),
        TAG_BOOL_FALSE => (Value::Bool(false), 1),
        TAG_BOOL_TRUE => (Value::Bool(true), 1),
        TAG_INT => {
            let (v, n) = decode_i64(rest)?;
            (Value::Int(v), 1 + n)
        }
        TAG_DOUBLE => {
            if rest.len() < 8 {
                return Err(StorageError::corrupt("value", "truncated double"));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&rest[..8]);
            (Value::Double(f64::from_bits(u64::from_le_bytes(b))), 9)
        }
        TAG_STR => {
            let (len, n) = decode_u64(rest)?;
            let len = len as usize;
            let payload = rest
                .get(n..n + len)
                .ok_or_else(|| StorageError::corrupt("value", "truncated string"))?;
            let s = std::str::from_utf8(payload)
                .map_err(|_| StorageError::corrupt("value", "invalid utf-8"))?;
            (Value::str(s), 1 + n + len)
        }
        TAG_BYTES => {
            let (len, n) = decode_u64(rest)?;
            let len = len as usize;
            let payload = rest
                .get(n..n + len)
                .ok_or_else(|| StorageError::corrupt("value", "truncated bytes"))?;
            (Value::bytes(payload), 1 + n + len)
        }
        TAG_LIST => {
            let (count, mut pos) = decode_u64(rest)?;
            let mut items = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let (v, n) = decode_value(&rest[pos..])?;
                items.push(v);
                pos += n;
            }
            (Value::list(items), 1 + pos)
        }
        TAG_RECORD => {
            let (schema, mut pos) = decode_schema(rest)?;
            let schema = schema.into_arc();
            let (record, n) = decode_row(&schema, &rest[pos..])?;
            pos += n;
            (Value::from(record), 1 + pos)
        }
        other => {
            return Err(StorageError::corrupt(
                "value",
                format!("unknown tag {other}"),
            ))
        }
    })
}

/// Serialize a schema (for file headers).
pub fn encode_schema(schema: &Schema, out: &mut Vec<u8>) {
    encode_u64(schema.name().len() as u64, out);
    out.extend_from_slice(schema.name().as_bytes());
    out.push(schema.is_opaque() as u8);
    encode_u64(schema.len() as u64, out);
    for fd in schema.fields() {
        encode_u64(fd.name.len() as u64, out);
        out.extend_from_slice(fd.name.as_bytes());
        out.push(field_type_tag(fd.ty));
    }
}

/// Decode a schema from the front of `buf`.
pub fn decode_schema(buf: &[u8]) -> Result<(Schema, usize)> {
    let mut pos = 0usize;
    let (name, n) = decode_str(&buf[pos..])?;
    pos += n;
    let opaque = *buf
        .get(pos)
        .ok_or_else(|| StorageError::corrupt("schema", "truncated"))?
        != 0;
    pos += 1;
    let (nfields, n) = decode_u64(&buf[pos..])?;
    pos += n;
    let mut fields = Vec::with_capacity(nfields as usize);
    let mut names: Vec<String> = Vec::with_capacity(nfields as usize);
    for _ in 0..nfields {
        let (fname, n) = decode_str(&buf[pos..])?;
        pos += n;
        let tag = *buf
            .get(pos)
            .ok_or_else(|| StorageError::corrupt("schema", "truncated field type"))?;
        pos += 1;
        fields.push(field_type_from_tag(tag)?);
        names.push(fname);
    }
    let pairs: Vec<(&str, FieldType)> = names.iter().map(String::as_str).zip(fields).collect();
    let mut schema = Schema::new(name, pairs);
    if opaque {
        schema = schema.opaque();
    }
    Ok((schema, pos))
}

fn decode_str(buf: &[u8]) -> Result<(String, usize)> {
    let (len, n) = decode_u64(buf)?;
    let len = len as usize;
    let payload = buf
        .get(n..n + len)
        .ok_or_else(|| StorageError::corrupt("schema", "truncated name"))?;
    let s = std::str::from_utf8(payload)
        .map_err(|_| StorageError::corrupt("schema", "invalid utf-8"))?;
    Ok((s.to_string(), n + len))
}

fn field_type_tag(ty: FieldType) -> u8 {
    match ty {
        FieldType::Bool => 0,
        FieldType::Int => 1,
        FieldType::Long => 2,
        FieldType::Double => 3,
        FieldType::Str => 4,
        FieldType::Bytes => 5,
    }
}

fn field_type_from_tag(tag: u8) -> Result<FieldType> {
    Ok(match tag {
        0 => FieldType::Bool,
        1 => FieldType::Int,
        2 => FieldType::Long,
        3 => FieldType::Double,
        4 => FieldType::Str,
        5 => FieldType::Bytes,
        other => {
            return Err(StorageError::corrupt(
                "schema",
                format!("unknown field type tag {other}"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::record::record;

    fn uservisits() -> Arc<Schema> {
        Schema::new(
            "UserVisits",
            vec![
                ("sourceIP", FieldType::Str),
                ("destURL", FieldType::Str),
                ("visitDate", FieldType::Long),
                ("adRevenue", FieldType::Int),
                ("bounced", FieldType::Bool),
                ("score", FieldType::Double),
                ("blob", FieldType::Bytes),
            ],
        )
        .into_arc()
    }

    #[test]
    fn row_roundtrip() {
        let s = uservisits();
        let r = record(
            &s,
            vec![
                "1.2.3.4".into(),
                "http://x.com/a".into(),
                Value::Int(1_234_567),
                Value::Int(-42),
                Value::Bool(true),
                Value::Double(0.25),
                Value::bytes([1, 2, 3]),
            ],
        );
        let mut buf = Vec::new();
        encode_row(&r, &mut buf).unwrap();
        let (back, n) = decode_row(&s, &buf).unwrap();
        assert_eq!(back, r);
        assert_eq!(n, buf.len());
    }

    #[test]
    fn row_type_mismatch_rejected() {
        let s = Schema::new("T", vec![("n", FieldType::Int)]).into_arc();
        let r = Record::new(Arc::clone(&s), vec![Value::str("not an int")]).unwrap();
        assert!(matches!(
            encode_row(&r, &mut Vec::new()),
            Err(StorageError::Schema(_))
        ));
    }

    #[test]
    fn row_truncation_detected() {
        let s = uservisits();
        let r = record(
            &s,
            vec![
                "ip".into(),
                "url".into(),
                1.into(),
                2.into(),
                Value::Bool(false),
                Value::Double(1.0),
                Value::bytes([]),
            ],
        );
        let mut buf = Vec::new();
        encode_row(&r, &mut buf).unwrap();
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            assert!(decode_row(&s, &buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn value_roundtrip() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-7),
            Value::Int(i64::MAX),
            Value::Double(3.5),
            Value::str("hello"),
            Value::str(""),
            Value::bytes([0, 255]),
            Value::list(vec![Value::Int(1), Value::str("x")]),
        ];
        for v in values {
            let mut buf = Vec::new();
            encode_value(&v, &mut buf).unwrap();
            let (back, n) = decode_value(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn map_values_rejected() {
        assert!(encode_value(&Value::empty_map(), &mut Vec::new()).is_err());
    }

    #[test]
    fn record_values_roundtrip_with_schema() {
        let s = Schema::new("T", vec![("n", FieldType::Int), ("s", FieldType::Str)]).into_arc();
        let r: Value = record(&s, vec![1.into(), "x".into()]).into();
        // Nested inside a list too — the join's tagged-union shape.
        for v in [r.clone(), Value::list(vec![Value::Int(0), r])] {
            let mut buf = Vec::new();
            encode_value(&v, &mut buf).unwrap();
            let (back, n) = decode_value(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn schema_roundtrip_including_opaque() {
        let s = Schema::new(
            "AbstractTuple",
            vec![("a", FieldType::Int), ("b", FieldType::Str)],
        )
        .opaque();
        let mut buf = Vec::new();
        encode_schema(&s, &mut buf);
        let (back, n) = decode_schema(&buf).unwrap();
        assert_eq!(back, s);
        assert_eq!(n, buf.len());
        assert!(back.is_opaque());
    }

    #[test]
    fn unknown_value_tag_rejected() {
        assert!(decode_value(&[99]).is_err());
    }
}
