//! Pluggable block compression for streamed record files (paper
//! App. C).
//!
//! The paper treats compression as a first-class physical optimization:
//! delta and dictionary encodings back the *index* layouts
//! ([`delta`](crate::delta), [`dict`](crate::dict)), but until this
//! layer the streaming formats — shuffle spill runs
//! ([`runfile`](crate::runfile)) and baseline sequence files
//! ([`seqfile`](crate::seqfile)) — paid full I/O for every byte. A
//! [`BlockCodec`] compresses those streams *below* the record layer:
//! the varint-framed record encoding is unchanged, it just flows
//! through [`BlockWriter`]/[`BlockReader`] adapters that cut it into
//! independently-decodable frames, the same structure as Hadoop's
//! block-compressed `SequenceFile`.
//!
//! Frame layout (one frame per block):
//!
//! ```text
//! compressed: [codec tag u8][varint raw_len][varint comp_len]
//!             [comp_len compressed bytes][crc32(comp bytes) u32 LE]
//! stored:     [tag 5][varint raw_len]
//!             [raw_len stored bytes][crc32(stored bytes) u32 LE]
//! ```
//!
//! Invariants the rest of the system leans on:
//!
//! * **Self-describing frames.** Every frame names its codec, so
//!   readers never need the writer's configuration — a compacted run
//!   can even mix frames from different codecs. A codec that fails to
//!   shrink a block falls back to a *stored* frame (which omits the
//!   redundant compressed-length field), so a framed file costs at
//!   most [`MAX_FRAME_OVERHEAD`] bytes per block over the raw stream —
//!   it never meaningfully inflates.
//! * **Typed corruption.** A bad CRC, a truncated frame, or an
//!   impossible code surfaces as [`StorageError::Corrupt`] — never a
//!   panic, never silently-truncated data ([`StorageError::into_io`]
//!   carries the type through the `std::io` traits).
//! * **Deterministic output.** Same bytes + same codec ⇒ same frames,
//!   which is what lets the differential harness compare compressed
//!   and uncompressed runs byte-for-byte at the output layer.
//!
//! # Example
//!
//! A record stream round-trips through any codec unchanged:
//!
//! ```
//! use std::io::{Read, Write};
//! use mr_storage::blockcodec::{BlockReader, BlockWriter, ShuffleCompression};
//!
//! let payload: Vec<u8> = (0..10_000u32).flat_map(|i| (i / 8).to_le_bytes()).collect();
//! let codec = ShuffleCompression::Dict.codec();
//!
//! let mut w = BlockWriter::new(Vec::new(), codec, None);
//! w.write_all(&payload)?;
//! w.flush()?;
//! assert!(w.written_bytes() < w.raw_bytes(), "repetitive data shrinks");
//! let framed = w.into_inner()?;
//!
//! let mut back = Vec::new();
//! BlockReader::new(framed.as_slice(), codec.is_some(), None).read_to_end(&mut back)?;
//! assert_eq!(back, payload);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::fault::{IoFaults, IoSite};
use crate::varint::{decode_u64, encode_u64, read_u64_from};

/// Block size the writers cut frames at. Large enough to amortize the
/// frame header and give the dictionary codec a useful window, small
/// enough that a reader buffers one block, not a file.
pub const DEFAULT_BLOCK_SIZE: usize = 32 * 1024;

/// Upper bound on a single frame's raw or compressed length; beyond
/// this is corruption, not an allocation request.
const MAX_FRAME_LEN: u64 = 1 << 26;

/// Codec tag of raw frames (legacy layout: carries a redundant
/// compressed-length field). Still read; no longer written — the
/// stored fallback emits [`TAG_STORED`] frames instead.
const TAG_RAW: u8 = 1;
/// Codec tag of LZW dictionary frames.
const TAG_DICT: u8 = 2;
/// Codec tag of stride-delta + zero-run frames.
pub(crate) const TAG_DELTA: u8 = 3;
/// Codec tag of trained-dictionary LZW frames. Only valid inside the
/// columnar (`MRRN2`) run layout, where the file header names the
/// shared dictionary by hash; in a v1 stream it is corruption.
pub(crate) const TAG_TRAINED: u8 = 4;
/// Codec tag of stored frames: `[tag][varint raw_len][payload][crc]`,
/// with no compressed-length field (it equals `raw_len`). This is
/// what the can't-shrink fallback emits, so a framed stream never
/// costs more than [`MAX_FRAME_OVERHEAD`] bytes per block over raw.
pub(crate) const TAG_STORED: u8 = 5;

/// Worst-case frame bytes beyond the payload for a stored frame cut
/// at [`DEFAULT_BLOCK_SIZE`]: 1 tag byte, ≤3 varint length bytes, 4
/// CRC bytes. The invariant the spill accounting leans on:
/// `written <= raw + frames * MAX_FRAME_OVERHEAD`.
pub const MAX_FRAME_OVERHEAD: usize = 8;

/// One block compression algorithm: a pure, deterministic transform of
/// a block of bytes. Implementations are stateless across blocks —
/// every frame decodes independently, which is what keeps compressed
/// spill runs safely re-readable by retried task attempts.
///
/// # Example
///
/// ```
/// use mr_storage::blockcodec::{BlockCodec, DictBlock};
///
/// let codec = DictBlock;
/// let raw = b"abababababababab".repeat(64);
/// let mut comp = Vec::new();
/// codec.compress(&raw, &mut comp);
/// assert!(comp.len() < raw.len());
///
/// let mut back = Vec::new();
/// codec.decompress(&comp, raw.len(), &mut back)?;
/// assert_eq!(back, raw);
/// # Ok::<(), mr_storage::StorageError>(())
/// ```
pub trait BlockCodec: Send + Sync {
    /// The tag written into each frame header.
    fn tag(&self) -> u8;

    /// Human-readable codec name (`raw`, `dict`, `delta`).
    fn name(&self) -> &'static str;

    /// Compress `raw` into `out` (append; `out` is not cleared).
    fn compress(&self, raw: &[u8], out: &mut Vec<u8>);

    /// Decompress `comp` (a whole frame payload) into `out`, which must
    /// end up holding exactly `raw_len` more bytes; anything else is
    /// [`StorageError::Corrupt`].
    fn decompress(&self, comp: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Result<()>;
}

/// The identity codec: stored frames. Still worth having — it buys the
/// frame CRC (corruption detection the bare stream lacks) at a few
/// bytes per block.
#[derive(Debug, Clone, Copy, Default)]
pub struct Raw;

impl BlockCodec for Raw {
    fn tag(&self) -> u8 {
        TAG_RAW
    }

    fn name(&self) -> &'static str {
        "raw"
    }

    fn compress(&self, raw: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(raw);
    }

    fn decompress(&self, comp: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Result<()> {
        if comp.len() != raw_len {
            return Err(StorageError::corrupt(
                "block frame",
                "raw frame length mismatch",
            ));
        }
        out.extend_from_slice(comp);
        Ok(())
    }
}

/// Codes the dictionary codec may assign; 0..=255 are the byte
/// literals, the rest are learned sequences. Capped so a block's
/// decode table stays small and corrupt streams cannot demand
/// unbounded memory.
const DICT_MAX_CODES: u32 = 1 << 16;

/// Byte-sequence dictionary compression (LZW): repeated byte strings —
/// above all the repeated keys of a sorted, low-cardinality spill run —
/// collapse to varint-coded dictionary references. The block-codec
/// sibling of the record-level [`dict`](crate::dict) format: same
/// paper idea ("a compressed version … that preserves equality
/// testing", App. D), applied to opaque stream bytes instead of a
/// schema field, with the dictionary rebuilt from the data itself so
/// nothing needs persisting.
#[derive(Debug, Clone, Copy, Default)]
pub struct DictBlock;

impl BlockCodec for DictBlock {
    fn tag(&self) -> u8 {
        TAG_DICT
    }

    fn name(&self) -> &'static str {
        "dict"
    }

    fn compress(&self, raw: &[u8], out: &mut Vec<u8>) {
        // Classic LZW over (prefix code, next byte) pairs; emitted
        // codes are varints, so early (frequent) codes stay short.
        let mut table: HashMap<(u32, u8), u32> = HashMap::new();
        let mut next = 256u32;
        let mut bytes = raw.iter();
        let Some(&first) = bytes.next() else { return };
        let mut cur = first as u32;
        for &b in bytes {
            match table.get(&(cur, b)) {
                Some(&code) => cur = code,
                None => {
                    encode_u64(cur as u64, out);
                    if next < DICT_MAX_CODES {
                        table.insert((cur, b), next);
                        next += 1;
                    }
                    cur = b as u32;
                }
            }
        }
        encode_u64(cur as u64, out);
    }

    fn decompress(&self, comp: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Result<()> {
        // Entry `256 + i` expands to expand(prefix) ++ [byte].
        let mut entries: Vec<(u32, u8)> = Vec::new();
        let mut scratch: Vec<u8> = Vec::new();
        let mut prev: Option<u32> = None;
        let mut pos = 0usize;
        let target = out.len() + raw_len;
        while pos < comp.len() {
            let (code64, n) = decode_u64(&comp[pos..])?;
            pos += n;
            let code = u32::try_from(code64)
                .map_err(|_| StorageError::corrupt("block frame", "dict code exceeds u32"))?;
            let limit = 256 + entries.len() as u32;
            scratch.clear();
            if code < limit {
                expand(code, &entries, &mut scratch);
            } else if code == limit && limit < DICT_MAX_CODES {
                // The KwKwK case: the code being defined by this very
                // step — expand(prev) plus its own first byte. Once
                // the table is at capacity no new code is ever
                // defined, so a full-table "novel" code is corruption,
                // not KwKwK (accepting it would leave a dangling code
                // that a later expand() indexes out of bounds).
                let p = prev.ok_or_else(|| {
                    StorageError::corrupt("block frame", "dict stream starts with a novel code")
                })?;
                expand(p, &entries, &mut scratch);
                let head = scratch[0];
                scratch.push(head);
            } else {
                return Err(StorageError::corrupt(
                    "block frame",
                    "dict code out of range",
                ));
            }
            if let Some(p) = prev {
                if limit < DICT_MAX_CODES {
                    entries.push((p, scratch[0]));
                }
            }
            if out.len() + scratch.len() > target {
                return Err(StorageError::corrupt(
                    "block frame",
                    "dict block inflates past its declared size",
                ));
            }
            out.extend_from_slice(&scratch);
            prev = Some(code);
        }
        if out.len() != target {
            return Err(StorageError::corrupt(
                "block frame",
                "dict block size mismatch",
            ));
        }
        Ok(())
    }
}

/// Expand `code` by walking the prefix chain. Prefixes always point at
/// strictly smaller codes, so the walk terminates even on adversarial
/// tables.
fn expand(mut code: u32, entries: &[(u32, u8)], out: &mut Vec<u8>) {
    let start = out.len();
    loop {
        if code < 256 {
            out.push(code as u8);
            break;
        }
        let (prefix, byte) = entries[(code - 256) as usize];
        out.push(byte);
        code = prefix;
    }
    out[start..].reverse();
}

/// Largest stride the delta codec probes. 64 covers every fixed-width
/// record the row codec produces plus typical framed-pair periods.
const DELTA_MAX_STRIDE: usize = 64;

/// How many leading bytes the stride probe samples.
const DELTA_PROBE: usize = 4096;

/// Stride-delta compression with varint-coded zero runs: the paper's
/// delta idea ("storing just small deltas … combined with a
/// size-sensitive representation", §2.1 — the record-level version is
/// [`delta`](crate::delta)) applied to opaque stream bytes. The
/// encoder probes strides 1..=64 for the one under which the block is
/// most self-similar, subtracts each byte from the byte one stride
/// back, and run-length-codes the zero bytes that numeric runs and
/// repeated frames leave behind ([`varint`](crate::varint) lengths).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaVarint;

/// Zero runs shorter than this stay literal: a (zero-run, literal-run)
/// token pair costs at least two bytes, so brief gaps are cheaper
/// in-line.
const DELTA_MIN_ZRUN: usize = 4;

impl BlockCodec for DeltaVarint {
    fn tag(&self) -> u8 {
        TAG_DELTA
    }

    fn name(&self) -> &'static str {
        "delta"
    }

    fn compress(&self, raw: &[u8], out: &mut Vec<u8>) {
        if raw.is_empty() {
            return;
        }
        let stride = best_stride(raw);
        encode_u64(stride as u64, out);
        let delta: Vec<u8> = (0..raw.len())
            .map(|i| {
                if i >= stride {
                    raw[i].wrapping_sub(raw[i - stride])
                } else {
                    raw[i]
                }
            })
            .collect();
        // Token stream: [varint zero_run][varint lit_len][lit bytes]*.
        let mut i = 0usize;
        while i < delta.len() {
            let zero_start = i;
            while i < delta.len() && delta[i] == 0 {
                i += 1;
            }
            encode_u64((i - zero_start) as u64, out);
            let lit_start = i;
            while i < delta.len() {
                if delta[i] == 0
                    && delta[i..].iter().take(DELTA_MIN_ZRUN).all(|&d| d == 0)
                    && delta.len() - i >= DELTA_MIN_ZRUN
                {
                    break;
                }
                i += 1;
            }
            encode_u64((i - lit_start) as u64, out);
            out.extend_from_slice(&delta[lit_start..i]);
        }
    }

    fn decompress(&self, comp: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Result<()> {
        if raw_len == 0 {
            return if comp.is_empty() {
                Ok(())
            } else {
                Err(StorageError::corrupt(
                    "block frame",
                    "delta payload for an empty block",
                ))
            };
        }
        let (stride64, n) = decode_u64(comp)?;
        let mut pos = n;
        let stride = stride64 as usize;
        if stride == 0 || stride > DELTA_MAX_STRIDE {
            return Err(StorageError::corrupt(
                "block frame",
                "delta stride out of range",
            ));
        }
        let start = out.len();
        let target = start + raw_len;
        while out.len() < target {
            let (zrun, n) = decode_u64(&comp[pos..])?;
            pos += n;
            let (lit, n) = decode_u64(&comp[pos..])?;
            pos += n;
            if zrun == 0 && lit == 0 {
                return Err(StorageError::corrupt("block frame", "empty delta token"));
            }
            // Checked: crafted u64-max run lengths must not wrap past
            // the bound check into a giant allocation.
            let token_len = zrun.checked_add(lit).ok_or_else(|| {
                StorageError::corrupt("block frame", "delta token length overflows")
            })?;
            if token_len > (target - out.len()) as u64 {
                return Err(StorageError::corrupt(
                    "block frame",
                    "delta block overruns its declared size",
                ));
            }
            out.resize(out.len() + zrun as usize, 0);
            let bytes = comp
                .get(pos..pos + lit as usize)
                .ok_or_else(|| StorageError::corrupt("block frame", "delta literals truncated"))?;
            out.extend_from_slice(bytes);
            pos += lit as usize;
        }
        if pos != comp.len() {
            return Err(StorageError::corrupt(
                "block frame",
                "trailing bytes after delta stream",
            ));
        }
        for i in start + stride..target {
            out[i] = out[i].wrapping_add(out[i - stride]);
        }
        Ok(())
    }
}

/// The stride under which a sample of `raw` has the most bytes equal
/// to the byte one stride earlier (ties to the smallest stride).
fn best_stride(raw: &[u8]) -> usize {
    let sample = &raw[..raw.len().min(DELTA_PROBE)];
    let mut best = (1usize, 0usize);
    for stride in 1..=DELTA_MAX_STRIDE.min(sample.len().saturating_sub(1)).max(1) {
        let zeros = (stride..sample.len())
            .filter(|&i| sample[i] == sample[i - stride])
            .count();
        if zeros > best.1 {
            best = (stride, zeros);
        }
    }
    best.0
}

/// The shuffle-compression knob jobs carry
/// (`JobConfig::shuffle_compression` in `mr-engine`, `manimal run
/// --shuffle-codec`, `MANIMAL_SHUFFLE_CODEC` for the bench bins).
///
/// [`ShuffleCompression::None`] — the default — bypasses the block
/// layer entirely: the stream is byte-identical to what the formats
/// wrote before this layer existed. The other variants frame the
/// stream through the named [`BlockCodec`].
///
/// # Example
///
/// ```
/// use mr_storage::blockcodec::ShuffleCompression;
///
/// assert_eq!(ShuffleCompression::parse("dict"), Some(ShuffleCompression::Dict));
/// assert_eq!(ShuffleCompression::parse("zstd"), None);
/// assert!(ShuffleCompression::None.codec().is_none());
/// assert_eq!(ShuffleCompression::Delta.codec().unwrap().name(), "delta");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShuffleCompression {
    /// No block layer: the raw record stream, exactly as before.
    #[default]
    None,
    /// Framed but stored ([`Raw`]): CRC detection, no size change.
    Raw,
    /// LZW dictionary frames ([`DictBlock`]).
    Dict,
    /// Stride-delta + zero-run frames ([`DeltaVarint`]).
    Delta,
    /// Trained shared-dictionary frames in the columnar (v2) run
    /// layout: sorted keys and values travel as separate block
    /// streams, values seeded from a per-corpus dictionary
    /// ([`trained`](crate::trained)). Handled by the run-file layer,
    /// not a plain per-frame [`BlockCodec`], so
    /// [`codec`](Self::codec) returns `None` for this variant.
    DictTrained,
}

impl ShuffleCompression {
    /// Every variant, in the order benches and the differential
    /// harness sweep them.
    pub const ALL: [ShuffleCompression; 5] = [
        ShuffleCompression::None,
        ShuffleCompression::Raw,
        ShuffleCompression::Dict,
        ShuffleCompression::Delta,
        ShuffleCompression::DictTrained,
    ];

    /// The spec name (`none`, `raw`, `dict`, `delta`, `dict-trained`).
    pub fn name(self) -> &'static str {
        match self {
            ShuffleCompression::None => "none",
            ShuffleCompression::Raw => "raw",
            ShuffleCompression::Dict => "dict",
            ShuffleCompression::Delta => "delta",
            ShuffleCompression::DictTrained => "dict-trained",
        }
    }

    /// Parse a spec name back into a variant.
    pub fn parse(name: &str) -> Option<ShuffleCompression> {
        ShuffleCompression::ALL
            .into_iter()
            .find(|c| c.name() == name)
    }

    /// The codec to frame streams with; `None` for the passthrough
    /// variant *and* for [`DictTrained`](Self::DictTrained), whose
    /// framing lives in the columnar run-file layer (it needs the
    /// shared dictionary, which a stateless unit codec cannot carry).
    /// The codecs are stateless unit types, so these are static
    /// borrows — no allocation per stream or per frame.
    pub fn codec(self) -> Option<&'static dyn BlockCodec> {
        match self {
            ShuffleCompression::None | ShuffleCompression::DictTrained => None,
            ShuffleCompression::Raw => Some(&Raw),
            ShuffleCompression::Dict => Some(&DictBlock),
            ShuffleCompression::Delta => Some(&DeltaVarint),
        }
    }

    /// The stream-header tag the file formats record (0 = no block
    /// layer, otherwise the codec's frame tag).
    pub fn stream_tag(self) -> u8 {
        match self {
            ShuffleCompression::DictTrained => TAG_TRAINED,
            other => other.codec().map_or(0, |c| c.tag()),
        }
    }
}

impl std::fmt::Display for ShuffleCompression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The codec a frame tag names. [`TAG_STORED`] is handled before this
/// dispatch (it has no codec); [`TAG_TRAINED`] is only legal where a
/// shared dictionary is in scope (the columnar run layout), so here it
/// is corruption with a pointed message.
fn codec_for_tag(tag: u8) -> Result<&'static dyn BlockCodec> {
    match tag {
        TAG_RAW => Ok(&Raw),
        TAG_DICT => Ok(&DictBlock),
        TAG_DELTA => Ok(&DeltaVarint),
        TAG_TRAINED => Err(StorageError::corrupt(
            "block frame",
            "trained-dictionary frame outside a columnar run",
        )),
        other => Err(StorageError::corrupt(
            "block frame",
            format!("unknown codec tag {other}"),
        )),
    }
}

/// Emit one frame: header, payload, CRC. Stored frames ([`TAG_STORED`])
/// omit the compressed-length field — it equals `raw_len`. Returns the
/// bytes written. Shared between [`BlockWriter`] and the columnar
/// run-file layer so both speak byte-identical frames.
pub(crate) fn write_frame<W: Write>(
    inner: &mut W,
    tag: u8,
    raw_len: usize,
    payload: &[u8],
) -> io::Result<u64> {
    let mut header = Vec::with_capacity(11);
    header.push(tag);
    encode_u64(raw_len as u64, &mut header);
    if tag != TAG_STORED {
        encode_u64(payload.len() as u64, &mut header);
    }
    inner.write_all(&header)?;
    inner.write_all(payload)?;
    inner.write_all(&crc32(payload).to_le_bytes())?;
    Ok((header.len() + payload.len() + 4) as u64)
}

/// Read one frame: `Ok(None)` on a clean end-of-stream before the tag
/// byte; otherwise the (still compressed) payload replaces `comp`'s
/// contents, the CRC is verified, and `(tag, raw_len)` comes back.
/// Truncation inside the frame and CRC mismatches surface as typed
/// corruption. Shared with the columnar run-file reader.
pub(crate) fn read_frame_into<R: Read>(
    inner: &mut R,
    comp: &mut Vec<u8>,
) -> io::Result<Option<(u8, u64)>> {
    let mut tag = [0u8; 1];
    loop {
        match inner.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if !(TAG_RAW..=TAG_STORED).contains(&tag[0]) {
        return Err(
            StorageError::corrupt("block frame", format!("unknown codec tag {}", tag[0])).into_io(),
        );
    }
    let header = |inner: &mut R, what: &str| -> io::Result<u64> {
        let len = read_u64_from(inner)
            .map_err(StorageError::into_io)?
            .ok_or_else(|| {
                StorageError::corrupt("block frame", format!("truncated {what}")).into_io()
            })?
            .0;
        if len > MAX_FRAME_LEN {
            return Err(
                StorageError::corrupt("block frame", format!("{what} implausibly large")).into_io(),
            );
        }
        Ok(len)
    };
    let raw_len = header(inner, "raw length")?;
    let comp_len = if tag[0] == TAG_STORED {
        raw_len
    } else {
        header(inner, "compressed length")?
    };
    // Past the tag, EOF is *inside* a frame: that must surface as
    // corruption, not as the clean end-of-stream the record layer's
    // varint reader would silently accept.
    let truncated = |e: io::Error| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StorageError::corrupt("block frame", "truncated frame").into_io()
        } else {
            e
        }
    };
    comp.resize(comp_len as usize, 0);
    inner.read_exact(comp).map_err(truncated)?;
    let mut crc_bytes = [0u8; 4];
    inner.read_exact(&mut crc_bytes).map_err(truncated)?;
    if crc32(comp) != u32::from_le_bytes(crc_bytes) {
        return Err(StorageError::corrupt("block frame", "crc mismatch").into_io());
    }
    Ok(Some((tag[0], raw_len)))
}

/// CRC32 (IEEE, reflected — the zlib/Hadoop polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A [`Write`] adapter that cuts the byte stream into codec frames.
/// With no codec it is a pure passthrough (zero framing, zero
/// overhead), so the record writers use it unconditionally.
///
/// The writer buffers up to [`DEFAULT_BLOCK_SIZE`] bytes and emits one
/// frame per full block; [`flush_block`](Self::flush_block) forces a
/// frame boundary early (how the seqfile writer aligns frames with its
/// split index). A codec that fails to shrink a block is overridden
/// per-frame by a stored [`Raw`] frame.
pub struct BlockWriter<W: Write> {
    inner: W,
    codec: Option<&'static dyn BlockCodec>,
    block_size: usize,
    buf: Vec<u8>,
    comp: Vec<u8>,
    raw_bytes: u64,
    written_bytes: u64,
    faults: Option<Arc<IoFaults>>,
}

impl<W: Write> BlockWriter<W> {
    /// Wrap `inner`; `codec = None` passes bytes straight through.
    /// Each emitted frame is counted against `faults`
    /// ([`IoSite::BlockWrite`]).
    pub fn new(
        inner: W,
        codec: Option<&'static dyn BlockCodec>,
        faults: Option<Arc<IoFaults>>,
    ) -> BlockWriter<W> {
        BlockWriter::with_buffers(inner, codec, faults, Vec::new(), Vec::new())
    }

    /// [`new`](Self::new), staging blocks in caller-provided scratch
    /// buffers (`buf` for the open block, `comp` for the compressed
    /// frame) instead of allocating fresh ones — the hot-path spill
    /// writers recycle these across run files via a buffer pool.
    /// Reclaim them with [`take_buffers`](Self::take_buffers) after the
    /// final flush.
    pub fn with_buffers(
        inner: W,
        codec: Option<&'static dyn BlockCodec>,
        faults: Option<Arc<IoFaults>>,
        mut buf: Vec<u8>,
        mut comp: Vec<u8>,
    ) -> BlockWriter<W> {
        buf.clear();
        comp.clear();
        BlockWriter {
            inner,
            codec,
            block_size: DEFAULT_BLOCK_SIZE,
            buf,
            comp,
            raw_bytes: 0,
            written_bytes: 0,
            faults,
        }
    }

    /// Detach the scratch buffers for reuse (capacity preserved). Only
    /// meaningful after [`flush_block`](Self::flush_block) — an open
    /// block's bytes go with the buffer.
    pub fn take_buffers(&mut self) -> (Vec<u8>, Vec<u8>) {
        (
            std::mem::take(&mut self.buf),
            std::mem::take(&mut self.comp),
        )
    }

    /// Logical bytes accepted so far.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Physical bytes emitted to the inner writer so far (buffered
    /// bytes of an open block are not yet counted).
    pub fn written_bytes(&self) -> u64 {
        self.written_bytes
    }

    /// Force the open block out as a (possibly short) frame, so the
    /// next byte written starts a frame — a seekable stream position.
    pub fn flush_block(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.emit_block(self.buf.len())?;
        }
        Ok(())
    }

    /// The inner writer. Bytes written through it bypass framing *and*
    /// accounting — only for trailers that follow the framed region
    /// (call [`flush_block`](Self::flush_block) first).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    /// Flush any open block and return the inner writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.flush_block()?;
        Ok(self.inner)
    }

    fn emit_block(&mut self, n: usize) -> io::Result<()> {
        let codec = self.codec.expect("emit_block implies a codec");
        if let Some(f) = &self.faults {
            f.check(IoSite::BlockWrite)?;
        }
        let raw = &self.buf[..n];
        self.comp.clear();
        codec.compress(raw, &mut self.comp);
        let (tag, payload): (u8, &[u8]) = if self.comp.len() < raw.len() {
            (codec.tag(), &self.comp)
        } else {
            // Can't shrink (the Raw codec never can): a stored frame,
            // whose overhead is bounded by MAX_FRAME_OVERHEAD.
            (TAG_STORED, raw)
        };
        self.written_bytes += write_frame(&mut self.inner, tag, raw.len(), payload)?;
        self.buf.drain(..n);
        Ok(())
    }
}

impl<W: Write> Write for BlockWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.raw_bytes += data.len() as u64;
        if self.codec.is_none() {
            self.inner.write_all(data)?;
            self.written_bytes += data.len() as u64;
            return Ok(data.len());
        }
        self.buf.extend_from_slice(data);
        while self.buf.len() >= self.block_size {
            self.emit_block(self.block_size)?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_block()?;
        self.inner.flush()
    }
}

/// A [`Read`] adapter that reassembles the byte stream from codec
/// frames (or passes through when the stream was written unframed).
/// Frames verify their CRC before decoding; any mismatch, truncation,
/// or malformed payload surfaces as [`StorageError::Corrupt`] through
/// the error conversion in [`crate::error`].
pub struct BlockReader<R: Read> {
    inner: R,
    framed: bool,
    buf: Vec<u8>,
    pos: usize,
    comp: Vec<u8>,
    faults: Option<Arc<IoFaults>>,
}

impl<R: Read> BlockReader<R> {
    /// Wrap `inner`. `framed = false` passes reads straight through.
    /// Each frame decoded is counted against `faults`
    /// ([`IoSite::BlockRead`]).
    pub fn new(inner: R, framed: bool, faults: Option<Arc<IoFaults>>) -> BlockReader<R> {
        BlockReader {
            inner,
            framed,
            buf: Vec::new(),
            pos: 0,
            comp: Vec::new(),
            faults,
        }
    }

    /// Decode the next frame into `buf`; `false` on a clean
    /// end-of-stream at a frame boundary.
    fn fill_frame(&mut self) -> io::Result<bool> {
        if let Some(f) = &self.faults {
            f.check(IoSite::BlockRead)?;
        }
        let Some((tag, raw_len)) = read_frame_into(&mut self.inner, &mut self.comp)? else {
            return Ok(false);
        };
        self.buf.clear();
        if tag == TAG_STORED {
            self.buf.extend_from_slice(&self.comp);
        } else {
            let codec = codec_for_tag(tag).map_err(StorageError::into_io)?;
            codec
                .decompress(&self.comp, raw_len as usize, &mut self.buf)
                .map_err(StorageError::into_io)?;
        }
        self.pos = 0;
        Ok(true)
    }
}

impl<R: Read> Read for BlockReader<R> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if !self.framed {
            return self.inner.read(out);
        }
        while self.pos == self.buf.len() {
            if !self.fill_frame()? {
                return Ok(0);
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_through(codec: ShuffleCompression, payload: &[u8]) -> (u64, u64) {
        let mut w = BlockWriter::new(Vec::new(), codec.codec(), None);
        w.write_all(payload).unwrap();
        w.flush().unwrap();
        let (raw, written) = (w.raw_bytes(), w.written_bytes());
        let framed = w.into_inner().unwrap();
        assert_eq!(written, framed.len() as u64);
        let mut back = Vec::new();
        BlockReader::new(framed.as_slice(), codec.codec().is_some(), None)
            .read_to_end(&mut back)
            .unwrap();
        assert_eq!(back, payload, "codec {codec}");
        (raw, written)
    }

    fn payloads() -> Vec<Vec<u8>> {
        vec![
            vec![],
            b"x".to_vec(),
            b"hello world".to_vec(),
            vec![0u8; 100_000],
            (0..100_000u32).map(|i| (i % 251) as u8).collect(),
            b"key-00042\tvalue".repeat(5000),
            (0..20_000u64)
                .flat_map(|i| (1_600_000_000 + i).to_le_bytes())
                .collect(),
        ]
    }

    #[test]
    fn every_codec_roundtrips_every_payload() {
        for codec in ShuffleCompression::ALL {
            for p in payloads() {
                roundtrip_through(codec, &p);
            }
        }
    }

    #[test]
    fn none_is_a_pure_passthrough() {
        let payload = b"untouched bytes".to_vec();
        let mut w = BlockWriter::new(Vec::new(), None, None);
        w.write_all(&payload).unwrap();
        w.flush().unwrap();
        assert_eq!(w.raw_bytes(), w.written_bytes());
        assert_eq!(w.into_inner().unwrap(), payload);
    }

    #[test]
    fn repetitive_payloads_shrink() {
        let repeated = b"http://popular.example.com/path\t1\n".repeat(4000);
        for codec in [ShuffleCompression::Dict, ShuffleCompression::Delta] {
            let (raw, written) = roundtrip_through(codec, &repeated);
            assert!(written * 2 < raw, "{codec}: {written} vs {raw} raw bytes");
        }
        // Monotone numeric runs are the delta codec's home turf.
        let numeric: Vec<u8> = (0..50_000u64)
            .flat_map(|i| (3_000_000_000 + i * 17).to_le_bytes())
            .collect();
        let mut w = BlockWriter::new(Vec::new(), ShuffleCompression::Delta.codec(), None);
        w.write_all(&numeric).unwrap();
        w.flush().unwrap();
        // ~3 token bytes per 8-byte record (zero-run + lit-len + the
        // one carrying byte): better than 2x, reliably.
        assert!(w.written_bytes() * 2 < w.raw_bytes());
    }

    #[test]
    fn incompressible_data_costs_only_frame_headers() {
        // A pseudo-random block the codecs cannot shrink falls back to
        // stored frames: bounded overhead, still CRC-protected.
        let mut x = 0x9E3779B97F4A7C15u64;
        let noise: Vec<u8> = (0..DEFAULT_BLOCK_SIZE * 3)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        for codec in [ShuffleCompression::Dict, ShuffleCompression::Delta] {
            let (raw, written) = roundtrip_through(codec, &noise);
            assert!(written < raw + 64, "{codec}: fallback overhead bounded");
        }
    }

    #[test]
    fn framed_streams_never_inflate_past_per_frame_overhead() {
        // The stored-frame guarantee behind the spill accounting:
        // written <= raw + frames * MAX_FRAME_OVERHEAD, for every
        // codec, even on incompressible input. (The raw codec used to
        // violate this by a redundant compressed-length varint per
        // frame — the 1.006× inflation in BENCH_compress.json.)
        let mut x = 0x243F6A8885A308D3u64;
        let noise: Vec<u8> = (0..DEFAULT_BLOCK_SIZE * 4 + 123)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        for codec in [
            ShuffleCompression::Raw,
            ShuffleCompression::Dict,
            ShuffleCompression::Delta,
        ] {
            let (raw, written) = roundtrip_through(codec, &noise);
            let frames = (noise.len() as u64).div_ceil(DEFAULT_BLOCK_SIZE as u64);
            assert!(
                written <= raw + frames * MAX_FRAME_OVERHEAD as u64,
                "{codec}: {written} written vs {raw} raw over {frames} frames"
            );
        }
    }

    #[test]
    fn stored_frames_replace_legacy_raw_frames() {
        // The raw codec can never shrink a block, so every frame it
        // emits is a stored frame; legacy TAG_RAW frames still decode.
        let payload = vec![0xA5u8; 100];
        let mut w = BlockWriter::new(Vec::new(), ShuffleCompression::Raw.codec(), None);
        w.write_all(&payload).unwrap();
        w.flush().unwrap();
        let framed = w.into_inner().unwrap();
        assert_eq!(framed[0], TAG_STORED);
        // [tag][varint 100][payload][crc]
        assert_eq!(framed.len(), 1 + 1 + payload.len() + 4);

        // Hand-build the legacy TAG_RAW equivalent and read it back.
        let mut legacy = vec![TAG_RAW];
        encode_u64(payload.len() as u64, &mut legacy);
        encode_u64(payload.len() as u64, &mut legacy);
        legacy.extend_from_slice(&payload);
        legacy.extend_from_slice(&crc32(&payload).to_le_bytes());
        let mut back = Vec::new();
        BlockReader::new(legacy.as_slice(), true, None)
            .read_to_end(&mut back)
            .unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn trained_tag_in_v1_stream_is_typed_corruption() {
        // A trained-dict frame is only meaningful where a file header
        // names the dictionary; in a plain framed stream it must be a
        // typed error, not a decode attempt with an empty seed.
        let mut bogus = vec![TAG_TRAINED];
        encode_u64(4, &mut bogus); // raw_len
        encode_u64(1, &mut bogus); // comp_len
        bogus.push(0x61);
        bogus.extend_from_slice(&crc32(&[0x61]).to_le_bytes());
        let mut r = BlockReader::new(bogus.as_slice(), true, None);
        let err = r.read_to_end(&mut Vec::new()).unwrap_err();
        let storage: StorageError = err.into();
        assert!(matches!(storage, StorageError::Corrupt { .. }), "{storage}");
    }

    #[test]
    fn crc_mismatch_is_typed_corruption() {
        let mut w = BlockWriter::new(Vec::new(), ShuffleCompression::Dict.codec(), None);
        w.write_all(&b"abcabcabc".repeat(100)).unwrap();
        w.flush().unwrap();
        let mut framed = w.into_inner().unwrap();
        let mid = framed.len() / 2;
        framed[mid] ^= 0x40;
        let mut r = BlockReader::new(framed.as_slice(), true, None);
        let err = r.read_to_end(&mut Vec::new()).unwrap_err();
        let storage: StorageError = err.into();
        assert!(matches!(storage, StorageError::Corrupt { .. }), "{storage}");
    }

    #[test]
    fn truncated_frame_is_typed_corruption_or_io() {
        let mut w = BlockWriter::new(Vec::new(), ShuffleCompression::Delta.codec(), None);
        w.write_all(&[7u8; 4096]).unwrap();
        w.flush().unwrap();
        let framed = w.into_inner().unwrap();
        for cut in [1usize, 3, framed.len() / 2, framed.len() - 1] {
            let mut r = BlockReader::new(&framed[..cut], true, None);
            assert!(
                r.read_to_end(&mut Vec::new()).is_err(),
                "cut at {cut} must not decode cleanly"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let bogus = [0x7Fu8, 0x01, 0x01, 0xAA, 0, 0, 0, 0];
        let mut r = BlockReader::new(&bogus[..], true, None);
        let err = r.read_to_end(&mut Vec::new()).unwrap_err();
        let storage: StorageError = err.into();
        assert!(matches!(storage, StorageError::Corrupt { .. }));
    }

    #[test]
    fn flush_block_creates_seekable_boundaries() {
        // Two flushed segments decode independently from their own
        // physical offsets — the property seqfile splits rely on.
        let mut w = BlockWriter::new(Vec::new(), ShuffleCompression::Dict.codec(), None);
        w.write_all(b"first segment, repeated: aaaaaaaaaa").unwrap();
        w.flush_block().unwrap();
        let boundary = w.written_bytes() as usize;
        w.write_all(b"second segment: bbbbbbbbbb").unwrap();
        w.flush_block().unwrap();
        let framed = w.into_inner().unwrap();

        let mut tail = Vec::new();
        BlockReader::new(&framed[boundary..], true, None)
            .read_to_end(&mut tail)
            .unwrap();
        assert_eq!(tail, b"second segment: bbbbbbbbbb");
    }

    #[test]
    fn block_io_faults_fire_per_frame() {
        let faults = Arc::new(IoFaults::new().with_fault(IoSite::BlockWrite, 1));
        let mut w = BlockWriter::new(
            Vec::new(),
            ShuffleCompression::Raw.codec(),
            Some(Arc::clone(&faults)),
        );
        // First frame passes, second injects.
        w.write_all(&vec![1u8; DEFAULT_BLOCK_SIZE]).unwrap();
        let err = w.write_all(&vec![2u8; DEFAULT_BLOCK_SIZE]).unwrap_err();
        assert!(err.to_string().contains("block-write"));

        let mut ok = BlockWriter::new(Vec::new(), ShuffleCompression::Raw.codec(), None);
        ok.write_all(&vec![3u8; DEFAULT_BLOCK_SIZE]).unwrap();
        ok.flush().unwrap();
        let framed = ok.into_inner().unwrap();
        let rf = Arc::new(IoFaults::new().with_fault(IoSite::BlockRead, 0));
        let mut r = BlockReader::new(framed.as_slice(), true, Some(rf));
        let err = r.read_to_end(&mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("block-read"));
    }

    #[test]
    fn delta_huge_run_lengths_are_corruption_not_overflow() {
        // A token whose zero-run + literal lengths wrap u64 must be a
        // typed error, not a wrapped bound check feeding resize().
        let mut comp = Vec::new();
        encode_u64(1, &mut comp); // stride
        encode_u64(u64::MAX, &mut comp); // zero run
        encode_u64(1, &mut comp); // literal run
        comp.push(0xAB);
        let err = DeltaVarint
            .decompress(&comp, 10, &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn dict_novel_code_at_full_table_is_corruption_not_oob() {
        // Fill the decode table to DICT_MAX_CODES (every code after
        // the first pushes one entry), then claim a "novel" KwKwK code
        // the encoder could never emit: the decoder must reject it
        // rather than record a dangling code a later expand() would
        // index out of bounds.
        let mut comp = Vec::new();
        let fills = (DICT_MAX_CODES - 256) as usize + 1;
        for i in 0..fills {
            encode_u64((i % 2) as u64, &mut comp);
        }
        encode_u64(DICT_MAX_CODES as u64, &mut comp);
        encode_u64(DICT_MAX_CODES as u64, &mut comp);
        let err = DictBlock
            .decompress(&comp, 1 << 20, &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn crc32_known_vectors() {
        // The IEEE polynomial's canonical check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn shuffle_compression_names_round_trip() {
        for c in ShuffleCompression::ALL {
            assert_eq!(ShuffleCompression::parse(c.name()), Some(c));
        }
        assert_eq!(ShuffleCompression::parse("gzip"), None);
        assert_eq!(ShuffleCompression::default(), ShuffleCompression::None);
    }
}
