//! LEB128 variable-length integers with zig-zag signed encoding.
//!
//! The "size-sensitive representation" the paper's delta-compression
//! relies on: "storing just small deltas, when combined with a
//! size-sensitive representation, can yield large storage savings"
//! (§2.1).
//!
//! # Example
//!
//! Small magnitudes — either sign — stay small on disk:
//!
//! ```
//! use mr_storage::varint::{decode_i64, encode_i64, encoded_len_i64};
//!
//! let mut buf = Vec::new();
//! encode_i64(-2, &mut buf);
//! assert_eq!(buf.len(), 1, "zig-zag keeps -2 to one byte");
//! assert_eq!(encoded_len_i64(i64::MAX), 10);
//!
//! let (value, used) = decode_i64(&buf)?;
//! assert_eq!((value, used), (-2, 1));
//! # Ok::<(), mr_storage::StorageError>(())
//! ```

use crate::error::{Result, StorageError};

/// Append an unsigned varint.
pub fn encode_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode an unsigned varint from the front of `buf`; returns the value
/// and the number of bytes consumed.
pub fn decode_u64(buf: &[u8]) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(StorageError::corrupt("varint", "overlong encoding"));
        }
        let low = (b & 0x7f) as u64;
        // Check for bits shifted out of range on the final group.
        if shift == 63 && low > 1 {
            return Err(StorageError::corrupt("varint", "value exceeds u64"));
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(StorageError::corrupt("varint", "truncated"))
}

/// Read one unsigned varint from `input`, byte at a time — the
/// streaming sibling of [`decode_u64`] for readers that cannot see a
/// slice (seqfile rows, runfile frames). Returns the value and the
/// bytes consumed, or `None` on a clean end-of-stream before the first
/// byte; end-of-stream mid-varint and overlong encodings are
/// corruption.
pub fn read_u64_from(input: &mut impl std::io::Read) -> Result<Option<(u64, u64)>> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut nbytes = 0u64;
    loop {
        let mut b = [0u8; 1];
        match input.read_exact(&mut b) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof && nbytes == 0 => {
                return Ok(None)
            }
            Err(e) => return Err(e.into()),
        }
        nbytes += 1;
        if shift >= 64 {
            return Err(StorageError::corrupt("varint", "overlong encoding"));
        }
        let low = (b[0] & 0x7f) as u64;
        if shift == 63 && low > 1 {
            return Err(StorageError::corrupt("varint", "value exceeds u64"));
        }
        v |= low << shift;
        if b[0] & 0x80 == 0 {
            return Ok(Some((v, nbytes)));
        }
        shift += 7;
    }
}

/// Zig-zag map a signed value to unsigned so small magnitudes stay
/// small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a signed varint (zig-zag).
pub fn encode_i64(v: i64, out: &mut Vec<u8>) {
    encode_u64(zigzag(v), out);
}

/// Decode a signed varint.
pub fn decode_i64(buf: &[u8]) -> Result<(i64, usize)> {
    let (u, n) = decode_u64(buf)?;
    Ok((unzigzag(u), n))
}

/// Number of bytes [`encode_u64`] would use.
pub fn encoded_len_u64(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Number of bytes [`encode_i64`] would use.
pub fn encoded_len_i64(v: i64) -> usize {
    encoded_len_u64(zigzag(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unsigned_corners() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX, u64::MAX - 1] {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            let (got, n) = decode_u64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
            assert_eq!(n, encoded_len_u64(v));
        }
    }

    #[test]
    fn roundtrip_signed_corners() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            encode_i64(v, &mut buf);
            let (got, n) = decode_i64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
            assert_eq!(n, encoded_len_i64(v));
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert!(encoded_len_i64(-3) == 1);
        assert!(encoded_len_i64(1000) == 2);
    }

    #[test]
    fn truncated_rejected() {
        let mut buf = Vec::new();
        encode_u64(300, &mut buf);
        assert!(decode_u64(&buf[..1]).is_err());
        assert!(decode_u64(&[]).is_err());
    }

    #[test]
    fn overlong_rejected() {
        let buf = [0x80u8; 11];
        assert!(decode_u64(&buf).is_err());
    }

    #[test]
    fn streaming_read_matches_slice_decode() {
        let mut buf = Vec::new();
        for v in [0u64, 127, 128, 16384, u64::MAX] {
            encode_u64(v, &mut buf);
        }
        let mut cursor = std::io::Cursor::new(&buf);
        let mut got = Vec::new();
        while let Some((v, _)) = read_u64_from(&mut cursor).unwrap() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 127, 128, 16384, u64::MAX]);
        // Clean EOF at a boundary is None; EOF mid-varint is an error.
        assert!(read_u64_from(&mut std::io::Cursor::new(&[] as &[u8]))
            .unwrap()
            .is_none());
        assert!(read_u64_from(&mut std::io::Cursor::new(&[0x80u8][..])).is_err());
        assert!(read_u64_from(&mut std::io::Cursor::new(&[0x80u8; 11][..])).is_err());
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let mut buf = Vec::new();
        encode_u64(5, &mut buf);
        buf.extend_from_slice(&[0xde, 0xad]);
        let (v, n) = decode_u64(&buf).unwrap();
        assert_eq!((v, n), (5, 1));
    }
}
