//! Projected ("column-stripped") files.
//!
//! The projection optimization stores "an alternate serialized version
//! of the data that stores only the needed fields for a program, thereby
//! reducing the overall number of bytes that must be processed (similar
//! to a column-store or an on-disk binary association table)" — paper
//! §1.
//!
//! Physically a projected file *is* a sequence file whose schema is the
//! projection of the original schema onto the used fields; this module
//! provides the transform (the body of the projection index-generation
//! job) plus a typed handle that remembers the source schema, so the
//! execution fabric can hand the map function records padded back to the
//! declared parameter type (dropped fields read as type defaults, which
//! is safe because the analyzer proved the program never observes them).

use std::path::Path;
use std::sync::Arc;

use mr_ir::record::Record;
use mr_ir::schema::Schema;

use crate::error::Result;
use crate::seqfile::{SeqFileMeta, SeqFileWriter};

/// Write a projected copy of `records` keeping only `fields`.
/// Returns (records written, projected schema).
pub fn write_projected(
    path: impl AsRef<Path>,
    source_schema: &Arc<Schema>,
    fields: &[String],
    records: impl IntoIterator<Item = Record>,
) -> Result<(u64, Arc<Schema>)> {
    let proj_schema = Arc::new(source_schema.project(fields));
    let mut w = SeqFileWriter::create(path, Arc::clone(&proj_schema))?;
    for r in records {
        w.append(&r.project_to(Arc::clone(&proj_schema)))?;
    }
    let n = w.finish()?;
    Ok((n, proj_schema))
}

/// A projected file plus the original schema it was derived from.
pub struct ProjectedFile {
    /// The on-disk sequence file (projected schema).
    pub meta: SeqFileMeta,
    /// The original (wide) schema the map function declares.
    pub source_schema: Arc<Schema>,
}

impl ProjectedFile {
    /// Open a projected file, remembering the wide schema.
    pub fn open(path: impl AsRef<Path>, source_schema: Arc<Schema>) -> Result<ProjectedFile> {
        Ok(ProjectedFile {
            meta: SeqFileMeta::open(path)?,
            source_schema,
        })
    }

    /// Iterate records widened back to the source schema (dropped fields
    /// become type defaults).
    pub fn read_widened(&self) -> Result<impl Iterator<Item = Result<Record>> + '_> {
        let source = Arc::clone(&self.source_schema);
        Ok(self
            .meta
            .read_all()?
            .map(move |r| r.map(|rec| rec.project_to(Arc::clone(&source)))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::record::record;
    use mr_ir::schema::FieldType;
    use mr_ir::value::Value;
    use std::path::PathBuf;

    fn webpage() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![
                ("url", FieldType::Str),
                ("rank", FieldType::Int),
                ("content", FieldType::Str),
            ],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-colfile-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn projection_shrinks_and_widens_back() {
        let s = webpage();
        let path = tmp("proj");
        let records: Vec<Record> = (0..200)
            .map(|i| {
                record(
                    &s,
                    vec![
                        format!("http://s/{i}").into(),
                        Value::Int(i),
                        "x".repeat(500).into(),
                    ],
                )
            })
            .collect();
        let keep = vec!["url".to_string(), "rank".to_string()];
        let (n, proj_schema) = write_projected(&path, &s, &keep, records.clone()).unwrap();
        assert_eq!(n, 200);
        assert_eq!(proj_schema.field_names(), vec!["url", "rank"]);

        // Size: dropping the 500-byte content must shrink dramatically.
        let full_path = tmp("full");
        crate::seqfile::write_seqfile(&full_path, Arc::clone(&s), records.clone()).unwrap();
        let full = std::fs::metadata(&full_path).unwrap().len();
        let proj = std::fs::metadata(&path).unwrap().len();
        assert!(proj * 5 < full, "projected {proj} vs full {full}");

        // Widened records: kept fields intact, dropped fields default.
        let pf = ProjectedFile::open(&path, Arc::clone(&s)).unwrap();
        let widened: Vec<Record> = pf.read_widened().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(widened.len(), 200);
        assert_eq!(widened[5].get("rank").unwrap(), &Value::Int(5));
        assert_eq!(widened[5].get("url").unwrap(), &Value::str("http://s/5"));
        assert_eq!(widened[5].get("content").unwrap(), &Value::str(""));
        assert_eq!(widened[5].schema().name(), "WebPage");
    }

    #[test]
    fn empty_projection_keeps_schema_order() {
        let s = webpage();
        let path = tmp("order");
        // Request fields out of order; schema order must win.
        let keep = vec!["content".to_string(), "url".to_string()];
        let (_, proj) = write_projected(&path, &s, &keep, vec![]).unwrap();
        assert_eq!(proj.field_names(), vec!["url", "content"]);
    }
}
