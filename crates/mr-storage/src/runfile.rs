//! Sorted-run files for the external shuffle.
//!
//! When a shuffle bucket outgrows its memory budget, the engine sorts
//! the buffered pairs and spills them here; at reduce time the runs are
//! k-way merged back into one sorted stream. The format is the
//! shuffle-side sibling of [`seqfile`](crate::seqfile): self-describing
//! [`Value`] pairs (via
//! [`rowcodec::encode_value`](crate::rowcodec::encode_value)) behind a
//! varint length frame, so a reader can stream pairs without loading
//! the run — Hadoop's `IFile`, with its block compression provided by
//! the [`blockcodec`](crate::blockcodec) layer.
//!
//! Two layouts share one reader (dispatch is by magic):
//!
//! **v1 — interleaved** (`MRRN1`):
//!
//! ```text
//! magic "MRRN1"
//! codec u8                                ← 0 = raw stream, else the
//!                                           block-frame codec tag
//! pair stream:
//!   [varint pair_len, encode_value(key) ++ encode_value(value)]*
//! ```
//!
//! With codec 0 the pair stream follows the header directly; otherwise
//! it is cut into CRC'd block frames (see `docs/FORMATS.md`).
//!
//! **v2 — columnar** (`MRRN2`, the trained-dictionary layout): keys
//! and values travel as *separate* block streams. The key stream is
//! **front-coded** — sorted runs put each key next to its nearest
//! neighbour, so the shared prefix is elided and repeated keys
//! collapse to two bytes — while the value stream starts from a
//! shared trained LZW dictionary named by content hash in the header:
//!
//! ```text
//! magic "MRRN2"
//! codec u8        ← always TAG_TRAINED (4)
//! dict_hash u64 LE
//! group*:
//!   key frame     ← raw: [varint shared, varint suffix_len,
//!                         suffix bytes]*   (front-coded
//!                         encode_value(key); `shared` counts bytes
//!                         reused from the previous key, restarting
//!                         at 0 each group)
//!   value frame   ← raw: [varint value_len, encode_value(value)]*
//! ```
//!
//! Each frame is a standard self-describing block frame (best of
//! stride-delta / trained-LZW / stored per frame), and a group's two
//! frames decode to the same number of entries — a mismatch is typed
//! corruption. Readers resolve `dict_hash` through the process-wide
//! registry or a `shuffle.dict` beside (or one level above) the run
//! (see [`crate::trained`]), so merge, compaction, and
//! process-backend workers still need no job configuration.
//!
//! The record layer is identical either way — compression happens
//! strictly below it, and a reader discovers everything from the
//! header.
//!
//! Runs are process-local temp files with the lifetime of one job, so
//! there is no footer: end-of-file at a frame boundary is end-of-run,
//! end-of-file inside a frame is corruption.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_ir::value::Value;

use crate::blockcodec::{
    read_frame_into, write_frame, BlockCodec, BlockReader, BlockWriter, DeltaVarint,
    ShuffleCompression, DEFAULT_BLOCK_SIZE, TAG_DELTA, TAG_STORED, TAG_TRAINED,
};
use crate::error::{Result, StorageError};
use crate::fault::{IoFaults, IoSite};
use crate::rowcodec::{decode_value, encode_value};
use crate::trained::{self, TrainedDict};
use crate::varint::{decode_u64, encode_u64, read_u64_from};

const MAGIC: &[u8; 5] = b"MRRN1";
const MAGIC2: &[u8; 5] = b"MRRN2";

/// Header bytes before the v1 pair stream: magic + codec tag. Also the
/// per-file constant in the v1-equivalent `raw_bytes` accounting both
/// layouts report, so compression ratios compare across layouts.
const HEADER_LEN: u64 = 6;

/// Header bytes of a columnar run: magic + codec tag + dictionary
/// hash.
const HEADER2_LEN: u64 = 14;

/// Upper bound on one framed pair; larger lengths are treated as
/// corruption rather than allocated.
const MAX_PAIR_LEN: u64 = 1 << 30;

/// Buffer capacity for run-file readers. Merges hold up to one open
/// reader per surviving run; a generous buffer keeps the k-way merge
/// from paying one syscall per small pair.
const READ_BUF: usize = 64 * 1024;

/// The reusable scratch a [`RunFileWriter`] stages pairs and block
/// frames in. Writing a run allocates nothing in steady state when the
/// scratch is recycled: create the writer with
/// [`RunFileWriter::create_pooled`], reclaim the scratch from
/// [`RunFileWriter::finish_reclaim`], and hand it to the next run.
#[derive(Debug, Default)]
pub struct RunScratch {
    /// Encoded pair staging ([`RunFileWriter::append`]).
    frame: Vec<u8>,
    /// Varint length staging.
    lenbuf: Vec<u8>,
    /// The block writer's open-block buffer (the key stream of the
    /// open group, in the columnar layout).
    block: Vec<u8>,
    /// The block writer's compressed-frame buffer.
    comp: Vec<u8>,
    /// The value stream of the open group (columnar layout only).
    aux: Vec<u8>,
    /// Second compressed-frame candidate for the best-of choice
    /// (columnar layout only).
    comp2: Vec<u8>,
    /// Previous encoded key of the open group, for front-coding
    /// (columnar layout only).
    prev: Vec<u8>,
}

impl RunScratch {
    /// Fresh (empty) scratch; capacity grows with first use.
    pub fn new() -> RunScratch {
        RunScratch::default()
    }

    /// Total heap capacity currently held, for pool sizing diagnostics.
    pub fn capacity_bytes(&self) -> usize {
        self.frame.capacity()
            + self.lenbuf.capacity()
            + self.block.capacity()
            + self.comp.capacity()
            + self.aux.capacity()
            + self.comp2.capacity()
            + self.prev.capacity()
    }
}

/// What [`RunFileWriter::finish`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFileStats {
    /// Pairs written.
    pub pairs: u64,
    /// Logical bytes the record layer produced (header + varint pair
    /// frames) — the file size a codec-free v1 run would have. The
    /// columnar layout reports the same v1-equivalent figure, so
    /// ratios stay comparable across layouts.
    pub raw_bytes: u64,
    /// Physical bytes on disk. Equal to `raw_bytes` without a codec;
    /// smaller when compression worked.
    pub file_bytes: u64,
}

/// Writes one sorted run of `(key, value)` pairs — interleaved (v1)
/// or columnar trained-dictionary (v2) layout, chosen at creation.
pub struct RunFileWriter {
    kind: WriterKind,
}

enum WriterKind {
    V1 {
        out: BlockWriter<BufWriter<File>>,
        pairs: u64,
        frame: Vec<u8>,
        lenbuf: Vec<u8>,
        faults: Option<Arc<IoFaults>>,
    },
    V2(ColumnarWriter),
}

impl RunFileWriter {
    /// Create (truncate) `path` and write the header (uncompressed
    /// stream).
    pub fn create(path: impl AsRef<Path>) -> Result<RunFileWriter> {
        RunFileWriter::create_with(path, ShuffleCompression::None, None)
    }

    /// [`create`](Self::create), with each appended pair counted
    /// against `faults` ([`IoSite::RunWrite`]).
    pub fn create_with_faults(
        path: impl AsRef<Path>,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<RunFileWriter> {
        RunFileWriter::create_with(path, ShuffleCompression::None, faults)
    }

    /// Create `path` with the pair stream framed through `compression`
    /// (and fault counting at [`IoSite::RunWrite`] per pair plus
    /// [`IoSite::BlockWrite`] per emitted frame).
    pub fn create_with(
        path: impl AsRef<Path>,
        compression: ShuffleCompression,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<RunFileWriter> {
        RunFileWriter::create_pooled(path, compression, faults, RunScratch::new())
    }

    /// [`create_with`](Self::create_with), staging everything in a
    /// recycled [`RunScratch`] so writing the run allocates no fresh
    /// buffers. Pair with [`finish_reclaim`](Self::finish_reclaim) to
    /// get the scratch back.
    ///
    /// [`ShuffleCompression::DictTrained`] is rejected here: the
    /// columnar layout needs the shared dictionary, which only
    /// [`create_trained_pooled`](Self::create_trained_pooled) can
    /// supply.
    pub fn create_pooled(
        path: impl AsRef<Path>,
        compression: ShuffleCompression,
        faults: Option<Arc<IoFaults>>,
        mut scratch: RunScratch,
    ) -> Result<RunFileWriter> {
        if compression == ShuffleCompression::DictTrained {
            return Err(StorageError::Schema(
                "dict-trained runs need a dictionary: use RunFileWriter::create_trained_pooled"
                    .into(),
            ));
        }
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(MAGIC)?;
        file.write_all(&[compression.stream_tag()])?;
        scratch.frame.clear();
        scratch.lenbuf.clear();
        let out = BlockWriter::with_buffers(
            file,
            compression.codec(),
            faults.clone(),
            scratch.block,
            scratch.comp,
        );
        Ok(RunFileWriter {
            kind: WriterKind::V1 {
                out,
                pairs: 0,
                frame: scratch.frame,
                lenbuf: scratch.lenbuf,
                faults,
            },
        })
    }

    /// Create `path` in the columnar trained-dictionary layout (v2):
    /// the header records `dict`'s content hash, sorted keys go
    /// through the stride-delta codec, values through the trained LZW
    /// seed (best-of per frame). The dictionary is registered
    /// process-wide so same-process readers resolve it without
    /// touching the filesystem.
    pub fn create_trained(path: impl AsRef<Path>, dict: Arc<TrainedDict>) -> Result<RunFileWriter> {
        RunFileWriter::create_trained_pooled(path, dict, None, RunScratch::new())
    }

    /// [`create_trained`](Self::create_trained) with fault counting
    /// and recycled scratch, mirroring
    /// [`create_pooled`](Self::create_pooled).
    pub fn create_trained_pooled(
        path: impl AsRef<Path>,
        dict: Arc<TrainedDict>,
        faults: Option<Arc<IoFaults>>,
        scratch: RunScratch,
    ) -> Result<RunFileWriter> {
        trained::register(&dict);
        Ok(RunFileWriter {
            kind: WriterKind::V2(ColumnarWriter::create(path, dict, faults, scratch)?),
        })
    }

    /// Append one pair. Callers are responsible for feeding pairs in
    /// sorted order — the file records whatever order it is given.
    pub fn append(&mut self, key: &Value, value: &Value) -> Result<()> {
        match &mut self.kind {
            WriterKind::V1 {
                out,
                pairs,
                frame,
                lenbuf,
                faults,
            } => {
                if let Some(f) = faults {
                    f.check(IoSite::RunWrite)?;
                }
                frame.clear();
                encode_value(key, frame)?;
                encode_value(value, frame)?;
                lenbuf.clear();
                encode_u64(frame.len() as u64, lenbuf);
                out.write_all(lenbuf)?;
                out.write_all(frame)?;
                *pairs += 1;
                Ok(())
            }
            WriterKind::V2(w) => w.append(key, value),
        }
    }

    /// Flush and return the pair/byte accounting.
    pub fn finish(self) -> Result<RunFileStats> {
        Ok(self.finish_reclaim()?.0)
    }

    /// [`finish`](Self::finish), additionally handing back the scratch
    /// buffers (capacity intact) for the next run.
    pub fn finish_reclaim(self) -> Result<(RunFileStats, RunScratch)> {
        match self.kind {
            WriterKind::V1 {
                mut out,
                pairs,
                frame,
                lenbuf,
                faults: _,
            } => {
                out.flush_block()?;
                let raw_bytes = HEADER_LEN + out.raw_bytes();
                let file_bytes = HEADER_LEN + out.written_bytes();
                out.get_mut().flush()?;
                let (block, comp) = out.take_buffers();
                Ok((
                    RunFileStats {
                        pairs,
                        raw_bytes,
                        file_bytes,
                    },
                    RunScratch {
                        frame,
                        lenbuf,
                        block,
                        comp,
                        aux: Vec::new(),
                        comp2: Vec::new(),
                        prev: Vec::new(),
                    },
                ))
            }
            WriterKind::V2(w) => w.finish_reclaim(),
        }
    }
}

/// The v2 writer: buffers one *group* of pairs as two raw streams
/// (keys with varint length prefixes, values likewise) and flushes
/// them as a key frame + value frame pair once the group reaches the
/// block size.
struct ColumnarWriter {
    file: BufWriter<File>,
    dict: Arc<TrainedDict>,
    /// Front-coded key stream of the open group:
    /// `[varint shared][varint suffix_len][suffix]*`, each entry
    /// eliding the prefix it shares with the previous key in the
    /// group (sorted runs share long prefixes, and repeated keys
    /// collapse to two bytes).
    keys: Vec<u8>,
    /// Raw value stream of the open group: `[varint vlen][value]*`.
    vals: Vec<u8>,
    /// Previous encoded key of the open group (front-coding context).
    prev: Vec<u8>,
    frame: Vec<u8>,
    lenbuf: Vec<u8>,
    comp: Vec<u8>,
    comp2: Vec<u8>,
    pairs: u64,
    group_pairs: u64,
    raw_bytes: u64,
    written_bytes: u64,
    faults: Option<Arc<IoFaults>>,
}

impl ColumnarWriter {
    fn create(
        path: impl AsRef<Path>,
        dict: Arc<TrainedDict>,
        faults: Option<Arc<IoFaults>>,
        mut scratch: RunScratch,
    ) -> Result<ColumnarWriter> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(MAGIC2)?;
        file.write_all(&[TAG_TRAINED])?;
        file.write_all(&dict.dict_hash().to_le_bytes())?;
        scratch.frame.clear();
        scratch.lenbuf.clear();
        scratch.block.clear();
        scratch.comp.clear();
        scratch.aux.clear();
        scratch.comp2.clear();
        scratch.prev.clear();
        Ok(ColumnarWriter {
            file,
            dict,
            keys: scratch.block,
            vals: scratch.aux,
            prev: scratch.prev,
            frame: scratch.frame,
            lenbuf: scratch.lenbuf,
            comp: scratch.comp,
            comp2: scratch.comp2,
            pairs: 0,
            group_pairs: 0,
            raw_bytes: HEADER_LEN,
            written_bytes: HEADER2_LEN,
            faults,
        })
    }

    fn append(&mut self, key: &Value, value: &Value) -> Result<()> {
        if let Some(f) = &self.faults {
            f.check(IoSite::RunWrite)?;
        }
        self.frame.clear();
        encode_value(key, &mut self.frame)?;
        let klen = self.frame.len();
        // Front-code against the previous key of the group: emit only
        // the suffix past the longest shared prefix.
        let shared = self
            .prev
            .iter()
            .zip(self.frame.iter())
            .take_while(|(a, b)| a == b)
            .count();
        self.lenbuf.clear();
        encode_u64(shared as u64, &mut self.lenbuf);
        encode_u64((klen - shared) as u64, &mut self.lenbuf);
        self.keys.extend_from_slice(&self.lenbuf);
        self.keys.extend_from_slice(&self.frame[shared..]);
        std::mem::swap(&mut self.prev, &mut self.frame);

        self.frame.clear();
        encode_value(value, &mut self.frame)?;
        let vlen = self.frame.len();
        self.lenbuf.clear();
        encode_u64(vlen as u64, &mut self.lenbuf);
        self.vals.extend_from_slice(&self.lenbuf);
        self.vals.extend_from_slice(&self.frame);

        // v1-equivalent raw accounting: what one interleaved varint
        // pair frame would have cost.
        self.lenbuf.clear();
        encode_u64((klen + vlen) as u64, &mut self.lenbuf);
        self.raw_bytes += (self.lenbuf.len() + klen + vlen) as u64;

        self.pairs += 1;
        self.group_pairs += 1;
        if self.keys.len() + self.vals.len() >= DEFAULT_BLOCK_SIZE {
            self.flush_group()?;
        }
        Ok(())
    }

    fn flush_group(&mut self) -> Result<()> {
        if self.group_pairs == 0 {
            return Ok(());
        }
        if let Some(f) = &self.faults {
            f.check(IoSite::BlockWrite)?;
        }
        // Key frame: front-coding already stripped shared prefixes,
        // so the trained seed usually wins on the suffix stream — but
        // numeric key runs still favour stride-delta, so take the
        // best of both per frame.
        self.written_bytes += emit_best_frame(
            &mut self.file,
            &self.keys,
            &self.dict,
            &mut self.comp,
            &mut self.comp2,
        )?;
        // Value frame: the trained seed's home turf — but the columnar
        // value stream is strictly periodic (`[varint len][value]`
        // entries, fixed-width for numeric payloads), so stride-delta
        // can beat the seed on entropy-dense values the dictionary
        // cannot learn. Best of both here too.
        self.written_bytes += emit_best_frame(
            &mut self.file,
            &self.vals,
            &self.dict,
            &mut self.comp,
            &mut self.comp2,
        )?;
        self.keys.clear();
        self.vals.clear();
        // Groups decode independently: front-coding restarts, so the
        // first key of the next group is emitted in full.
        self.prev.clear();
        self.group_pairs = 0;
        Ok(())
    }

    fn finish_reclaim(mut self) -> Result<(RunFileStats, RunScratch)> {
        self.flush_group()?;
        self.file.flush()?;
        Ok((
            RunFileStats {
                pairs: self.pairs,
                raw_bytes: self.raw_bytes,
                file_bytes: self.written_bytes,
            },
            RunScratch {
                frame: self.frame,
                lenbuf: self.lenbuf,
                block: self.keys,
                comp: self.comp,
                aux: self.vals,
                comp2: self.comp2,
                prev: self.prev,
            },
        ))
    }
}

/// Compress `raw` with both the trained seed and the stride-delta
/// codec, emit whichever candidate is smallest — falling back to a
/// stored frame when nothing shrinks — and return the bytes written.
fn emit_best_frame<W: Write>(
    out: &mut W,
    raw: &[u8],
    dict: &TrainedDict,
    comp: &mut Vec<u8>,
    comp2: &mut Vec<u8>,
) -> Result<u64> {
    comp.clear();
    dict.compress(raw, comp);
    let mut tag = TAG_TRAINED;
    let mut best_len = comp.len();
    comp2.clear();
    DeltaVarint.compress(raw, comp2);
    if comp2.len() < best_len {
        tag = TAG_DELTA;
        best_len = comp2.len();
    }
    let written = if best_len >= raw.len() {
        write_frame(out, TAG_STORED, raw.len(), raw)?
    } else if tag == TAG_DELTA {
        write_frame(out, TAG_DELTA, raw.len(), comp2)?
    } else {
        write_frame(out, TAG_TRAINED, raw.len(), comp)?
    };
    Ok(written)
}

/// Streams the pairs of one run back in file order. The layout (v1
/// interleaved vs v2 columnar) is sniffed from the magic, and a v2
/// run's dictionary is resolved by the hash in its header — readers
/// never need the writing job's configuration.
pub struct RunFileReader {
    kind: ReaderKind,
    path: PathBuf,
    pairs_read: u64,
    faults: Option<Arc<IoFaults>>,
}

enum ReaderKind {
    V1 {
        input: BlockReader<BufReader<File>>,
        buf: Vec<u8>,
    },
    V2 {
        input: BufReader<File>,
        dict: Arc<TrainedDict>,
        keys: Vec<u8>,
        kpos: usize,
        vals: Vec<u8>,
        vpos: usize,
        comp: Vec<u8>,
        /// Previous decoded key bytes (front-coding context; reset at
        /// every group boundary).
        prev: Vec<u8>,
    },
}

impl RunFileReader {
    /// Open `path` and check the magic; the codec (and, for columnar
    /// runs, the dictionary) comes from the header, so compressed and
    /// raw runs open the same way.
    pub fn open(path: impl AsRef<Path>) -> Result<RunFileReader> {
        RunFileReader::open_with_faults(path, None)
    }

    /// [`open`](Self::open), with each pair read counted against
    /// `faults` ([`IoSite::RunRead`]; compressed runs also count
    /// [`IoSite::BlockRead`] per frame).
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<RunFileReader> {
        let path = path.as_ref().to_path_buf();
        let mut file = BufReader::with_capacity(READ_BUF, File::open(&path)?);
        let mut magic = [0u8; 5];
        file.read_exact(&mut magic)?;
        let kind = if &magic == MAGIC {
            let mut codec = [0u8; 1];
            file.read_exact(&mut codec)?;
            ReaderKind::V1 {
                input: BlockReader::new(file, codec[0] != 0, faults.clone()),
                buf: Vec::new(),
            }
        } else if &magic == MAGIC2 {
            let mut rest = [0u8; 9];
            file.read_exact(&mut rest)?;
            if rest[0] != TAG_TRAINED {
                return Err(StorageError::corrupt(
                    "runfile",
                    format!("unsupported columnar codec tag {}", rest[0]),
                ));
            }
            let dict_hash = u64::from_le_bytes(rest[1..].try_into().expect("8 bytes"));
            let dict = trained::resolve(&path, dict_hash)?;
            ReaderKind::V2 {
                input: file,
                dict,
                keys: Vec::new(),
                kpos: 0,
                vals: Vec::new(),
                vpos: 0,
                comp: Vec::new(),
                prev: Vec::new(),
            }
        } else {
            return Err(StorageError::corrupt("runfile", "bad magic"));
        };
        Ok(RunFileReader {
            kind,
            path,
            pairs_read: 0,
            faults,
        })
    }

    /// The file being read.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Pairs decoded so far.
    pub fn pairs_read(&self) -> u64 {
        self.pairs_read
    }

    fn read_one(&mut self) -> Result<Option<(Value, Value)>> {
        if let Some(f) = &self.faults {
            f.check(IoSite::RunRead)?;
        }
        let next = match &mut self.kind {
            ReaderKind::V1 { input, buf } => read_one_v1(input, buf)?,
            ReaderKind::V2 {
                input,
                dict,
                keys,
                kpos,
                vals,
                vpos,
                comp,
                prev,
            } => read_one_v2(
                input,
                dict,
                keys,
                kpos,
                vals,
                vpos,
                comp,
                prev,
                &self.faults,
            )?,
        };
        if next.is_some() {
            self.pairs_read += 1;
        }
        Ok(next)
    }
}

fn read_one_v1(
    input: &mut BlockReader<BufReader<File>>,
    buf: &mut Vec<u8>,
) -> Result<Option<(Value, Value)>> {
    // Frame length varint; EOF before its first byte is a clean
    // end-of-run.
    let Some((len, _)) = read_u64_from(input)? else {
        return Ok(None);
    };
    if len > MAX_PAIR_LEN {
        return Err(StorageError::corrupt(
            "runfile",
            "frame length implausibly large",
        ));
    }
    buf.resize(len as usize, 0);
    input.read_exact(buf)?;
    let (key, n) = decode_value(buf)?;
    let (value, m) = decode_value(&buf[n..])?;
    if n + m != buf.len() {
        return Err(StorageError::corrupt("runfile", "frame length mismatch"));
    }
    Ok(Some((key, value)))
}

#[allow(clippy::too_many_arguments)]
fn read_one_v2(
    input: &mut BufReader<File>,
    dict: &TrainedDict,
    keys: &mut Vec<u8>,
    kpos: &mut usize,
    vals: &mut Vec<u8>,
    vpos: &mut usize,
    comp: &mut Vec<u8>,
    prev: &mut Vec<u8>,
    faults: &Option<Arc<IoFaults>>,
) -> Result<Option<(Value, Value)>> {
    if *kpos == keys.len() {
        // Group boundary: both streams must exhaust together.
        if *vpos != vals.len() {
            return Err(StorageError::corrupt(
                "runfile",
                "columnar streams disagree on pair count",
            ));
        }
        if let Some(f) = faults {
            f.check(IoSite::BlockRead)?;
        }
        // Key frame; a clean EOF here is the end of the run.
        let Some((ktag, kraw)) = read_frame_into(input, comp)? else {
            return Ok(None);
        };
        decode_columnar_frame(ktag, comp, kraw as usize, dict, keys)?;
        if let Some(f) = faults {
            f.check(IoSite::BlockRead)?;
        }
        // Value frame; EOF between a group's frames is corruption.
        let Some((vtag, vraw)) = read_frame_into(input, comp)? else {
            return Err(StorageError::corrupt(
                "runfile",
                "columnar run ends between a group's key and value frames",
            ));
        };
        decode_columnar_frame(vtag, comp, vraw as usize, dict, vals)?;
        *kpos = 0;
        *vpos = 0;
        // Front-coding restarts per group, mirroring the writer.
        prev.clear();
        if keys.is_empty() {
            return Err(StorageError::corrupt("runfile", "empty columnar group"));
        }
    }
    let key = next_key_entry(keys, kpos, prev)?;
    if *vpos >= vals.len() {
        return Err(StorageError::corrupt(
            "runfile",
            "columnar streams disagree on pair count",
        ));
    }
    let (value, _) = next_entry(vals, vpos, "value")?;
    Ok(Some((key, value)))
}

/// Decode one front-coded key entry
/// (`[varint shared][varint suffix_len][suffix]`) from a raw columnar
/// key stream, advancing `pos` and leaving the full encoded key in
/// `prev` for the next entry.
fn next_key_entry(stream: &[u8], pos: &mut usize, prev: &mut Vec<u8>) -> Result<Value> {
    let (shared64, used) = decode_u64(&stream[*pos..])?;
    *pos += used;
    let (suffix64, used) = decode_u64(&stream[*pos..])?;
    *pos += used;
    if shared64 > prev.len() as u64 {
        return Err(StorageError::corrupt(
            "runfile",
            "key shares more bytes than the previous key has",
        ));
    }
    if shared64 + suffix64 > MAX_PAIR_LEN {
        return Err(StorageError::corrupt(
            "runfile",
            "key length implausibly large",
        ));
    }
    let suffix_len = suffix64 as usize;
    let suffix = stream
        .get(*pos..*pos + suffix_len)
        .ok_or_else(|| StorageError::corrupt("runfile", "key stream truncated"))?;
    *pos += suffix_len;
    prev.truncate(shared64 as usize);
    prev.extend_from_slice(suffix);
    let (key, n) = decode_value(prev)?;
    if n != prev.len() {
        return Err(StorageError::corrupt(
            "runfile",
            "key entry length mismatch",
        ));
    }
    Ok(key)
}

/// Decode one `[varint len][encode_value]` entry from a raw columnar
/// stream, advancing `pos`.
fn next_entry(stream: &[u8], pos: &mut usize, what: &str) -> Result<(Value, usize)> {
    let (len64, used) = decode_u64(&stream[*pos..])?;
    *pos += used;
    if len64 > MAX_PAIR_LEN {
        return Err(StorageError::corrupt(
            "runfile",
            format!("{what} length implausibly large"),
        ));
    }
    let len = len64 as usize;
    let bytes = stream
        .get(*pos..*pos + len)
        .ok_or_else(|| StorageError::corrupt("runfile", format!("{what} stream truncated")))?;
    let (value, n) = decode_value(bytes)?;
    if n != len {
        return Err(StorageError::corrupt(
            "runfile",
            format!("{what} length mismatch"),
        ));
    }
    *pos += len;
    Ok((value, len))
}

/// Decompress one columnar frame payload into `out` (cleared first).
fn decode_columnar_frame(
    tag: u8,
    comp: &[u8],
    raw_len: usize,
    dict: &TrainedDict,
    out: &mut Vec<u8>,
) -> Result<()> {
    out.clear();
    match tag {
        TAG_STORED => {
            out.extend_from_slice(comp);
            Ok(())
        }
        TAG_TRAINED => dict.decompress(comp, raw_len, out),
        TAG_DELTA => DeltaVarint.decompress(comp, raw_len, out),
        other => Err(StorageError::corrupt(
            "runfile",
            format!("unexpected codec tag {other} in columnar run"),
        )),
    }
}

impl Iterator for RunFileReader {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trained::DictTrainer;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-runfile-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn mixed_pairs() -> Vec<(Value, Value)> {
        vec![
            (Value::Int(-3), Value::str("neg")),
            (Value::Int(0), Value::Null),
            (Value::str("k"), Value::Double(2.5)),
            (Value::bytes([1, 2, 3]), Value::list(vec![Value::Int(9)])),
        ]
    }

    /// A dictionary trained the way the engine trains: on the encoded
    /// pair bytes themselves.
    fn trained_for(pairs: &[(Value, Value)]) -> Arc<TrainedDict> {
        let mut t = DictTrainer::new();
        let mut buf = Vec::new();
        for (k, v) in pairs {
            buf.clear();
            encode_value(k, &mut buf).unwrap();
            encode_value(v, &mut buf).unwrap();
            t.observe(&buf);
        }
        Arc::new(t.train())
    }

    fn writer_for(
        path: &Path,
        codec: ShuffleCompression,
        pairs: &[(Value, Value)],
    ) -> RunFileWriter {
        if codec == ShuffleCompression::DictTrained {
            RunFileWriter::create_trained(path, trained_for(pairs)).unwrap()
        } else {
            RunFileWriter::create_with(path, codec, None).unwrap()
        }
    }

    #[test]
    fn roundtrip_mixed_values() {
        let path = tmp("roundtrip");
        let pairs = mixed_pairs();
        let mut w = RunFileWriter::create(&path).unwrap();
        for (k, v) in &pairs {
            w.append(k, v).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.pairs, 4);
        assert_eq!(stats.file_bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(stats.raw_bytes, stats.file_bytes, "no codec, no shrink");

        let rd = RunFileReader::open(&path).unwrap();
        let back: Vec<(Value, Value)> = rd.map(|p| p.unwrap()).collect();
        assert_eq!(back, pairs);
    }

    #[test]
    fn roundtrip_every_codec() {
        for codec in ShuffleCompression::ALL {
            let path = tmp(&format!("codec-{codec}"));
            let pairs = mixed_pairs();
            let mut w = writer_for(&path, codec, &pairs);
            for (k, v) in &pairs {
                w.append(k, v).unwrap();
            }
            let stats = w.finish().unwrap();
            assert_eq!(stats.pairs, 4, "{codec}");
            assert_eq!(
                stats.file_bytes,
                std::fs::metadata(&path).unwrap().len(),
                "{codec}"
            );
            let back: Vec<(Value, Value)> = RunFileReader::open(&path)
                .unwrap()
                .map(|p| p.unwrap())
                .collect();
            assert_eq!(back, pairs, "{codec}");
        }
    }

    #[test]
    fn compression_shrinks_repeated_keys() {
        // A sorted low-cardinality run: the shape spills actually have.
        let pairs: Vec<(Value, Value)> = (0..4000)
            .map(|i| {
                (
                    Value::str(format!("http://site/{:02}", i / 500)),
                    Value::Int(i % 7),
                )
            })
            .collect();
        let mut sizes = std::collections::HashMap::new();
        for codec in ShuffleCompression::ALL {
            let path = tmp(&format!("shrink-{codec}"));
            let mut w = writer_for(&path, codec, &pairs);
            for (k, v) in &pairs {
                w.append(k, v).unwrap();
            }
            let stats = w.finish().unwrap();
            let back: Vec<(Value, Value)> = RunFileReader::open(&path)
                .unwrap()
                .map(|p| p.unwrap())
                .collect();
            assert_eq!(back, pairs, "{codec}");
            sizes.insert(codec, (stats.raw_bytes, stats.file_bytes));
        }
        let (raw, none_file) = sizes[&ShuffleCompression::None];
        assert_eq!(raw, none_file);
        let (_, dict_file) = sizes[&ShuffleCompression::Dict];
        let (_, delta_file) = sizes[&ShuffleCompression::Delta];
        assert!(dict_file * 3 < raw, "dict {dict_file} vs raw {raw}");
        assert!(delta_file * 2 < raw, "delta {delta_file} vs raw {raw}");
        // The whole point of the trained columnar layout: it beats the
        // cold per-frame dictionary on spill-shaped data.
        let (trained_raw, trained_file) = sizes[&ShuffleCompression::DictTrained];
        assert_eq!(trained_raw, raw, "v1-equivalent raw accounting");
        assert!(
            trained_file < dict_file,
            "trained {trained_file} vs cold dict {dict_file}"
        );
    }

    #[test]
    fn empty_run() {
        for codec in ShuffleCompression::ALL {
            let path = tmp(&format!("empty-{codec}"));
            let stats = writer_for(&path, codec, &[]).finish().unwrap();
            assert_eq!(stats.pairs, 0);
            assert_eq!(RunFileReader::open(&path).unwrap().count(), 0);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTARUNFILE").unwrap();
        assert!(RunFileReader::open(&path).is_err());
    }

    #[test]
    fn truncation_inside_frame_detected() {
        let pairs = vec![(Value::str("key"), Value::str("a long enough value"))];
        for codec in [
            ShuffleCompression::None,
            ShuffleCompression::Dict,
            ShuffleCompression::DictTrained,
        ] {
            let path = tmp(&format!("trunc-{codec}"));
            let mut w = writer_for(&path, codec, &pairs);
            for (k, v) in &pairs {
                w.append(k, v).unwrap();
            }
            w.finish().unwrap();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
            let mut rd = RunFileReader::open(&path).unwrap();
            assert!(rd.next().unwrap().is_err(), "{codec}");
        }
    }

    #[test]
    fn corrupt_compressed_frame_is_typed_not_garbage() {
        for codec in [ShuffleCompression::Dict, ShuffleCompression::DictTrained] {
            let pairs: Vec<(Value, Value)> = (0..2000i64)
                .map(|i| (Value::Int(i / 100), Value::str("vvvvvvvv")))
                .collect();
            let path = tmp(&format!("corrupt-frame-{codec}"));
            let mut w = writer_for(&path, codec, &pairs);
            for (k, v) in &pairs {
                w.append(k, v).unwrap();
            }
            w.finish().unwrap();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let mut saw_error = false;
            match RunFileReader::open(&path) {
                // A flip inside the v2 header hash fails at open time.
                Err(e) => {
                    assert!(matches!(e, StorageError::Corrupt { .. }), "{e}");
                    saw_error = true;
                }
                Ok(rd) => {
                    for item in rd {
                        match item {
                            Ok(_) => {}
                            Err(e) => {
                                assert!(matches!(e, StorageError::Corrupt { .. }), "{e}");
                                saw_error = true;
                                break;
                            }
                        }
                    }
                }
            }
            assert!(
                saw_error,
                "{codec}: a flipped bit must fail the CRC, not pass through"
            );
        }
    }

    #[test]
    fn columnar_header_hash_mismatch_is_typed() {
        let pairs = mixed_pairs();
        let path = tmp("hash-mismatch");
        let mut w = writer_for(&path, ShuffleCompression::DictTrained, &pairs);
        for (k, v) in &pairs {
            w.append(k, v).unwrap();
        }
        w.finish().unwrap();
        // Flip a bit inside the header's dictionary hash: the reader
        // must refuse at open (unknown hash, no artifact) — typed.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = RunFileReader::open(&path).err().expect("must refuse");
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn columnar_groups_cut_at_block_size() {
        // Enough pairs to span several groups; exercises group refill.
        let pairs: Vec<(Value, Value)> = (0..30_000i64)
            .map(|i| (Value::Int(i / 10), Value::str(format!("value-{}", i % 97))))
            .collect();
        let path = tmp("columnar-groups");
        let mut w = writer_for(&path, ShuffleCompression::DictTrained, &pairs);
        for (k, v) in &pairs {
            w.append(k, v).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.pairs, 30_000);
        assert!(stats.file_bytes < stats.raw_bytes);
        assert_eq!(stats.file_bytes, std::fs::metadata(&path).unwrap().len());
        let mut rd = RunFileReader::open(&path).unwrap();
        let mut count = 0usize;
        for item in &mut rd {
            let (k, v) = item.unwrap();
            assert_eq!((k, v), pairs[count], "pair {count}");
            count += 1;
        }
        assert_eq!(count, 30_000);
        assert_eq!(rd.pairs_read(), 30_000);
    }

    #[test]
    fn large_run_streams() {
        for codec in [ShuffleCompression::None, ShuffleCompression::Delta] {
            let path = tmp(&format!("large-{codec}"));
            let mut w = RunFileWriter::create_with(&path, codec, None).unwrap();
            for i in 0..10_000i64 {
                w.append(&Value::Int(i), &Value::str(format!("v{i}")))
                    .unwrap();
            }
            w.finish().unwrap();
            let mut rd = RunFileReader::open(&path).unwrap();
            let mut count = 0i64;
            for item in &mut rd {
                let (k, _) = item.unwrap();
                assert_eq!(k, Value::Int(count));
                count += 1;
            }
            assert_eq!(count, 10_000);
            assert_eq!(rd.pairs_read(), 10_000);
        }
    }

    #[test]
    fn create_pooled_rejects_dict_trained() {
        let path = tmp("reject-trained");
        let err = RunFileWriter::create_with(&path, ShuffleCompression::DictTrained, None)
            .err()
            .expect("dict-trained without a dictionary must be rejected");
        assert!(matches!(err, StorageError::Schema(_)), "{err}");
    }
}
