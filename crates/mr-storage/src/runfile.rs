//! Sorted-run files for the external shuffle.
//!
//! When a shuffle bucket outgrows its memory budget, the engine sorts
//! the buffered pairs and spills them here; at reduce time the runs are
//! k-way merged back into one sorted stream. The format is the
//! shuffle-side sibling of [`seqfile`](crate::seqfile): self-describing
//! [`Value`] pairs (via
//! [`rowcodec::encode_value`](crate::rowcodec::encode_value)) behind a
//! varint length frame, so a reader can stream pairs without loading
//! the run — Hadoop's `IFile`, with its block compression provided by
//! the [`blockcodec`](crate::blockcodec) layer.
//!
//! Layout:
//!
//! ```text
//! magic "MRRN1"
//! codec u8                                ← 0 = raw stream, else the
//!                                           block-frame codec tag
//! pair stream:
//!   [varint pair_len, encode_value(key) ++ encode_value(value)]*
//! ```
//!
//! With codec 0 the pair stream follows the header directly; otherwise
//! it is cut into CRC'd block frames (see `docs/FORMATS.md`). The
//! record layer is identical either way — compression happens strictly
//! below it, and a reader discovers the codec from the header, so
//! merge and compaction never need the writing job's configuration.
//!
//! Runs are process-local temp files with the lifetime of one job, so
//! there is no footer: end-of-file at a frame boundary is end-of-run,
//! end-of-file inside a frame is corruption.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_ir::value::Value;

use crate::blockcodec::{BlockReader, BlockWriter, ShuffleCompression};
use crate::error::{Result, StorageError};
use crate::fault::{IoFaults, IoSite};
use crate::rowcodec::{decode_value, encode_value};
use crate::varint::{encode_u64, read_u64_from};

const MAGIC: &[u8; 5] = b"MRRN1";

/// Header bytes before the pair stream: magic + codec tag.
const HEADER_LEN: u64 = 6;

/// Upper bound on one framed pair; larger lengths are treated as
/// corruption rather than allocated.
const MAX_PAIR_LEN: u64 = 1 << 30;

/// Buffer capacity for run-file readers. Merges hold up to one open
/// reader per surviving run; a generous buffer keeps the k-way merge
/// from paying one syscall per small pair.
const READ_BUF: usize = 64 * 1024;

/// The reusable scratch a [`RunFileWriter`] stages pairs and block
/// frames in. Writing a run allocates nothing in steady state when the
/// scratch is recycled: create the writer with
/// [`RunFileWriter::create_pooled`], reclaim the scratch from
/// [`RunFileWriter::finish_reclaim`], and hand it to the next run.
#[derive(Debug, Default)]
pub struct RunScratch {
    /// Encoded pair staging ([`RunFileWriter::append`]).
    frame: Vec<u8>,
    /// Varint length staging.
    lenbuf: Vec<u8>,
    /// The block writer's open-block buffer.
    block: Vec<u8>,
    /// The block writer's compressed-frame buffer.
    comp: Vec<u8>,
}

impl RunScratch {
    /// Fresh (empty) scratch; capacity grows with first use.
    pub fn new() -> RunScratch {
        RunScratch::default()
    }

    /// Total heap capacity currently held, for pool sizing diagnostics.
    pub fn capacity_bytes(&self) -> usize {
        self.frame.capacity()
            + self.lenbuf.capacity()
            + self.block.capacity()
            + self.comp.capacity()
    }
}

/// What [`RunFileWriter::finish`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFileStats {
    /// Pairs written.
    pub pairs: u64,
    /// Logical bytes the record layer produced (header + varint pair
    /// frames) — the file size a codec-free run would have.
    pub raw_bytes: u64,
    /// Physical bytes on disk. Equal to `raw_bytes` without a codec;
    /// smaller when compression worked.
    pub file_bytes: u64,
}

/// Writes one sorted run of `(key, value)` pairs.
pub struct RunFileWriter {
    out: BlockWriter<BufWriter<File>>,
    pairs: u64,
    frame: Vec<u8>,
    lenbuf: Vec<u8>,
    faults: Option<Arc<IoFaults>>,
}

impl RunFileWriter {
    /// Create (truncate) `path` and write the header (uncompressed
    /// stream).
    pub fn create(path: impl AsRef<Path>) -> Result<RunFileWriter> {
        RunFileWriter::create_with(path, ShuffleCompression::None, None)
    }

    /// [`create`](Self::create), with each appended pair counted
    /// against `faults` ([`IoSite::RunWrite`]).
    pub fn create_with_faults(
        path: impl AsRef<Path>,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<RunFileWriter> {
        RunFileWriter::create_with(path, ShuffleCompression::None, faults)
    }

    /// Create `path` with the pair stream framed through `compression`
    /// (and fault counting at [`IoSite::RunWrite`] per pair plus
    /// [`IoSite::BlockWrite`] per emitted frame).
    pub fn create_with(
        path: impl AsRef<Path>,
        compression: ShuffleCompression,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<RunFileWriter> {
        RunFileWriter::create_pooled(path, compression, faults, RunScratch::new())
    }

    /// [`create_with`](Self::create_with), staging everything in a
    /// recycled [`RunScratch`] so writing the run allocates no fresh
    /// buffers. Pair with [`finish_reclaim`](Self::finish_reclaim) to
    /// get the scratch back.
    pub fn create_pooled(
        path: impl AsRef<Path>,
        compression: ShuffleCompression,
        faults: Option<Arc<IoFaults>>,
        mut scratch: RunScratch,
    ) -> Result<RunFileWriter> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(MAGIC)?;
        file.write_all(&[compression.stream_tag()])?;
        scratch.frame.clear();
        scratch.lenbuf.clear();
        let out = BlockWriter::with_buffers(
            file,
            compression.codec(),
            faults.clone(),
            scratch.block,
            scratch.comp,
        );
        Ok(RunFileWriter {
            out,
            pairs: 0,
            frame: scratch.frame,
            lenbuf: scratch.lenbuf,
            faults,
        })
    }

    /// Append one pair. Callers are responsible for feeding pairs in
    /// sorted order — the file records whatever order it is given.
    pub fn append(&mut self, key: &Value, value: &Value) -> Result<()> {
        if let Some(f) = &self.faults {
            f.check(IoSite::RunWrite)?;
        }
        self.frame.clear();
        encode_value(key, &mut self.frame)?;
        encode_value(value, &mut self.frame)?;
        self.lenbuf.clear();
        encode_u64(self.frame.len() as u64, &mut self.lenbuf);
        self.out.write_all(&self.lenbuf)?;
        self.out.write_all(&self.frame)?;
        self.pairs += 1;
        Ok(())
    }

    /// Flush and return the pair/byte accounting.
    pub fn finish(self) -> Result<RunFileStats> {
        Ok(self.finish_reclaim()?.0)
    }

    /// [`finish`](Self::finish), additionally handing back the scratch
    /// buffers (capacity intact) for the next run.
    pub fn finish_reclaim(mut self) -> Result<(RunFileStats, RunScratch)> {
        self.out.flush_block()?;
        let raw_bytes = HEADER_LEN + self.out.raw_bytes();
        let file_bytes = HEADER_LEN + self.out.written_bytes();
        self.out.get_mut().flush()?;
        let (block, comp) = self.out.take_buffers();
        Ok((
            RunFileStats {
                pairs: self.pairs,
                raw_bytes,
                file_bytes,
            },
            RunScratch {
                frame: self.frame,
                lenbuf: self.lenbuf,
                block,
                comp,
            },
        ))
    }
}

/// Streams the pairs of one run back in file order.
pub struct RunFileReader {
    input: BlockReader<BufReader<File>>,
    path: PathBuf,
    buf: Vec<u8>,
    pairs_read: u64,
    faults: Option<Arc<IoFaults>>,
}

impl RunFileReader {
    /// Open `path` and check the magic; the codec comes from the
    /// header, so compressed and raw runs open the same way.
    pub fn open(path: impl AsRef<Path>) -> Result<RunFileReader> {
        RunFileReader::open_with_faults(path, None)
    }

    /// [`open`](Self::open), with each pair read counted against
    /// `faults` ([`IoSite::RunRead`]; compressed runs also count
    /// [`IoSite::BlockRead`] per frame).
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<RunFileReader> {
        let path = path.as_ref().to_path_buf();
        let mut file = BufReader::with_capacity(READ_BUF, File::open(&path)?);
        let mut header = [0u8; 6];
        file.read_exact(&mut header)?;
        if &header[..5] != MAGIC {
            return Err(StorageError::corrupt("runfile", "bad magic"));
        }
        let framed = header[5] != 0;
        Ok(RunFileReader {
            input: BlockReader::new(file, framed, faults.clone()),
            path,
            buf: Vec::new(),
            pairs_read: 0,
            faults,
        })
    }

    /// The file being read.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Pairs decoded so far.
    pub fn pairs_read(&self) -> u64 {
        self.pairs_read
    }

    fn read_one(&mut self) -> Result<Option<(Value, Value)>> {
        if let Some(f) = &self.faults {
            f.check(IoSite::RunRead)?;
        }
        // Frame length varint; EOF before its first byte is a clean
        // end-of-run.
        let Some((len, _)) = read_u64_from(&mut self.input)? else {
            return Ok(None);
        };
        if len > MAX_PAIR_LEN {
            return Err(StorageError::corrupt(
                "runfile",
                "frame length implausibly large",
            ));
        }
        self.buf.resize(len as usize, 0);
        self.input.read_exact(&mut self.buf)?;
        let (key, n) = decode_value(&self.buf)?;
        let (value, m) = decode_value(&self.buf[n..])?;
        if n + m != self.buf.len() {
            return Err(StorageError::corrupt("runfile", "frame length mismatch"));
        }
        self.pairs_read += 1;
        Ok(Some((key, value)))
    }
}

impl Iterator for RunFileReader {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-runfile-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn mixed_pairs() -> Vec<(Value, Value)> {
        vec![
            (Value::Int(-3), Value::str("neg")),
            (Value::Int(0), Value::Null),
            (Value::str("k"), Value::Double(2.5)),
            (Value::bytes([1, 2, 3]), Value::list(vec![Value::Int(9)])),
        ]
    }

    #[test]
    fn roundtrip_mixed_values() {
        let path = tmp("roundtrip");
        let pairs = mixed_pairs();
        let mut w = RunFileWriter::create(&path).unwrap();
        for (k, v) in &pairs {
            w.append(k, v).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.pairs, 4);
        assert_eq!(stats.file_bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(stats.raw_bytes, stats.file_bytes, "no codec, no shrink");

        let rd = RunFileReader::open(&path).unwrap();
        let back: Vec<(Value, Value)> = rd.map(|p| p.unwrap()).collect();
        assert_eq!(back, pairs);
    }

    #[test]
    fn roundtrip_every_codec() {
        for codec in ShuffleCompression::ALL {
            let path = tmp(&format!("codec-{codec}"));
            let pairs = mixed_pairs();
            let mut w = RunFileWriter::create_with(&path, codec, None).unwrap();
            for (k, v) in &pairs {
                w.append(k, v).unwrap();
            }
            let stats = w.finish().unwrap();
            assert_eq!(stats.pairs, 4, "{codec}");
            assert_eq!(
                stats.file_bytes,
                std::fs::metadata(&path).unwrap().len(),
                "{codec}"
            );
            let back: Vec<(Value, Value)> = RunFileReader::open(&path)
                .unwrap()
                .map(|p| p.unwrap())
                .collect();
            assert_eq!(back, pairs, "{codec}");
        }
    }

    #[test]
    fn compression_shrinks_repeated_keys() {
        // A sorted low-cardinality run: the shape spills actually have.
        let pairs: Vec<(Value, Value)> = (0..4000)
            .map(|i| {
                (
                    Value::str(format!("http://site/{:02}", i / 500)),
                    Value::Int(i % 7),
                )
            })
            .collect();
        let mut sizes = std::collections::HashMap::new();
        for codec in ShuffleCompression::ALL {
            let path = tmp(&format!("shrink-{codec}"));
            let mut w = RunFileWriter::create_with(&path, codec, None).unwrap();
            for (k, v) in &pairs {
                w.append(k, v).unwrap();
            }
            let stats = w.finish().unwrap();
            let back: Vec<(Value, Value)> = RunFileReader::open(&path)
                .unwrap()
                .map(|p| p.unwrap())
                .collect();
            assert_eq!(back, pairs, "{codec}");
            sizes.insert(codec, (stats.raw_bytes, stats.file_bytes));
        }
        let (raw, none_file) = sizes[&ShuffleCompression::None];
        assert_eq!(raw, none_file);
        let (_, dict_file) = sizes[&ShuffleCompression::Dict];
        let (_, delta_file) = sizes[&ShuffleCompression::Delta];
        assert!(dict_file * 3 < raw, "dict {dict_file} vs raw {raw}");
        assert!(delta_file * 2 < raw, "delta {delta_file} vs raw {raw}");
    }

    #[test]
    fn empty_run() {
        for codec in ShuffleCompression::ALL {
            let path = tmp(&format!("empty-{codec}"));
            let stats = RunFileWriter::create_with(&path, codec, None)
                .unwrap()
                .finish()
                .unwrap();
            assert_eq!(stats.pairs, 0);
            assert_eq!(RunFileReader::open(&path).unwrap().count(), 0);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTARUNFILE").unwrap();
        assert!(RunFileReader::open(&path).is_err());
    }

    #[test]
    fn truncation_inside_frame_detected() {
        for codec in [ShuffleCompression::None, ShuffleCompression::Dict] {
            let path = tmp(&format!("trunc-{codec}"));
            let mut w = RunFileWriter::create_with(&path, codec, None).unwrap();
            w.append(&Value::str("key"), &Value::str("a long enough value"))
                .unwrap();
            w.finish().unwrap();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
            let mut rd = RunFileReader::open(&path).unwrap();
            assert!(rd.next().unwrap().is_err(), "{codec}");
        }
    }

    #[test]
    fn corrupt_compressed_frame_is_typed_not_garbage() {
        let path = tmp("corrupt-frame");
        let mut w = RunFileWriter::create_with(&path, ShuffleCompression::Dict, None).unwrap();
        for i in 0..2000i64 {
            w.append(&Value::Int(i / 100), &Value::str("vvvvvvvv"))
                .unwrap();
        }
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let mut saw_error = false;
        for item in RunFileReader::open(&path).unwrap() {
            match item {
                Ok(_) => {}
                Err(e) => {
                    assert!(matches!(e, StorageError::Corrupt { .. }), "{e}");
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(
            saw_error,
            "a flipped bit must fail the CRC, not pass through"
        );
    }

    #[test]
    fn large_run_streams() {
        for codec in [ShuffleCompression::None, ShuffleCompression::Delta] {
            let path = tmp(&format!("large-{codec}"));
            let mut w = RunFileWriter::create_with(&path, codec, None).unwrap();
            for i in 0..10_000i64 {
                w.append(&Value::Int(i), &Value::str(format!("v{i}")))
                    .unwrap();
            }
            w.finish().unwrap();
            let mut rd = RunFileReader::open(&path).unwrap();
            let mut count = 0i64;
            for item in &mut rd {
                let (k, _) = item.unwrap();
                assert_eq!(k, Value::Int(count));
                count += 1;
            }
            assert_eq!(count, 10_000);
            assert_eq!(rd.pairs_read(), 10_000);
        }
    }
}
