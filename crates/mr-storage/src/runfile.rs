//! Sorted-run files for the external shuffle.
//!
//! When a shuffle bucket outgrows its memory budget, the engine sorts
//! the buffered pairs and spills them here; at reduce time the runs are
//! k-way merged back into one sorted stream. The format is the
//! shuffle-side sibling of [`seqfile`](crate::seqfile): self-describing
//! [`Value`] pairs (via
//! [`rowcodec::encode_value`](crate::rowcodec::encode_value)) behind a
//! varint length frame, so a reader can stream pairs without loading
//! the run — Hadoop's `IFile`, minus the checksums.
//!
//! Layout:
//!
//! ```text
//! magic "MRRN1"
//! [varint pair_len, encode_value(key) ++ encode_value(value)]*
//! ```
//!
//! Runs are process-local temp files with the lifetime of one job, so
//! there is no footer: end-of-file at a frame boundary is end-of-run,
//! end-of-file inside a frame is corruption.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_ir::value::Value;

use crate::error::{Result, StorageError};
use crate::fault::{IoFaults, IoSite};
use crate::rowcodec::{decode_value, encode_value};
use crate::varint::{encode_u64, read_u64_from};

const MAGIC: &[u8; 5] = b"MRRN1";

/// Upper bound on one framed pair; larger lengths are treated as
/// corruption rather than allocated.
const MAX_PAIR_LEN: u64 = 1 << 30;

/// Writes one sorted run of `(key, value)` pairs.
pub struct RunFileWriter {
    out: BufWriter<File>,
    pairs: u64,
    bytes: u64,
    frame: Vec<u8>,
    lenbuf: Vec<u8>,
    faults: Option<Arc<IoFaults>>,
}

impl RunFileWriter {
    /// Create (truncate) `path` and write the magic.
    pub fn create(path: impl AsRef<Path>) -> Result<RunFileWriter> {
        RunFileWriter::create_with_faults(path, None)
    }

    /// [`create`](Self::create), with each appended pair counted
    /// against `faults` ([`IoSite::RunWrite`]).
    pub fn create_with_faults(
        path: impl AsRef<Path>,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<RunFileWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        Ok(RunFileWriter {
            out,
            pairs: 0,
            bytes: MAGIC.len() as u64,
            frame: Vec::new(),
            lenbuf: Vec::new(),
            faults,
        })
    }

    /// Append one pair. Callers are responsible for feeding pairs in
    /// sorted order — the file records whatever order it is given.
    pub fn append(&mut self, key: &Value, value: &Value) -> Result<()> {
        if let Some(f) = &self.faults {
            f.check(IoSite::RunWrite)?;
        }
        self.frame.clear();
        encode_value(key, &mut self.frame)?;
        encode_value(value, &mut self.frame)?;
        self.lenbuf.clear();
        encode_u64(self.frame.len() as u64, &mut self.lenbuf);
        self.out.write_all(&self.lenbuf)?;
        self.out.write_all(&self.frame)?;
        self.pairs += 1;
        self.bytes += (self.lenbuf.len() + self.frame.len()) as u64;
        Ok(())
    }

    /// Flush and return `(pairs, file bytes)` written.
    pub fn finish(mut self) -> Result<(u64, u64)> {
        self.out.flush()?;
        Ok((self.pairs, self.bytes))
    }
}

/// Streams the pairs of one run back in file order.
pub struct RunFileReader {
    input: BufReader<File>,
    path: PathBuf,
    buf: Vec<u8>,
    pairs_read: u64,
    faults: Option<Arc<IoFaults>>,
}

impl RunFileReader {
    /// Open `path` and check the magic.
    pub fn open(path: impl AsRef<Path>) -> Result<RunFileReader> {
        RunFileReader::open_with_faults(path, None)
    }

    /// [`open`](Self::open), with each pair read counted against
    /// `faults` ([`IoSite::RunRead`]).
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<RunFileReader> {
        let path = path.as_ref().to_path_buf();
        let mut input = BufReader::new(File::open(&path)?);
        let mut magic = [0u8; 5];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::corrupt("runfile", "bad magic"));
        }
        Ok(RunFileReader {
            input,
            path,
            buf: Vec::new(),
            pairs_read: 0,
            faults,
        })
    }

    /// The file being read.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Pairs decoded so far.
    pub fn pairs_read(&self) -> u64 {
        self.pairs_read
    }

    fn read_one(&mut self) -> Result<Option<(Value, Value)>> {
        if let Some(f) = &self.faults {
            f.check(IoSite::RunRead)?;
        }
        // Frame length varint; EOF before its first byte is a clean
        // end-of-run.
        let Some((len, _)) = read_u64_from(&mut self.input)? else {
            return Ok(None);
        };
        if len > MAX_PAIR_LEN {
            return Err(StorageError::corrupt(
                "runfile",
                "frame length implausibly large",
            ));
        }
        self.buf.resize(len as usize, 0);
        self.input.read_exact(&mut self.buf)?;
        let (key, n) = decode_value(&self.buf)?;
        let (value, m) = decode_value(&self.buf[n..])?;
        if n + m != self.buf.len() {
            return Err(StorageError::corrupt("runfile", "frame length mismatch"));
        }
        self.pairs_read += 1;
        Ok(Some((key, value)))
    }
}

impl Iterator for RunFileReader {
    type Item = Result<(Value, Value)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-runfile-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_mixed_values() {
        let path = tmp("roundtrip");
        let pairs = vec![
            (Value::Int(-3), Value::str("neg")),
            (Value::Int(0), Value::Null),
            (Value::str("k"), Value::Double(2.5)),
            (Value::bytes([1, 2, 3]), Value::list(vec![Value::Int(9)])),
        ];
        let mut w = RunFileWriter::create(&path).unwrap();
        for (k, v) in &pairs {
            w.append(k, v).unwrap();
        }
        let (n, bytes) = w.finish().unwrap();
        assert_eq!(n, 4);
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());

        let rd = RunFileReader::open(&path).unwrap();
        let back: Vec<(Value, Value)> = rd.map(|p| p.unwrap()).collect();
        assert_eq!(back, pairs);
    }

    #[test]
    fn empty_run() {
        let path = tmp("empty");
        let (n, _) = RunFileWriter::create(&path).unwrap().finish().unwrap();
        assert_eq!(n, 0);
        assert_eq!(RunFileReader::open(&path).unwrap().count(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTARUNFILE").unwrap();
        assert!(RunFileReader::open(&path).is_err());
    }

    #[test]
    fn truncation_inside_frame_detected() {
        let path = tmp("trunc");
        let mut w = RunFileWriter::create(&path).unwrap();
        w.append(&Value::str("key"), &Value::str("a long enough value"))
            .unwrap();
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let mut rd = RunFileReader::open(&path).unwrap();
        assert!(rd.next().unwrap().is_err());
    }

    #[test]
    fn large_run_streams() {
        let path = tmp("large");
        let mut w = RunFileWriter::create(&path).unwrap();
        for i in 0..10_000i64 {
            w.append(&Value::Int(i), &Value::str(format!("v{i}")))
                .unwrap();
        }
        w.finish().unwrap();
        let mut rd = RunFileReader::open(&path).unwrap();
        let mut count = 0i64;
        for item in &mut rd {
            let (k, _) = item.unwrap();
            assert_eq!(k, Value::Int(count));
            count += 1;
        }
        assert_eq!(count, 10_000);
        assert_eq!(rd.pairs_read(), 10_000);
    }
}
