//! Storage-layer errors.

use std::fmt;
use std::io;

/// Any failure in the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// File is not in the expected format.
    Corrupt {
        /// What was being read.
        context: String,
        /// What is wrong.
        detail: String,
    },
    /// Record does not match the file's schema.
    Schema(String),
}

impl StorageError {
    /// Build a corruption error.
    pub fn corrupt(context: impl Into<String>, detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// Wrap this error in an [`io::Error`] so it can cross a
    /// [`std::io::Read`]/[`std::io::Write`] boundary (the block-codec
    /// adapters implement those traits) without losing its type: the
    /// [`From<io::Error>`] conversion below unwraps it back, so a CRC
    /// mismatch inside a compressed stream still surfaces as
    /// [`StorageError::Corrupt`], not a generic I/O failure.
    pub fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, self)
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt { context, detail } => {
                write!(f, "corrupt {context}: {detail}")
            }
            StorageError::Schema(s) => write!(f, "schema error: {s}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        // Unwrap a StorageError smuggled through `into_io` — keeps
        // corruption typed across the block-codec Read/Write adapters.
        if e.get_ref().is_some_and(|r| r.is::<StorageError>()) {
            let inner = e.into_inner().expect("checked by get_ref");
            return *inner.downcast::<StorageError>().expect("checked by is");
        }
        StorageError::Io(e)
    }
}

/// Storage-layer result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
