//! A paged, clustered B+Tree index file.
//!
//! This is the index the SELECT optimization scans: "we can optimize
//! such code at runtime by using a B+Tree to scan just the relevant
//! portion of the input data" (paper §2.1). The tree is *clustered*: leaf
//! entries carry the full serialized record (or the projected record,
//! for a combined selection+projection index), so an index scan replaces
//! the original file entirely — it is "an indexed version of the
//! submitted job's input data" (§2).
//!
//! The index-generation job feeds keys in sorted order (it is a
//! MapReduce job whose shuffle sorts by the index key), so the tree is
//! bulk-built bottom-up: leaves first, then each internal level, root
//! last.
//!
//! Layout:
//!
//! ```text
//! magic "MRBT1"
//! varint header_len, header = page_size varint + encode_schema(schema)
//! pages (fixed page_size each; page id = position)
//! footer: root u64, n_pages u64, entries u64, first_leaf u64, "MRBTF"
//! ```
//!
//! Page formats:
//! * leaf: `[0u8][next_leaf u64][varint n][varint klen, key, varint vlen, val]*`
//! * internal: `[1u8][varint n][varint child_id, varint klen, min_key]*`

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_ir::record::Record;
use mr_ir::schema::Schema;
use mr_ir::value::Value;

use crate::error::{Result, StorageError};
use crate::rowcodec::{
    decode_row, decode_schema, decode_value, encode_row, encode_schema, encode_value,
};
use crate::varint::{decode_u64, encode_u64, encoded_len_u64};

const MAGIC: &[u8; 5] = b"MRBT1";
const FOOTER_MAGIC: &[u8; 5] = b"MRBTF";
const NO_LEAF: u64 = u64::MAX;

/// Default page size. Large enough that even records with multi-KB
/// content fields fit several to a page.
pub const DEFAULT_PAGE_SIZE: usize = 64 * 1024;

/// One scan bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanBound {
    /// No bound.
    Unbounded,
    /// Inclusive bound.
    Incl(Value),
    /// Exclusive bound.
    Excl(Value),
}

impl ScanBound {
    fn admits_low(&self, key: &Value) -> bool {
        match self {
            ScanBound::Unbounded => true,
            ScanBound::Incl(b) => key >= b,
            ScanBound::Excl(b) => key > b,
        }
    }

    fn admits_high(&self, key: &Value) -> bool {
        match self {
            ScanBound::Unbounded => true,
            ScanBound::Incl(b) => key <= b,
            ScanBound::Excl(b) => key < b,
        }
    }
}

/// Builds a B+Tree from key-sorted `(key, record)` pairs.
pub struct BTreeWriter {
    out: BufWriter<File>,
    page_size: usize,
    /// Current leaf buffer (entry area only).
    leaf_buf: Vec<u8>,
    leaf_entries: u64,
    leaf_first_key: Option<Vec<u8>>,
    /// (min_key, page_id) of completed pages at the current level.
    level0: Vec<(Vec<u8>, u64)>,
    next_page_id: u64,
    entry_count: u64,
    last_key: Option<Value>,
    scratch_key: Vec<u8>,
    scratch_row: Vec<u8>,
}

/// Statistics returned by [`BTreeWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeStats {
    /// Total entries stored.
    pub entries: u64,
    /// Total pages written.
    pub pages: u64,
    /// Tree height (1 = root is a leaf).
    pub height: u32,
    /// Total file size in bytes.
    pub file_size: u64,
}

impl BTreeWriter {
    /// Create the index file with the default page size.
    pub fn create(path: impl AsRef<Path>, schema: Arc<Schema>) -> Result<BTreeWriter> {
        Self::with_page_size(path, schema, DEFAULT_PAGE_SIZE)
    }

    /// Create with an explicit page size.
    pub fn with_page_size(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
        page_size: usize,
    ) -> Result<BTreeWriter> {
        assert!(page_size >= 64, "page size too small");
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        let mut header = Vec::new();
        encode_u64(page_size as u64, &mut header);
        encode_schema(&schema, &mut header);
        let mut lenbuf = Vec::new();
        encode_u64(header.len() as u64, &mut lenbuf);
        out.write_all(&lenbuf)?;
        out.write_all(&header)?;
        Ok(BTreeWriter {
            out,
            page_size,
            leaf_buf: Vec::new(),
            leaf_entries: 0,
            leaf_first_key: None,
            level0: Vec::new(),
            next_page_id: 0,
            entry_count: 0,
            last_key: None,
            scratch_key: Vec::new(),
            scratch_row: Vec::new(),
        })
    }

    /// Leaf payload capacity: page minus type byte, next-leaf pointer
    /// and a generous entry-count varint.
    fn leaf_capacity(&self) -> usize {
        self.page_size - 1 - 8 - 10
    }

    /// Append one entry. Index keys must arrive in non-decreasing
    /// order. `orig_key` is the key the original input file would have
    /// produced for this record (a record position, a String key, …);
    /// it is stored alongside the record so the optimized plan feeds
    /// `map()` inputs identical to the baseline's.
    pub fn append(&mut self, key: &Value, orig_key: &Value, record: &Record) -> Result<()> {
        if let Some(prev) = &self.last_key {
            if key < prev {
                return Err(StorageError::Schema(format!(
                    "B+Tree keys out of order: {key} after {prev}"
                )));
            }
        }
        self.last_key = Some(key.clone());

        self.scratch_key.clear();
        encode_value(key, &mut self.scratch_key)?;
        self.scratch_row.clear();
        encode_value(orig_key, &mut self.scratch_row)?;
        encode_row(record, &mut self.scratch_row)?;

        let entry_len = encoded_len_u64(self.scratch_key.len() as u64)
            + self.scratch_key.len()
            + encoded_len_u64(self.scratch_row.len() as u64)
            + self.scratch_row.len();
        if entry_len > self.leaf_capacity() {
            return Err(StorageError::Schema(format!(
                "entry of {entry_len} bytes exceeds page capacity {}; use a larger page size",
                self.leaf_capacity()
            )));
        }
        if self.leaf_buf.len() + entry_len > self.leaf_capacity() {
            self.flush_leaf()?;
        }
        if self.leaf_first_key.is_none() {
            self.leaf_first_key = Some(self.scratch_key.clone());
        }
        encode_u64(self.scratch_key.len() as u64, &mut self.leaf_buf);
        self.leaf_buf.extend_from_slice(&self.scratch_key);
        encode_u64(self.scratch_row.len() as u64, &mut self.leaf_buf);
        self.leaf_buf.extend_from_slice(&self.scratch_row);
        self.leaf_entries += 1;
        self.entry_count += 1;
        Ok(())
    }

    fn flush_leaf(&mut self) -> Result<()> {
        if self.leaf_entries == 0 {
            return Ok(());
        }
        let id = self.next_page_id;
        self.next_page_id += 1;
        let mut page = Vec::with_capacity(self.page_size);
        page.push(0u8);
        // Leaves are written consecutively during the build, so the next
        // leaf is simply id + 1 — patched to NO_LEAF for the final leaf
        // by writing the footer's first_leaf/leaf count… we cannot seek
        // back through BufWriter cheaply, so instead store the *guess*
        // id + 1 and let the reader stop when it has left the key range
        // or hits a non-leaf page.
        page.extend_from_slice(&(id + 1).to_le_bytes());
        encode_u64(self.leaf_entries, &mut page);
        page.extend_from_slice(&self.leaf_buf);
        page.resize(self.page_size, 0);
        self.out.write_all(&page)?;
        let first_key = self
            .leaf_first_key
            .take()
            .expect("non-empty leaf has a first key");
        self.level0.push((first_key, id));
        self.leaf_buf.clear();
        self.leaf_entries = 0;
        Ok(())
    }

    /// Build internal levels and the footer; returns stats.
    pub fn finish(mut self) -> Result<BTreeStats> {
        self.flush_leaf()?;
        if self.level0.is_empty() {
            // Empty tree: a single empty leaf as root.
            let mut page = Vec::with_capacity(self.page_size);
            page.push(0u8);
            page.extend_from_slice(&NO_LEAF.to_le_bytes());
            encode_u64(0, &mut page);
            page.resize(self.page_size, 0);
            self.out.write_all(&page)?;
            self.level0.push((Vec::new(), 0));
            self.next_page_id = 1;
        }
        let n_leaves = self.level0.len() as u64;

        let mut height = 1u32;
        let mut level = std::mem::take(&mut self.level0);
        while level.len() > 1 {
            height += 1;
            let mut next_level: Vec<(Vec<u8>, u64)> = Vec::new();
            let capacity = self.page_size - 1 - 10;
            let mut buf: Vec<u8> = Vec::new();
            let mut count = 0u64;
            let mut first_key: Option<Vec<u8>> = None;

            let flush = |buf: &mut Vec<u8>,
                         count: &mut u64,
                         first_key: &mut Option<Vec<u8>>,
                         next_page_id: &mut u64,
                         out: &mut BufWriter<File>,
                         next_level: &mut Vec<(Vec<u8>, u64)>|
             -> Result<()> {
                if *count == 0 {
                    return Ok(());
                }
                let id = *next_page_id;
                *next_page_id += 1;
                let mut page = Vec::with_capacity(self.page_size);
                page.push(1u8);
                encode_u64(*count, &mut page);
                page.extend_from_slice(buf);
                page.resize(self.page_size, 0);
                out.write_all(&page)?;
                next_level.push((first_key.take().expect("first key"), id));
                buf.clear();
                *count = 0;
                Ok(())
            };

            for (key, child) in level {
                let entry_len =
                    encoded_len_u64(child) + encoded_len_u64(key.len() as u64) + key.len();
                if buf.len() + entry_len > capacity {
                    flush(
                        &mut buf,
                        &mut count,
                        &mut first_key,
                        &mut self.next_page_id,
                        &mut self.out,
                        &mut next_level,
                    )?;
                }
                if first_key.is_none() {
                    first_key = Some(key.clone());
                }
                encode_u64(child, &mut buf);
                encode_u64(key.len() as u64, &mut buf);
                buf.extend_from_slice(&key);
                count += 1;
            }
            flush(
                &mut buf,
                &mut count,
                &mut first_key,
                &mut self.next_page_id,
                &mut self.out,
                &mut next_level,
            )?;
            level = next_level;
        }
        let root = level[0].1;
        let n_pages = self.next_page_id;

        self.out.write_all(&root.to_le_bytes())?;
        self.out.write_all(&n_pages.to_le_bytes())?;
        self.out.write_all(&self.entry_count.to_le_bytes())?;
        self.out.write_all(&n_leaves.to_le_bytes())?;
        self.out.write_all(FOOTER_MAGIC)?;
        self.out.flush()?;

        let header_len = header_size_estimate(&self.out)?;
        Ok(BTreeStats {
            entries: self.entry_count,
            pages: n_pages,
            height,
            file_size: header_len,
        })
    }
}

fn header_size_estimate(out: &BufWriter<File>) -> Result<u64> {
    Ok(out.get_ref().metadata()?.len())
}

/// An open B+Tree index.
pub struct BTreeIndex {
    path: PathBuf,
    page_size: usize,
    schema: Arc<Schema>,
    data_start: u64,
    root: u64,
    /// Total pages in the file.
    pub n_pages: u64,
    /// Number of leaf pages (leaves occupy ids `0..n_leaves`).
    n_leaves: u64,
    /// Total entries.
    pub entry_count: u64,
    /// Total file size.
    pub file_size: u64,
}

impl BTreeIndex {
    /// Open an index file, parsing header and footer.
    pub fn open(path: impl AsRef<Path>) -> Result<BTreeIndex> {
        let path = path.as_ref().to_path_buf();
        let mut f = File::open(&path)?;
        let file_size = f.metadata()?.len();
        let mut magic = [0u8; 5];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::corrupt("btree", "bad magic"));
        }
        let mut head = vec![0u8; 10.min((file_size - 5) as usize)];
        f.read_exact(&mut head)?;
        let (header_len, n) = decode_u64(&head)?;
        if header_len > (1 << 30) {
            return Err(StorageError::corrupt("btree", "header implausibly large"));
        }
        f.seek(SeekFrom::Start((5 + n) as u64))?;
        let mut header = vec![0u8; header_len as usize];
        f.read_exact(&mut header)?;
        let (page_size, m) = decode_u64(&header)?;
        if !(64..=(1u64 << 30)).contains(&page_size) {
            return Err(StorageError::corrupt("btree", "implausible page size"));
        }
        let (schema, _) = decode_schema(&header[m..])?;
        let data_start = (5 + n) as u64 + header_len;

        if file_size < 37 {
            return Err(StorageError::corrupt("btree", "missing footer"));
        }
        f.seek(SeekFrom::End(-37))?;
        let mut tail = [0u8; 37];
        f.read_exact(&mut tail)?;
        if &tail[32..] != FOOTER_MAGIC {
            return Err(StorageError::corrupt("btree", "bad footer magic"));
        }
        let root = u64::from_le_bytes(tail[0..8].try_into().expect("8"));
        let n_pages = u64::from_le_bytes(tail[8..16].try_into().expect("8"));
        let entry_count = u64::from_le_bytes(tail[16..24].try_into().expect("8"));
        let n_leaves = u64::from_le_bytes(tail[24..32].try_into().expect("8"));
        Ok(BTreeIndex {
            path,
            page_size: page_size as usize,
            schema: Arc::new(schema),
            data_start,
            root,
            n_pages,
            n_leaves,
            entry_count,
            file_size,
        })
    }

    /// The record schema stored in the leaves.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Scan entries whose key lies within `[low, high]`.
    pub fn scan(&self, low: ScanBound, high: ScanBound) -> Result<BTreeScanner> {
        let mut f = File::open(&self.path)?;
        let mut page = vec![0u8; self.page_size];
        // Descend from root to the first candidate leaf.
        let mut pid = self.root;
        let mut pages_read = 0u64;
        loop {
            read_page(&mut f, self.data_start, self.page_size, pid, &mut page)?;
            pages_read += 1;
            match page[0] {
                0 => break,
                1 => {
                    pid = descend(&page, &low)?;
                }
                other => {
                    return Err(StorageError::corrupt(
                        "btree",
                        format!("unknown page type {other}"),
                    ))
                }
            }
        }
        let mut scanner = BTreeScanner {
            file: f,
            index_schema: Arc::clone(&self.schema),
            data_start: self.data_start,
            page_size: self.page_size,
            n_leaves: self.n_leaves,
            low,
            high,
            page,
            entry_pos: 0,
            entries_left: 0,
            current_leaf: pid,
            pages_read,
            done: false,
            started: false,
        };
        scanner.load_current_leaf_entries()?;
        Ok(scanner)
    }

    /// Scan everything.
    pub fn scan_all(&self) -> Result<BTreeScanner> {
        self.scan(ScanBound::Unbounded, ScanBound::Unbounded)
    }

    /// Point lookup: all records with exactly `key`.
    pub fn lookup(&self, key: &Value) -> Result<Vec<Record>> {
        let scan = self.scan(ScanBound::Incl(key.clone()), ScanBound::Incl(key.clone()))?;
        scan.map(|r| r.map(|(_, rec)| rec)).collect()
    }
}

fn read_page(
    f: &mut File,
    data_start: u64,
    page_size: usize,
    pid: u64,
    buf: &mut [u8],
) -> Result<()> {
    f.seek(SeekFrom::Start(data_start + pid * page_size as u64))?;
    f.read_exact(buf)?;
    Ok(())
}

/// In an internal page, pick the last child whose min key is <= the low
/// bound (or the first child for unbounded scans).
fn descend(page: &[u8], low: &ScanBound) -> Result<u64> {
    let mut pos = 1usize;
    let (n, used) = decode_u64(&page[pos..])?;
    pos += used;
    let mut chosen: Option<u64> = None;
    for _ in 0..n {
        let (child, used) = decode_u64(&page[pos..])?;
        pos += used;
        let (klen, used) = decode_u64(&page[pos..])?;
        pos += used;
        let key_bytes = page
            .get(pos..pos + klen as usize)
            .ok_or_else(|| StorageError::corrupt("btree", "internal entry overruns page"))?;
        pos += klen as usize;
        if chosen.is_none() {
            chosen = Some(child);
            continue;
        }
        let keep_descending = match low {
            ScanBound::Unbounded => false,
            ScanBound::Incl(b) | ScanBound::Excl(b) => {
                if key_bytes.is_empty() {
                    false
                } else {
                    let (k, _) = decode_value(key_bytes)?;
                    k <= *b
                }
            }
        };
        if keep_descending {
            chosen = Some(child);
        } else {
            break;
        }
    }
    chosen.ok_or_else(|| StorageError::corrupt("btree", "empty internal page"))
}

/// Iterates `(original key, record)` pairs of a range scan. The range
/// filter applies to the *index* key; the yielded key is the original
/// input key stored with the entry.
pub struct BTreeScanner {
    file: File,
    index_schema: Arc<Schema>,
    data_start: u64,
    page_size: usize,
    n_leaves: u64,
    low: ScanBound,
    high: ScanBound,
    page: Vec<u8>,
    entry_pos: usize,
    entries_left: u64,
    current_leaf: u64,
    pages_read: u64,
    done: bool,
    started: bool,
}

impl BTreeScanner {
    /// Pages fetched so far; `pages_read * page_size` approximates bytes
    /// touched — the quantity index scans save.
    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }

    /// Bytes touched so far.
    pub fn bytes_read(&self) -> u64 {
        self.pages_read * self.page_size as u64
    }

    fn load_current_leaf_entries(&mut self) -> Result<()> {
        debug_assert_eq!(self.page[0], 0, "must be on a leaf");
        let mut pos = 1 + 8;
        let (n, used) = decode_u64(&self.page[pos..])?;
        pos += used;
        self.entries_left = n;
        self.entry_pos = pos;
        Ok(())
    }

    fn advance_leaf(&mut self) -> Result<bool> {
        let next = u64::from_le_bytes(self.page[1..9].try_into().expect("8"));
        if next == NO_LEAF || next >= self.n_leaves {
            return Ok(false);
        }
        self.current_leaf = next;
        let mut page = std::mem::take(&mut self.page);
        read_page(
            &mut self.file,
            self.data_start,
            self.page_size,
            next,
            &mut page,
        )?;
        self.page = page;
        self.pages_read += 1;
        if self.page[0] != 0 {
            // Ran past the last leaf into internal territory.
            return Ok(false);
        }
        self.load_current_leaf_entries()?;
        Ok(true)
    }

    fn next_entry(&mut self) -> Result<Option<(Value, Record)>> {
        if self.done {
            return Ok(None);
        }
        loop {
            while self.entries_left == 0 {
                if !self.advance_leaf()? {
                    self.done = true;
                    return Ok(None);
                }
            }
            // Decode one entry (bounds-checked: a corrupted length
            // must surface as an error, not a slice panic).
            let overrun = || StorageError::corrupt("btree", "leaf entry overruns page");
            let (klen, used) = decode_u64(&self.page[self.entry_pos..])?;
            self.entry_pos += used;
            let key_bytes = self
                .page
                .get(self.entry_pos..self.entry_pos + klen as usize)
                .ok_or_else(overrun)?;
            let (key, _) = decode_value(key_bytes)?;
            self.entry_pos += klen as usize;
            let (vlen, used) = decode_u64(&self.page[self.entry_pos..])?;
            self.entry_pos += used;
            let row_start = self.entry_pos;
            self.entry_pos += vlen as usize;
            if self.entry_pos > self.page.len() {
                return Err(overrun());
            }
            self.entries_left -= 1;

            if !self.started {
                if !self.low.admits_low(&key) {
                    continue; // still before the range
                }
                self.started = true;
            }
            if !self.high.admits_high(&key) {
                self.done = true;
                return Ok(None);
            }
            let row_bytes = &self.page[row_start..row_start + vlen as usize];
            let (orig_key, used) = decode_value(row_bytes)?;
            let (record, _) = decode_row(&self.index_schema, &row_bytes[used..])?;
            return Ok(Some((orig_key, record)));
        }
    }
}

impl Iterator for BTreeScanner {
    type Item = Result<(Value, Record)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_entry().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::record::record;
    use mr_ir::schema::FieldType;

    fn schema() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![("url", FieldType::Str), ("rank", FieldType::Int)],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-btree-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    /// Build a tree over ranks 0..n (sorted), one record per rank.
    fn build(n: i64, page_size: usize, path: &Path) -> BTreeStats {
        let s = schema();
        let mut w = BTreeWriter::with_page_size(path, Arc::clone(&s), page_size).unwrap();
        for i in 0..n {
            let r = record(&s, vec![format!("http://site/{i}").into(), i.into()]);
            w.append(&Value::Int(i), &Value::Int(i), &r).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn build_and_scan_all() {
        let path = tmp("all");
        let stats = build(1000, 4096, &path);
        assert_eq!(stats.entries, 1000);
        assert!(stats.height >= 2, "1000 entries on 4K pages needs depth");
        let idx = BTreeIndex::open(&path).unwrap();
        assert_eq!(idx.entry_count, 1000);
        let got: Vec<i64> = idx
            .scan_all()
            .unwrap()
            .map(|r| r.unwrap().0.as_int().unwrap())
            .collect();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_exact() {
        let path = tmp("range");
        build(1000, 4096, &path);
        let idx = BTreeIndex::open(&path).unwrap();
        let got: Vec<i64> = idx
            .scan(
                ScanBound::Excl(Value::Int(500)),
                ScanBound::Incl(Value::Int(510)),
            )
            .unwrap()
            .map(|r| r.unwrap().0.as_int().unwrap())
            .collect();
        assert_eq!(got, (501..=510).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_reads_few_pages() {
        let path = tmp("pages");
        build(10_000, 4096, &path);
        let idx = BTreeIndex::open(&path).unwrap();
        let mut scan = idx
            .scan(ScanBound::Incl(Value::Int(9_990)), ScanBound::Unbounded)
            .unwrap();
        let mut n = 0;
        for r in scan.by_ref() {
            r.unwrap();
            n += 1;
        }
        assert_eq!(n, 10);
        // Descent + at most a couple of leaves — nowhere near the ~300
        // pages a full scan would touch.
        assert!(scan.pages_read() < 10, "read {} pages", scan.pages_read());
    }

    #[test]
    fn duplicate_keys_preserved() {
        let s = schema();
        let path = tmp("dups");
        let mut w = BTreeWriter::with_page_size(&path, Arc::clone(&s), 4096).unwrap();
        for i in 0..100 {
            let rank = i / 10; // ten records per rank
            let r = record(&s, vec![format!("u{i}").into(), Value::Int(rank)]);
            w.append(&Value::Int(rank), &Value::Int(i), &r).unwrap();
        }
        w.finish().unwrap();
        let idx = BTreeIndex::open(&path).unwrap();
        let hits = idx.lookup(&Value::Int(5)).unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits
            .iter()
            .all(|r| r.get("rank").unwrap() == &Value::Int(5)));
    }

    #[test]
    fn out_of_order_append_rejected() {
        let s = schema();
        let path = tmp("order");
        let mut w = BTreeWriter::create(&path, Arc::clone(&s)).unwrap();
        let r = record(&s, vec!["u".into(), 5.into()]);
        w.append(&Value::Int(5), &Value::Int(0), &r).unwrap();
        assert!(w.append(&Value::Int(4), &Value::Int(1), &r).is_err());
    }

    #[test]
    fn empty_tree() {
        let s = schema();
        let path = tmp("empty");
        let w = BTreeWriter::create(&path, s).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.entries, 0);
        let idx = BTreeIndex::open(&path).unwrap();
        assert_eq!(idx.scan_all().unwrap().count(), 0);
        assert!(idx.lookup(&Value::Int(1)).unwrap().is_empty());
    }

    #[test]
    fn string_keys() {
        let s = schema();
        let path = tmp("strings");
        let mut w = BTreeWriter::with_page_size(&path, Arc::clone(&s), 4096).unwrap();
        let mut urls: Vec<String> = (0..500).map(|i| format!("http://site/{i:04}")).collect();
        urls.sort();
        for (i, u) in urls.iter().enumerate() {
            let r = record(&s, vec![u.as_str().into(), (i as i64).into()]);
            w.append(&Value::str(u), &Value::Int(i as i64), &r).unwrap();
        }
        w.finish().unwrap();
        let idx = BTreeIndex::open(&path).unwrap();
        let got: Vec<String> = idx
            .scan(
                ScanBound::Incl(Value::str("http://site/0100")),
                ScanBound::Excl(Value::str("http://site/0105")),
            )
            .unwrap()
            .map(|r| {
                r.unwrap()
                    .1
                    .get("url")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(
            got,
            (100..105)
                .map(|i| format!("http://site/{i:04}"))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn oversized_entry_rejected() {
        let s = Schema::new("Big", vec![("blob", FieldType::Str)]).into_arc();
        let path = tmp("oversized");
        let mut w = BTreeWriter::with_page_size(&path, Arc::clone(&s), 256).unwrap();
        let r = record(&s, vec!["x".repeat(1000).into()]);
        assert!(w.append(&Value::Int(1), &Value::Int(0), &r).is_err());
    }

    #[test]
    fn range_before_everything_and_after_everything() {
        let path = tmp("outside");
        build(100, 4096, &path);
        let idx = BTreeIndex::open(&path).unwrap();
        assert_eq!(
            idx.scan(ScanBound::Incl(Value::Int(1000)), ScanBound::Unbounded)
                .unwrap()
                .count(),
            0
        );
        assert_eq!(
            idx.scan(ScanBound::Unbounded, ScanBound::Excl(Value::Int(0)))
                .unwrap()
                .count(),
            0
        );
    }

    #[test]
    fn scan_crossing_many_leaves() {
        let path = tmp("crossing");
        build(5_000, 1024, &path);
        let idx = BTreeIndex::open(&path).unwrap();
        let got: Vec<i64> = idx
            .scan(
                ScanBound::Incl(Value::Int(100)),
                ScanBound::Excl(Value::Int(4900)),
            )
            .unwrap()
            .map(|r| r.unwrap().0.as_int().unwrap())
            .collect();
        assert_eq!(got.len(), 4800);
        assert_eq!(got[0], 100);
        assert_eq!(*got.last().unwrap(), 4899);
    }
}
