//! Dictionary-compressed files for direct-operation (paper §2.1, App. D
//! Table 6).
//!
//! "A url that is used only in equality tests does not really need to be
//! decompressed prior to map(); it is possible to use a compressed
//! version of the url that preserves equality testing. … During actual
//! program execution, destURL is implemented as an integer instead of a
//! String."
//!
//! The writer assigns each distinct string of a compressed field a dense
//! integer code. Readers produce records whose compressed fields hold the
//! *codes* — the data is never decompressed on the read path. The code
//! table is persisted in the footer so the optimizer can rewrite string
//! constants in the modified program copy, and so tooling can decode for
//! humans.
//!
//! The reader's record schema rewrites each compressed `Str` field to
//! `Long` — the type the map function actually observes.
//!
//! # Example
//!
//! Codes preserve equality without decompression, and the persisted
//! dictionary decodes them for humans:
//!
//! ```
//! use std::sync::Arc;
//! use mr_ir::record::record;
//! use mr_ir::schema::{FieldType, Schema};
//! use mr_storage::dict::{DictFileReader, DictFileWriter};
//!
//! let schema = Schema::new("V", vec![("url", FieldType::Str)]).into_arc();
//! let path = std::env::temp_dir().join(format!("dict-doc-{}", std::process::id()));
//! let mut w = DictFileWriter::create(&path, Arc::clone(&schema), &["url".into()])?;
//! for url in ["http://a", "http://b", "http://a"] {
//!     w.append(&record(&schema, vec![url.into()]))?;
//! }
//! let (records, _bytes, distinct) = w.finish()?;
//! assert_eq!((records, distinct), (3, 2));
//!
//! let reader = DictFileReader::open(&path)?;
//! assert_eq!(reader.schema().field("url").unwrap().ty, FieldType::Long);
//! let dict = reader.dictionary("url").unwrap();
//! assert_eq!(dict.decode(dict.code_of("http://b").unwrap()), Some("http://b"));
//! let codes: Vec<i64> = reader
//!     .map(|r| r.unwrap().get("url").unwrap().as_int().unwrap())
//!     .collect();
//! assert_eq!(codes[0], codes[2], "same url, same code");
//! assert_ne!(codes[0], codes[1]);
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), mr_storage::StorageError>(())
//! ```

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use mr_ir::record::Record;
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;

use crate::error::{Result, StorageError};
use crate::rowcodec::{decode_schema, encode_schema};
use crate::varint::{decode_i64, decode_u64, encode_i64, encode_u64};

const MAGIC: &[u8; 5] = b"MRDC1";

/// Records per block in the split index.
pub const BLOCK: u64 = 4096;

/// Upper bound on a single serialized row or header; beyond this is
/// corruption.
const MAX_ROW_LEN: u64 = 1 << 30;

/// Writes a dictionary-compressed file.
pub struct DictFileWriter {
    out: BufWriter<File>,
    /// Original (string-typed) schema.
    schema: Arc<Schema>,
    /// Per field: dictionary-compressed?
    is_dict: Vec<bool>,
    /// One dictionary per compressed field index.
    dicts: Vec<HashMap<String, i64>>,
    count: u64,
    bytes_written: u64,
    buf: Vec<u8>,
    /// Block index: (byte offset, records before block).
    blocks: Vec<(u64, u64)>,
}

impl DictFileWriter {
    /// Create the file; `dict_fields` names the string fields to
    /// compress (the analyzer's `DirectDescriptor` fields).
    pub fn create(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
        dict_fields: &[String],
    ) -> Result<DictFileWriter> {
        for name in dict_fields {
            match schema.field(name) {
                None => {
                    return Err(StorageError::Schema(format!(
                        "dict field `{name}` not in schema"
                    )))
                }
                Some(fd) if fd.ty != FieldType::Str => {
                    return Err(StorageError::Schema(format!(
                        "dict field `{name}` is not a string"
                    )))
                }
                _ => {}
            }
        }
        let is_dict: Vec<bool> = schema
            .fields()
            .iter()
            .map(|f| dict_fields.iter().any(|d| d == &f.name))
            .collect();
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        let mut header = Vec::new();
        encode_schema(&schema, &mut header);
        encode_u64(is_dict.len() as u64, &mut header);
        for &d in &is_dict {
            header.push(d as u8);
        }
        let mut lenbuf = Vec::new();
        encode_u64(header.len() as u64, &mut lenbuf);
        out.write_all(&lenbuf)?;
        out.write_all(&header)?;
        let bytes_written = (5 + lenbuf.len() + header.len()) as u64;
        let nfields = schema.len();
        Ok(DictFileWriter {
            out,
            schema,
            is_dict,
            dicts: vec![HashMap::new(); nfields],
            count: 0,
            bytes_written,
            buf: Vec::new(),
            blocks: Vec::new(),
        })
    }

    /// Append a record (with original string values).
    pub fn append(&mut self, record: &Record) -> Result<()> {
        if self.count.is_multiple_of(BLOCK) {
            self.blocks.push((self.bytes_written, self.count));
        }
        self.buf.clear();
        for (i, (fd, v)) in self.schema.fields().iter().zip(record.values()).enumerate() {
            if self.is_dict[i] {
                let s = v.as_str().ok_or_else(|| {
                    StorageError::Schema(format!("field `{}` not a string", fd.name))
                })?;
                let dict = &mut self.dicts[i];
                let next = dict.len() as i64;
                let code = *dict.entry(s.to_string()).or_insert(next);
                encode_i64(code, &mut self.buf);
            } else {
                crate::rowcodec::encode_field(fd.ty, v, &fd.name, &mut self.buf)?;
            }
        }
        let mut lenbuf = Vec::new();
        encode_u64(self.buf.len() as u64, &mut lenbuf);
        self.out.write_all(&lenbuf)?;
        self.out.write_all(&self.buf)?;
        self.bytes_written += (lenbuf.len() + self.buf.len()) as u64;
        self.count += 1;
        Ok(())
    }

    /// Write dictionaries + footer; returns (records, bytes, distinct
    /// codes across all fields).
    pub fn finish(mut self) -> Result<(u64, u64, u64)> {
        let mut footer = Vec::new();
        encode_u64(self.count, &mut footer);
        encode_u64(self.blocks.len() as u64, &mut footer);
        for (off, before) in &self.blocks {
            encode_u64(*off, &mut footer);
            encode_u64(*before, &mut footer);
        }
        encode_u64(self.dicts.len() as u64, &mut footer);
        let mut total_codes = 0u64;
        for dict in &self.dicts {
            encode_u64(dict.len() as u64, &mut footer);
            // Persist in code order for deterministic decoding.
            let mut entries: Vec<(&String, &i64)> = dict.iter().collect();
            entries.sort_by_key(|(_, &code)| code);
            for (s, &code) in entries {
                encode_i64(code, &mut footer);
                encode_u64(s.len() as u64, &mut footer);
                footer.extend_from_slice(s.as_bytes());
            }
            total_codes += dict.len() as u64;
        }
        self.out.write_all(&footer)?;
        self.out.write_all(&(footer.len() as u64).to_le_bytes())?;
        self.out.flush()?;
        self.bytes_written += footer.len() as u64 + 8;
        Ok((self.count, self.bytes_written, total_codes))
    }
}

/// One field's persisted dictionary.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    /// code → string, dense.
    pub strings: Vec<String>,
}

impl Dictionary {
    /// Code of `s`, if present.
    pub fn code_of(&self, s: &str) -> Option<i64> {
        self.strings.iter().position(|x| x == s).map(|i| i as i64)
    }

    /// String of `code`, if present.
    pub fn decode(&self, code: i64) -> Option<&str> {
        usize::try_from(code)
            .ok()
            .and_then(|i| self.strings.get(i))
            .map(String::as_str)
    }
}

/// Reads a dictionary-compressed file, yielding records whose compressed
/// fields carry integer codes.
pub struct DictFileReader {
    input: BufReader<File>,
    /// The rewritten schema (compressed `Str` fields become `Long`).
    schema: Arc<Schema>,
    is_dict: Vec<bool>,
    field_types: Vec<FieldType>,
    /// Per-field dictionaries (empty for uncompressed fields).
    dictionaries: Vec<Dictionary>,
    remaining: u64,
    bytes_read: u64,
    buf: Vec<u8>,
    /// Source path and block index, for split planning.
    path: std::path::PathBuf,
    /// Block index: (byte offset, records before).
    pub blocks: Vec<(u64, u64)>,
    /// Total records in the file.
    pub record_count: u64,
}

impl DictFileReader {
    /// Open a dict file.
    pub fn open(path: impl AsRef<Path>) -> Result<DictFileReader> {
        // Footer.
        let mut tail = File::open(path.as_ref())?;
        let file_size = tail.metadata()?.len();
        if file_size < 13 {
            return Err(StorageError::corrupt("dictfile", "too small"));
        }
        tail.seek(SeekFrom::End(-8))?;
        let mut lenbuf = [0u8; 8];
        tail.read_exact(&mut lenbuf)?;
        let footer_len = u64::from_le_bytes(lenbuf);
        if footer_len + 8 > file_size {
            return Err(StorageError::corrupt("dictfile", "bad footer length"));
        }
        tail.seek(SeekFrom::End(-8 - footer_len as i64))?;
        let mut footer = vec![0u8; footer_len as usize];
        tail.read_exact(&mut footer)?;
        let mut pos = 0usize;
        let (record_count, n) = decode_u64(&footer[pos..])?;
        pos += n;
        let (nblocks, n) = decode_u64(&footer[pos..])?;
        pos += n;
        let mut blocks = Vec::with_capacity(nblocks as usize);
        for _ in 0..nblocks {
            let (off, n) = decode_u64(&footer[pos..])?;
            pos += n;
            let (before, n) = decode_u64(&footer[pos..])?;
            pos += n;
            blocks.push((off, before));
        }
        let (nfields, n) = decode_u64(&footer[pos..])?;
        pos += n;
        let mut dictionaries = Vec::with_capacity(nfields as usize);
        for _ in 0..nfields {
            let (ncodes, n) = decode_u64(&footer[pos..])?;
            pos += n;
            let mut strings = Vec::with_capacity(ncodes as usize);
            for expected in 0..ncodes {
                let (code, n) = decode_i64(&footer[pos..])?;
                pos += n;
                if code != expected as i64 {
                    return Err(StorageError::corrupt("dictfile", "non-dense codes"));
                }
                let (len, n) = decode_u64(&footer[pos..])?;
                pos += n;
                let payload = footer
                    .get(pos..pos + len as usize)
                    .ok_or_else(|| StorageError::corrupt("dictfile", "truncated dict"))?;
                let s = std::str::from_utf8(payload)
                    .map_err(|_| StorageError::corrupt("dictfile", "invalid utf-8"))?;
                strings.push(s.to_string());
                pos += len as usize;
            }
            dictionaries.push(Dictionary { strings });
        }

        // Header.
        let mut input = BufReader::new(File::open(path.as_ref())?);
        let mut magic = [0u8; 5];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::corrupt("dictfile", "bad magic"));
        }
        let (header_len, _) = read_varint(&mut input)?;
        if header_len > MAX_ROW_LEN {
            return Err(StorageError::corrupt(
                "dictfile",
                "header implausibly large",
            ));
        }
        let mut header = vec![0u8; header_len as usize];
        input.read_exact(&mut header)?;
        let (orig_schema, used) = decode_schema(&header)?;
        let mut hpos = used;
        let (nflags, n) = decode_u64(&header[hpos..])?;
        hpos += n;
        if nflags as usize != orig_schema.len() {
            return Err(StorageError::corrupt(
                "dictfile",
                "flag count does not match schema",
            ));
        }
        let mut is_dict = Vec::with_capacity(nflags as usize);
        for i in 0..nflags as usize {
            is_dict.push(
                *header
                    .get(hpos + i)
                    .ok_or_else(|| StorageError::corrupt("dictfile", "truncated flags"))?
                    != 0,
            );
        }

        // Rewritten schema: compressed Str → Long.
        let field_types: Vec<FieldType> = orig_schema.fields().iter().map(|f| f.ty).collect();
        let rewritten: Vec<(&str, FieldType)> = orig_schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let ty = if is_dict[i] { FieldType::Long } else { f.ty };
                (f.name.as_str(), ty)
            })
            .collect();
        let schema = Schema::new(format!("{}#dict", orig_schema.name()), rewritten).into_arc();

        if dictionaries.len() != is_dict.len() {
            return Err(StorageError::corrupt(
                "dictfile",
                "dictionary count does not match schema",
            ));
        }
        Ok(DictFileReader {
            input,
            schema,
            is_dict,
            field_types,
            dictionaries,
            remaining: record_count,
            bytes_read: 0,
            buf: Vec::new(),
            path: path.as_ref().to_path_buf(),
            blocks,
            record_count,
        })
    }

    /// Cut the file into at most `n` splits along block boundaries,
    /// returning `(offset, records)` pairs.
    pub fn splits(&self, n: usize) -> Vec<(u64, u64)> {
        if self.record_count == 0 || n == 0 {
            return vec![];
        }
        let per_split = self.record_count.div_ceil(n as u64).max(1);
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < self.blocks.len() {
            let (offset, before) = self.blocks[i];
            let mut j = i + 1;
            while j < self.blocks.len() && self.blocks[j].1 - before < per_split {
                j += 1;
            }
            let end = if j < self.blocks.len() {
                self.blocks[j].1
            } else {
                self.record_count
            };
            out.push((offset, end - before));
            i = j;
        }
        out
    }

    /// A reader positioned at one split (sharing this reader's parsed
    /// dictionaries).
    pub fn read_split(&self, offset: u64, records: u64) -> Result<DictFileReader> {
        use std::io::Seek;
        let mut input = BufReader::new(File::open(&self.path)?);
        input.seek(std::io::SeekFrom::Start(offset))?;
        Ok(DictFileReader {
            input,
            schema: Arc::clone(&self.schema),
            is_dict: self.is_dict.clone(),
            field_types: self.field_types.clone(),
            dictionaries: self.dictionaries.clone(),
            remaining: records,
            bytes_read: 0,
            buf: Vec::new(),
            path: self.path.clone(),
            blocks: self.blocks.clone(),
            record_count: self.record_count,
        })
    }

    /// The rewritten (integer-coded) schema the map function sees.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The dictionary of the named field, if compressed.
    pub fn dictionary(&self, field: &str) -> Option<&Dictionary> {
        let i = self.schema.index_of(field)?;
        if !*self.is_dict.get(i)? {
            return None;
        }
        self.dictionaries.get(i)
    }

    /// Bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    fn read_one(&mut self) -> Result<Option<Record>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let (len, len_bytes) = read_varint(&mut self.input)?;
        if len > MAX_ROW_LEN {
            return Err(StorageError::corrupt(
                "dictfile",
                "row length implausibly large",
            ));
        }
        self.buf.resize(len as usize, 0);
        self.input.read_exact(&mut self.buf)?;
        self.bytes_read += len_bytes as u64 + len;
        self.remaining -= 1;

        let mut pos = 0usize;
        let mut values = Vec::with_capacity(self.schema.len());
        for (i, &ty) in self.field_types.iter().enumerate() {
            if self.is_dict[i] {
                let (code, n) = decode_i64(&self.buf[pos..])?;
                pos += n;
                values.push(Value::Int(code));
            } else {
                let (v, n) = crate::rowcodec::decode_field(ty, &self.buf[pos..])?;
                pos += n;
                values.push(v);
            }
        }
        let record = Record::new(Arc::clone(&self.schema), values)
            .map_err(|e| StorageError::Schema(e.to_string()))?;
        Ok(Some(record))
    }
}

impl Iterator for DictFileReader {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

fn read_varint(input: &mut BufReader<File>) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut n = 0usize;
    loop {
        let mut b = [0u8; 1];
        input.read_exact(&mut b)?;
        n += 1;
        v |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok((v, n));
        }
        shift += 7;
        if shift >= 64 {
            return Err(StorageError::corrupt("varint", "overlong"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::record::record;
    use std::path::PathBuf;

    fn uservisits() -> Arc<Schema> {
        Schema::new(
            "UserVisits",
            vec![
                ("sourceIP", FieldType::Str),
                ("destURL", FieldType::Str),
                ("duration", FieldType::Int),
            ],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-dict-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn codes_preserve_equality() {
        let s = uservisits();
        let path = tmp("equality");
        let urls = ["http://a", "http://b", "http://a", "http://c", "http://b"];
        let mut w = DictFileWriter::create(&path, Arc::clone(&s), &["destURL".into()]).unwrap();
        for (i, u) in urls.iter().enumerate() {
            w.append(&record(
                &s,
                vec![format!("ip{i}").into(), (*u).into(), (i as i64).into()],
            ))
            .unwrap();
        }
        let (n, _, codes) = w.finish().unwrap();
        assert_eq!(n, 5);
        assert_eq!(codes, 3, "three distinct urls");

        let rd = DictFileReader::open(&path).unwrap();
        assert_eq!(
            rd.schema().field("destURL").unwrap().ty,
            FieldType::Long,
            "compressed field becomes an integer"
        );
        let recs: Vec<Record> = rd.map(|r| r.unwrap()).collect();
        let code = |i: usize| recs[i].get("destURL").unwrap().as_int().unwrap();
        assert_eq!(code(0), code(2), "same url, same code");
        assert_eq!(code(1), code(4));
        assert_ne!(code(0), code(1));
        assert_ne!(code(0), code(3));
    }

    #[test]
    fn dictionary_persisted_and_invertible() {
        let s = uservisits();
        let path = tmp("persist");
        let mut w = DictFileWriter::create(&path, Arc::clone(&s), &["destURL".into()]).unwrap();
        for u in ["http://x", "http://y", "http://x"] {
            w.append(&record(&s, vec!["ip".into(), u.into(), 1.into()]))
                .unwrap();
        }
        w.finish().unwrap();
        let rd = DictFileReader::open(&path).unwrap();
        let dict = rd.dictionary("destURL").unwrap();
        assert_eq!(dict.strings.len(), 2);
        assert_eq!(
            dict.decode(dict.code_of("http://y").unwrap()),
            Some("http://y")
        );
        assert_eq!(dict.code_of("http://nope"), None);
        assert!(rd.dictionary("sourceIP").is_none());
        assert!(rd.dictionary("duration").is_none());
    }

    #[test]
    fn compression_shrinks_repetitive_urls() {
        let s = uservisits();
        let plain_path = tmp("plain");
        let dict_path = tmp("dict");
        let records: Vec<Record> = (0..2000)
            .map(|i| {
                record(
                    &s,
                    vec![
                        format!("10.0.0.{}", i % 256).into(),
                        format!("http://popular-site.example.com/very/long/path/{}", i % 10).into(),
                        Value::Int(i),
                    ],
                )
            })
            .collect();
        crate::seqfile::write_seqfile(&plain_path, Arc::clone(&s), records.clone()).unwrap();
        let plain_size = std::fs::metadata(&plain_path).unwrap().len();
        let mut w =
            DictFileWriter::create(&dict_path, Arc::clone(&s), &["destURL".into()]).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        let (_, dict_size, _) = w.finish().unwrap();
        assert!(
            dict_size * 2 < plain_size,
            "dict {dict_size} vs plain {plain_size}"
        );
    }

    #[test]
    fn non_string_dict_field_rejected() {
        let s = uservisits();
        assert!(DictFileWriter::create(tmp("bad"), s.clone(), &["duration".into()]).is_err());
        assert!(DictFileWriter::create(tmp("bad2"), s, &["nope".into()]).is_err());
    }

    #[test]
    fn empty_file() {
        let s = uservisits();
        let path = tmp("empty");
        let w = DictFileWriter::create(&path, Arc::clone(&s), &["destURL".into()]).unwrap();
        w.finish().unwrap();
        assert_eq!(DictFileReader::open(&path).unwrap().count(), 0);
    }

    #[test]
    fn uncompressed_fields_intact() {
        let s = uservisits();
        let path = tmp("intact");
        let mut w = DictFileWriter::create(&path, Arc::clone(&s), &["destURL".into()]).unwrap();
        w.append(&record(
            &s,
            vec!["1.2.3.4".into(), "http://u".into(), 42.into()],
        ))
        .unwrap();
        w.finish().unwrap();
        let recs: Vec<Record> = DictFileReader::open(&path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(recs[0].get("sourceIP").unwrap(), &Value::str("1.2.3.4"));
        assert_eq!(recs[0].get("duration").unwrap(), &Value::Int(42));
    }
}
