//! Delta-compressed sequence files (paper §2.1, App. D Table 5).
//!
//! "Delta-compression efficiently stores runs of numeric values, by only
//! keeping differences between values, instead of the absolute values.
//! Storing just small deltas, when combined with a size-sensitive
//! representation, can yield large storage savings. Standard MapReduce
//! cannot apply this technique: the system must know which bytes are in
//! the same field and are numeric."
//!
//! The header records which fields are delta-encoded; those fields are
//! written as zig-zag varint differences against the previous record's
//! value, all other fields use the normal row codec.
//!
//! Delta state **restarts at block boundaries** (every [`BLOCK`]
//! records the first record is stored with absolute values), and the
//! footer carries a block index — so delta files support input splits
//! just like sequence files, at the cost of one absolute value per
//! block per field.
//!
//! # Example
//!
//! Monotone timestamps shrink to one-byte deltas and read back
//! exactly:
//!
//! ```
//! use std::sync::Arc;
//! use mr_ir::record::record;
//! use mr_ir::schema::{FieldType, Schema};
//! use mr_storage::delta::{DeltaFileReader, DeltaFileWriter};
//!
//! let schema = Schema::new("T", vec![("ts", FieldType::Long)]).into_arc();
//! let path = std::env::temp_dir().join(format!("delta-doc-{}", std::process::id()));
//! let mut w = DeltaFileWriter::create(&path, Arc::clone(&schema), &["ts".into()])?;
//! for i in 0..1000i64 {
//!     w.append(&record(&schema, vec![(1_600_000_000 + i).into()]))?;
//! }
//! let (records, bytes) = w.finish()?;
//! assert_eq!(records, 1000);
//! assert!(bytes < 1000 * 8, "well under the fixed-width encoding");
//!
//! let first = DeltaFileReader::open(&path)?.next().unwrap()?;
//! assert_eq!(first.get("ts").unwrap().as_int(), Some(1_600_000_000));
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), mr_storage::StorageError>(())
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use mr_ir::record::Record;
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;

use crate::error::{Result, StorageError};
use crate::rowcodec::{decode_schema, encode_schema};
use crate::varint::{decode_i64, decode_u64, encode_i64, encode_u64};

const MAGIC: &[u8; 5] = b"MRDL1";

/// Records per delta block; delta state resets at each block boundary
/// so blocks are independently decodable (split points).
pub const BLOCK: u64 = 4096;

/// Upper bound on a single serialized row; beyond this is corruption.
const MAX_ROW_LEN: u64 = 1 << 30;

/// Writes a delta-compressed file.
pub struct DeltaFileWriter {
    out: BufWriter<File>,
    schema: Arc<Schema>,
    /// Per schema field: delta-encoded?
    is_delta: Vec<bool>,
    /// Previous values of delta fields (by field index).
    prev: Vec<i64>,
    count: u64,
    bytes_written: u64,
    buf: Vec<u8>,
    /// Block index: (byte offset, records before block).
    blocks: Vec<(u64, u64)>,
}

impl DeltaFileWriter {
    /// Create the file; `delta_fields` names the integer fields to
    /// delta-encode (the analyzer's [`DeltaDescriptor`] fields).
    ///
    /// [`DeltaDescriptor`]: https://docs.rs/mr-analysis
    pub fn create(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
        delta_fields: &[String],
    ) -> Result<DeltaFileWriter> {
        for name in delta_fields {
            match schema.field(name) {
                None => {
                    return Err(StorageError::Schema(format!(
                        "delta field `{name}` not in schema"
                    )))
                }
                Some(fd) if !matches!(fd.ty, FieldType::Int | FieldType::Long) => {
                    return Err(StorageError::Schema(format!(
                        "delta field `{name}` is not an integer type"
                    )))
                }
                _ => {}
            }
        }
        let is_delta: Vec<bool> = schema
            .fields()
            .iter()
            .map(|f| delta_fields.iter().any(|d| d == &f.name))
            .collect();
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        let mut header = Vec::new();
        encode_schema(&schema, &mut header);
        encode_u64(is_delta.len() as u64, &mut header);
        for &d in &is_delta {
            header.push(d as u8);
        }
        let mut lenbuf = Vec::new();
        encode_u64(header.len() as u64, &mut lenbuf);
        out.write_all(&lenbuf)?;
        out.write_all(&header)?;
        let bytes_written = (5 + lenbuf.len() + header.len()) as u64;
        let nfields = schema.len();
        Ok(DeltaFileWriter {
            out,
            schema,
            is_delta,
            prev: vec![0; nfields],
            count: 0,
            bytes_written,
            buf: Vec::new(),
            blocks: Vec::new(),
        })
    }

    /// Append a record.
    pub fn append(&mut self, record: &Record) -> Result<()> {
        if self.count.is_multiple_of(BLOCK) {
            // Block boundary: record a split point and restart deltas so
            // the block decodes independently.
            self.blocks.push((self.bytes_written, self.count));
            for p in &mut self.prev {
                *p = 0;
            }
        }
        self.buf.clear();
        for (i, (fd, v)) in self.schema.fields().iter().zip(record.values()).enumerate() {
            if self.is_delta[i] {
                let cur = v.as_int().ok_or_else(|| {
                    StorageError::Schema(format!("field `{}` not an int", fd.name))
                })?;
                encode_i64(cur.wrapping_sub(self.prev[i]), &mut self.buf);
                self.prev[i] = cur;
            } else {
                crate::rowcodec::encode_field(fd.ty, v, &fd.name, &mut self.buf)?;
            }
        }
        let mut lenbuf = Vec::new();
        encode_u64(self.buf.len() as u64, &mut lenbuf);
        self.out.write_all(&lenbuf)?;
        self.out.write_all(&self.buf)?;
        self.bytes_written += (lenbuf.len() + self.buf.len()) as u64;
        self.count += 1;
        Ok(())
    }

    /// Flush; returns (records, bytes written).
    pub fn finish(mut self) -> Result<(u64, u64)> {
        let mut footer = Vec::new();
        encode_u64(self.count, &mut footer);
        encode_u64(self.blocks.len() as u64, &mut footer);
        for (off, before) in &self.blocks {
            encode_u64(*off, &mut footer);
            encode_u64(*before, &mut footer);
        }
        self.out.write_all(&footer)?;
        self.out.write_all(&(footer.len() as u64).to_le_bytes())?;
        self.out.flush()?;
        Ok((self.count, self.bytes_written))
    }
}

/// Parsed metadata of a delta file, for split planning.
#[derive(Debug, Clone)]
pub struct DeltaFileMeta {
    path: std::path::PathBuf,
    schema: Arc<Schema>,
    is_delta: Vec<bool>,
    /// Total records.
    pub record_count: u64,
    /// Block index: (byte offset, records before).
    pub blocks: Vec<(u64, u64)>,
}

impl DeltaFileMeta {
    /// Open and parse header and footer.
    pub fn open(path: impl AsRef<Path>) -> Result<DeltaFileMeta> {
        use std::io::{Seek, SeekFrom};

        let path_buf = path.as_ref().to_path_buf();
        // Footer: [varint record_count][block index][footer_len u64 LE].
        let mut tail = File::open(&path_buf)?;
        let file_size = tail.metadata()?.len();
        if file_size < 13 {
            return Err(StorageError::corrupt("deltafile", "too small"));
        }
        tail.seek(SeekFrom::End(-8))?;
        let mut lenbuf = [0u8; 8];
        tail.read_exact(&mut lenbuf)?;
        let footer_len = u64::from_le_bytes(lenbuf);
        if footer_len + 8 > file_size {
            return Err(StorageError::corrupt("deltafile", "bad footer length"));
        }
        tail.seek(SeekFrom::End(-8 - footer_len as i64))?;
        let mut footer = vec![0u8; footer_len as usize];
        tail.read_exact(&mut footer)?;
        let mut fpos = 0usize;
        let (record_count, n) = decode_u64(&footer[fpos..])?;
        fpos += n;
        let (nblocks, n) = decode_u64(&footer[fpos..])?;
        fpos += n;
        let mut blocks = Vec::with_capacity(nblocks as usize);
        for _ in 0..nblocks {
            let (off, n) = decode_u64(&footer[fpos..])?;
            fpos += n;
            let (before, n) = decode_u64(&footer[fpos..])?;
            fpos += n;
            blocks.push((off, before));
        }

        let mut input = BufReader::new(File::open(&path_buf)?);
        let mut magic = [0u8; 5];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::corrupt("deltafile", "bad magic"));
        }
        let (header_len, _n) = read_varint(&mut input)?;
        if header_len > MAX_ROW_LEN {
            return Err(StorageError::corrupt(
                "deltafile",
                "header implausibly large",
            ));
        }
        let mut header = vec![0u8; header_len as usize];
        input.read_exact(&mut header)?;
        let (schema, used) = decode_schema(&header)?;
        let mut pos = used;
        let (nflags, n) = decode_u64(&header[pos..])?;
        pos += n;
        if nflags as usize != schema.len() {
            return Err(StorageError::corrupt(
                "deltafile",
                "flag count does not match schema",
            ));
        }
        let mut is_delta = Vec::with_capacity(nflags as usize);
        for i in 0..nflags as usize {
            is_delta.push(
                *header
                    .get(pos + i)
                    .ok_or_else(|| StorageError::corrupt("deltafile", "truncated flags"))?
                    != 0,
            );
        }
        Ok(DeltaFileMeta {
            path: path_buf,
            schema: Arc::new(schema),
            is_delta,
            record_count,
            blocks,
        })
    }

    /// The record schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Cut the file into at most `n` splits along block boundaries.
    pub fn splits(&self, n: usize) -> Vec<(u64, u64, u64)> {
        // (byte offset, records before, records in split)
        if self.record_count == 0 || n == 0 {
            return vec![];
        }
        let per_split = self.record_count.div_ceil(n as u64).max(1);
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < self.blocks.len() {
            let (offset, before) = self.blocks[i];
            let mut j = i + 1;
            while j < self.blocks.len() && self.blocks[j].1 - before < per_split {
                j += 1;
            }
            let end = if j < self.blocks.len() {
                self.blocks[j].1
            } else {
                self.record_count
            };
            out.push((offset, before, end - before));
            i = j;
        }
        out
    }

    /// Read one split: `(offset, records_before, records)` from
    /// [`DeltaFileMeta::splits`]. `records_before` must be a block
    /// boundary (delta state restarts there).
    pub fn read_split(&self, offset: u64, records: u64) -> Result<DeltaFileReader> {
        use std::io::{Seek, SeekFrom};
        let mut input = BufReader::new(File::open(&self.path)?);
        input.seek(SeekFrom::Start(offset))?;
        Ok(DeltaFileReader {
            input,
            schema: Arc::clone(&self.schema),
            is_delta: self.is_delta.clone(),
            prev: vec![0; self.schema.len()],
            remaining: records,
            produced: 0,
            bytes_read: 0,
            buf: Vec::new(),
        })
    }

    /// Read the whole file.
    pub fn read_all(&self) -> Result<DeltaFileReader> {
        match self.blocks.first() {
            Some(&(offset, _)) => self.read_split(offset, self.record_count),
            None => self.read_split(0, 0), // empty file
        }
    }
}

/// Reads one split of a delta file.
pub struct DeltaFileReader {
    input: BufReader<File>,
    schema: Arc<Schema>,
    is_delta: Vec<bool>,
    prev: Vec<i64>,
    remaining: u64,
    /// Records produced so far in this split (for block-boundary
    /// resets).
    produced: u64,
    bytes_read: u64,
    buf: Vec<u8>,
}

impl DeltaFileReader {
    /// Open a delta file for a full sequential read.
    pub fn open(path: impl AsRef<Path>) -> Result<DeltaFileReader> {
        DeltaFileMeta::open(path)?.read_all()
    }

    /// The record schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    fn read_one(&mut self) -> Result<Option<Record>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.produced.is_multiple_of(BLOCK) {
            // Block boundary: the writer restarted delta state here.
            for p in &mut self.prev {
                *p = 0;
            }
        }
        let (len, len_bytes) = read_varint(&mut self.input)?;
        if len > MAX_ROW_LEN {
            return Err(StorageError::corrupt(
                "deltafile",
                "row length implausibly large",
            ));
        }
        self.buf.resize(len as usize, 0);
        self.input.read_exact(&mut self.buf)?;
        self.bytes_read += len_bytes as u64 + len;
        self.remaining -= 1;
        self.produced += 1;

        let mut pos = 0usize;
        let mut values = Vec::with_capacity(self.schema.len());
        // Clone the field list handle so `self.prev` can be borrowed
        // mutably in the loop.
        let schema = Arc::clone(&self.schema);
        for (i, fd) in schema.fields().iter().enumerate() {
            if self.is_delta[i] {
                let (d, n) = decode_i64(&self.buf[pos..])?;
                pos += n;
                let cur = self.prev[i].wrapping_add(d);
                self.prev[i] = cur;
                values.push(Value::Int(cur));
            } else {
                let (v, n) = crate::rowcodec::decode_field(fd.ty, &self.buf[pos..])?;
                pos += n;
                values.push(v);
            }
        }
        if pos != self.buf.len() {
            return Err(StorageError::corrupt("deltafile", "row length mismatch"));
        }
        let record = Record::new(Arc::clone(&self.schema), values)
            .map_err(|e| StorageError::Schema(e.to_string()))?;
        Ok(Some(record))
    }
}

impl Iterator for DeltaFileReader {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

fn read_varint(input: &mut BufReader<File>) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut n = 0usize;
    loop {
        let mut b = [0u8; 1];
        input.read_exact(&mut b)?;
        n += 1;
        v |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok((v, n));
        }
        shift += 7;
        if shift >= 64 {
            return Err(StorageError::corrupt("varint", "overlong"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::record::record;
    use std::path::PathBuf;

    fn uservisits() -> Arc<Schema> {
        Schema::new(
            "UserVisits",
            vec![
                ("destURL", FieldType::Str),
                ("visitDate", FieldType::Long),
                ("adRevenue", FieldType::Int),
                ("duration", FieldType::Int),
            ],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-delta-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn visits(s: &Arc<Schema>, n: i64) -> Vec<Record> {
        (0..n)
            .map(|i| {
                record(
                    s,
                    vec![
                        format!("http://d/{}", i % 7).into(),
                        Value::Int(1_600_000_000 + i * 60),
                        Value::Int(100 + (i % 5)),
                        Value::Int(30 + (i % 10)),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_with_deltas() {
        let s = uservisits();
        let path = tmp("roundtrip");
        let records = visits(&s, 500);
        let mut w = DeltaFileWriter::create(
            &path,
            Arc::clone(&s),
            &["visitDate".into(), "adRevenue".into(), "duration".into()],
        )
        .unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        let (n, _bytes) = w.finish().unwrap();
        assert_eq!(n, 500);
        let back: Vec<Record> = DeltaFileReader::open(&path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(back, records);
    }

    #[test]
    fn delta_encoding_saves_space_on_monotone_values() {
        let s = Schema::new("T", vec![("ts", FieldType::Long)]).into_arc();
        let records: Vec<Record> = (0..2000)
            .map(|i| record(&s, vec![Value::Int(1_600_000_000_000 + i)]))
            .collect();

        let plain_path = tmp("plain");
        let mut w = DeltaFileWriter::create(&plain_path, Arc::clone(&s), &[]).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        let (_, plain_bytes) = w.finish().unwrap();

        let delta_path = tmp("delta");
        let mut w = DeltaFileWriter::create(&delta_path, Arc::clone(&s), &["ts".into()]).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        let (_, delta_bytes) = w.finish().unwrap();
        assert!(
            delta_bytes * 2 < plain_bytes,
            "delta {delta_bytes} vs plain {plain_bytes}"
        );
    }

    #[test]
    fn negative_deltas_roundtrip() {
        let s = Schema::new("T", vec![("v", FieldType::Int)]).into_arc();
        let values = [100i64, 50, 200, -7, i64::MAX, i64::MIN, 0];
        let path = tmp("neg");
        let mut w = DeltaFileWriter::create(&path, Arc::clone(&s), &["v".into()]).unwrap();
        for &v in &values {
            w.append(&record(&s, vec![Value::Int(v)])).unwrap();
        }
        w.finish().unwrap();
        let back: Vec<i64> = DeltaFileReader::open(&path)
            .unwrap()
            .map(|r| r.unwrap().get("v").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(back, values);
    }

    #[test]
    fn unknown_delta_field_rejected() {
        let s = uservisits();
        assert!(DeltaFileWriter::create(tmp("bad1"), s.clone(), &["nope".into()]).is_err());
        assert!(
            DeltaFileWriter::create(tmp("bad2"), s, &["destURL".into()]).is_err(),
            "string fields cannot delta-encode"
        );
    }

    #[test]
    fn empty_file() {
        let s = uservisits();
        let path = tmp("empty");
        let w = DeltaFileWriter::create(&path, Arc::clone(&s), &["duration".into()]).unwrap();
        w.finish().unwrap();
        assert_eq!(DeltaFileReader::open(&path).unwrap().count(), 0);
    }

    #[test]
    fn bytes_read_tracked() {
        let s = uservisits();
        let path = tmp("bytes");
        let mut w = DeltaFileWriter::create(&path, Arc::clone(&s), &["duration".into()]).unwrap();
        for r in visits(&s, 10) {
            w.append(&r).unwrap();
        }
        w.finish().unwrap();
        let mut rd = DeltaFileReader::open(&path).unwrap();
        while rd.next().is_some() {}
        assert!(rd.bytes_read() > 0);
    }
}

#[cfg(test)]
mod split_tests {
    use super::*;
    use mr_ir::record::record;
    use std::sync::Arc;

    #[test]
    fn splits_cover_all_records_with_correct_values() {
        let s = Schema::new("T", vec![("v", FieldType::Long)]).into_arc();
        let path = std::env::temp_dir()
            .join("mr-delta-tests")
            .join(format!("splits-{}", std::process::id()));
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let n = (BLOCK * 2 + 500) as i64;
        let mut w = DeltaFileWriter::create(&path, Arc::clone(&s), &["v".into()]).unwrap();
        for i in 0..n {
            w.append(&record(&s, vec![Value::Int(1_000_000 + i)]))
                .unwrap();
        }
        w.finish().unwrap();

        let meta = DeltaFileMeta::open(&path).unwrap();
        assert_eq!(meta.record_count, n as u64);
        assert_eq!(meta.blocks.len(), 3);
        for nsplits in [1usize, 2, 3, 5] {
            let splits = meta.splits(nsplits);
            let mut seen = Vec::new();
            for (off, _before, records) in splits {
                for r in meta.read_split(off, records).unwrap() {
                    seen.push(r.unwrap().get("v").unwrap().as_int().unwrap());
                }
            }
            seen.sort_unstable();
            assert_eq!(seen.len(), n as usize, "nsplits={nsplits}");
            assert_eq!(seen[0], 1_000_000);
            assert_eq!(seen[n as usize - 1], 1_000_000 + n - 1);
        }
    }
}
