//! Column-group files — the paper's §2.1 extension to projection.
//!
//! "In the future we could modify Manimal projection to use
//! 'column-groups' that break input data into different smaller files,
//! increasing the number of user programs that could use an index, at
//! the cost of possibly-increased program execution time."
//!
//! A column-group set stores one sequence file per field group
//! (`base.g0`, `base.g1`, …) plus a manifest (`base.cg`) naming the
//! groups. A reader asks for the fields its program uses; only the
//! group files covering those fields are opened and read — so one
//! physical layout serves *every* projection whose fields align with
//! group boundaries, unlike a single projected file that serves exactly
//! one field set.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_ir::record::Record;
use mr_ir::schema::Schema;

use crate::error::{Result, StorageError};
use crate::rowcodec::{decode_schema, encode_schema};
use crate::seqfile::{SeqFileMeta, SeqFileReader, SeqFileWriter};
use crate::varint::{decode_u64, encode_u64};

const MANIFEST_MAGIC: &[u8; 5] = b"MRCG1";

/// Path of group `i` for a base path.
fn group_path(base: &Path, i: usize) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".g{i}"));
    PathBuf::from(name)
}

/// Path of the manifest for a base path.
fn manifest_path(base: &Path) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(".cg");
    PathBuf::from(name)
}

/// Write `records` as a column-group set under `base`. `groups`
/// partitions (a subset of) the schema's fields; fields not mentioned
/// are dropped. Returns the record count.
pub fn write_column_groups(
    base: impl AsRef<Path>,
    schema: &Arc<Schema>,
    groups: &[Vec<String>],
    records: impl IntoIterator<Item = Record>,
) -> Result<u64> {
    let base = base.as_ref();
    if groups.is_empty() {
        return Err(StorageError::Schema("no column groups given".into()));
    }
    // Validate: fields exist and no field appears twice.
    let mut seen: Vec<&str> = Vec::new();
    for g in groups {
        if g.is_empty() {
            return Err(StorageError::Schema("empty column group".into()));
        }
        for f in g {
            if schema.field(f).is_none() {
                return Err(StorageError::Schema(format!("unknown field `{f}`")));
            }
            if seen.contains(&f.as_str()) {
                return Err(StorageError::Schema(format!(
                    "field `{f}` appears in two groups"
                )));
            }
            seen.push(f);
        }
    }

    let group_schemas: Vec<Arc<Schema>> =
        groups.iter().map(|g| Arc::new(schema.project(g))).collect();
    let mut writers: Vec<SeqFileWriter> = group_schemas
        .iter()
        .enumerate()
        .map(|(i, gs)| SeqFileWriter::create(group_path(base, i), Arc::clone(gs)))
        .collect::<Result<_>>()?;

    let mut count = 0u64;
    for rec in records {
        for (w, gs) in writers.iter_mut().zip(&group_schemas) {
            w.append(&rec.project_to(Arc::clone(gs)))?;
        }
        count += 1;
    }
    for w in writers {
        w.finish()?;
    }

    // Manifest: magic, full schema, group count, per group the field
    // list, record count.
    let mut buf = Vec::new();
    buf.extend_from_slice(MANIFEST_MAGIC);
    encode_schema(schema, &mut buf);
    encode_u64(groups.len() as u64, &mut buf);
    for g in groups {
        encode_u64(g.len() as u64, &mut buf);
        for f in g {
            encode_u64(f.len() as u64, &mut buf);
            buf.extend_from_slice(f.as_bytes());
        }
    }
    encode_u64(count, &mut buf);
    std::fs::write(manifest_path(base), buf)?;
    Ok(count)
}

/// An opened column-group set.
pub struct ColumnGroups {
    base: PathBuf,
    /// The original (full) schema.
    pub schema: Arc<Schema>,
    /// Field names per group.
    pub groups: Vec<Vec<String>>,
    /// Total records.
    pub record_count: u64,
}

impl ColumnGroups {
    /// Open a set by its base path.
    pub fn open(base: impl AsRef<Path>) -> Result<ColumnGroups> {
        let base = base.as_ref().to_path_buf();
        let buf = std::fs::read(manifest_path(&base))?;
        if buf.len() < 5 || &buf[..5] != MANIFEST_MAGIC {
            return Err(StorageError::corrupt("colgroups", "bad manifest magic"));
        }
        let mut pos = 5usize;
        let (schema, n) = decode_schema(&buf[pos..])?;
        pos += n;
        let (ngroups, n) = decode_u64(&buf[pos..])?;
        pos += n;
        let mut groups = Vec::with_capacity(ngroups as usize);
        for _ in 0..ngroups {
            let (nfields, n) = decode_u64(&buf[pos..])?;
            pos += n;
            let mut fields = Vec::with_capacity(nfields as usize);
            for _ in 0..nfields {
                let (len, n) = decode_u64(&buf[pos..])?;
                pos += n;
                let bytes = buf
                    .get(pos..pos + len as usize)
                    .ok_or_else(|| StorageError::corrupt("colgroups", "truncated field"))?;
                fields.push(
                    std::str::from_utf8(bytes)
                        .map_err(|_| StorageError::corrupt("colgroups", "bad utf-8"))?
                        .to_string(),
                );
                pos += len as usize;
            }
            groups.push(fields);
        }
        let (record_count, _) = decode_u64(&buf[pos..])?;
        Ok(ColumnGroups {
            base,
            schema: Arc::new(schema),
            groups,
            record_count,
        })
    }

    /// Indices of the groups needed to materialize `fields`; error when
    /// a field is not stored in any group.
    pub fn groups_for(&self, fields: &[String]) -> Result<Vec<usize>> {
        let mut needed = Vec::new();
        for f in fields {
            let g = self
                .groups
                .iter()
                .position(|g| g.contains(f))
                .ok_or_else(|| {
                    StorageError::Schema(format!("field `{f}` not stored in any group"))
                })?;
            if !needed.contains(&g) {
                needed.push(g);
            }
        }
        needed.sort_unstable();
        Ok(needed)
    }

    /// Read records materializing only `fields` (widened to the full
    /// schema with defaults elsewhere). Only the needed group files are
    /// touched; the second return value reports bytes read per group
    /// when iteration finishes.
    pub fn read_fields(&self, fields: &[String]) -> Result<ColumnGroupReader> {
        let needed = self.groups_for(fields)?;
        let mut readers = Vec::with_capacity(needed.len());
        for &g in &needed {
            let meta = SeqFileMeta::open(group_path(&self.base, g))?;
            if meta.record_count != self.record_count {
                return Err(StorageError::corrupt(
                    "colgroups",
                    format!(
                        "group {g} has {} records, manifest says {}",
                        meta.record_count, self.record_count
                    ),
                ));
            }
            readers.push(meta.read_all()?);
        }
        Ok(ColumnGroupReader {
            readers,
            full_schema: Arc::clone(&self.schema),
            remaining: self.record_count,
        })
    }
}

/// Zips the needed group files back into (widened) records.
pub struct ColumnGroupReader {
    readers: Vec<SeqFileReader>,
    full_schema: Arc<Schema>,
    remaining: u64,
}

impl ColumnGroupReader {
    /// Total bytes consumed across the opened group files.
    pub fn bytes_read(&self) -> u64 {
        self.readers.iter().map(SeqFileReader::bytes_read).sum()
    }

    fn read_one(&mut self) -> Result<Option<Record>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut acc: Option<Record> = None;
        for r in &mut self.readers {
            let part = r
                .next()
                .transpose()?
                .ok_or_else(|| StorageError::corrupt("colgroups", "group file short"))?;
            acc = Some(match acc {
                None => part.project_to(Arc::clone(&self.full_schema)),
                Some(base) => merge(base, &part),
            });
        }
        Ok(acc)
    }
}

/// Overlay `part`'s fields onto `base` (which has the full schema).
fn merge(base: Record, part: &Record) -> Record {
    let schema = Arc::clone(base.schema());
    let mut values: Vec<_> = base.values().to_vec();
    for (fd, v) in part.schema().fields().iter().zip(part.values()) {
        if let Some(i) = schema.index_of(&fd.name) {
            values[i] = v.clone();
        }
    }
    Record::new(schema, values).expect("same arity")
}

impl Iterator for ColumnGroupReader {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::record::record;
    use mr_ir::schema::FieldType;
    use mr_ir::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![
                ("url", FieldType::Str),
                ("rank", FieldType::Int),
                ("content", FieldType::Str),
            ],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-colgroups-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn pages(s: &Arc<Schema>, n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                record(
                    s,
                    vec![
                        format!("http://s/{i}").into(),
                        Value::Int(i as i64),
                        "x".repeat(300).into(),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_through_groups() {
        let s = schema();
        let base = tmp("roundtrip");
        let groups = vec![
            vec!["url".to_string(), "rank".to_string()],
            vec!["content".to_string()],
        ];
        let n = write_column_groups(&base, &s, &groups, pages(&s, 100)).unwrap();
        assert_eq!(n, 100);

        let cg = ColumnGroups::open(&base).unwrap();
        assert_eq!(cg.record_count, 100);
        assert_eq!(cg.groups, groups);
        // Reading all fields reassembles the full records.
        let all: Vec<Record> = cg
            .read_fields(&["url".into(), "rank".into(), "content".into()])
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(all.len(), 100);
        assert_eq!(all[7].get("rank").unwrap(), &Value::Int(7));
        assert_eq!(all[7].get("content").unwrap().as_str().unwrap().len(), 300);
    }

    #[test]
    fn partial_read_touches_fewer_bytes() {
        let s = schema();
        let base = tmp("partial");
        let groups = vec![
            vec!["url".to_string(), "rank".to_string()],
            vec!["content".to_string()],
        ];
        write_column_groups(&base, &s, &groups, pages(&s, 200)).unwrap();
        let cg = ColumnGroups::open(&base).unwrap();

        let mut narrow = cg.read_fields(&["rank".into()]).unwrap();
        let mut count = 0;
        for r in narrow.by_ref() {
            let r = r.unwrap();
            // Unread fields default.
            assert_eq!(r.get("content").unwrap(), &Value::str(""));
            count += 1;
        }
        assert_eq!(count, 200);

        let mut wide = cg.read_fields(&["rank".into(), "content".into()]).unwrap();
        while wide.next().is_some() {}
        assert!(
            narrow.bytes_read() * 3 < wide.bytes_read(),
            "narrow {} vs wide {}",
            narrow.bytes_read(),
            wide.bytes_read()
        );
    }

    #[test]
    fn group_selection_logic() {
        let s = schema();
        let base = tmp("select");
        let groups = vec![
            vec!["url".to_string()],
            vec!["rank".to_string()],
            vec!["content".to_string()],
        ];
        write_column_groups(&base, &s, &groups, pages(&s, 10)).unwrap();
        let cg = ColumnGroups::open(&base).unwrap();
        assert_eq!(cg.groups_for(&["rank".into()]).unwrap(), vec![1]);
        assert_eq!(
            cg.groups_for(&["content".into(), "url".into()]).unwrap(),
            vec![0, 2]
        );
        assert!(cg.groups_for(&["nope".into()]).is_err());
    }

    #[test]
    fn validation_errors() {
        let s = schema();
        assert!(write_column_groups(tmp("e1"), &s, &[], pages(&s, 1)).is_err());
        assert!(
            write_column_groups(tmp("e2"), &s, &[vec!["nope".to_string()]], pages(&s, 1)).is_err()
        );
        assert!(write_column_groups(
            tmp("e3"),
            &s,
            &[vec!["url".to_string()], vec!["url".to_string()]],
            pages(&s, 1)
        )
        .is_err());
    }

    #[test]
    fn dropped_fields_are_gone() {
        // A field in no group is simply not stored.
        let s = schema();
        let base = tmp("dropped");
        write_column_groups(&base, &s, &[vec!["rank".to_string()]], pages(&s, 5)).unwrap();
        let cg = ColumnGroups::open(&base).unwrap();
        assert!(cg.read_fields(&["content".into()]).is_err());
    }
}
