//! Sequence files: the baseline on-disk format.
//!
//! A sequence file is what "standard Hadoop" reads in every experiment:
//! a header carrying the record schema ("the code that serializes and
//! deserializes these classes effectively declares the file's schema"),
//! followed by length-prefixed binary rows, followed by a sparse block
//! footer that lets the execution fabric cut the file into input splits
//! without scanning it.
//!
//! Layout (uncompressed, magic `MRSQ1`):
//!
//! ```text
//! magic "MRSQ1"
//! varint header_len, header = encode_schema(schema)
//! [varint row_len, row_bytes]*            ← the data
//! footer: varint n_blocks, n_blocks × (varint offset, varint count)
//!         varint record_count, footer_len u64 LE, magic "MRSQF"
//! ```
//!
//! The block-compressed variant (magic `MRSQ2`) inserts a codec byte
//! after the magic and routes the row stream — only the row stream;
//! header and footer stay raw — through the
//! [`blockcodec`](crate::blockcodec) frame layer. The writer forces a
//! frame boundary at every sparse-index block, so the footer's byte
//! offsets land on frame starts and input splits seek exactly as they
//! do in the uncompressed format. Readers pick the variant from the
//! magic; callers never declare it.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mr_ir::record::Record;
use mr_ir::schema::Schema;

use crate::blockcodec::{BlockReader, BlockWriter, ShuffleCompression};
use crate::error::{Result, StorageError};
use crate::fault::{IoFaults, IoSite};
use crate::rowcodec::{decode_row, decode_schema, encode_row, encode_schema};
use crate::varint::{decode_u64, encode_u64, read_u64_from};

const MAGIC: &[u8; 5] = b"MRSQ1";
const MAGIC_COMPRESSED: &[u8; 5] = b"MRSQ2";
const FOOTER_MAGIC: &[u8; 5] = b"MRSQF";

/// Upper bound on a single serialized row; lengths beyond this are
/// treated as corruption rather than allocated.
const MAX_ROW_LEN: u64 = 1 << 30;

/// Records per sparse-index block (a new split point every `BLOCK`
/// records).
const BLOCK: u64 = 4096;

/// Writes a sequence file.
pub struct SeqFileWriter {
    out: BlockWriter<BufWriter<File>>,
    schema: Arc<Schema>,
    /// Physical offset where the row region starts.
    data_start: u64,
    count: u64,
    blocks: Vec<(u64, u64)>, // (byte offset, records before block)
    row_buf: Vec<u8>,
    finished: bool,
    faults: Option<Arc<IoFaults>>,
}

impl SeqFileWriter {
    /// Create (truncate) `path` and write the header.
    pub fn create(path: impl AsRef<Path>, schema: Arc<Schema>) -> Result<SeqFileWriter> {
        SeqFileWriter::create_with(path, schema, ShuffleCompression::None, None)
    }

    /// [`create`](Self::create), with each appended record counted
    /// against `faults` ([`IoSite::SeqWrite`]).
    pub fn create_with_faults(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<SeqFileWriter> {
        SeqFileWriter::create_with(path, schema, ShuffleCompression::None, faults)
    }

    /// Create `path` with the row stream block-compressed by `codec`
    /// (the `MRSQ2` variant; [`ShuffleCompression::None`] writes the
    /// plain format byte-for-byte).
    pub fn create_with_codec(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
        codec: ShuffleCompression,
    ) -> Result<SeqFileWriter> {
        SeqFileWriter::create_with(path, schema, codec, None)
    }

    /// The general constructor: codec plus fault counting
    /// ([`IoSite::SeqWrite`] per record, [`IoSite::BlockWrite`] per
    /// compressed frame).
    pub fn create_with(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
        codec: ShuffleCompression,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<SeqFileWriter> {
        if codec == ShuffleCompression::DictTrained {
            // The trained columnar layout is a shuffle-run format; a
            // schema-carrying input file has no dictionary to
            // reference, so reject rather than write an unreadable
            // header.
            return Err(StorageError::Schema(
                "seqfiles do not support the dict-trained shuffle codec".into(),
            ));
        }
        let mut file = BufWriter::new(File::create(path)?);
        let compressed = codec != ShuffleCompression::None;
        let mut data_start = MAGIC.len() as u64;
        if compressed {
            file.write_all(MAGIC_COMPRESSED)?;
            file.write_all(&[codec.stream_tag()])?;
            data_start += 1;
        } else {
            file.write_all(MAGIC)?;
        }
        let mut header = Vec::new();
        encode_schema(&schema, &mut header);
        let mut lenbuf = Vec::new();
        encode_u64(header.len() as u64, &mut lenbuf);
        file.write_all(&lenbuf)?;
        file.write_all(&header)?;
        data_start += (lenbuf.len() + header.len()) as u64;
        Ok(SeqFileWriter {
            out: BlockWriter::new(file, codec.codec(), faults.clone()),
            schema,
            data_start,
            count: 0,
            blocks: Vec::new(),
            row_buf: Vec::new(),
            finished: false,
            faults,
        })
    }

    /// The schema being written.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Append one record.
    pub fn append(&mut self, record: &Record) -> Result<()> {
        debug_assert!(!self.finished);
        if let Some(f) = &self.faults {
            f.check(IoSite::SeqWrite)?;
        }
        if self.count.is_multiple_of(BLOCK) {
            // A split point: force a frame boundary so the recorded
            // byte offset is seekable in the compressed variant too
            // (no-op without a codec).
            self.out.flush_block()?;
            self.blocks
                .push((self.data_start + self.out.written_bytes(), self.count));
        }
        self.row_buf.clear();
        encode_row(record, &mut self.row_buf)?;
        let mut lenbuf = Vec::new();
        encode_u64(self.row_buf.len() as u64, &mut lenbuf);
        self.out.write_all(&lenbuf)?;
        self.out.write_all(&self.row_buf)?;
        self.count += 1;
        Ok(())
    }

    /// Write the footer and flush. Returns the total record count.
    pub fn finish(mut self) -> Result<u64> {
        let mut footer = Vec::new();
        encode_u64(self.blocks.len() as u64, &mut footer);
        for (off, before) in &self.blocks {
            encode_u64(*off, &mut footer);
            encode_u64(*before, &mut footer);
        }
        encode_u64(self.count, &mut footer);
        // Close the framed row region; the footer is raw so the reader
        // can find it from the end without decoding anything.
        self.out.flush_block()?;
        let inner = self.out.get_mut();
        // footer_len counts everything before itself, fixed-width so the
        // reader can find it from the end.
        inner.write_all(&footer)?;
        inner.write_all(&(footer.len() as u64).to_le_bytes())?;
        inner.write_all(FOOTER_MAGIC)?;
        inner.flush()?;
        self.finished = true;
        Ok(self.count)
    }
}

/// Metadata of an open sequence file.
#[derive(Debug, Clone)]
pub struct SeqFileMeta {
    /// The file path.
    pub path: PathBuf,
    /// The record schema.
    pub schema: Arc<Schema>,
    /// Total records.
    pub record_count: u64,
    /// Total file size in bytes.
    pub file_size: u64,
    /// Byte offset where rows start.
    pub data_start: u64,
    /// Sparse block index: (byte offset, records before).
    pub blocks: Vec<(u64, u64)>,
    /// Whether the row region is block-compressed (the `MRSQ2`
    /// variant) — split offsets then point at frame starts.
    pub framed: bool,
}

/// One input split: a byte range plus how many records it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Byte offset of the first record.
    pub offset: u64,
    /// Number of records in the split.
    pub records: u64,
}

impl SeqFileMeta {
    /// Open and parse header + footer.
    pub fn open(path: impl AsRef<Path>) -> Result<SeqFileMeta> {
        let path = path.as_ref().to_path_buf();
        let mut f = File::open(&path)?;
        let file_size = f.metadata()?.len();

        let mut magic = [0u8; 5];
        f.read_exact(&mut magic)?;
        let framed = match &magic {
            m if m == MAGIC => false,
            m if m == MAGIC_COMPRESSED => true,
            _ => return Err(StorageError::corrupt("seqfile", "bad magic")),
        };
        let mut header_at = 5u64;
        if framed {
            // Codec byte (informational: each frame names its own).
            let mut codec = [0u8; 1];
            f.read_exact(&mut codec)?;
            header_at += 1;
        }
        // Header length varint: read a small chunk.
        let mut head = vec![0u8; 10.min((file_size - header_at) as usize)];
        f.read_exact(&mut head)?;
        let (header_len, n) = decode_u64(&head)?;
        if header_len > MAX_ROW_LEN {
            return Err(StorageError::corrupt("seqfile", "header implausibly large"));
        }
        f.seek(SeekFrom::Start(header_at + n as u64))?;
        let mut header = vec![0u8; header_len as usize];
        f.read_exact(&mut header)?;
        let (schema, _) = decode_schema(&header)?;
        let data_start = header_at + n as u64 + header_len;

        // Footer: fixed 8-byte length + 5-byte magic at the very end.
        if file_size < data_start + 13 {
            return Err(StorageError::corrupt("seqfile", "missing footer"));
        }
        f.seek(SeekFrom::End(-13))?;
        let mut tail = [0u8; 13];
        f.read_exact(&mut tail)?;
        if &tail[8..] != FOOTER_MAGIC {
            return Err(StorageError::corrupt("seqfile", "bad footer magic"));
        }
        let footer_len = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
        f.seek(SeekFrom::End(-13 - footer_len as i64))?;
        let mut footer = vec![0u8; footer_len as usize];
        f.read_exact(&mut footer)?;

        let mut pos = 0usize;
        let (n_blocks, n) = decode_u64(&footer[pos..])?;
        pos += n;
        let mut blocks = Vec::with_capacity(n_blocks as usize);
        for _ in 0..n_blocks {
            let (off, n) = decode_u64(&footer[pos..])?;
            pos += n;
            let (before, n) = decode_u64(&footer[pos..])?;
            pos += n;
            blocks.push((off, before));
        }
        let (record_count, _) = decode_u64(&footer[pos..])?;

        Ok(SeqFileMeta {
            path,
            schema: Arc::new(schema),
            record_count,
            file_size,
            data_start,
            blocks,
            framed,
        })
    }

    /// Cut the file into at most `n` splits along block boundaries.
    pub fn splits(&self, n: usize) -> Vec<Split> {
        if self.record_count == 0 || n == 0 {
            return vec![];
        }
        let per_split = self.record_count.div_ceil(n as u64).max(1);
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < self.blocks.len() {
            let (offset, before) = self.blocks[i];
            // Advance until this split holds >= per_split records.
            let mut j = i + 1;
            while j < self.blocks.len() && self.blocks[j].1 - before < per_split {
                j += 1;
            }
            let end_records = if j < self.blocks.len() {
                self.blocks[j].1
            } else {
                self.record_count
            };
            out.push(Split {
                offset,
                records: end_records - before,
            });
            i = j;
        }
        out
    }

    /// Read records starting at `split`.
    pub fn read_split(&self, split: &Split) -> Result<SeqFileReader> {
        self.read_split_with_faults(split, None)
    }

    /// [`read_split`](Self::read_split), with each record read counted
    /// against `faults` ([`IoSite::SeqRead`]).
    pub fn read_split_with_faults(
        &self,
        split: &Split,
        faults: Option<Arc<IoFaults>>,
    ) -> Result<SeqFileReader> {
        let mut f = BufReader::new(File::open(&self.path)?);
        f.seek(SeekFrom::Start(split.offset))?;
        Ok(SeqFileReader {
            input: BlockReader::new(f, self.framed, faults.clone()),
            schema: Arc::clone(&self.schema),
            remaining: split.records,
            bytes_read: 0,
            buf: Vec::new(),
            faults,
        })
    }

    /// Read the whole file.
    pub fn read_all(&self) -> Result<SeqFileReader> {
        self.read_split(&Split {
            offset: self.data_start,
            records: self.record_count,
        })
    }
}

/// Iterates the records of one split.
pub struct SeqFileReader {
    input: BlockReader<BufReader<File>>,
    schema: Arc<Schema>,
    remaining: u64,
    bytes_read: u64,
    buf: Vec<u8>,
    faults: Option<Arc<IoFaults>>,
}

impl SeqFileReader {
    /// Bytes consumed so far (row payloads + length prefixes).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// The schema of produced records.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn read_one(&mut self) -> Result<Option<Record>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if let Some(f) = &self.faults {
            f.check(IoSite::SeqRead)?;
        }
        // Row length varint, byte at a time. `remaining > 0` promises a
        // row, so a clean EOF here is truncation.
        let (len, len_bytes) = read_u64_from(&mut self.input)?
            .ok_or_else(|| StorageError::corrupt("seqfile", "split ends mid-stream"))?;
        if len > MAX_ROW_LEN {
            return Err(StorageError::corrupt(
                "seqfile",
                "row length implausibly large",
            ));
        }
        self.buf.resize(len as usize, 0);
        self.input.read_exact(&mut self.buf)?;
        self.bytes_read += len_bytes + len;
        self.remaining -= 1;
        let (record, used) = decode_row(&self.schema, &self.buf)?;
        if used != self.buf.len() {
            return Err(StorageError::corrupt("seqfile", "row length mismatch"));
        }
        Ok(Some(record))
    }
}

impl Iterator for SeqFileReader {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

/// Convenience: write `records` to `path` and return the count.
pub fn write_seqfile(
    path: impl AsRef<Path>,
    schema: Arc<Schema>,
    records: impl IntoIterator<Item = Record>,
) -> Result<u64> {
    write_seqfile_with(path, schema, ShuffleCompression::None, records)
}

/// [`write_seqfile`] with the row stream block-compressed by `codec`.
pub fn write_seqfile_with(
    path: impl AsRef<Path>,
    schema: Arc<Schema>,
    codec: ShuffleCompression,
    records: impl IntoIterator<Item = Record>,
) -> Result<u64> {
    let mut w = SeqFileWriter::create_with_codec(path, schema, codec)?;
    for r in records {
        w.append(&r)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::record::record;
    use mr_ir::schema::FieldType;
    use mr_ir::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::new(
            "WebPage",
            vec![("url", FieldType::Str), ("rank", FieldType::Int)],
        )
        .into_arc()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn make_records(s: &Arc<Schema>, n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                record(
                    s,
                    vec![format!("http://site/{i}").into(), Value::Int(i as i64)],
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_small() {
        let s = schema();
        let path = tmp("roundtrip");
        let records = make_records(&s, 100);
        let n = write_seqfile(&path, Arc::clone(&s), records.clone()).unwrap();
        assert_eq!(n, 100);

        let meta = SeqFileMeta::open(&path).unwrap();
        assert_eq!(meta.record_count, 100);
        assert_eq!(meta.schema.name(), "WebPage");
        let back: Vec<Record> = meta.read_all().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_file_roundtrip() {
        let s = schema();
        let path = tmp("empty");
        write_seqfile(&path, Arc::clone(&s), vec![]).unwrap();
        let meta = SeqFileMeta::open(&path).unwrap();
        assert_eq!(meta.record_count, 0);
        assert_eq!(meta.read_all().unwrap().count(), 0);
        assert!(meta.splits(4).is_empty());
    }

    #[test]
    fn splits_cover_all_records_exactly_once() {
        let s = schema();
        let path = tmp("splits");
        // Enough records to span several sparse-index blocks.
        let n = (super::BLOCK * 3 + 100) as usize;
        write_seqfile(&path, Arc::clone(&s), make_records(&s, n)).unwrap();
        let meta = SeqFileMeta::open(&path).unwrap();
        for nsplits in [1usize, 2, 3, 7] {
            let splits = meta.splits(nsplits);
            let total: u64 = splits.iter().map(|sp| sp.records).sum();
            assert_eq!(total, n as u64, "nsplits={nsplits}");
            // Read each split and check global coverage.
            let mut seen = Vec::new();
            for sp in &splits {
                for r in meta.read_split(sp).unwrap() {
                    let r = r.unwrap();
                    seen.push(r.get("rank").unwrap().as_int().unwrap());
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..n as i64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn compressed_roundtrip_every_codec() {
        let s = schema();
        let records = make_records(&s, 500);
        for codec in ShuffleCompression::ALL {
            let path = tmp(&format!("comp-roundtrip-{codec}"));
            if codec == ShuffleCompression::DictTrained {
                // A shuffle-run-only codec: seqfiles reject it, typed.
                let err = write_seqfile_with(&path, Arc::clone(&s), codec, records.clone())
                    .expect_err("seqfile must reject dict-trained");
                assert!(matches!(err, StorageError::Schema(_)), "{err}");
                continue;
            }
            let n = write_seqfile_with(&path, Arc::clone(&s), codec, records.clone()).unwrap();
            assert_eq!(n, 500);
            let meta = SeqFileMeta::open(&path).unwrap();
            assert_eq!(meta.framed, codec != ShuffleCompression::None, "{codec}");
            assert_eq!(meta.record_count, 500);
            let back: Vec<Record> = meta.read_all().unwrap().map(|r| r.unwrap()).collect();
            assert_eq!(back, records, "{codec}");
        }
    }

    #[test]
    fn compressed_splits_seek_to_frame_boundaries() {
        let s = schema();
        let n = (super::BLOCK * 3 + 77) as usize;
        let records = make_records(&s, n);
        for codec in [ShuffleCompression::Dict, ShuffleCompression::Delta] {
            let path = tmp(&format!("comp-splits-{codec}"));
            write_seqfile_with(&path, Arc::clone(&s), codec, records.clone()).unwrap();
            let meta = SeqFileMeta::open(&path).unwrap();
            assert_eq!(meta.blocks.len(), 4, "{codec}");
            for nsplits in [1usize, 2, 4, 7] {
                let splits = meta.splits(nsplits);
                let mut seen = Vec::new();
                for sp in &splits {
                    for r in meta.read_split(sp).unwrap() {
                        seen.push(r.unwrap().get("rank").unwrap().as_int().unwrap());
                    }
                }
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    (0..n as i64).collect::<Vec<_>>(),
                    "{codec} nsplits={nsplits}"
                );
            }
        }
    }

    #[test]
    fn compression_shrinks_repetitive_rows() {
        let s = schema();
        // Low-cardinality URLs: exactly the redundancy dict exploits.
        let records: Vec<Record> = (0..5000)
            .map(|i| {
                record(
                    &s,
                    vec![
                        format!("http://popular.example.com/{}", i % 8).into(),
                        Value::Int(i % 16),
                    ],
                )
            })
            .collect();
        let plain_path = tmp("comp-shrink-plain");
        let dict_path = tmp("comp-shrink-dict");
        write_seqfile(&plain_path, Arc::clone(&s), records.clone()).unwrap();
        write_seqfile_with(
            &dict_path,
            Arc::clone(&s),
            ShuffleCompression::Dict,
            records,
        )
        .unwrap();
        let plain = std::fs::metadata(&plain_path).unwrap().len();
        let dict = std::fs::metadata(&dict_path).unwrap().len();
        assert!(dict * 3 < plain, "dict {dict} vs plain {plain}");
    }

    #[test]
    fn bytes_read_accounted() {
        let s = schema();
        let path = tmp("bytes");
        write_seqfile(&path, Arc::clone(&s), make_records(&s, 50)).unwrap();
        let meta = SeqFileMeta::open(&path).unwrap();
        let mut rd = meta.read_all().unwrap();
        while rd.next().is_some() {}
        assert!(rd.bytes_read() > 0);
        assert!(rd.bytes_read() < meta.file_size);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTAMAGICFILE____________").unwrap();
        assert!(SeqFileMeta::open(&path).is_err());
    }

    #[test]
    fn truncated_footer_rejected() {
        let s = schema();
        let path = tmp("trunc");
        write_seqfile(&path, Arc::clone(&s), make_records(&s, 10)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(SeqFileMeta::open(&path).is_err());
    }

    #[test]
    fn opaque_schema_preserved() {
        let s = Arc::new(Schema::new("AbstractTuple", vec![("rank", FieldType::Int)]).opaque());
        let path = tmp("opaque");
        let r = record(&s, vec![1.into()]);
        write_seqfile(&path, Arc::clone(&s), vec![r]).unwrap();
        let meta = SeqFileMeta::open(&path).unwrap();
        assert!(meta.schema.is_opaque());
    }
}
