//! Deterministic IO fault injection for the run/seq readers and
//! writers.
//!
//! The execution fabric's fault-tolerance tests need storage failures
//! that are *exactly reproducible*: "the 3rd run-file read fails" must
//! mean the same thing on every execution of the same schedule. An
//! [`IoFaults`] handle carries, per [`IoSite`], the set of operation
//! ordinals that must fail; readers and writers constructed with the
//! handle call [`IoFaults::check`] once per operation (one record read,
//! one pair appended), which counts the operation and returns an
//! injected [`std::io::Error`] when its ordinal is armed. Ordinals are
//! counted per site across every reader/writer sharing the handle, and
//! each armed ordinal fires exactly once — the counter passes it once —
//! so a retry of the failed work proceeds past the fault, which is what
//! makes injected faults *transient* the way real-world IO hiccups are.
//!
//! Determinism caveat: with several threads driving the same site
//! concurrently, which thread draws the armed ordinal depends on
//! scheduling. Schedules meant to be bit-reproducible should either
//! run single-threaded or arm ordinal 0 (whoever is first, the same
//! amount of total work fails).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where an IO fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoSite {
    /// Reading one pair from a shuffle run file.
    RunRead,
    /// Appending one pair to a shuffle run file.
    RunWrite,
    /// Reading one record from a sequence file.
    SeqRead,
    /// Appending one record to a sequence file.
    SeqWrite,
    /// Decoding one compressed block frame from a block-framed stream
    /// (fires only when a shuffle codec is active).
    BlockRead,
    /// Emitting one compressed block frame into a block-framed stream.
    BlockWrite,
}

impl IoSite {
    fn index(self) -> usize {
        match self {
            IoSite::RunRead => 0,
            IoSite::RunWrite => 1,
            IoSite::SeqRead => 2,
            IoSite::SeqWrite => 3,
            IoSite::BlockRead => 4,
            IoSite::BlockWrite => 5,
        }
    }

    /// The site's spec name (`run-read`, `run-write`, `seq-read`,
    /// `seq-write`, `block-read`, `block-write`).
    pub fn name(self) -> &'static str {
        match self {
            IoSite::RunRead => "run-read",
            IoSite::RunWrite => "run-write",
            IoSite::SeqRead => "seq-read",
            IoSite::SeqWrite => "seq-write",
            IoSite::BlockRead => "block-read",
            IoSite::BlockWrite => "block-write",
        }
    }

    /// Parse a spec name back into a site.
    pub fn parse(name: &str) -> Option<IoSite> {
        match name {
            "run-read" => Some(IoSite::RunRead),
            "run-write" => Some(IoSite::RunWrite),
            "seq-read" => Some(IoSite::SeqRead),
            "seq-write" => Some(IoSite::SeqWrite),
            "block-read" => Some(IoSite::BlockRead),
            "block-write" => Some(IoSite::BlockWrite),
            _ => None,
        }
    }
}

/// A shared, deterministic IO fault injector.
///
/// Construct one per job run ([`IoFaults::from_triggers`]) so the
/// operation counters start from zero and the same schedule describes
/// the same failure every run.
#[derive(Debug, Default)]
pub struct IoFaults {
    ops: [AtomicU64; 6],
    triggers: [Vec<u64>; 6],
}

impl IoFaults {
    /// An injector with nothing armed.
    pub fn new() -> IoFaults {
        IoFaults::default()
    }

    /// Build an injector from `(site, ordinal)` triggers, counters at
    /// zero.
    pub fn from_triggers(triggers: &[(IoSite, u64)]) -> IoFaults {
        let mut faults = IoFaults::new();
        for &(site, op) in triggers {
            faults.arm(site, op);
        }
        faults
    }

    /// Arm operation `op` (0-based, per site) to fail.
    pub fn arm(&mut self, site: IoSite, op: u64) {
        self.triggers[site.index()].push(op);
    }

    /// Builder form of [`arm`](Self::arm).
    pub fn with_fault(mut self, site: IoSite, op: u64) -> IoFaults {
        self.arm(site, op);
        self
    }

    /// Operations seen at `site` so far.
    pub fn ops_seen(&self, site: IoSite) -> u64 {
        self.ops[site.index()].load(Ordering::Relaxed)
    }

    /// Count one operation at `site`; return the injected error when
    /// this ordinal is armed. Each armed ordinal fires exactly once.
    pub fn check(&self, site: IoSite) -> io::Result<()> {
        let i = site.index();
        let op = self.ops[i].fetch_add(1, Ordering::Relaxed);
        if self.triggers[i].contains(&op) {
            return Err(io::Error::other(format!(
                "injected {} fault at op {op}",
                site.name()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_ordinal_fires_exactly_once() {
        let faults = IoFaults::new().with_fault(IoSite::RunRead, 2);
        assert!(faults.check(IoSite::RunRead).is_ok()); // op 0
        assert!(faults.check(IoSite::RunRead).is_ok()); // op 1
        assert!(faults.check(IoSite::RunRead).is_err()); // op 2 fires
        assert!(faults.check(IoSite::RunRead).is_ok()); // op 3: disarmed
        assert_eq!(faults.ops_seen(IoSite::RunRead), 4);
    }

    #[test]
    fn sites_count_independently() {
        let faults = IoFaults::from_triggers(&[(IoSite::SeqRead, 0), (IoSite::RunWrite, 1)]);
        assert!(faults.check(IoSite::RunWrite).is_ok());
        assert!(faults.check(IoSite::SeqRead).is_err());
        assert!(faults.check(IoSite::RunWrite).is_err());
        assert_eq!(faults.ops_seen(IoSite::SeqWrite), 0);
    }

    #[test]
    fn site_names_round_trip() {
        for site in [
            IoSite::RunRead,
            IoSite::RunWrite,
            IoSite::SeqRead,
            IoSite::SeqWrite,
            IoSite::BlockRead,
            IoSite::BlockWrite,
        ] {
            assert_eq!(IoSite::parse(site.name()), Some(site));
        }
        assert_eq!(IoSite::parse("disk-on-fire"), None);
    }
}
