//! Trained shared LZW dictionaries for the shuffle codec.
//!
//! The per-frame dictionary codec ([`DictBlock`](crate::blockcodec))
//! starts every 32 KiB frame from an empty table, so the many small
//! frames a spill produces each re-learn the same byte strings from
//! scratch. This module implements the paper's analyze→optimize→reuse
//! discipline at the codec level: **train once per corpus, reuse
//! everywhere**. A [`DictTrainer`] samples the first spill's encoded
//! pairs and builds a shared *seed* dictionary; every later frame —
//! across spills, compaction rewrites, merges, task retries, and
//! process-backend workers — starts its LZW state from that seed and
//! keeps learning privately above it.
//!
//! Identity is content-based, twice over:
//!
//! * the **corpus hash** fingerprints the sampled training bytes; it is
//!   the deduplication key for the persistent dictionary store (two
//!   jobs over identical data train zero new dictionaries);
//! * the **dictionary hash** fingerprints the trained entries
//!   themselves; run files reference it in their header, and a reader
//!   that resolves a dictionary with a different hash reports typed
//!   [`StorageError::Corrupt`] — never silent garbage.
//!
//! On disk a dictionary is a tiny self-checking artifact:
//!
//! ```text
//! magic "MRTD1"
//! corpus_hash u64 LE
//! varint n_entries
//! n_entries × [varint prefix_code][byte u8]   ← codes 256..256+n
//! crc32(everything after magic) u32 LE
//! ```
//!
//! Within a job the committed copy lives at `shuffle.dict` in the job's
//! spill directory, committed **first-trainer-wins** via an atomic
//! hard-link (the same commit discipline task attempts use), so retries
//! and speculative attempts converge on one dictionary without
//! coordination. Readers resolve a header hash through a process-wide
//! registry first, then the run file's directory and its parent — no
//! job configuration needed, which is what keeps merge, compaction, and
//! process-backend workers config-free.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::{Result, StorageError};
use crate::varint::{decode_u64, encode_u64};

/// Magic bytes of the on-disk dictionary artifact.
const MAGIC: &[u8; 5] = b"MRTD1";

/// File name of the per-job committed dictionary, placed in the job's
/// spill directory next to (or one level above) its run files.
pub const DICT_FILE_NAME: &str = "shuffle.dict";

/// Largest seed the trainer emits. 12 288 entries keeps every seed
/// code ≤ 12 543 — a 14-bit packed code — and leaves the rest of the
/// 16-bit code space for per-frame learning.
const SEED_MAX_ENTRIES: usize = 12 * 1024;

/// Default cap on the bytes a trainer retains for the learning pass.
/// The corpus hash still covers everything observed.
pub const DEFAULT_SAMPLE_CAP: usize = 256 * 1024;

/// Codes the codec may assign (shared with the untrained dict codec);
/// the seed occupies 256..256+n, per-frame learning continues above.
const DICT_MAX_CODES: u32 = 1 << 16;

/// Bits needed for any code the encoder may emit while its next free
/// code is `next`: emitted codes are always `< next` (the KwKwK code a
/// decoder sees equals *its* limit, one behind the encoder), so the
/// width spans `next - 1`. Both sides track `next` in lockstep, which
/// keeps every code readable at the exact width it was written.
fn code_width(next: u32) -> u32 {
    32 - (next - 1).leading_zeros()
}

/// Little-endian bit accumulator for variable-width LZW codes.
#[derive(Default)]
struct BitPacker {
    acc: u64,
    nbits: u32,
}

impl BitPacker {
    fn push(&mut self, code: u32, width: u32, out: &mut Vec<u8>) {
        self.acc |= (code as u64) << self.nbits;
        self.nbits += width;
        while self.nbits >= 8 {
            out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flush the final partial byte (zero-padded high bits).
    fn finish(self, out: &mut Vec<u8>) {
        if self.nbits > 0 {
            out.push(self.acc as u8);
        }
    }
}

/// Mirror of [`BitPacker`] for the decoder.
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> BitReader<'a> {
        BitReader {
            buf,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn read(&mut self, width: u32) -> Option<u32> {
        while self.nbits < width {
            let b = *self.buf.get(self.pos)?;
            self.pos += 1;
            self.acc |= (b as u64) << self.nbits;
            self.nbits += 8;
        }
        let code = (self.acc & ((1u64 << width) - 1)) as u32;
        self.acc >>= width;
        self.nbits -= width;
        Some(code)
    }

    /// True once every input byte is consumed and the bits left in the
    /// accumulator are all padding zeros.
    fn drained(&self) -> bool {
        self.pos == self.buf.len() && self.acc == 0
    }
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a 64-bit state.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Samples a training corpus and builds a [`TrainedDict`].
///
/// # Example
///
/// ```
/// use mr_storage::trained::DictTrainer;
///
/// let mut t = DictTrainer::new();
/// t.observe(b"10.0.0.1\t1\n");
/// t.observe(b"10.0.0.2\t1\n");
/// let dict = t.train();
/// let mut comp = Vec::new();
/// dict.compress(b"10.0.0.1\t1\n10.0.0.2\t1\n", &mut comp);
/// let mut back = Vec::new();
/// dict.decompress(&comp, 22, &mut back)?;
/// assert_eq!(back, b"10.0.0.1\t1\n10.0.0.2\t1\n");
/// # Ok::<(), mr_storage::StorageError>(())
/// ```
#[derive(Debug)]
pub struct DictTrainer {
    sample: Vec<u8>,
    cap: usize,
    hash: u64,
}

impl Default for DictTrainer {
    fn default() -> Self {
        DictTrainer::new()
    }
}

impl DictTrainer {
    /// A trainer with the default sample cap
    /// ([`DEFAULT_SAMPLE_CAP`]).
    pub fn new() -> DictTrainer {
        DictTrainer::with_sample_cap(DEFAULT_SAMPLE_CAP)
    }

    /// A trainer that retains at most `cap` bytes for the learning
    /// pass. The corpus hash always covers every observed byte, so the
    /// cap changes what is learned, never what is identified.
    pub fn with_sample_cap(cap: usize) -> DictTrainer {
        DictTrainer {
            sample: Vec::new(),
            cap: cap.max(1),
            hash: FNV_OFFSET,
        }
    }

    /// Feed one block of corpus bytes to the trainer.
    pub fn observe(&mut self, bytes: &[u8]) {
        self.hash = fnv1a(self.hash, bytes);
        let room = self.cap.saturating_sub(self.sample.len());
        if room > 0 {
            self.sample
                .extend_from_slice(&bytes[..bytes.len().min(room)]);
        }
    }

    /// FNV-1a hash of every byte observed so far — the store
    /// deduplication key.
    pub fn corpus_hash(&self) -> u64 {
        self.hash
    }

    /// Run the learning passes over the retained sample and freeze the
    /// resulting seed dictionary. Deterministic: same observed bytes ⇒
    /// same dictionary (and hashes).
    ///
    /// Training is two-staged. First, several LZW learning passes over
    /// the sample build a *working* table far past the seed cap — later
    /// passes extend the entries of earlier ones, so a string repeated
    /// across the corpus compounds into one long entry instead of
    /// growing one byte per occurrence. Then a scoring pass
    /// greedy-encodes the sample against the working table and credits
    /// each entry with the bytes it actually saves; only the
    /// highest-value entries (with their prefix chains — the seed must
    /// stay prefix-closed) survive into the capped seed. A single
    /// capped pass would instead fill the seed with whatever short
    /// fragments the first few kilobytes happened to produce.
    pub fn train(&self) -> TrainedDict {
        const LEARN_PASSES: usize = 3;
        const WORK_MAX_ENTRIES: usize = 8 * SEED_MAX_ENTRIES;
        let mut table: HashMap<(u32, u8), u32> = HashMap::new();
        let mut entries: Vec<(u32, u8)> = Vec::new();
        for _ in 0..LEARN_PASSES {
            let mut bytes = self.sample.iter();
            let Some(&first) = bytes.next() else { break };
            let mut cur = first as u32;
            let before = entries.len();
            for &b in bytes {
                match table.get(&(cur, b)) {
                    Some(&code) => cur = code,
                    None => {
                        if entries.len() < WORK_MAX_ENTRIES {
                            table.insert((cur, b), 256 + entries.len() as u32);
                            entries.push((cur, b));
                        }
                        cur = b as u32;
                    }
                }
            }
            if entries.len() == before {
                break;
            }
        }

        // Expansion length of each working entry (prefixes always
        // reference earlier codes, so one forward pass suffices).
        let mut len = vec![0usize; entries.len()];
        for (i, &(p, _)) in entries.iter().enumerate() {
            len[i] = if p < 256 {
                2
            } else {
                len[(p - 256) as usize] + 1
            };
        }

        // Scoring pass: greedy-encode the sample with the full working
        // table (no private learning) and credit every emitted entry
        // with the bytes it replaces beyond its ~2-byte code.
        let mut saved = vec![0i64; entries.len()];
        let credit = |code: u32, saved: &mut Vec<i64>| {
            if code >= 256 {
                let i = (code - 256) as usize;
                saved[i] += len[i] as i64 - 2;
            }
        };
        let mut bytes = self.sample.iter();
        if let Some(&first) = bytes.next() {
            let mut cur = first as u32;
            for &b in bytes {
                match table.get(&(cur, b)) {
                    Some(&code) => cur = code,
                    None => {
                        credit(cur, &mut saved);
                        cur = b as u32;
                    }
                }
            }
            credit(cur, &mut saved);
        }

        // Keep the best entries, pulling in each survivor's unkept
        // prefix chain, until the seed cap. Ties break on working-table
        // order so training stays deterministic.
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(saved[i]), i));
        let mut keep = vec![false; entries.len()];
        let mut kept = 0usize;
        let mut chain = Vec::new();
        for i in order {
            if saved[i] <= 0 || kept == SEED_MAX_ENTRIES {
                break;
            }
            chain.clear();
            let mut j = i;
            loop {
                if keep[j] {
                    break;
                }
                chain.push(j);
                let p = entries[j].0;
                if p < 256 {
                    break;
                }
                j = (p - 256) as usize;
            }
            if kept + chain.len() > SEED_MAX_ENTRIES {
                continue;
            }
            for &c in &chain {
                keep[c] = true;
            }
            kept += chain.len();
        }

        // Renumber survivors in working-table order: prefixes stay
        // strictly earlier than their extensions, so the pruned seed is
        // prefix-closed by construction like the working table was.
        let mut remap = vec![u32::MAX; entries.len()];
        let mut pruned = Vec::with_capacity(kept);
        for (i, &(p, b)) in entries.iter().enumerate() {
            if keep[i] {
                let np = if p < 256 {
                    p
                } else {
                    remap[(p - 256) as usize]
                };
                remap[i] = 256 + pruned.len() as u32;
                pruned.push((np, b));
            }
        }
        TrainedDict::from_parts(pruned, self.hash)
    }
}

/// A frozen shared seed dictionary: the LZW entries every frame starts
/// from, plus the content hashes that identify it.
#[derive(Debug)]
pub struct TrainedDict {
    /// Seed entry `i` defines code `256 + i` as
    /// `expand(prefix) ++ [byte]`. Prefixes always reference earlier
    /// codes, so the seed is prefix-closed by construction.
    entries: Vec<(u32, u8)>,
    /// Reverse lookup for the encoder, built once.
    seed: HashMap<(u32, u8), u32>,
    corpus_hash: u64,
    dict_hash: u64,
}

impl TrainedDict {
    fn from_parts(entries: Vec<(u32, u8)>, corpus_hash: u64) -> TrainedDict {
        let mut entry_bytes = Vec::with_capacity(3 * entries.len() + 4);
        encode_entries(&entries, &mut entry_bytes);
        let dict_hash = fnv1a(FNV_OFFSET, &entry_bytes);
        let seed = entries
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, 256 + i as u32))
            .collect();
        TrainedDict {
            entries,
            seed,
            corpus_hash,
            dict_hash,
        }
    }

    /// A dictionary trained on nothing: plain LZW. Lets an empty job
    /// keep the trained layout without a special case.
    pub fn empty() -> TrainedDict {
        DictTrainer::new().train()
    }

    /// Number of seed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the seed holds no entries (untrained).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hash of the training corpus (store deduplication key).
    pub fn corpus_hash(&self) -> u64 {
        self.corpus_hash
    }

    /// Hash of the trained entries (the identity run headers record).
    pub fn dict_hash(&self) -> u64 {
        self.dict_hash
    }

    /// LZW-compress `raw` into `out` (append), starting from the seed
    /// table. Codes are bit-packed little-endian at the narrowest
    /// width that spans the current code space (classic variable-width
    /// LZW), so a ~12k-entry seed costs 14 bits per code where a
    /// varint would spend 16. Per-frame learning continues above the
    /// seed exactly like the untrained codec, so frames stay
    /// independently decodable given the same seed.
    pub fn compress(&self, raw: &[u8], out: &mut Vec<u8>) {
        let mut learned: HashMap<(u32, u8), u32> = HashMap::new();
        let mut next = 256 + self.entries.len() as u32;
        let mut packer = BitPacker::default();
        let mut bytes = raw.iter();
        let Some(&first) = bytes.next() else { return };
        let mut cur = first as u32;
        for &b in bytes {
            let hit = self.seed.get(&(cur, b)).or_else(|| learned.get(&(cur, b)));
            match hit {
                Some(&code) => cur = code,
                None => {
                    packer.push(cur, code_width(next), out);
                    if next < DICT_MAX_CODES {
                        learned.insert((cur, b), next);
                        next += 1;
                    }
                    cur = b as u32;
                }
            }
        }
        packer.push(cur, code_width(next), out);
        packer.finish(out);
    }

    /// Decompress one frame payload produced by
    /// [`compress`](Self::compress) with this same seed; `out` must
    /// grow by exactly `raw_len` bytes, anything else is typed
    /// corruption.
    pub fn decompress(&self, comp: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Result<()> {
        let mut entries: Vec<(u32, u8)> = self.entries.clone();
        let mut scratch: Vec<u8> = Vec::new();
        let mut prev: Option<u32> = None;
        let mut reader = BitReader::new(comp);
        let target = out.len() + raw_len;
        while out.len() < target {
            let limit = 256 + entries.len() as u32;
            // The encoder has already defined the entry this step will
            // add (it inserts on emit, we insert on read), so every
            // code after the first is written one width-step ahead.
            let width = match prev {
                None => code_width(limit),
                Some(_) => code_width((limit + 1).min(DICT_MAX_CODES)),
            };
            let code = reader
                .read(width)
                .ok_or_else(|| StorageError::corrupt("trained frame", "code stream truncated"))?;
            scratch.clear();
            if code < limit {
                expand(code, &entries, &mut scratch);
            } else if code == limit && limit < DICT_MAX_CODES {
                // KwKwK: the code this very step defines. Legal only
                // while the table still grows (see blockcodec).
                let p = prev.ok_or_else(|| {
                    StorageError::corrupt("trained frame", "stream starts with a novel code")
                })?;
                expand(p, &entries, &mut scratch);
                let head = scratch[0];
                scratch.push(head);
            } else {
                return Err(StorageError::corrupt(
                    "trained frame",
                    "dict code out of range",
                ));
            }
            if let Some(p) = prev {
                if limit < DICT_MAX_CODES {
                    entries.push((p, scratch[0]));
                }
            }
            if out.len() + scratch.len() > target {
                return Err(StorageError::corrupt(
                    "trained frame",
                    "block inflates past its declared size",
                ));
            }
            out.extend_from_slice(&scratch);
            prev = Some(code);
        }
        if !reader.drained() {
            return Err(StorageError::corrupt(
                "trained frame",
                "trailing bytes after the final code",
            ));
        }
        Ok(())
    }

    /// Serialize to the `MRTD1` artifact layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18 + 3 * self.entries.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.corpus_hash.to_le_bytes());
        encode_entries(&self.entries, &mut out);
        let crc = crate::blockcodec::crc32(&out[MAGIC.len()..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse an `MRTD1` artifact; any structural damage is typed
    /// [`StorageError::Corrupt`].
    pub fn from_bytes(bytes: &[u8]) -> Result<TrainedDict> {
        let bad = |detail: &str| StorageError::corrupt("trained dictionary", detail);
        if bytes.len() < MAGIC.len() + 8 + 4 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(bad("bad magic or truncated header"));
        }
        let body = &bytes[MAGIC.len()..bytes.len() - 4];
        let crc_stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if crate::blockcodec::crc32(body) != crc_stored {
            return Err(bad("crc mismatch"));
        }
        let corpus_hash = u64::from_le_bytes(body[..8].try_into().unwrap());
        let mut pos = 8usize;
        let (n64, used) = decode_u64(&body[pos..])?;
        pos += used;
        if n64 > SEED_MAX_ENTRIES as u64 {
            return Err(bad("implausible entry count"));
        }
        let mut entries = Vec::with_capacity(n64 as usize);
        for i in 0..n64 {
            let (prefix64, used) = decode_u64(&body[pos..])?;
            pos += used;
            let prefix = u32::try_from(prefix64).map_err(|_| bad("prefix code exceeds u32"))?;
            // Prefix closure: each entry may only reference literals or
            // strictly earlier seed codes.
            if prefix >= 256 + i as u32 {
                return Err(bad("entry references a later code"));
            }
            let &byte = body.get(pos).ok_or_else(|| bad("truncated entries"))?;
            pos += 1;
            entries.push((prefix, byte));
        }
        if pos != body.len() {
            return Err(bad("trailing bytes after entries"));
        }
        Ok(TrainedDict::from_parts(entries, corpus_hash))
    }

    /// Write the artifact to `path` (truncating).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Read an artifact back from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<TrainedDict> {
        TrainedDict::from_bytes(&std::fs::read(path)?)
    }
}

/// Serialize the entry section (`varint n` + entries) — also the
/// preimage of the dictionary hash.
fn encode_entries(entries: &[(u32, u8)], out: &mut Vec<u8>) {
    encode_u64(entries.len() as u64, out);
    for &(prefix, byte) in entries {
        encode_u64(prefix as u64, out);
        out.push(byte);
    }
}

/// Expand `code` against `entries` (same walk as the untrained codec).
fn expand(mut code: u32, entries: &[(u32, u8)], out: &mut Vec<u8>) {
    let start = out.len();
    loop {
        if code < 256 {
            out.push(code as u8);
            break;
        }
        let (prefix, byte) = entries[(code - 256) as usize];
        out.push(byte);
        code = prefix;
    }
    out[start..].reverse();
}

/// Process-wide cache of loaded dictionaries, keyed by dictionary
/// hash. Writers register what they commit; readers in the same
/// process then resolve header hashes without touching the filesystem.
fn registry() -> &'static Mutex<HashMap<u64, Arc<TrainedDict>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, Arc<TrainedDict>>>> = OnceLock::new();
    REGISTRY.get_or_init(Default::default)
}

/// Insert `dict` into the process-wide registry (idempotent).
pub fn register(dict: &Arc<TrainedDict>) {
    registry()
        .lock()
        .expect("dictionary registry poisoned")
        .entry(dict.dict_hash())
        .or_insert_with(|| Arc::clone(dict));
}

/// Look up a dictionary hash in the process-wide registry.
pub fn lookup(dict_hash: u64) -> Option<Arc<TrainedDict>> {
    registry()
        .lock()
        .expect("dictionary registry poisoned")
        .get(&dict_hash)
        .cloned()
}

/// Commit `dict` as `dir/shuffle.dict`, **first trainer wins**: the
/// artifact is staged to a unique temp name and hard-linked into
/// place, so concurrent attempts (including retried and speculative
/// ones, and process-backend workers) converge on exactly one
/// dictionary. Returns the winning dictionary — the caller's own, or
/// the one an earlier attempt already committed.
pub fn commit_dict(dir: impl AsRef<Path>, dict: TrainedDict) -> Result<Arc<TrainedDict>> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = dir.as_ref();
    let final_path = dir.join(DICT_FILE_NAME);
    let tmp = dir.join(format!(
        ".dict-tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    dict.save(&tmp)?;
    let won = match std::fs::hard_link(&tmp, &final_path) {
        Ok(()) => true,
        Err(e) if e.kind() == ErrorKind::AlreadyExists => false,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
    };
    let _ = std::fs::remove_file(&tmp);
    let winner = if won {
        Arc::new(dict)
    } else {
        Arc::new(TrainedDict::load(&final_path)?)
    };
    register(&winner);
    Ok(winner)
}

/// Resolve the dictionary a run-file header references by hash:
/// process registry first, then `shuffle.dict` beside the run file,
/// then one directory up (runs inside an attempt directory commit the
/// dictionary to the job directory above them). A found artifact whose
/// hash disagrees with the header — or no artifact at all — is typed
/// corruption.
pub fn resolve(run_path: &Path, dict_hash: u64) -> Result<Arc<TrainedDict>> {
    if let Some(dict) = lookup(dict_hash) {
        return Ok(dict);
    }
    let parent = run_path.parent().map(Path::to_path_buf);
    let grandparent = parent
        .as_deref()
        .and_then(Path::parent)
        .map(Path::to_path_buf);
    let candidates: Vec<PathBuf> = [parent, grandparent]
        .into_iter()
        .flatten()
        .map(|d| d.join(DICT_FILE_NAME))
        .collect();
    for candidate in &candidates {
        if candidate.exists() {
            let dict = TrainedDict::load(candidate)?;
            if dict.dict_hash() != dict_hash {
                return Err(StorageError::corrupt(
                    "trained dictionary",
                    format!(
                        "hash mismatch: run expects {dict_hash:016x}, \
                         {} holds {:016x}",
                        candidate.display(),
                        dict.dict_hash()
                    ),
                ));
            }
            let dict = Arc::new(dict);
            register(&dict);
            return Ok(dict);
        }
    }
    Err(StorageError::corrupt(
        "trained dictionary",
        format!("no dictionary found for hash {dict_hash:016x}"),
    ))
}

/// The store file name for a corpus hash:
/// `dict-<corpus_hash hex>.mrtd` under the store directory. The name
/// is the deduplication key — a second job over identical data finds
/// the artifact instead of retraining.
pub fn store_path(store_dir: &Path, corpus_hash: u64) -> PathBuf {
    store_dir.join(format!("dict-{corpus_hash:016x}.mrtd"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mr-trained-tests-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn corpus() -> Vec<u8> {
        (0..400)
            .flat_map(|i| format!("10.0.{}.{}\thit\n", i % 16, i % 7).into_bytes())
            .collect()
    }

    #[test]
    fn trained_roundtrip_beats_cold_dict_on_small_frames() {
        let mut t = DictTrainer::new();
        t.observe(&corpus());
        let dict = t.train();
        assert!(!dict.is_empty());

        // A frame much smaller than the corpus: cold LZW barely warms
        // up, the trained seed starts hot.
        let frame: Vec<u8> = corpus()[..1024].to_vec();
        let mut trained_out = Vec::new();
        dict.compress(&frame, &mut trained_out);
        let mut cold_out = Vec::new();
        use crate::blockcodec::{BlockCodec, DictBlock};
        DictBlock.compress(&frame, &mut cold_out);
        assert!(
            trained_out.len() < cold_out.len(),
            "trained {} vs cold {}",
            trained_out.len(),
            cold_out.len()
        );

        let mut back = Vec::new();
        dict.decompress(&trained_out, frame.len(), &mut back)
            .unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn empty_dict_is_plain_lzw() {
        let dict = TrainedDict::empty();
        assert!(dict.is_empty());
        let payload = b"abababababab".repeat(32);
        let mut comp = Vec::new();
        dict.compress(&payload, &mut comp);
        let mut back = Vec::new();
        dict.decompress(&comp, payload.len(), &mut back).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn artifact_roundtrips_and_hashes_are_stable() {
        let mut t = DictTrainer::new();
        t.observe(&corpus());
        let dict = t.train();
        let bytes = dict.to_bytes();
        let back = TrainedDict::from_bytes(&bytes).unwrap();
        assert_eq!(back.dict_hash(), dict.dict_hash());
        assert_eq!(back.corpus_hash(), dict.corpus_hash());
        assert_eq!(back.len(), dict.len());

        // Same corpus ⇒ same hashes; different corpus ⇒ different.
        let mut t2 = DictTrainer::new();
        t2.observe(&corpus());
        assert_eq!(t2.corpus_hash(), dict.corpus_hash());
        t2.observe(b"more");
        assert_ne!(t2.corpus_hash(), dict.corpus_hash());
    }

    #[test]
    fn corrupt_artifact_is_typed() {
        let mut t = DictTrainer::new();
        t.observe(&corpus());
        let mut bytes = t.train().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        let err = TrainedDict::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");

        assert!(TrainedDict::from_bytes(b"NOTADICT").is_err());
    }

    #[test]
    fn commit_is_first_trainer_wins() {
        let dir = tmp("commit");
        let mut t1 = DictTrainer::new();
        t1.observe(b"first trainer's corpus, repeated: aaaa aaaa aaaa");
        let first = commit_dict(&dir, t1.train()).unwrap();

        let mut t2 = DictTrainer::new();
        t2.observe(b"a different corpus entirely: bbbb bbbb bbbb bbbb");
        let second = commit_dict(&dir, t2.train()).unwrap();

        // The second committer gets the first's dictionary back.
        assert_eq!(second.dict_hash(), first.dict_hash());
        let on_disk = TrainedDict::load(dir.join(DICT_FILE_NAME)).unwrap();
        assert_eq!(on_disk.dict_hash(), first.dict_hash());
        // Temp staging files are cleaned up.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with(".dict-tmp-")
            })
            .count();
        assert_eq!(leftovers, 0);
    }

    #[test]
    fn resolve_finds_dict_beside_and_above_runs() {
        let dir = tmp("resolve");
        let attempt = dir.join("attempt-map-00000-000");
        std::fs::create_dir_all(&attempt).unwrap();
        let mut t = DictTrainer::new();
        t.observe(&corpus());
        let dict = commit_dict(&dir, t.train()).unwrap();

        // Beside: a committed run in the job dir.
        let d1 = resolve(&dir.join("run-00000-000001"), dict.dict_hash()).unwrap();
        assert_eq!(d1.dict_hash(), dict.dict_hash());
        // One up: a staged run inside the attempt dir.
        let d2 = resolve(&attempt.join("run-00000-000001"), dict.dict_hash()).unwrap();
        assert_eq!(d2.dict_hash(), dict.dict_hash());
    }

    #[test]
    fn resolve_hash_mismatch_is_typed_corruption() {
        let dir = tmp("mismatch");
        let mut t = DictTrainer::new();
        t.observe(&corpus());
        commit_dict(&dir, t.train()).unwrap();
        let bogus_hash = 0xDEAD_BEEF_0BAD_F00Du64;
        let err = resolve(&dir.join("run-00000-000001"), bogus_hash).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        // Missing entirely is also typed, not a panic or I/O surprise.
        let empty = tmp("mismatch-empty");
        let err = resolve(&empty.join("run-00000-000001"), bogus_hash).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn sample_cap_bounds_learning_not_identity() {
        let big: Vec<u8> = corpus().repeat(8);
        let mut capped = DictTrainer::with_sample_cap(1024);
        capped.observe(&big);
        let mut full = DictTrainer::new();
        full.observe(&big);
        // Identity covers all observed bytes regardless of cap…
        assert_eq!(capped.corpus_hash(), full.corpus_hash());
        // …and the capped trainer still produces a working dictionary.
        let dict = capped.train();
        let mut comp = Vec::new();
        dict.compress(&big[..2048], &mut comp);
        let mut back = Vec::new();
        dict.decompress(&comp, 2048, &mut back).unwrap();
        assert_eq!(back, &big[..2048]);
    }
}
