//! Single-optimization query programs (paper §4.3 and App. D).
//!
//! Each program isolates one optimization so Tables 3–6 can measure it
//! alone:
//!
//! * [`selection_query`] — `SELECT pageRank, COUNT(url) FROM WebPages
//!   WHERE pageRank > t GROUP BY pageRank` (Table 3);
//! * [`projection_query`] — `SELECT url, pageRank FROM WebPages WHERE
//!   pageRank > t` (Table 4; `content` is never touched);
//! * [`duration_sum_query`] — sum `duration` grouped by `destURL`
//!   without emitting the URL (Tables 5 and 6).
//!
//! The external-shuffle scale benchmark (`scale_shuffle`) uses
//! [`crate::pavlo::benchmark2`] — the aggregation task whose
//! near-distinct keys make the shuffle as large as the projected input.

use mr_ir::builder::FunctionBuilder;
use mr_ir::function::Program;
use mr_ir::instr::{CmpOp, ParamId};

use crate::data::{uservisits_schema, webpages_schema};

/// Threshold for a target selectivity: ranks are uniform in `0..100`,
/// so `rank > t` keeps `99 - t` percent.
pub fn threshold_for_selectivity(percent: u32) -> i64 {
    debug_assert!(percent <= 100);
    99 - percent as i64
}

/// Table 3's program: emit `(pageRank, url)` when `pageRank > t`;
/// reduce with `Count` to get `COUNT(url) GROUP BY pageRank`.
pub fn selection_query(threshold: i64) -> Program {
    let mut b = FunctionBuilder::new("selection_map");
    let v = b.load_param(ParamId::Value);
    let rank = b.get_field(v, "rank");
    let t = b.const_int(threshold);
    let cond = b.cmp(CmpOp::Gt, rank, t);
    let (hit, exit) = (b.fresh_label("hit"), b.fresh_label("exit"));
    b.br(cond, hit, exit);
    b.bind(hit);
    let url = b.get_field(v, "url");
    b.emit(rank, url);
    b.bind(exit);
    b.ret();
    Program::new(
        format!("selection-query-t{threshold}"),
        b.finish(),
        webpages_schema(),
    )
}

/// Table 4's program: emit `(url, pageRank)` when `pageRank > t`.
/// The large `content` field is never examined, so projection removes
/// it from the on-disk layout.
pub fn projection_query(threshold: i64) -> Program {
    let mut b = FunctionBuilder::new("projection_map");
    let v = b.load_param(ParamId::Value);
    let rank = b.get_field(v, "rank");
    let t = b.const_int(threshold);
    let cond = b.cmp(CmpOp::Gt, rank, t);
    let (hit, exit) = (b.fresh_label("hit"), b.fresh_label("exit"));
    b.br(cond, hit, exit);
    b.bind(hit);
    let url = b.get_field(v, "url");
    b.emit(url, rank);
    b.bind(exit);
    b.ret();
    Program::new(
        format!("projection-query-t{threshold}"),
        b.finish(),
        webpages_schema(),
    )
}

/// Tables 5 and 6's program: "sums all duration values … groups these
/// sums by destURL, but does not in the end emit the URL; it simply
/// uses destURL as the key parameter to reduce()". Run it with
/// `Builtin::SumDropKey`.
pub fn duration_sum_query() -> Program {
    let mut b = FunctionBuilder::new("duration_sum_map");
    let v = b.load_param(ParamId::Value);
    let url = b.get_field(v, "destURL");
    let duration = b.get_field(v, "duration");
    b.emit(url, duration);
    b.ret();
    Program::new("duration-sum-query", b.finish(), uservisits_schema())
        .with_key_dropped_from_output()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::interp::Interpreter;
    use mr_ir::record::record;
    use mr_ir::value::Value;
    use mr_ir::verify::verify;

    #[test]
    fn all_queries_verify() {
        for p in [
            selection_query(39),
            projection_query(89),
            duration_sum_query(),
        ] {
            verify(&p.mapper).unwrap_or_else(|e| panic!("{}: {e:?}", p.name));
        }
    }

    #[test]
    fn threshold_math() {
        assert_eq!(threshold_for_selectivity(60), 39); // rank > 39 → 60%
        assert_eq!(threshold_for_selectivity(10), 89);
        assert_eq!(threshold_for_selectivity(100), -1); // everything
    }

    #[test]
    fn selection_query_emits_rank_keyed() {
        let p = selection_query(50);
        let s = webpages_schema();
        let mut interp = Interpreter::new(&p.mapper);
        let page = record(&s, vec!["http://a".into(), 60.into(), "c".into()]);
        let out = interp
            .invoke_map(&p.mapper, &Value::Int(0), &page.into())
            .unwrap();
        assert_eq!(out.emits, vec![(Value::Int(60), Value::str("http://a"))]);
        let page = record(&s, vec!["http://b".into(), 50.into(), "c".into()]);
        let out = interp
            .invoke_map(&p.mapper, &Value::Int(1), &page.into())
            .unwrap();
        assert!(out.emits.is_empty());
    }

    #[test]
    fn duration_query_flags_key_dropped() {
        let p = duration_sum_query();
        assert!(!p.key_in_final_output);
        assert!(!p.requires_sorted_output);
    }
}
