//! # mr-workloads — benchmark data and programs
//!
//! Everything the paper's evaluation (§4, App. B/D) runs against:
//!
//! * [`data`] — generators for the Fig. 7 schemas (WebPages with
//!   Zipfian link popularity, UserVisits, Rankings, Documents);
//! * [`zipf`] — the Zipfian sampler behind them;
//! * [`pavlo`] — the four Pavlo et al. benchmark programs in MR-IR,
//!   with the serialization/Hashtable quirks that shaped Table 1 and
//!   the human annotations to grade the analyzer against;
//! * [`queries`] — the single-optimization programs of Tables 3–6.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod data;
pub mod pavlo;
pub mod queries;
pub mod zipf;
