//! Test-data generators (paper Fig. 7 and App. D).
//!
//! ```text
//! WebPages  (String url; int rank; String content);
//! UserVisits(String sourceIP; String destURL; long visitDate;
//!            int adRevenue; String userAgent; String countryCode;
//!            String languageCode; String searchWord; int duration);
//! ```
//!
//! WebPages are unique pages with Zipfian popularity; each page's
//! content embeds links to other pages chosen Zipfianly, plus filler
//! text up to the configured content size. UserVisits fields are uniform
//! except `destURL`, which follows the pages' Zipfian popularity. Page
//! rank is assigned so that the *selectivity of `rank > t` is
//! predictable*: ranks are uniform in `0..100`, so `rank > t` keeps
//! `(99 - t)%` of pages — the knob Tables 2–4 sweep.

use std::path::Path;
use std::sync::Arc;

use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mr_storage::seqfile::SeqFileWriter;

use crate::zipf::Zipf;

/// The WebPages schema (paper Fig. 7).
pub fn webpages_schema() -> Arc<Schema> {
    Schema::new(
        "WebPages",
        vec![
            ("url", FieldType::Str),
            ("rank", FieldType::Int),
            ("content", FieldType::Str),
        ],
    )
    .into_arc()
}

/// The UserVisits schema (paper Fig. 7).
pub fn uservisits_schema() -> Arc<Schema> {
    Schema::new(
        "UserVisits",
        vec![
            ("sourceIP", FieldType::Str),
            ("destURL", FieldType::Str),
            ("visitDate", FieldType::Long),
            ("adRevenue", FieldType::Int),
            ("userAgent", FieldType::Str),
            ("countryCode", FieldType::Str),
            ("languageCode", FieldType::Str),
            ("searchWord", FieldType::Str),
            ("duration", FieldType::Int),
        ],
    )
    .into_arc()
}

/// The Rankings schema of the Pavlo benchmarks (Benchmark 1 wraps it in
/// an analyzer-opaque `AbstractTuple` serialization; Benchmark 3 uses
/// the ordinary transparent form).
pub fn rankings_schema(opaque: bool) -> Arc<Schema> {
    let schema = Schema::new(
        if opaque { "AbstractTuple" } else { "Rankings" },
        vec![
            ("pageURL", FieldType::Str),
            ("pageRank", FieldType::Int),
            ("avgDuration", FieldType::Int),
        ],
    );
    if opaque { schema.opaque() } else { schema }.into_arc()
}

/// The Documents schema for the UDF-aggregation benchmark.
pub fn documents_schema() -> Arc<Schema> {
    Schema::new(
        "Document",
        vec![("url", FieldType::Str), ("content", FieldType::Str)],
    )
    .into_arc()
}

/// WebPages generator configuration.
#[derive(Debug, Clone)]
pub struct WebPagesConfig {
    /// Number of pages.
    pub pages: usize,
    /// Average content size in bytes (paper App. D: 510 B for Small,
    /// 10 KB for Large).
    pub content_size: usize,
    /// Links embedded per page.
    pub links_per_page: usize,
    /// Zipf exponent for link-target popularity.
    pub zipf_s: f64,
    /// RNG seed, for reproducible experiments.
    pub seed: u64,
    /// Block codec for the written file
    /// ([`mr_storage::ShuffleCompression`]); the default writes the
    /// plain seqfile format.
    pub codec: mr_storage::ShuffleCompression,
}

impl Default for WebPagesConfig {
    fn default() -> Self {
        WebPagesConfig {
            pages: 10_000,
            content_size: 510,
            links_per_page: 5,
            zipf_s: 1.0,
            seed: 42,
            codec: Default::default(),
        }
    }
}

/// The URL of page `i`.
pub fn page_url(i: usize) -> String {
    format!("http://www.site{i:07}.example.com/index.html")
}

/// Deterministic filler words, so content compresses like text rather
/// than noise.
const FILLER: &[&str] = &[
    "lorem", "ipsum", "data", "query", "page", "search", "click", "web", "index", "link", "value",
    "result", "report", "visit", "user", "rank",
];

/// Generate one WebPages record.
fn gen_page(i: usize, cfg: &WebPagesConfig, zipf: &Zipf, rng: &mut StdRng) -> Record {
    let url = page_url(i);
    let rank = rng.gen_range(0..100i64);
    let mut content = String::with_capacity(cfg.content_size + 64);
    for _ in 0..cfg.links_per_page {
        let target = zipf.sample(rng);
        content.push_str(&page_url(target));
        content.push(' ');
    }
    while content.len() < cfg.content_size {
        content.push_str(FILLER[rng.gen_range(0..FILLER.len())]);
        content.push(' ');
    }
    record(
        &webpages_schema(),
        vec![url.into(), Value::Int(rank), content.into()],
    )
}

/// Write a WebPages sequence file; returns the record count.
pub fn generate_webpages(path: impl AsRef<Path>, cfg: &WebPagesConfig) -> mr_storage::Result<u64> {
    let schema = webpages_schema();
    let zipf = Zipf::new(cfg.pages.max(1), cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut w = SeqFileWriter::create_with_codec(path, schema, cfg.codec)?;
    for i in 0..cfg.pages {
        w.append(&gen_page(i, cfg, &zipf, &mut rng))?;
    }
    w.finish()
}

/// UserVisits generator configuration.
#[derive(Debug, Clone)]
pub struct UserVisitsConfig {
    /// Number of visit records.
    pub visits: usize,
    /// Number of distinct pages the visits point at.
    pub pages: usize,
    /// Zipf exponent for destination popularity.
    pub zipf_s: f64,
    /// Half-open date range `[date_start, date_end)` as epoch seconds.
    pub date_start: i64,
    /// End of the date range.
    pub date_end: i64,
    /// RNG seed.
    pub seed: u64,
    /// Number of distinct `sourceIP` values, the group-by cardinality
    /// of the Pavlo aggregation task. `0` (the default) draws fully
    /// random IPs — near-distinct keys, the regime where map-side
    /// combining cannot help; a small value produces the
    /// low-cardinality group-bys where it collapses the shuffle.
    pub source_ips: usize,
    /// Block codec for the written file
    /// ([`mr_storage::ShuffleCompression`]); the default writes the
    /// plain seqfile format.
    pub codec: mr_storage::ShuffleCompression,
}

impl Default for UserVisitsConfig {
    fn default() -> Self {
        UserVisitsConfig {
            visits: 50_000,
            pages: 10_000,
            zipf_s: 1.0,
            // The year 2000, like the Pavlo generator's visit dates.
            date_start: 946_684_800,
            date_end: 978_307_200,
            seed: 43,
            source_ips: 0,
            codec: Default::default(),
        }
    }
}

const USER_AGENTS: &[&str] = &["Mozilla/4.0", "Mozilla/5.0", "Opera/9.0", "Safari/3.0"];
const COUNTRIES: &[&str] = &["USA", "DEU", "JPN", "BRA", "IND", "FRA", "GBR", "CHN"];
const LANGUAGES: &[&str] = &["en", "de", "ja", "pt", "hi", "fr", "zh"];
const SEARCH_WORDS: &[&str] = &[
    "database",
    "mapreduce",
    "optimizer",
    "btree",
    "hadoop",
    "selection",
    "projection",
];

/// Generate one UserVisits record.
fn gen_visit(cfg: &UserVisitsConfig, zipf: &Zipf, rng: &mut StdRng) -> Record {
    let ip = if cfg.source_ips > 0 {
        let id = rng.gen_range(0..cfg.source_ips);
        format!("10.{}.{}.{}", id / 65536, (id / 256) % 256, id % 256)
    } else {
        format!(
            "{}.{}.{}.{}",
            rng.gen_range(1..255),
            rng.gen_range(0..256),
            rng.gen_range(0..256),
            rng.gen_range(1..255)
        )
    };
    let dest = page_url(zipf.sample(rng));
    let date = rng.gen_range(cfg.date_start..cfg.date_end);
    let revenue = rng.gen_range(1..1000i64);
    let duration = rng.gen_range(1..100i64);
    record(
        &uservisits_schema(),
        vec![
            ip.into(),
            dest.into(),
            Value::Int(date),
            Value::Int(revenue),
            USER_AGENTS[rng.gen_range(0..USER_AGENTS.len())].into(),
            COUNTRIES[rng.gen_range(0..COUNTRIES.len())].into(),
            LANGUAGES[rng.gen_range(0..LANGUAGES.len())].into(),
            SEARCH_WORDS[rng.gen_range(0..SEARCH_WORDS.len())].into(),
            Value::Int(duration),
        ],
    )
}

/// Write a UserVisits sequence file; returns the record count.
pub fn generate_uservisits(
    path: impl AsRef<Path>,
    cfg: &UserVisitsConfig,
) -> mr_storage::Result<u64> {
    let schema = uservisits_schema();
    let zipf = Zipf::new(cfg.pages.max(1), cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut w = SeqFileWriter::create_with_codec(path, schema, cfg.codec)?;
    for _ in 0..cfg.visits {
        w.append(&gen_visit(cfg, &zipf, &mut rng))?;
    }
    w.finish()
}

/// Write a Rankings sequence file (optionally with the Benchmark-1
/// opaque serialization); returns the record count.
pub fn generate_rankings(
    path: impl AsRef<Path>,
    pages: usize,
    opaque: bool,
    seed: u64,
) -> mr_storage::Result<u64> {
    let schema = rankings_schema(opaque);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = SeqFileWriter::create(path, Arc::clone(&schema))?;
    for i in 0..pages {
        // pageRank in 0..10_000 so sub-percent selectivities are
        // expressible (Benchmark 1 runs at 0.02%).
        let rank = rng.gen_range(0..10_000i64);
        let r = record(
            &schema,
            vec![
                page_url(i).into(),
                Value::Int(rank),
                Value::Int(rng.gen_range(1..100i64)),
            ],
        );
        w.append(&r)?;
    }
    w.finish()
}

/// Write a Documents sequence file for the UDF-aggregation benchmark;
/// returns the record count.
pub fn generate_documents(path: impl AsRef<Path>, cfg: &WebPagesConfig) -> mr_storage::Result<u64> {
    let schema = documents_schema();
    let zipf = Zipf::new(cfg.pages.max(1), cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut w = SeqFileWriter::create(path, Arc::clone(&schema))?;
    for i in 0..cfg.pages {
        let page = gen_page(i, cfg, &zipf, &mut rng);
        let r = record(
            &schema,
            vec![
                page.get("url").expect("url").clone(),
                page.get("content").expect("content").clone(),
            ],
        );
        w.append(&r)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_storage::seqfile::SeqFileMeta;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mr-workloads-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn webpages_generation_is_deterministic() {
        let cfg = WebPagesConfig {
            pages: 200,
            ..WebPagesConfig::default()
        };
        let p1 = tmp("wp1");
        let p2 = tmp("wp2");
        generate_webpages(&p1, &cfg).unwrap();
        generate_webpages(&p2, &cfg).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());

        let meta = SeqFileMeta::open(&p1).unwrap();
        assert_eq!(meta.record_count, 200);
        let first = meta.read_all().unwrap().next().unwrap().unwrap();
        assert!(first
            .get("content")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("http://"));
        let rank = first.get("rank").unwrap().as_int().unwrap();
        assert!((0..100).contains(&rank));
    }

    #[test]
    fn rank_selectivity_is_predictable() {
        let cfg = WebPagesConfig {
            pages: 5000,
            content_size: 32,
            ..WebPagesConfig::default()
        };
        let p = tmp("wp-sel");
        generate_webpages(&p, &cfg).unwrap();
        let meta = SeqFileMeta::open(&p).unwrap();
        let above_39: usize = meta
            .read_all()
            .unwrap()
            .filter(|r| r.as_ref().unwrap().get("rank").unwrap().as_int().unwrap() > 39)
            .count();
        // rank > 39 keeps 60% of uniform 0..100.
        let frac = above_39 as f64 / 5000.0;
        assert!((frac - 0.6).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn uservisits_fields_in_range() {
        let cfg = UserVisitsConfig {
            visits: 500,
            pages: 100,
            ..UserVisitsConfig::default()
        };
        let p = tmp("uv");
        generate_uservisits(&p, &cfg).unwrap();
        let meta = SeqFileMeta::open(&p).unwrap();
        assert_eq!(meta.record_count, 500);
        for r in meta.read_all().unwrap() {
            let r = r.unwrap();
            let date = r.get("visitDate").unwrap().as_int().unwrap();
            assert!((cfg.date_start..cfg.date_end).contains(&date));
            assert!(r
                .get("destURL")
                .unwrap()
                .as_str()
                .unwrap()
                .starts_with("http://"));
        }
    }

    #[test]
    fn zipf_popularity_shows_in_visits() {
        let cfg = UserVisitsConfig {
            visits: 5000,
            pages: 1000,
            ..UserVisitsConfig::default()
        };
        let p = tmp("uv-zipf");
        generate_uservisits(&p, &cfg).unwrap();
        let meta = SeqFileMeta::open(&p).unwrap();
        let top_url = page_url(0);
        let hits = meta
            .read_all()
            .unwrap()
            .filter(|r| {
                r.as_ref()
                    .unwrap()
                    .get("destURL")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    == top_url
            })
            .count();
        // Zipf(1.0) over 1000 items gives item 0 ~13% of mass; far more
        // than the uniform 0.1%.
        assert!(hits > 200, "top page got only {hits} of 5000 visits");
    }

    #[test]
    fn rankings_opaque_flag() {
        let p = tmp("rank-opq");
        generate_rankings(&p, 50, true, 1).unwrap();
        let meta = SeqFileMeta::open(&p).unwrap();
        assert!(meta.schema.is_opaque());
        assert_eq!(meta.schema.name(), "AbstractTuple");

        let p2 = tmp("rank-clear");
        generate_rankings(&p2, 50, false, 1).unwrap();
        assert!(!SeqFileMeta::open(&p2).unwrap().schema.is_opaque());
    }

    #[test]
    fn documents_carry_links() {
        let cfg = WebPagesConfig {
            pages: 100,
            content_size: 200,
            ..WebPagesConfig::default()
        };
        let p = tmp("docs");
        generate_documents(&p, &cfg).unwrap();
        let meta = SeqFileMeta::open(&p).unwrap();
        let doc = meta.read_all().unwrap().next().unwrap().unwrap();
        let urls = mr_ir::stdlib::extract_urls(doc.get("content").unwrap().as_str().unwrap());
        assert!(!urls.is_empty());
    }
}
