//! The Pavlo et al. benchmark programs, ported to MR-IR (paper §4.1).
//!
//! These are the four programs of Tables 1 and 2, including the exact
//! quirks that shaped the paper's analyzer-recall results:
//!
//! * **Benchmark 1 (Selection)** reads Rankings through the authors'
//!   `AbstractTuple` class — "an unusual custom class … that essentially
//!   creates its own serialization format". Selection is detectable
//!   (the accessors are pure), but projection and delta-compression are
//!   not (field boundaries are invisible).
//! * **Benchmark 2 (Aggregation)** sums `adRevenue` by `sourceIP` over
//!   UserVisits: projection and delta-compression apply.
//! * **Benchmark 3 (Join)** consumes two inputs with separate mappers;
//!   the UserVisits mapper filters by a `visitDate` range (the selection
//!   Manimal exploits for the 6.73x Table 2 speedup).
//! * **Benchmark 4 (UDF Aggregation)** counts in-links by extracting
//!   URLs from document content, deduplicating per document "using a
//!   Java Hashtable as part of the filtering process" — the analyzer's
//!   one serious miss.
//!
//! Each benchmark also carries the *human annotation* of which
//! optimizations are actually present, so the Table 1 harness can grade
//! the analyzer (Detected / Undetected / Not Present).

use mr_engine::error::Result as EngineResult;
use mr_engine::reducer::{Reducer, ReducerFactory};
use mr_ir::builder::FunctionBuilder;
use mr_ir::function::Program;
use mr_ir::instr::{BinOp, CmpOp, ParamId};
use mr_ir::value::Value;

use crate::data::{documents_schema, rankings_schema, uservisits_schema};

/// Ground truth for one optimization on one benchmark, as a human
/// annotator judges it (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Presence {
    /// The optimization opportunity exists in the code.
    Present,
    /// It does not.
    NotPresent,
}

/// Human annotations for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct HumanAnnotation {
    /// Is a selection present?
    pub select: Presence,
    /// Is a projection present?
    pub project: Presence,
    /// Is delta-compression applicable?
    pub delta: Presence,
    /// Is direct-operation applicable?
    pub direct: Presence,
}

/// Benchmark 1 — Selection over Rankings via the opaque `AbstractTuple`:
/// `SELECT pageURL, pageRank FROM Rankings WHERE pageRank > threshold`.
///
/// The map reads fields through `tuple.get_*` accessor calls, exactly
/// what a custom serialization class forces.
pub fn benchmark1(threshold: i64) -> Program {
    let mut b = FunctionBuilder::new("bench1_map");
    let v = b.load_param(ParamId::Value);
    let rank_name = b.const_str("pageRank");
    let rank = b.call("tuple.get_int", vec![v, rank_name]);
    let t = b.const_int(threshold);
    let cond = b.cmp(CmpOp::Gt, rank, t);
    let (hit, exit) = (b.fresh_label("hit"), b.fresh_label("exit"));
    b.br(cond, hit, exit);
    b.bind(hit);
    let url_name = b.const_str("pageURL");
    let url = b.call("tuple.get_str", vec![v, url_name]);
    b.emit(url, rank);
    b.bind(exit);
    b.ret();
    Program::new("pavlo-bench1-selection", b.finish(), rankings_schema(true))
}

/// Benchmark 1 human annotation: all three of selection, projection
/// (avgDuration is never read) and delta-compression (two integer
/// fields) are present; the analyzer is expected to find only the
/// selection.
pub fn benchmark1_annotation() -> HumanAnnotation {
    HumanAnnotation {
        select: Presence::Present,
        project: Presence::Present,
        delta: Presence::Present,
        direct: Presence::NotPresent,
    }
}

/// Benchmark 2 — Aggregation:
/// `SELECT sourceIP, SUM(adRevenue) FROM UserVisits GROUP BY sourceIP`.
pub fn benchmark2() -> Program {
    let mut b = FunctionBuilder::new("bench2_map");
    let v = b.load_param(ParamId::Value);
    let ip = b.get_field(v, "sourceIP");
    let revenue = b.get_field(v, "adRevenue");
    b.emit(ip, revenue);
    b.ret();
    Program::new("pavlo-bench2-aggregation", b.finish(), uservisits_schema())
}

/// Benchmark 2 human annotation: no selection (every record
/// contributes), projection (7 of 9 fields unused) and delta (numeric
/// fields) both present. Direct-operation is absent because the grouped
/// `sourceIP` appears in the final output.
pub fn benchmark2_annotation() -> HumanAnnotation {
    HumanAnnotation {
        select: Presence::NotPresent,
        project: Presence::Present,
        delta: Presence::Present,
        direct: Presence::NotPresent,
    }
}

/// Benchmark 3, Rankings-side mapper: emit the whole ranking record
/// keyed by its URL (no filter — rankings are small).
pub fn benchmark3_rankings_mapper() -> Program {
    let mut b = FunctionBuilder::new("bench3_rankings_map");
    let v = b.load_param(ParamId::Value);
    let url = b.get_field(v, "pageURL");
    b.emit(url, v);
    b.ret();
    Program::new("pavlo-bench3-rankings", b.finish(), rankings_schema(false))
}

/// Benchmark 3, UserVisits-side mapper: keep only visits inside the
/// date window, emit the whole visit keyed by destination URL. The date
/// filter "removes all but 0.095% of the UserVisits data" in the
/// paper's configuration.
pub fn benchmark3_visits_mapper(date_lo: i64, date_hi: i64) -> Program {
    let mut b = FunctionBuilder::new("bench3_visits_map");
    let v = b.load_param(ParamId::Value);
    let date = b.get_field(v, "visitDate");
    let lo = b.const_int(date_lo);
    let c1 = b.cmp(CmpOp::Ge, date, lo);
    let (next, exit) = (b.fresh_label("next"), b.fresh_label("exit"));
    b.br(c1, next, exit);
    b.bind(next);
    let hi = b.const_int(date_hi);
    let c2 = b.cmp(CmpOp::Lt, date, hi);
    let (hit, exit2) = (b.fresh_label("hit"), b.fresh_label("exit2"));
    b.br(c2, hit, exit2);
    b.bind(hit);
    let url = b.get_field(v, "destURL");
    b.emit(url, v);
    b.bind(exit2);
    b.ret();
    b.bind(exit);
    b.ret();
    Program::new("pavlo-bench3-visits", b.finish(), uservisits_schema())
}

/// The Benchmark-3 date window over a UserVisits generation config:
/// centred in the uniform date range and covering `fraction` of it.
/// The paper's configuration uses `fraction = 0.00095` ("removes all
/// but 0.095% of the UserVisits data"); wider fractions keep small
/// smoke datasets from filtering down to an empty join.
pub fn benchmark3_date_window(cfg: &crate::data::UserVisitsConfig, fraction: f64) -> (i64, i64) {
    let span = cfg.date_end - cfg.date_start;
    let lo = cfg.date_start + span / 2;
    let hi = lo + (span as f64 * fraction) as i64;
    (lo, hi.max(lo + 1))
}

/// Benchmark 3 human annotation (the visits side dominates): selection
/// present (the date window); projection absent (whole records are
/// emitted for the join); delta present (UserVisits numerics).
pub fn benchmark3_annotation() -> HumanAnnotation {
    HumanAnnotation {
        select: Presence::Present,
        project: Presence::NotPresent,
        delta: Presence::Present,
        direct: Presence::NotPresent,
    }
}

/// The join reducer for Benchmark 3: for each URL group, pair the
/// ranking's pageRank with every visit, emitting
/// `(sourceIP, [pageRank, adRevenue])`.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinReducer;

impl Reducer for JoinReducer {
    fn reduce(
        &mut self,
        _key: &Value,
        values: &[Value],
        out: &mut Vec<(Value, Value)>,
    ) -> EngineResult<()> {
        let mut page_rank: Option<Value> = None;
        let mut visits: Vec<&mr_ir::record::Record> = Vec::new();
        for v in values {
            let Some(rec) = v.as_record() else { continue };
            match rec.schema().name() {
                "Rankings" => page_rank = rec.get("pageRank").ok().cloned(),
                "UserVisits" => visits.push(rec),
                _ => {}
            }
        }
        let Some(rank) = page_rank else {
            return Ok(()); // visit to a page without a ranking row
        };
        for visit in visits {
            let ip = visit
                .get("sourceIP")
                .map_err(|e| mr_engine::EngineError::Reduce(e.to_string()))?;
            let revenue = visit
                .get("adRevenue")
                .map_err(|e| mr_engine::EngineError::Reduce(e.to_string()))?;
            out.push((ip.clone(), Value::list(vec![rank.clone(), revenue.clone()])));
        }
        Ok(())
    }
}

impl ReducerFactory for JoinReducer {
    fn create(&self) -> Box<dyn Reducer> {
        Box::new(*self)
    }
}

/// Benchmark 4 — UDF Aggregation: count in-links by scanning document
/// content for URLs, skipping self-links, deduplicating per document
/// with a `Hashtable`.
pub fn benchmark4() -> Program {
    let mut b = FunctionBuilder::new("bench4_map");
    let v = b.load_param(ParamId::Value);
    let content = b.get_field(v, "content");
    let own_url = b.get_field(v, "url");
    let urls = b.call("text.extract_urls", vec![content]);
    let len = b.call("list.len", vec![urls]);
    let one = b.const_int(1);
    let i = b.const_int(0);
    let seen = b.call("ht.new", vec![]);

    let (head, body, check, fresh, next, exit) = (
        b.fresh_label("head"),
        b.fresh_label("body"),
        b.fresh_label("check"),
        b.fresh_label("fresh"),
        b.fresh_label("next"),
        b.fresh_label("exit"),
    );
    b.bind(head);
    let more = b.cmp(CmpOp::Lt, i, len);
    b.br(more, body, exit);
    b.bind(body);
    let target = b.call("list.get", vec![urls, i]);
    let not_self = b.cmp(CmpOp::Ne, target, own_url);
    b.br(not_self, check, next);
    b.bind(check);
    let dup = b.call("ht.contains", vec![seen, target]);
    b.br(dup, next, fresh);
    b.bind(fresh);
    let seen2 = b.call("ht.put", vec![seen, target, one]);
    b.mov_to(seen, seen2);
    b.emit(target, one);
    b.bind(next);
    let i2 = b.bin(BinOp::Add, i, one);
    b.mov_to(i, i2);
    b.jmp(head);
    b.bind(exit);
    b.ret();
    Program::new("pavlo-bench4-udf", b.finish(), documents_schema())
}

/// Benchmark 4 human annotation: the Hashtable-based dedup *is* a
/// selection a human can see ("testing for a key in the Hashtable will
/// only succeed if it had been inserted previously"); both fields are
/// used, so no projection; no numeric fields, so no delta.
pub fn benchmark4_annotation() -> HumanAnnotation {
    HumanAnnotation {
        select: Presence::Present,
        project: Presence::NotPresent,
        delta: Presence::NotPresent,
        direct: Presence::NotPresent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::interp::Interpreter;
    use mr_ir::record::record;
    use mr_ir::verify::verify;

    #[test]
    fn all_benchmarks_verify() {
        for p in [
            benchmark1(9000),
            benchmark2(),
            benchmark3_rankings_mapper(),
            benchmark3_visits_mapper(0, 100),
            benchmark4(),
        ] {
            verify(&p.mapper).unwrap_or_else(|e| panic!("{}: {e:?}", p.name));
        }
    }

    #[test]
    fn bench1_filters_by_rank() {
        let p = benchmark1(5000);
        let s = rankings_schema(true);
        let mut interp = Interpreter::new(&p.mapper);
        let hi = record(&s, vec!["http://a".into(), 9000.into(), 10.into()]);
        let lo = record(&s, vec!["http://b".into(), 10.into(), 10.into()]);
        let out = interp
            .invoke_map(&p.mapper, &Value::Int(0), &hi.into())
            .unwrap();
        assert_eq!(out.emits.len(), 1);
        assert_eq!(out.emits[0].0, Value::str("http://a"));
        let out = interp
            .invoke_map(&p.mapper, &Value::Int(1), &lo.into())
            .unwrap();
        assert!(out.emits.is_empty());
    }

    #[test]
    fn bench2_emits_every_record() {
        let p = benchmark2();
        let s = uservisits_schema();
        let r = record(
            &s,
            vec![
                "1.2.3.4".into(),
                "http://x".into(),
                Value::Int(1000),
                Value::Int(55),
                "ua".into(),
                "USA".into(),
                "en".into(),
                "w".into(),
                Value::Int(30),
            ],
        );
        let mut interp = Interpreter::new(&p.mapper);
        let out = interp
            .invoke_map(&p.mapper, &Value::Int(0), &r.into())
            .unwrap();
        assert_eq!(out.emits, vec![(Value::str("1.2.3.4"), Value::Int(55))]);
    }

    #[test]
    fn bench3_visits_date_window() {
        let p = benchmark3_visits_mapper(100, 200);
        let s = uservisits_schema();
        let mk = |date: i64| {
            record(
                &s,
                vec![
                    "ip".into(),
                    "http://x".into(),
                    Value::Int(date),
                    Value::Int(1),
                    "ua".into(),
                    "USA".into(),
                    "en".into(),
                    "w".into(),
                    Value::Int(1),
                ],
            )
        };
        let mut interp = Interpreter::new(&p.mapper);
        for (date, expect) in [(99, 0usize), (100, 1), (150, 1), (199, 1), (200, 0)] {
            let out = interp
                .invoke_map(&p.mapper, &Value::Int(0), &mk(date).into())
                .unwrap();
            assert_eq!(out.emits.len(), expect, "date {date}");
        }
    }

    #[test]
    fn bench4_counts_links_with_dedup_and_self_skip() {
        let p = benchmark4();
        let s = documents_schema();
        let content = "see http://other.com/a and again http://other.com/a plus http://me.com/";
        let doc = record(&s, vec!["http://me.com/".into(), content.into()]);
        let mut interp = Interpreter::new(&p.mapper);
        let out = interp
            .invoke_map(&p.mapper, &Value::Int(0), &doc.into())
            .unwrap();
        // Duplicate suppressed, self-link skipped.
        assert_eq!(out.emits.len(), 1);
        assert_eq!(out.emits[0].0, Value::str("http://other.com/a"));
    }

    #[test]
    fn join_reducer_pairs_rank_with_visits() {
        let rs = rankings_schema(false);
        let us = uservisits_schema();
        let ranking: Value = record(&rs, vec!["http://x".into(), 77.into(), 1.into()]).into();
        let visit: Value = record(
            &us,
            vec![
                "9.9.9.9".into(),
                "http://x".into(),
                Value::Int(1),
                Value::Int(5),
                "ua".into(),
                "USA".into(),
                "en".into(),
                "w".into(),
                Value::Int(2),
            ],
        )
        .into();
        let mut out = Vec::new();
        JoinReducer
            .reduce(&Value::str("http://x"), &[ranking, visit], &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Value::str("9.9.9.9"));
        assert_eq!(out[0].1, Value::list(vec![Value::Int(77), Value::Int(5)]));
    }

    #[test]
    fn join_reducer_orphan_visits_dropped() {
        let us = uservisits_schema();
        let visit: Value = record(
            &us,
            vec![
                "9.9.9.9".into(),
                "http://orphan".into(),
                Value::Int(1),
                Value::Int(5),
                "ua".into(),
                "USA".into(),
                "en".into(),
                "w".into(),
                Value::Int(2),
            ],
        )
        .into();
        let mut out = Vec::new();
        JoinReducer
            .reduce(&Value::str("http://orphan"), &[visit], &mut out)
            .unwrap();
        assert!(out.is_empty());
    }
}
