//! Zipfian sampling.
//!
//! The paper's WebPages generator uses Zipfian page popularity
//! (App. D: "we randomly generated unique pages with Zipfian popularity
//! and created the link structure accordingly"; destURL in UserVisits is
//! "picked from the WebPages list … according to a Zipfian
//! distribution").

use rand::Rng;

/// A Zipfian distribution over ranks `0..n` with exponent `s`,
/// sampled by inverse-CDF binary search over a precomputed table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a distribution over `n` items with exponent `s`
    /// (`s = 1.0` is the classic Zipf).
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s.is_finite(), "exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution is over zero items (never; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n` (0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head much heavier than tail.
        assert!(counts[0] > counts[50] * 5);
        assert!(counts[0] > counts[99] * 10);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 500.0, "roughly uniform: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        Zipf::new(0, 1.0);
    }
}
