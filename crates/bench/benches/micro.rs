//! Criterion micro-benchmarks for the hot paths under every table:
//! codecs, the B+Tree, the interpreter, and the analyzer itself.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use mr_analysis::analyze;
use mr_ir::asm::parse_function;
use mr_ir::interp::Interpreter;
use mr_ir::record::{record, Record};
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_ir::Program;
use mr_storage::btree::{BTreeIndex, BTreeWriter, ScanBound};
use mr_storage::rowcodec::{decode_row, encode_row};
use mr_storage::varint::{decode_i64, encode_i64};

fn webpage_schema() -> Arc<Schema> {
    Schema::new(
        "WebPage",
        vec![
            ("url", FieldType::Str),
            ("rank", FieldType::Int),
            ("content", FieldType::Str),
        ],
    )
    .into_arc()
}

fn sample_record(s: &Arc<Schema>, i: i64) -> Record {
    record(
        s,
        vec![
            format!("http://site{i:06}.example.com/").into(),
            Value::Int(i % 100),
            "lorem ipsum data query page search click web index".into(),
        ],
    )
}

fn select_map() -> mr_ir::function::Function {
    parse_function(
        r#"
        func map(key, value) {
          r0 = param value
          r1 = field r0.rank
          r2 = const 50
          r3 = cmp gt r1, r2
          br r3, t, e
        t:
          r4 = field r0.url
          emit r4, r1
        e:
          ret
        }
        "#,
    )
    .expect("parse")
}

fn bench_varint(c: &mut Criterion) {
    let mut group = c.benchmark_group("varint");
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode_i64", |b| {
        let mut buf = Vec::with_capacity(16);
        let mut i = 0i64;
        b.iter(|| {
            buf.clear();
            i = i.wrapping_add(0x9E37_79B9);
            encode_i64(std::hint::black_box(i), &mut buf);
            buf.len()
        })
    });
    group.bench_function("decode_i64", |b| {
        let mut buf = Vec::new();
        encode_i64(-123_456_789, &mut buf);
        b.iter(|| decode_i64(std::hint::black_box(&buf)).expect("decode"))
    });
    group.finish();
}

fn bench_rowcodec(c: &mut Criterion) {
    let s = webpage_schema();
    let r = sample_record(&s, 7);
    let mut encoded = Vec::new();
    encode_row(&r, &mut encoded).expect("encode");

    let mut group = c.benchmark_group("rowcodec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_row", |b| {
        let mut buf = Vec::with_capacity(encoded.len());
        b.iter(|| {
            buf.clear();
            encode_row(std::hint::black_box(&r), &mut buf).expect("encode");
            buf.len()
        })
    });
    group.bench_function("decode_row", |b| {
        b.iter(|| decode_row(&s, std::hint::black_box(&encoded)).expect("decode"))
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let s = webpage_schema();
    let dir = std::env::temp_dir().join("manimal-criterion");
    std::fs::create_dir_all(&dir).expect("dir");
    let path = dir.join(format!("bench-{}.idx", std::process::id()));
    let mut w = BTreeWriter::create(&path, Arc::clone(&s)).expect("writer");
    for i in 0..50_000i64 {
        let r = sample_record(&s, i);
        w.append(&Value::Int(i), &Value::Int(i), &r)
            .expect("append");
    }
    w.finish().expect("finish");
    let idx = BTreeIndex::open(&path).expect("open");

    let mut group = c.benchmark_group("btree");
    group.bench_function("point_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % 50_000;
            idx.lookup(&Value::Int(k)).expect("lookup").len()
        })
    });
    group.bench_function("range_scan_1k", |b| {
        b.iter(|| {
            idx.scan(
                ScanBound::Incl(Value::Int(10_000)),
                ScanBound::Excl(Value::Int(11_000)),
            )
            .expect("scan")
            .count()
        })
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let s = webpage_schema();
    let f = select_map();
    let v: Value = sample_record(&s, 77).into();
    let mut group = c.benchmark_group("interpreter");
    group.throughput(Throughput::Elements(1));
    group.bench_function("map_invocation", |b| {
        b.iter_batched(
            || Interpreter::new(&f),
            |mut interp| {
                interp
                    .invoke_map(&f, &Value::Int(0), std::hint::black_box(&v))
                    .expect("invoke")
                    .emits
                    .len()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("map_invocation_reused", |b| {
        let mut interp = Interpreter::new(&f);
        b.iter(|| {
            interp
                .invoke_map(&f, &Value::Int(0), std::hint::black_box(&v))
                .expect("invoke")
                .emits
                .len()
        })
    });
    group.finish();
}

fn bench_analyzer(c: &mut Criterion) {
    let program = Program::new("bench", select_map(), webpage_schema());
    c.bench_function("analyzer/full_report", |b| {
        b.iter(|| analyze(std::hint::black_box(&program)))
    });
    let b4 = mr_workloads::pavlo::benchmark4();
    c.bench_function("analyzer/benchmark4_loops", |b| {
        b.iter(|| analyze(std::hint::black_box(&b4)))
    });
}

criterion_group!(
    benches,
    bench_varint,
    bench_rowcodec,
    bench_btree,
    bench_interpreter,
    bench_analyzer
);
criterion_main!(benches);
