//! Table 5 — delta-compression on numeric fields.
//!
//! The job sums `duration` grouped by `destURL` (without emitting the
//! URL). Following the paper, non-essential fields are first projected
//! away; the comparison is then projected-uncompressed ("Hadoop") vs.
//! projected+delta-compressed ("Manimal") input.
//!
//! Paper: 123.65 GB original → 20.99 GB post-projection → 11.05 GB
//! delta-compressed (47% space saving), runtime 935.6s → 892.6s (1.05x):
//! "delta compression gives a large space savings … but yields only a
//! moderate performance boost."

use std::sync::Arc;

use manimal::{Builtin, IndexKind, Manimal};
use mr_workloads::data::{generate_uservisits, UserVisitsConfig};
use mr_workloads::queries::duration_sum_query;

fn main() {
    bench::banner(
        "Table 5 — delta compression",
        "Sum durations grouped by destURL over UserVisits. Paper: 47% space\n\
         saving on the projected input, 1.05x speedup.",
    );
    let dir = bench::bench_dir("table5");
    let input = dir.join("uservisits.seq");
    generate_uservisits(
        &input,
        &UserVisitsConfig {
            visits: bench::scaled(300_000),
            pages: bench::scaled(10_000),
            ..UserVisitsConfig::default()
        },
    )
    .expect("generate uservisits");
    let original_size = std::fs::metadata(&input).expect("meta").len();

    let program = duration_sum_query();
    let manimal = Manimal::new(dir.join("work")).expect("manimal");
    let submission = manimal.submit(&program, &input);

    // Paper methodology: "we projected out all non-numeric fields; we
    // then delta-compressed visitDate, adRevenue, duration". The group
    // key destURL is kept so the query still runs.
    let delta_fields: Vec<String> = submission
        .report
        .delta
        .descriptor()
        .expect("delta detected")
        .fields
        .clone();
    let mut used = vec!["destURL".to_string()];
    used.extend(delta_fields.iter().cloned());

    // "Hadoop" side: projection only.
    let proj_prog = manimal::IndexGenProgram {
        kind: IndexKind::Projection {
            fields: used.clone(),
        },
        input: input.clone(),
        output: dir.join("uservisits.proj.idx"),
        key_expr: None,
        view_ranges: vec![],
    };
    let proj_entry = proj_prog.run().expect("projection build");

    // "Manimal" side: projection + delta.
    let delta_prog = manimal::IndexGenProgram {
        kind: IndexKind::Delta {
            fields: delta_fields.clone(),
            projected: Some(used.clone()),
        },
        input: input.clone(),
        output: dir.join("uservisits.projdelta.idx"),
        key_expr: None,
        view_ranges: vec![],
    };
    let delta_entry = manimal.build_index(&delta_prog).expect("delta build");

    // Run both physical plans through the fabric directly.
    use mr_engine::{run_job, InputBinding, InputSpec, IrMapperFactory, JobConfig, OutputSpec};
    let job_with = |input_spec: InputSpec| JobConfig {
        name: "duration-sum".into(),
        inputs: vec![InputBinding {
            input: input_spec,
            mapper: IrMapperFactory::new(program.mapper.clone()),
            join: None,
        }],
        num_reducers: 4,
        reducer: Arc::new(Builtin::SumDropKey),
        output: OutputSpec::InMemory,
        map_parallelism: mr_engine::job::available_parallelism(),
        sort_output: true,
        shuffle_buffer_bytes: None,
        shuffle_compression: Default::default(),
        spill_dir: None,
        dict_store: None,
        combiner: None,
        max_task_attempts: 1,
        fault_plan: None,
        spill_writer_threads: 1,
        buffer_pool: None,
        backend: Default::default(),
    };

    let (proj_time, proj_result) = bench::time_runs(|| {
        run_job(&job_with(InputSpec::Projected {
            path: proj_entry.index_path.clone(),
            source_schema: Arc::clone(&program.value_schema),
        }))
        .expect("projected run")
    });
    let (delta_time, delta_result) = bench::time_runs(|| {
        run_job(&job_with(InputSpec::Delta {
            path: delta_entry.index_path.clone(),
            widen_to: Some(Arc::clone(&program.value_schema)),
        }))
        .expect("delta run")
    });
    assert_eq!(
        proj_result.output, delta_result.output,
        "outputs must match"
    );

    let saving = 1.0 - delta_entry.index_bytes as f64 / proj_entry.index_bytes as f64;
    // The paper's 47% is measured on a numerics-only file; isolate the
    // numeric columns here too: every byte the delta file saves comes
    // from them, and fixed-width they cost 8+4+4 = 16 bytes per record.
    let records = mr_storage::seqfile::SeqFileMeta::open(&proj_entry.index_path)
        .expect("projected meta")
        .record_count;
    let numeric_fixed = 16 * records;
    let numeric_saving = (proj_entry
        .index_bytes
        .saturating_sub(delta_entry.index_bytes)) as f64
        / numeric_fixed.max(1) as f64;
    bench::print_table(
        &["", "Hadoop (projected)", "Manimal (proj+delta)"],
        &[
            vec![
                "Original file size".into(),
                bench::fmt_bytes(original_size),
                bench::fmt_bytes(original_size),
            ],
            vec![
                "Post-projection size".into(),
                bench::fmt_bytes(proj_entry.index_bytes),
                bench::fmt_bytes(proj_entry.index_bytes),
            ],
            vec![
                "Input size (delta)".into(),
                "-".into(),
                bench::fmt_bytes(delta_entry.index_bytes),
            ],
            vec![
                "Running time".into(),
                bench::fmt_secs(proj_time),
                bench::fmt_secs(delta_time),
            ],
            vec![
                "Speedup".into(),
                "1.00".into(),
                format!("{:.2}", proj_time.as_secs_f64() / delta_time.as_secs_f64()),
            ],
        ],
    );
    println!(
        "\nwhole-file space saving: {:.0}%; numeric-column saving: {:.0}% (paper: ~47%\n\
         on its numerics-only file); paper speedup: 1.05x",
        saving * 100.0,
        numeric_saving * 100.0
    );
    println!("delta fields: [{}]", delta_fields.join(", "));
}
