//! Figures 4 and 5 — the control-flow graph and use-def structure of
//! the paper's §2 example, plus the selection formula the analyzer
//! derives from them (Fig. 1's optimization descriptor).

use mr_analysis::cfg::Cfg;
use mr_analysis::dataflow::ReachingDefs;
use mr_analysis::usedef::{DagOptions, UseDef};
use mr_analysis::{analyze, SelectOutcome};
use mr_ir::asm::parse_function;
use mr_ir::Program;
use mr_workloads::data::webpages_schema;

const SOURCE: &str = r#"
func map(key, value) {
  r0 = param value
  r1 = field r0.rank
  r2 = const 1
  r3 = cmp gt r1, r2
  br r3, then, exit
then:
  r4 = param key
  emit r4, r2
exit:
  ret
}
"#;

fn main() {
    println!("The paper's Section 2 example:");
    println!("  void map(String k, WebPage v) {{ if (v.rank > 1) emit(k, 1); }}");
    println!("\ncompiled MR-IR:{SOURCE}");

    let func = parse_function(SOURCE).expect("parse");
    mr_ir::verify::verify(&func).expect("verify");

    // ---- Figure 4: the control flow graph -------------------------------
    println!("--- Figure 4: control flow graph ---");
    let cfg = Cfg::build(&func);
    print!("{}", cfg.render(&func));

    // ---- Figure 5: use-def chains ---------------------------------------
    println!("\n--- Figure 5: use-def chains ---");
    let rd = ReachingDefs::compute(&func, &cfg);
    for (pc, instr) in func.instrs.iter().enumerate() {
        for reg in instr.uses() {
            let defs = rd.reaching(&func, &cfg, pc, reg);
            let defs_str: Vec<String> = defs
                .iter()
                .map(|&d| format!("{} @{d}", func.instrs[d]))
                .collect();
            println!(
                "  use of {reg} at {pc} [{instr}] <- {}",
                defs_str.join(", ")
            );
        }
    }

    // The use-def DAG seeded from the emit (paper: getUseDef).
    let ud = UseDef::new(&func, &cfg, &rd);
    let emit_pc = func.emit_sites()[0];
    if let mr_ir::Instr::Emit { key, value } = &func.instrs[emit_pc] {
        let dag = ud.collect(&[(emit_pc, *key), (emit_pc, *value)], DagOptions::default());
        println!("\n  emit-seeded use-def DAG:");
        println!("    value-param fields read : {:?}", dag.value_fields);
        println!("    member variables        : {:?}", dag.members);
        println!("    library calls           : {:?}", dag.calls);
        println!("    uses key param          : {}", dag.uses_key_param);
    }

    // ---- The resulting optimization descriptor (Fig. 1) ------------------
    println!("\n--- Optimization descriptors (Fig. 1) ---");
    let program = Program::new("fig-example", func, webpages_schema());
    let report = analyze(&program);
    print!("{report}");
    if let SelectOutcome::Selection(d) = &report.selection {
        println!("\nSELECT descriptor: {d}");
    }
}
