//! Scale table — the external shuffle under shrinking memory budgets.
//!
//! Not a paper table: this exercises the engine's spill-to-disk shuffle
//! on the Pavlo et al. aggregation task (`SELECT sourceIP,
//! SUM(adRevenue) FROM UserVisits GROUP BY sourceIP`), whose
//! near-distinct keys defeat map-side combining — the intermediate data
//! is as large as the projected input, so it is the workload where an
//! in-memory shuffle hits the RAM wall first.
//!
//! The first row runs unbounded (the seed behaviour) to size the
//! shuffle; the remaining rows cap `shuffle_buffer_bytes` at shrinking
//! fractions of that size, forcing spills, and report the spill
//! counters plus per-phase timings so the spill cost is attributable.
//! Every capped run's output is asserted equal to the unbounded run's.

use mr_engine::{run_job, Builtin, InputSpec, JobConfig, JobResult};
use mr_json::Json;
use mr_workloads::data::{generate_uservisits, UserVisitsConfig};
use mr_workloads::pavlo::benchmark2;

fn main() {
    bench::worker_guard();
    bench::banner(
        "Scale — external shuffle vs. memory budget",
        "SELECT sourceIP, SUM(adRevenue) FROM UserVisits GROUP BY sourceIP.\n\
         Budget ∞ keeps the whole shuffle resident; capped rows spill\n\
         sorted runs and k-way merge them at reduce time. Outputs are\n\
         asserted identical across all rows.",
    );
    let dir = bench::bench_dir("scale-shuffle");
    let input = dir.join("uservisits.seq");
    let visits = bench::scaled(80_000);
    generate_uservisits(
        &input,
        &UserVisitsConfig {
            visits,
            ..UserVisitsConfig::default()
        },
    )
    .expect("generate uservisits");
    let input_size = std::fs::metadata(&input).expect("meta").len();
    println!("input: {visits} visits, {}\n", bench::fmt_bytes(input_size));

    let program = benchmark2();
    let job = |budget: Option<usize>| {
        let mut j = JobConfig::ir_job(
            "revenue-by-ip",
            InputSpec::SeqFile {
                path: input.clone(),
            },
            program.mapper.clone(),
            Builtin::Sum,
        )
        .with_reducers(4)
        .with_spill_dir(&dir);
        j.shuffle_buffer_bytes = budget;
        bench::apply_fault_env(&mut j);
        j
    };
    if let (Some(plan), attempts) = bench::fault_env() {
        println!("fault drill: {plan} (max {attempts} attempts per task)\n");
    }

    // Size the budgets off the real shuffle volume so the table forces
    // spills at every scale, --smoke included.
    let (unbounded_time, unbounded) = bench::time_runs(|| run_job(&job(None)).expect("unbounded"));
    let shuffle_size = unbounded.counters.shuffle_bytes as usize;
    let row = |label: &str, time: std::time::Duration, r: &JobResult| {
        vec![
            label.to_string(),
            r.counters.spill_count.to_string(),
            r.counters.spilled_records.to_string(),
            bench::fmt_bytes(r.counters.spill_bytes_written),
            bench::fmt_secs(r.phases.map),
            bench::fmt_secs(r.phases.shuffle),
            bench::fmt_secs(r.phases.reduce),
            bench::fmt_secs(time),
        ]
    };
    let json_row =
        |label: &str, budget: Option<usize>, time: std::time::Duration, r: &JobResult| {
            Json::obj([
                ("budget", Json::str(label)),
                (
                    "budget_bytes",
                    budget.map_or(Json::Null, |b| Json::Int(b as i64)),
                ),
                ("spill_count", Json::Int(r.counters.spill_count as i64)),
                (
                    "spilled_records",
                    Json::Int(r.counters.spilled_records as i64),
                ),
                (
                    "spill_bytes",
                    Json::Int(r.counters.spill_bytes_written as i64),
                ),
                ("map_secs", bench::json_secs(r.phases.map)),
                ("shuffle_secs", bench::json_secs(r.phases.shuffle)),
                ("reduce_secs", bench::json_secs(r.phases.reduce)),
                ("total_secs", bench::json_secs(time)),
            ])
        };

    let mut rows = vec![row("∞ (resident)", unbounded_time, &unbounded)];
    let mut json_rows = vec![json_row("resident", None, unbounded_time, &unbounded)];
    for (label, divisor) in [("shuffle/2", 2), ("shuffle/8", 8), ("shuffle/32", 32)] {
        let budget = (shuffle_size / divisor).max(64);
        let (time, result) = bench::time_runs(|| run_job(&job(Some(budget))).expect("capped run"));
        assert_eq!(
            result.output, unbounded.output,
            "{label}: spilled output must equal the resident path"
        );
        assert!(
            result.counters.spill_count > 0,
            "{label}: a budget below the shuffle size must spill"
        );
        rows.push(row(
            &format!("{label} ({})", bench::fmt_bytes(budget as u64)),
            time,
            &result,
        ));
        json_rows.push(json_row(label, Some(budget), time, &result));
    }

    println!(
        "shuffle volume: {} across 4 reducers\n",
        bench::fmt_bytes(shuffle_size as u64)
    );
    bench::print_table(
        &[
            "Budget",
            "Spills",
            "Spilled recs",
            "Spill bytes",
            "Map",
            "Shuffle (attr)",
            "Reduce",
            "Total",
        ],
        &rows,
    );
    bench::write_bench_json(
        "shuffle",
        Json::obj([
            ("visits", Json::Int(visits as i64)),
            ("input_bytes", Json::Int(input_size as i64)),
            ("shuffle_bytes", Json::Int(shuffle_size as i64)),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}
