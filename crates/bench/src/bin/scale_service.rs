//! Scale table — `manimald` under concurrent clients.
//!
//! Not a paper table: this drives the job service the way a shared
//! deployment would — N clients over one Unix socket, one catalog, one
//! buffer pool — and proves the three service policies from outside the
//! process:
//!
//! * **dedup drill**: two clients submit the identical job with index
//!   builds; the daemon runs ONE build (`index_builds_deduped ≥ 1`) and
//!   both replies are byte-identical to a cold single-instance run;
//! * **warm cache**: an identical resubmission is served from the LRU
//!   (`cache_hit`, `cache_hits > 0`) and is much cheaper than the cold
//!   run;
//! * **rejection drill** (self-hosted only): a one-slot, zero-queue
//!   daemon turns a second concurrent client away with a *typed*
//!   rejection;
//! * **throughput**: N clients × M submissions each, reporting
//!   jobs/sec and p50/p95/p99 latency.
//!
//! Set `MANIMALD_SOCKET` to aim the drills at an externally started
//! daemon (CI's `service-smoke` job does); otherwise the bench hosts
//! its own. `MANIMAL_SERVICE_CLIENTS` sets the client count (default 4).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use manimal::service::proto::JobRequest;
use manimal::service::{start, ServiceClient, ServiceConfig, StatsSnapshot, SubmitOutcome};
use manimal::{Builtin, Manimal};
use mr_ir::printer::to_asm;
use mr_json::Json;
use mr_workloads::data::{generate_webpages, WebPagesConfig};
use mr_workloads::queries::{selection_query, threshold_for_selectivity};

fn clients() -> usize {
    std::env::var("MANIMAL_SERVICE_CLIENTS")
        .ok()
        .map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|n| *n >= 1)
                .unwrap_or_else(|| panic!("MANIMAL_SERVICE_CLIENTS: bad value `{v}`"))
        })
        .unwrap_or(4)
}

fn webpages(dir: &Path, name: &str, pages: usize) -> PathBuf {
    let path = dir.join(name);
    generate_webpages(
        &path,
        &WebPagesConfig {
            pages,
            content_size: 200,
            ..WebPagesConfig::default()
        },
    )
    .expect("generate webpages");
    path
}

fn request(input: &Path, build_indexes: bool) -> JobRequest {
    let program = selection_query(threshold_for_selectivity(10));
    JobRequest {
        name: "scale-service".into(),
        program_asm: to_asm(&program.mapper),
        input: input.to_path_buf(),
        reducer: "count".into(),
        reduce_ir: None,
        build_indexes,
        baseline: false,
    }
}

fn submit_ok(socket: &Path, req: &JobRequest) -> manimal::service::proto::JobReply {
    match ServiceClient::connect(socket)
        .expect("connect")
        .submit(req)
        .expect("submit")
    {
        SubmitOutcome::Completed(reply) => reply,
        SubmitOutcome::Rejected(r) => panic!("unexpected rejection: {r}"),
    }
}

fn stats_of(socket: &Path) -> StatsSnapshot {
    ServiceClient::connect(socket)
        .expect("connect")
        .stats()
        .expect("stats")
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    bench::worker_guard();
    bench::banner(
        "Scale — manimald under concurrent clients",
        "One daemon, one catalog, one buffer pool; N clients over the\n\
         Unix socket. Proves in-flight index-build dedup, LRU cache\n\
         reuse, typed admission rejections, and service throughput.",
    );
    let dir = bench::bench_dir("scale-service");
    let n_clients = clients();

    // An externally started daemon (CI service-smoke), or our own.
    let external = std::env::var("MANIMALD_SOCKET").ok().map(PathBuf::from);
    let (socket, handle) = match &external {
        Some(sock) => {
            println!("driving external daemon at {}\n", sock.display());
            (sock.clone(), None)
        }
        None => {
            let cfg = ServiceConfig::new(dir.join("manimald.sock"), dir.join("daemon-work"));
            let socket = cfg.socket.clone();
            (socket, Some(start(cfg).expect("start daemon")))
        }
    };

    // ---- dedup drill -------------------------------------------------
    // Two clients, the identical job, index builds on. The overlap is
    // probabilistic (the loser must arrive while the winner builds), so
    // retry on fresh inputs; every attempt asserts "at most one build"
    // regardless.
    let mut deduped = 0u64;
    let mut attempts = 0u64;
    let mut dedup_replies = Vec::new();
    let mut dedup_input = PathBuf::new();
    for attempt in 0..3 {
        attempts = attempt + 1;
        let input = webpages(
            &dir,
            &format!("dedup-{}-{attempt}.seq", std::process::id()),
            bench::scaled(20_000),
        );
        let req = request(&input, true);
        let before = stats_of(&socket);
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (socket, req) = (socket.clone(), req.clone());
                std::thread::spawn(move || submit_ok(&socket, &req))
            })
            .collect();
        dedup_replies = workers.into_iter().map(|t| t.join().unwrap()).collect();
        let after = stats_of(&socket);
        assert!(
            after.index_builds - before.index_builds <= 1,
            "one descriptor, one build: {} -> {}",
            before.index_builds,
            after.index_builds
        );
        deduped = after.index_builds_deduped - before.index_builds_deduped;
        dedup_input = input;
        if deduped > 0 {
            break;
        }
    }
    assert!(
        deduped >= 1,
        "no attempt overlapped an in-flight index build"
    );
    assert_eq!(
        dedup_replies[0].output_hex, dedup_replies[1].output_hex,
        "both dedup clients must see the same output"
    );
    // Byte-identity against a cold, single-instance local run.
    let local = Manimal::new(dir.join(format!("local-work-{}", std::process::id())))
        .expect("local manimal");
    let program = selection_query(threshold_for_selectivity(10));
    let submission = local.submit(&program, &dedup_input);
    let cold_local = local
        .execute_baseline(&submission, Arc::new(Builtin::Count))
        .expect("local baseline");
    assert_eq!(
        dedup_replies[0].decode_output().expect("decode"),
        cold_local.result.output,
        "service output must be byte-identical to a local run"
    );
    println!(
        "dedup drill: {deduped} build(s) deduplicated in {attempts} attempt(s); \
         output matches a cold local run\n"
    );

    // ---- warm cache --------------------------------------------------
    let req = request(&dedup_input, true);
    let before = stats_of(&socket);
    let cold_start = Instant::now();
    let miss = submit_ok(&socket, &request(&dedup_input, false));
    let cold_secs = if miss.cache_hit {
        // The dedup drill already populated this key (build_indexes is
        // not part of... it is part of the key, so only the no-build
        // variant can be warm from a previous bench run).
        Duration::ZERO
    } else {
        cold_start.elapsed()
    };
    let warm_start = Instant::now();
    let warm = submit_ok(&socket, &req);
    let warm_secs = warm_start.elapsed();
    assert!(
        warm.cache_hit,
        "identical resubmission must be served from the cache"
    );
    let after = stats_of(&socket);
    assert!(
        after.cache_hits > before.cache_hits,
        "cache_hits must advance: {} -> {}",
        before.cache_hits,
        after.cache_hits
    );
    assert_eq!(warm.output_hex, dedup_replies[0].output_hex);
    println!(
        "warm cache: cold {} -> warm {} (cache_hits {})\n",
        bench::fmt_secs(cold_secs),
        bench::fmt_secs(warm_secs),
        after.cache_hits
    );

    // ---- rejection drill (self-hosted only) --------------------------
    let rejections = if external.is_none() {
        let cfg = {
            let mut c = ServiceConfig::new(
                dir.join("reject.sock"),
                dir.join(format!("reject-work-{}", std::process::id())),
            );
            c.max_running = 1;
            c.queue_cap = 0;
            c
        };
        let rsock = cfg.socket.clone();
        let rhandle = start(cfg).expect("start rejection daemon");
        // The window between "slot observed busy" and the probe landing
        // is real: a fast machine can finish the blocking job inside
        // it. Retry with a doubling input until the probe bounces.
        let mut rejection = None;
        for attempt in 0..6 {
            let before = stats_of(&rsock);
            let slow_input = webpages(
                &dir,
                &format!("reject-{}-{attempt}.seq", std::process::id()),
                bench::scaled(20_000) << attempt,
            );
            let slow = {
                let (rsock, req) = (rsock.clone(), request(&slow_input, true));
                std::thread::spawn(move || submit_ok(&rsock, &req))
            };
            // Wait until the slow job holds the only slot…
            let raced = loop {
                let s = stats_of(&rsock);
                if s.completed > before.completed {
                    break true;
                }
                if s.admitted > before.admitted {
                    break false;
                }
                std::thread::yield_now();
            };
            if !raced {
                // …then a probe submission should bounce, typed.
                let outcome = ServiceClient::connect(&rsock)
                    .expect("connect")
                    .submit(&request(&slow_input, false))
                    .expect("submit");
                if let SubmitOutcome::Rejected(r) = outcome {
                    rejection = Some(r);
                }
            }
            slow.join().unwrap();
            if rejection.is_some() {
                break;
            }
        }
        let r = rejection.expect("blocking job kept finishing before the probe; no rejection seen");
        println!("rejection drill: typed rejection received ({r})\n");
        let stats = rhandle.shutdown().expect("shutdown rejection daemon");
        assert_eq!(stats.rejected, 1);
        Some(stats.rejected)
    } else {
        println!("rejection drill: skipped (external daemon owns its admission knobs)\n");
        None
    };

    // ---- throughput --------------------------------------------------
    // N clients × M submissions of the hot request: the steady state of
    // a shared service is cache-dominated, so this measures admission,
    // protocol, and cache — the daemon's own overhead. Cached replies
    // are sub-millisecond, so even smoke mode needs a few hundred
    // round-trips per client for jobs/sec to be gate-stable.
    let per_client = if bench::smoke() { 150 } else { 600 };
    let hot = request(&dedup_input, false);
    let wall = Instant::now();
    let threads: Vec<_> = (0..n_clients)
        .map(|_| {
            let (socket, hot) = (socket.clone(), hot.clone());
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(&socket).expect("connect");
                let mut lat = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    match client.submit(&hot).expect("submit") {
                        SubmitOutcome::Completed(_) => lat.push(t.elapsed()),
                        SubmitOutcome::Rejected(r) => panic!("throughput rejected: {r}"),
                    }
                }
                lat
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    let wall = wall.elapsed();
    latencies.sort();
    let jobs = latencies.len();
    let jobs_per_sec = jobs as f64 / wall.as_secs_f64();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    bench::print_table(
        &["clients", "jobs", "wall", "jobs/sec", "p50", "p95", "p99"],
        &[vec![
            n_clients.to_string(),
            jobs.to_string(),
            bench::fmt_secs(wall),
            format!("{jobs_per_sec:.1}"),
            bench::fmt_secs(p50),
            bench::fmt_secs(p95),
            bench::fmt_secs(p99),
        ]],
    );

    let final_stats = stats_of(&socket);
    println!("\ndaemon counters:\n{final_stats}");
    if let Some(handle) = handle {
        handle.shutdown().expect("shutdown daemon");
    }

    bench::write_bench_json(
        "service",
        Json::obj([
            ("clients", Json::Int(n_clients as i64)),
            (
                "dedup",
                Json::obj([
                    ("attempts", Json::Int(attempts as i64)),
                    ("index_builds_deduped", Json::Int(deduped as i64)),
                    ("byte_identical", Json::Bool(true)),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("cold_secs", bench::json_secs(cold_secs)),
                    ("warm_secs", bench::json_secs(warm_secs)),
                    ("cache_hits", Json::Int(final_stats.cache_hits as i64)),
                ]),
            ),
            (
                "rejections",
                rejections.map_or(Json::Null, |n| Json::Int(n as i64)),
            ),
            (
                "throughput",
                Json::obj([
                    ("jobs", Json::Int(jobs as i64)),
                    ("wall_secs", bench::json_secs(wall)),
                    ("jobs_per_sec", Json::Float(jobs_per_sec)),
                    ("p50_secs", bench::json_secs(p50)),
                    ("p95_secs", bench::json_secs(p95)),
                    ("p99_secs", bench::json_secs(p99)),
                ]),
            ),
        ]),
    );
}
