//! Scale table — block-compressed shuffle I/O across codecs.
//!
//! Not a paper table (the paper's App. C compression numbers are the
//! *index* formats — `table5`/`table6`): this prices the block-codec
//! layer under the spill path on the Pavlo aggregation task run at two
//! key cardinalities. Low cardinality (64 source IPs) makes every
//! spilled run a stretch of repeated keys — the redundancy the `dict`
//! codec collapses; near-distinct keys are the adversarial case where
//! codecs must at least not hurt correctness or blow up the file size.
//!
//! Every row caps the shuffle budget at an eighth of the measured
//! shuffle volume, so spills are guaranteed, and asserts its output
//! byte-identical to the uncompressed run. The `spill_bytes_raw` /
//! `spill_bytes_written` counters price the codec: their ratio is the
//! spill-disk I/O saved.

use mr_engine::{run_job, Builtin, InputSpec, JobConfig, JobResult, ShuffleCompression};
use mr_json::Json;
use mr_workloads::data::{generate_uservisits, UserVisitsConfig};
use mr_workloads::pavlo::benchmark2;

fn main() {
    bench::worker_guard();
    bench::banner(
        "Scale — block-compressed shuffle I/O",
        "SELECT sourceIP, SUM(adRevenue) FROM UserVisits GROUP BY sourceIP\n\
         with the shuffle budget capped at shuffle/8, swept across\n\
         ShuffleCompression codecs × key cardinality. Outputs are\n\
         asserted identical to the uncompressed run in every cell.",
    );
    let dir = bench::bench_dir("scale-compress");
    let visits = bench::scaled(60_000);
    let program = benchmark2();
    if let (Some(plan), attempts) = bench::fault_env() {
        println!("fault drill: {plan} (max {attempts} attempts per task)\n");
    }

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut low_card_checked = false;
    for (card_label, source_ips) in [("64 ips", 64usize), ("random ips", 0)] {
        let input = dir.join(format!("uservisits-{source_ips}.seq"));
        generate_uservisits(
            &input,
            &UserVisitsConfig {
                visits,
                source_ips,
                ..UserVisitsConfig::default()
            },
        )
        .expect("generate uservisits");

        let job = |codec: ShuffleCompression, budget: Option<usize>| {
            let mut j = JobConfig::ir_job(
                "revenue-by-ip",
                InputSpec::SeqFile {
                    path: input.clone(),
                },
                program.mapper.clone(),
                Builtin::Sum,
            )
            .with_reducers(4)
            .with_spill_dir(&dir);
            j.shuffle_buffer_bytes = budget;
            bench::apply_fault_env(&mut j);
            // The codec is this bin's sweep axis: explicit per row,
            // overriding any MANIMAL_SHUFFLE_CODEC ambient setting.
            j.shuffle_compression = codec;
            j
        };

        // Size the budget off the real shuffle volume, then sweep.
        let baseline = run_job(&job(ShuffleCompression::None, None)).expect("unbounded");
        let budget = (baseline.counters.shuffle_bytes as usize / 8).max(64);
        for codec in ShuffleCompression::ALL {
            let (time, result) =
                bench::time_runs(|| run_job(&job(codec, Some(budget))).expect("capped run"));
            assert_eq!(
                result.output, baseline.output,
                "{card_label}/{codec}: compressed output must equal the uncompressed path"
            );
            assert!(
                result.counters.spill_count > 0,
                "{card_label}/{codec}: a budget below the shuffle size must spill"
            );
            let c = &result.counters;
            if codec == ShuffleCompression::Dict && source_ips > 0 {
                assert!(
                    c.spill_bytes_written < c.spill_bytes_raw,
                    "low-cardinality dict must shrink spills: {} written vs {} raw",
                    c.spill_bytes_written,
                    c.spill_bytes_raw
                );
                low_card_checked = true;
            }
            if codec == ShuffleCompression::DictTrained {
                // The trained codec must actually train, and must beat
                // the raw framing on *both* cardinalities — the whole
                // point of paying the training pass.
                assert!(c.dict_trained >= 1, "{card_label}: no dictionary trained");
                assert!(
                    c.spill_bytes_written < c.spill_bytes_raw,
                    "{card_label}/dict-trained must shrink spills: {} written vs {} raw",
                    c.spill_bytes_written,
                    c.spill_bytes_raw
                );
            }
            rows.push(codec_row(card_label, codec, time, &result));
            json_rows.push(codec_json(card_label, codec, budget, time, &result));
        }
    }
    assert!(low_card_checked, "the low-cardinality dict cell must run");

    bench::print_table(
        &[
            "Keys",
            "Codec",
            "Spills",
            "Raw bytes",
            "Written",
            "Ratio",
            "Map",
            "Shuffle (attr)",
            "Reduce",
            "Total",
        ],
        &rows,
    );
    bench::write_bench_json(
        "compress",
        Json::obj([
            ("visits", Json::Int(visits as i64)),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}

fn ratio(r: &JobResult) -> f64 {
    let raw = r.counters.spill_bytes_raw.max(1) as f64;
    r.counters.spill_bytes_written as f64 / raw
}

fn codec_row(
    card: &str,
    codec: ShuffleCompression,
    time: std::time::Duration,
    r: &JobResult,
) -> Vec<String> {
    vec![
        card.to_string(),
        codec.to_string(),
        r.counters.spill_count.to_string(),
        bench::fmt_bytes(r.counters.spill_bytes_raw),
        bench::fmt_bytes(r.counters.spill_bytes_written),
        format!("{:.2}x", ratio(r)),
        bench::fmt_secs(r.phases.map),
        bench::fmt_secs(r.phases.shuffle),
        bench::fmt_secs(r.phases.reduce),
        bench::fmt_secs(time),
    ]
}

fn codec_json(
    card: &str,
    codec: ShuffleCompression,
    budget: usize,
    time: std::time::Duration,
    r: &JobResult,
) -> Json {
    Json::obj([
        ("keys", Json::str(card)),
        ("codec", Json::str(codec.name())),
        ("budget_bytes", Json::Int(budget as i64)),
        ("spill_count", Json::Int(r.counters.spill_count as i64)),
        (
            "spill_bytes_raw",
            Json::Int(r.counters.spill_bytes_raw as i64),
        ),
        (
            "spill_bytes_written",
            Json::Int(r.counters.spill_bytes_written as i64),
        ),
        ("ratio", Json::Float(ratio(r))),
        ("map_secs", bench::json_secs(r.phases.map)),
        ("shuffle_secs", bench::json_secs(r.phases.shuffle)),
        ("reduce_secs", bench::json_secs(r.phases.reduce)),
        ("total_secs", bench::json_secs(time)),
    ])
}
