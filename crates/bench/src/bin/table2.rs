//! Table 2 — end-to-end performance on the Pavlo benchmarks.
//!
//! Paper values (5-node Hadoop cluster, 100+ GB inputs):
//! ```text
//! Benchmark-1 Selection        overhead 0.1%   429.78s →    38.35s  11.21x
//! Benchmark-2 Aggregation      overhead 20%  5,496.29s → 1,855.65s   2.96x
//! Benchmark-3 Join             overhead 11.7% 6,077.97s →  903.75s   6.73x
//! Benchmark-4 UDF Aggregation  overhead 0%         N/A         N/A   0
//! ```
//!
//! Absolute times are not comparable (this is a single-machine fabric on
//! megabytes, not a cluster on 100 GB); the *shape* — which benchmarks
//! speed up, roughly how much, and that B4 gets nothing — is the
//! reproduction target. Selectivities match the paper: 0.02% for B1 and
//! 0.095% for B3's date window.

use std::sync::Arc;

use manimal::{Builtin, Manimal};
use mr_engine::{run_job, InputBinding, InputSpec, IrMapperFactory, JobConfig, OutputSpec};
use mr_workloads::data::{
    generate_documents, generate_rankings, generate_uservisits, UserVisitsConfig, WebPagesConfig,
};
use mr_workloads::pavlo;

fn main() {
    bench::banner(
        "Table 2 — end-to-end Pavlo benchmarks",
        "Baseline full scan (\"Hadoop\") vs. the Manimal-optimized plan, plus\n\
         index space overhead. Paper speedups: 11.21x / 2.96x / 6.73x / n/a.",
    );
    let dir = bench::bench_dir("table2");
    let mut rows = Vec::new();

    // ---- Benchmark 1: Selection @ 0.02% --------------------------------
    {
        let input = dir.join("rankings.seq");
        let n = bench::scaled(200_000);
        generate_rankings(&input, n, true, 11).expect("generate rankings");
        let manimal = Manimal::new(dir.join("b1-work")).expect("manimal");
        // Ranks are uniform in 0..10_000: rank > 9997 keeps 2/10000 = 0.02%.
        let program = pavlo::benchmark1(9997);
        let submission = manimal.submit(&program, &input);
        let entries = manimal.build_indexes(&submission).expect("index");
        let overhead = entries
            .iter()
            .map(manimal::CatalogEntry::space_overhead)
            .fold(0.0, f64::max);

        let (hadoop, base) = bench::time_runs(|| {
            manimal
                .execute_baseline(&submission, Arc::new(Builtin::First))
                .expect("baseline")
        });
        let (opt, run) = bench::time_runs(|| {
            manimal
                .execute(&submission, Arc::new(Builtin::First))
                .expect("optimized")
        });
        assert!(run.applied.iter().any(|a| a.contains("selection")));
        assert_eq!(run.result.output, base.result.output);
        println!(
            "B1 map invocations: {} -> {} (this fabric has no per-job startup\n\
             cost, so the speedup approaches 1/selectivity instead of the\n\
             paper's startup-bounded 11.2x)",
            base.result.counters.map_invocations, run.result.counters.map_invocations
        );
        rows.push(vec![
            "Benchmark-1".into(),
            "Selection".into(),
            format!("{:.1}%", overhead * 100.0),
            bench::fmt_secs(hadoop),
            bench::fmt_secs(opt),
            format!("{:.2}", hadoop.as_secs_f64() / opt.as_secs_f64()),
        ]);
    }

    // ---- Benchmark 2: Aggregation ---------------------------------------
    {
        let input = dir.join("uservisits-b2.seq");
        generate_uservisits(
            &input,
            &UserVisitsConfig {
                visits: bench::scaled(150_000),
                pages: bench::scaled(10_000),
                ..UserVisitsConfig::default()
            },
        )
        .expect("generate uservisits");
        let manimal = Manimal::new(dir.join("b2-work")).expect("manimal");
        let program = pavlo::benchmark2();
        let submission = manimal.submit(&program, &input);
        let entries = manimal.build_indexes(&submission).expect("index");
        let overhead = entries
            .iter()
            .map(manimal::CatalogEntry::space_overhead)
            .fold(0.0, f64::max);

        let (hadoop, base) = bench::time_runs(|| {
            manimal
                .execute_baseline(&submission, Arc::new(Builtin::Sum))
                .expect("baseline")
        });
        let (opt, run) = bench::time_runs(|| {
            manimal
                .execute(&submission, Arc::new(Builtin::Sum))
                .expect("optimized")
        });
        assert!(!run.applied.is_empty());
        println!(
            "B2 input bytes: {} -> {} ({:.1}x less; the paper's 2.96x came from\n\
             this byte reduction on a disk-bound cluster)",
            bench::fmt_bytes(base.result.counters.input_bytes),
            bench::fmt_bytes(run.result.counters.input_bytes),
            base.result.counters.input_bytes as f64 / run.result.counters.input_bytes.max(1) as f64
        );
        rows.push(vec![
            "Benchmark-2".into(),
            "Aggregation".into(),
            format!("{:.1}%", overhead * 100.0),
            bench::fmt_secs(hadoop),
            bench::fmt_secs(opt),
            format!("{:.2}", hadoop.as_secs_f64() / opt.as_secs_f64()),
        ]);
    }

    // ---- Benchmark 3: Join ----------------------------------------------
    {
        let rankings = dir.join("rankings-b3.seq");
        let visits = dir.join("uservisits-b3.seq");
        generate_rankings(&rankings, bench::scaled(20_000), false, 13).expect("rankings");
        let uv_cfg = UserVisitsConfig {
            visits: bench::scaled(150_000),
            pages: bench::scaled(20_000),
            ..UserVisitsConfig::default()
        };
        generate_uservisits(&visits, &uv_cfg).expect("uservisits");

        // A date window covering 0.095% of the uniform date range.
        let (lo, hi) = pavlo::benchmark3_date_window(&uv_cfg, 0.00095);
        let visits_program = pavlo::benchmark3_visits_mapper(lo, hi);
        let rankings_program = pavlo::benchmark3_rankings_mapper();

        let manimal = Manimal::new(dir.join("b3-work")).expect("manimal");
        let submission = manimal.submit(&visits_program, &visits);
        let entries = manimal.build_indexes(&submission).expect("index");
        let overhead = entries
            .iter()
            .map(manimal::CatalogEntry::space_overhead)
            .fold(0.0, f64::max);
        let visits_plan = manimal.plan(&submission).expect("plan");
        assert!(
            visits_plan.applied.iter().any(|a| a.contains("selection")),
            "visits side must use the date index: {:?}",
            visits_plan.applied
        );

        let join_job = |visits_input: InputSpec| JobConfig {
            name: "pavlo-bench3-join".into(),
            inputs: vec![
                InputBinding {
                    input: InputSpec::SeqFile {
                        path: rankings.clone(),
                    },
                    mapper: IrMapperFactory::new(rankings_program.mapper.clone()),
                    join: None,
                },
                InputBinding {
                    input: visits_input,
                    mapper: IrMapperFactory::new(visits_program.mapper.clone()),
                    join: None,
                },
            ],
            num_reducers: 4,
            reducer: Arc::new(pavlo::JoinReducer),
            output: OutputSpec::InMemory,
            map_parallelism: mr_engine::job::available_parallelism(),
            sort_output: true,
            shuffle_buffer_bytes: None,
            shuffle_compression: Default::default(),
            spill_dir: None,
            dict_store: None,
            combiner: None,
            max_task_attempts: 1,
            fault_plan: None,
            spill_writer_threads: 1,
            buffer_pool: None,
            backend: Default::default(),
        };

        let (hadoop, base_result) = bench::time_runs(|| {
            run_job(&join_job(InputSpec::SeqFile {
                path: visits.clone(),
            }))
            .expect("baseline join")
        });
        let (opt, opt_result) = bench::time_runs(|| {
            run_job(&join_job(visits_plan.input.clone())).expect("optimized join")
        });
        assert_eq!(
            base_result.output, opt_result.output,
            "join outputs must match"
        );
        rows.push(vec![
            "Benchmark-3".into(),
            "Join".into(),
            format!("{:.1}%", overhead * 100.0),
            bench::fmt_secs(hadoop),
            bench::fmt_secs(opt),
            format!("{:.2}", hadoop.as_secs_f64() / opt.as_secs_f64()),
        ]);
    }

    // ---- Benchmark 4: UDF Aggregation (nothing detected) -----------------
    {
        let input = dir.join("documents.seq");
        generate_documents(
            &input,
            &WebPagesConfig {
                pages: bench::scaled(5_000),
                content_size: 600,
                ..WebPagesConfig::default()
            },
        )
        .expect("documents");
        let manimal = Manimal::new(dir.join("b4-work")).expect("manimal");
        let program = pavlo::benchmark4();
        let submission = manimal.submit(&program, &input);
        assert!(
            submission.index_programs.is_empty(),
            "no optimization applies to Benchmark 4"
        );
        rows.push(vec![
            "Benchmark-4".into(),
            "UDF Aggregation".into(),
            "0%".into(),
            "N/A".into(),
            "N/A".into(),
            "0".into(),
        ]);
    }

    bench::print_table(
        &[
            "Test",
            "Description",
            "Space Overhead",
            "Hadoop",
            "Manimal",
            "Speedup",
        ],
        &rows,
    );
    println!("\npaper: 0.1% / 11.21x; 20% / 2.96x; 11.7% / 6.73x; n/a");
}
