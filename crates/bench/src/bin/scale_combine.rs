//! Scale table — map-side combining across key cardinality × shuffle
//! budget.
//!
//! Not a paper table: this prices the PR's analysis-proven combiners on
//! the Pavlo aggregation task (`SELECT sourceIP, SUM(adRevenue) FROM
//! UserVisits GROUP BY sourceIP`), with the generator's `source_ips`
//! knob setting the group-by cardinality. On low-cardinality group-bys
//! the combiner folds nearly every emitted pair before it travels the
//! shuffle — spill bytes collapse — while near-distinct keys leave it
//! nothing to fold (the regime `scale_shuffle` measures). Every
//! combined run's output is asserted byte-identical to its
//! combiner-free twin.

use mr_engine::{run_job, Builtin, InputSpec, JobConfig, JobResult};
use mr_json::Json;
use mr_workloads::data::{generate_uservisits, UserVisitsConfig};
use mr_workloads::pavlo::benchmark2;

fn main() {
    bench::worker_guard();
    bench::banner(
        "Scale — map-side combining vs. key cardinality × shuffle budget",
        "SELECT sourceIP, SUM(adRevenue) FROM UserVisits GROUP BY sourceIP.\n\
         Rows sweep the number of distinct sourceIPs and the shuffle\n\
         budget; each row runs the spill pipeline with combining off,\n\
         then on. Outputs are asserted identical; `combine in→out` is\n\
         the folding the three combine sites did.",
    );
    let dir = bench::bench_dir("scale-combine");
    let visits = bench::scaled(60_000);
    let program = benchmark2();
    if let (Some(plan), attempts) = bench::fault_env() {
        println!("fault drill: {plan} (max {attempts} attempts per task)\n");
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();

    // 0 = the generator's fully-random IPs (near-distinct keys).
    for cardinality in [16usize, 1024, 0] {
        let input = dir.join(format!("uservisits-{cardinality}.seq"));
        generate_uservisits(
            &input,
            &UserVisitsConfig {
                visits,
                source_ips: cardinality,
                ..UserVisitsConfig::default()
            },
        )
        .expect("generate uservisits");

        let job = |budget: Option<usize>, combining: bool| {
            let mut j = JobConfig::ir_job(
                "revenue-by-ip",
                InputSpec::SeqFile {
                    path: input.clone(),
                },
                program.mapper.clone(),
                Builtin::Sum,
            )
            .with_reducers(4)
            .with_spill_dir(&dir);
            j.shuffle_buffer_bytes = budget;
            if combining {
                j = j.with_declared_combiner();
            }
            bench::apply_fault_env(&mut j);
            j
        };

        // Size budgets off the real shuffle volume, like scale_shuffle.
        let resident = run_job(&job(None, false)).expect("resident run");
        let shuffle_size = resident.counters.shuffle_bytes as usize;
        let card_label = if cardinality == 0 {
            "random".to_string()
        } else {
            cardinality.to_string()
        };

        for (budget_label, divisor) in [("shuffle/4", 4usize), ("shuffle/16", 16)] {
            let budget = (shuffle_size / divisor).max(64);
            let (plain_time, plain) =
                bench::time_runs(|| run_job(&job(Some(budget), false)).expect("plain run"));
            let (combined_time, combined) =
                bench::time_runs(|| run_job(&job(Some(budget), true)).expect("combined run"));
            assert_eq!(
                combined.output, plain.output,
                "cardinality {card_label}, {budget_label}: combined output must be identical"
            );
            assert!(
                combined.counters.spilled_records <= plain.counters.spilled_records,
                "combining must not grow the spill"
            );

            let ratio = |r: &JobResult| {
                if combined.counters.spill_bytes_written == 0 {
                    "∞".to_string()
                } else {
                    format!(
                        "{:.1}x",
                        r.counters.spill_bytes_written as f64
                            / combined.counters.spill_bytes_written as f64
                    )
                }
            };
            rows.push(vec![
                card_label.clone(),
                format!("{budget_label} ({})", bench::fmt_bytes(budget as u64)),
                bench::fmt_bytes(plain.counters.spill_bytes_written),
                bench::fmt_bytes(combined.counters.spill_bytes_written),
                ratio(&plain),
                format!(
                    "{}→{}",
                    combined.counters.combine_in, combined.counters.combine_out
                ),
                bench::fmt_secs(plain_time),
                bench::fmt_secs(combined_time),
            ]);
            json_rows.push(Json::obj([
                (
                    "cardinality",
                    if cardinality == 0 {
                        Json::Null
                    } else {
                        Json::Int(cardinality as i64)
                    },
                ),
                ("budget", Json::str(budget_label)),
                ("budget_bytes", Json::Int(budget as i64)),
                ("shuffle_bytes", Json::Int(shuffle_size as i64)),
                (
                    "plain_spill_bytes",
                    Json::Int(plain.counters.spill_bytes_written as i64),
                ),
                (
                    "combined_spill_bytes",
                    Json::Int(combined.counters.spill_bytes_written as i64),
                ),
                (
                    "plain_spilled_records",
                    Json::Int(plain.counters.spilled_records as i64),
                ),
                (
                    "combined_spilled_records",
                    Json::Int(combined.counters.spilled_records as i64),
                ),
                ("combine_in", Json::Int(combined.counters.combine_in as i64)),
                (
                    "combine_out",
                    Json::Int(combined.counters.combine_out as i64),
                ),
                ("plain_secs", bench::json_secs(plain_time)),
                ("combined_secs", bench::json_secs(combined_time)),
            ]));
        }
    }

    println!("input: {visits} visits per cardinality\n");
    bench::print_table(
        &[
            "Keys",
            "Budget",
            "Spill (plain)",
            "Spill (combined)",
            "Reduction",
            "Combine in→out",
            "Plain",
            "Combined",
        ],
        &rows,
    );
    bench::write_bench_json(
        "combine",
        Json::obj([
            ("visits", Json::Int(visits as i64)),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}
