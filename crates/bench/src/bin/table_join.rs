//! Join workload bench — Rankings ⋈ UserVisits under both physical
//! plans.
//!
//! Times the paper's Benchmark-3 join (Section 7.3) as a first-class
//! workload through [`Manimal::execute_join`]: once under the
//! broadcast hash-join plan and once under the repartition plan, with
//! byte-identity asserted between them — the physical plan may change
//! the wall clock, never the answer. A second section runs the
//! two-stage `filter → join` [`JobDag`] and asserts the DAG machinery's
//! observable wins: the filter stage's date index is reused (not
//! rebuilt) by the join stage, and a repeated run hits the committed
//! stage output instead of re-executing.
//!
//! Writes `BENCH_join.json` for the CI bench gate (`bench_check`
//! gates `records_per_sec` per plan row).

use std::sync::Arc;

use manimal::{
    choose_join_plan, Builtin, DagInput, DagStage, JobDag, JoinJob, JoinPlan, Manimal, StageJob,
    DEFAULT_BROADCAST_BUDGET,
};
use mr_engine::InputSpec;
use mr_json::Json;
use mr_workloads::data::{generate_rankings, generate_uservisits, UserVisitsConfig};
use mr_workloads::pavlo;

fn main() {
    bench::worker_guard();
    bench::banner(
        "Join workload — Rankings ⋈ UserVisits, both physical plans",
        "Broadcast hash join vs. repartition join over the same inputs,\n\
         byte-identity asserted, plus the two-stage filter→join DAG with\n\
         index reuse and stage-output caching.",
    );
    let dir = bench::bench_dir("table_join");

    let rankings = dir.join("rankings.seq");
    let visits = dir.join("uservisits.seq");
    generate_rankings(&rankings, bench::scaled(20_000), false, 13).expect("rankings");
    let uv_cfg = UserVisitsConfig {
        visits: bench::scaled(150_000),
        pages: bench::scaled(20_000),
        ..UserVisitsConfig::default()
    };
    generate_uservisits(&visits, &uv_cfg).expect("uservisits");

    // A wide date window (half the range) so the join output is big
    // enough to time; Table 2 keeps the paper's 0.095% selectivity.
    let (lo, hi) = pavlo::benchmark3_date_window(&uv_cfg, 0.5);
    let rankings_prog = pavlo::benchmark3_rankings_mapper();
    let visits_prog = pavlo::benchmark3_visits_mapper(lo, hi);

    let mut manimal = Manimal::new(dir.join("work")).expect("manimal");
    let (fault, attempts) = bench::fault_env();
    manimal.fault_plan = fault;
    manimal.max_task_attempts = attempts;
    if let Some(codec) = bench::shuffle_codec_env() {
        manimal.shuffle_compression = codec;
    }
    if let Some(backend) = bench::backend_env() {
        manimal.backend = backend;
    }

    let decision = choose_join_plan(&rankings, DEFAULT_BROADCAST_BUDGET, None).expect("decision");
    println!("auto decision: {decision}\n");

    // ---- both physical plans over identical inputs ----------------------
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut outputs = Vec::new();
    for plan in [JoinPlan::Broadcast, JoinPlan::Repartition] {
        let job = JoinJob {
            name: format!("bench-join-{}", plan.name()),
            build: InputSpec::SeqFile {
                path: rankings.clone(),
            },
            build_mapper: rankings_prog.mapper.clone(),
            probe: InputSpec::SeqFile {
                path: visits.clone(),
            },
            probe_mapper: visits_prog.mapper.clone(),
            plan,
        };
        let (secs, run) = bench::time_runs(|| manimal.execute_join(&job).expect("join"));
        let n = run.result.output.len() as u64;
        let rps = n as f64 / secs.as_secs_f64().max(1e-9);
        rows.push(vec![
            plan.name().to_string(),
            n.to_string(),
            bench::fmt_secs(secs),
            format!("{rps:.0}"),
        ]);
        json_rows.push(Json::obj([
            ("cell", Json::str(plan.name())),
            ("rows", Json::Int(n as i64)),
            ("total_secs", bench::json_secs(secs)),
            ("records_per_sec", Json::Float(rps)),
        ]));
        outputs.push(run.result.output);
    }
    assert!(!outputs[0].is_empty(), "degenerate join: no output rows");
    assert_eq!(
        outputs[0], outputs[1],
        "broadcast and repartition outputs must be byte-identical"
    );
    bench::print_table(&["plan", "rows", "mean time", "records/sec"], &rows);

    // ---- two-stage filter → join DAG ------------------------------------
    // Stage 1 filters the visits and registers the analyzer's date
    // index; the join stage plans its probe side against the catalog
    // and must *reuse* that index, not rebuild it.
    let dag = || JobDag {
        name: "bench3".into(),
        stages: vec![
            DagStage {
                name: "filter-visits".into(),
                job: StageJob::Map {
                    input: DagInput::Path(visits.clone()),
                    program: visits_prog.clone(),
                    reducer: Arc::new(Builtin::Identity),
                    build_index: true,
                },
            },
            DagStage {
                name: "join".into(),
                job: StageJob::Join {
                    build: DagInput::Path(rankings.clone()),
                    build_mapper: rankings_prog.clone(),
                    probe: DagInput::Path(visits.clone()),
                    probe_mapper: visits_prog.clone(),
                    plan: None,
                    broadcast_budget: DEFAULT_BROADCAST_BUDGET,
                    index_probe: true,
                },
            },
        ],
    };
    let manimal_dag = {
        let mut m = Manimal::new(dir.join("dag-work")).expect("manimal");
        m.fault_plan = manimal.fault_plan.clone();
        m.max_task_attempts = manimal.max_task_attempts;
        m.shuffle_compression = manimal.shuffle_compression;
        m.backend = manimal.backend.clone();
        m
    };
    let (dag_secs, cold) = bench::time_runs(|| manimal_dag.execute_dag(&dag()).expect("dag"));
    println!("\ndag (cold-ish): mean {}", bench::fmt_secs(dag_secs));
    for s in &cold.stages {
        println!(
            "  stage {}: {}{} ({} rows)",
            s.name,
            s.summary,
            if s.cached { " [cached]" } else { "" },
            s.rows
        );
    }
    assert!(
        cold.index_builds_reused >= 1,
        "join stage must reuse the filter stage's index, got {} reused",
        cold.index_builds_reused
    );
    let dag_join_rows = cold.stages.last().expect("stages").rows;
    assert_eq!(
        dag_join_rows,
        outputs[0].len() as u64,
        "DAG join must produce the same row count as the direct join"
    );
    let warm = manimal_dag.execute_dag(&dag()).expect("dag warm");
    assert!(
        warm.stages[0].cached,
        "second run must hit the committed stage output"
    );
    assert_eq!(warm.index_builds, 0, "warm run must build nothing");
    println!(
        "dag warm rerun: filter stage cached, {} index builds, {} reused",
        warm.index_builds, warm.index_builds_reused
    );

    bench::write_bench_json(
        "join",
        Json::obj([
            ("decision", Json::str(decision.to_string())),
            ("rows", Json::Arr(json_rows)),
            (
                "dag",
                Json::obj([
                    ("total_secs", bench::json_secs(dag_secs)),
                    ("join_rows", Json::Int(dag_join_rows as i64)),
                    ("index_builds", Json::Int(cold.index_builds as i64)),
                    (
                        "index_builds_reused",
                        Json::Int(cold.index_builds_reused as i64),
                    ),
                    ("warm_cached", Json::Bool(warm.stages[0].cached)),
                ]),
            ),
        ]),
    );
}
