//! Table 4 — projection impact at three content sizes.
//!
//! The query: `SELECT url, pageRank FROM WebPages WHERE pageRank > t`.
//! `content` is never read, so the projected file drops it; the speedup
//! grows with the fraction of bytes projected away.
//!
//! Paper configurations and speedups:
//! ```text
//! Small-1: 11.1M tuples × 510 B content,  8.13 GB  → 2.4x
//! Small-2:   27M tuples × 510 B content, 19.72 GB  → 3x
//! Large:   11.1M tuples × 10 KB content, 123.6 GB  → 27.8x
//! ```
//!
//! Only the *projection* index is built here, so the optimizer cannot
//! pick a selection plan — matching the paper's single-optimization
//! methodology.

use std::sync::Arc;

use manimal::{Builtin, IndexKind, Manimal};
use mr_workloads::data::{generate_webpages, WebPagesConfig};
use mr_workloads::queries::{projection_query, threshold_for_selectivity};

struct Config {
    name: &'static str,
    pages: usize,
    content_size: usize,
}

fn main() {
    bench::banner(
        "Table 4 — projection",
        "SELECT url, pageRank FROM WebPages WHERE pageRank > t; content is\n\
         projected away. Paper speedups: Small-1 2.4x, Small-2 3x, Large 27.8x.",
    );
    let dir = bench::bench_dir("table4");

    let configs = [
        Config {
            name: "Small-1",
            pages: bench::scaled(30_000),
            content_size: 510,
        },
        Config {
            name: "Small-2",
            pages: bench::scaled(73_000), // ~2.43x Small-1, like 27M/11.1M
            content_size: 510,
        },
        Config {
            name: "Large",
            pages: bench::scaled(30_000),
            content_size: 10 * 1024,
        },
    ];

    let mut rows = Vec::new();
    for cfg in &configs {
        let input = dir.join(format!("webpages-{}.seq", cfg.name));
        generate_webpages(
            &input,
            &WebPagesConfig {
                pages: cfg.pages,
                content_size: cfg.content_size,
                ..WebPagesConfig::default()
            },
        )
        .expect("generate webpages");
        let input_size = std::fs::metadata(&input).expect("meta").len();

        let program = projection_query(threshold_for_selectivity(50));
        let manimal = Manimal::new(dir.join(format!("work-{}", cfg.name))).expect("manimal");
        let submission = manimal.submit(&program, &input);
        // Build only the projection artifact: the analyzer recommends a
        // combined selection+projection index, but Table 4 isolates
        // projection.
        let proj_fields = submission
            .report
            .projection
            .descriptor()
            .expect("projection detected")
            .used_fields
            .clone();
        let prog = manimal::IndexGenProgram {
            kind: IndexKind::Projection {
                fields: proj_fields,
            },
            input: input.clone(),
            output: dir.join(format!("webpages-{}.proj.idx", cfg.name)),
            key_expr: None,
            view_ranges: vec![],
        };
        let entry = manimal.build_index(&prog).expect("projection index");

        let (hadoop, base) = bench::time_runs(|| {
            manimal
                .execute_baseline(&submission, Arc::new(Builtin::First))
                .expect("baseline")
        });
        let (opt, run) = bench::time_runs(|| {
            manimal
                .execute(&submission, Arc::new(Builtin::First))
                .expect("optimized")
        });
        assert!(
            run.applied.iter().any(|a| a.contains("projection")),
            "projection must apply: {:?}",
            run.applied
        );
        assert_eq!(run.result.output, base.result.output);

        rows.push(vec![
            cfg.name.to_string(),
            bench::fmt_bytes(input_size),
            cfg.pages.to_string(),
            format!("{} B", cfg.content_size),
            bench::fmt_bytes(entry.index_bytes),
            bench::fmt_secs(hadoop),
            bench::fmt_secs(opt),
            format!("{:.2}", hadoop.as_secs_f64() / opt.as_secs_f64()),
        ]);
    }

    bench::print_table(
        &[
            "Config",
            "Original size",
            "Tuples",
            "Content",
            "Index size",
            "Hadoop",
            "Manimal",
            "Speedup",
        ],
        &rows,
    );
    println!("\npaper: Small-1 2.4x, Small-2 3x, Large 27.8x");
}
