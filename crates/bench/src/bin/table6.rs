//! Table 6 — direct operation on dictionary-compressed data.
//!
//! The job sums `duration` grouped by `destURL`, never emitting the URL,
//! so `destURL` stays compressed end-to-end: the map sees integer codes
//! and grouping happens on codes. "These speedups come from several
//! sources: reduced input size, reduced intermediate data, and faster
//! sorting."
//!
//! Paper: 123.65 GB original → 76.87 GB dictionary-compressed,
//! runtime 4,048s → 1,727s (2.34x).

use std::sync::Arc;

use manimal::{Builtin, Manimal};
use mr_workloads::data::{generate_uservisits, UserVisitsConfig};
use mr_workloads::queries::duration_sum_query;

fn main() {
    bench::banner(
        "Table 6 — operating on compressed data",
        "Sum durations grouped by destURL; the URL never reaches the output,\n\
         so it is dictionary-compressed and never decompressed.\n\
         Paper speedup: 2.34x.",
    );
    let dir = bench::bench_dir("table6");
    let input = dir.join("uservisits.seq");
    generate_uservisits(
        &input,
        &UserVisitsConfig {
            visits: bench::scaled(300_000),
            pages: bench::scaled(5_000),
            ..UserVisitsConfig::default()
        },
    )
    .expect("generate uservisits");
    let original_size = std::fs::metadata(&input).expect("meta").len();

    let program = duration_sum_query();
    let manimal = Manimal::new(dir.join("work")).expect("manimal");
    let submission = manimal.submit(&program, &input);

    // Build only the dictionary artifact (the optimizer would otherwise
    // prefer the projection plan; Table 6 isolates direct-operation).
    let dict_prog = submission
        .index_programs
        .iter()
        .find(|p| matches!(p.kind, manimal::IndexKind::Dict { .. }))
        .expect("dict program recommended");
    let entry = manimal.build_index(dict_prog).expect("dict build");

    let (hadoop, base) = bench::time_runs(|| {
        manimal
            .execute_baseline(&submission, Arc::new(Builtin::SumDropKey))
            .expect("baseline")
    });
    let (opt, run) = bench::time_runs(|| {
        manimal
            .execute(&submission, Arc::new(Builtin::SumDropKey))
            .expect("optimized")
    });
    assert!(
        run.applied.iter().any(|a| a.contains("direct-operation")),
        "applied: {:?}",
        run.applied
    );
    assert_eq!(run.result.output, base.result.output, "outputs must match");

    bench::print_table(
        &["", "Hadoop", "Manimal"],
        &[
            vec![
                "Original file size".into(),
                bench::fmt_bytes(original_size),
                bench::fmt_bytes(original_size),
            ],
            vec![
                "Indexed file size".into(),
                "-".into(),
                bench::fmt_bytes(entry.index_bytes),
            ],
            vec![
                "Shuffle bytes".into(),
                bench::fmt_bytes(base.result.counters.shuffle_bytes),
                bench::fmt_bytes(run.result.counters.shuffle_bytes),
            ],
            vec![
                "Running time".into(),
                bench::fmt_secs(hadoop),
                bench::fmt_secs(opt),
            ],
            vec![
                "Speedup".into(),
                "1.00".into(),
                format!("{:.2}", hadoop.as_secs_f64() / opt.as_secs_f64()),
            ],
        ],
    );
    println!("\npaper: 123.65 GB → 76.87 GB, speedup 2.34x");
}
