//! Scale table — the spill/merge hot path's allocation tax and reduce
//! penalty.
//!
//! Not a paper table: this measures what the allocation-free pipeline
//! buys on the Pavlo aggregation task (`SELECT sourceIP,
//! SUM(adRevenue) FROM UserVisits GROUP BY sourceIP`), the workload
//! whose near-distinct keys defeat combining and stress the external
//! shuffle hardest.
//!
//! Cells cross the shuffle mode (fully resident vs a budget of
//! shuffle/32, which forces deep spilling and a wide merge) with the
//! buffer-pool configuration (a warm shared pool vs a disabled pool
//! that re-allocates every loan — the A/B control for the allocation
//! tax). One extra cell runs the spilling mode with the background
//! spill writer off (`spill_writer_threads = 0`), attributing the
//! double-buffering win separately from the pooling win. Every cell's
//! output is asserted identical.
//!
//! Build with `--features bench-alloc` to populate the `alloc_count` /
//! `alloc_bytes` columns from the counting global allocator; without
//! the feature they read 0. The derived `reduce_penalty` field —
//! reduce-phase time at shuffle/32 over reduce-phase time resident,
//! both on the warm pool — is the headline number the bench gate
//! tracks.

use std::sync::Arc;

use mr_engine::{run_job, BufferPool, Builtin, InputSpec, JobConfig, JobResult};
use mr_json::Json;
use mr_workloads::data::{generate_uservisits, UserVisitsConfig};
use mr_workloads::pavlo::benchmark2;

struct Cell {
    label: &'static str,
    budget_div: Option<usize>,
    pooled: bool,
    writer_threads: usize,
}

fn main() {
    bench::worker_guard();
    bench::banner(
        "Scale — spill/merge hot path: allocation tax and reduce penalty",
        "SELECT sourceIP, SUM(adRevenue) FROM UserVisits GROUP BY sourceIP.\n\
         Resident vs shuffle/32 budget, warm buffer pool vs disabled\n\
         pool, background vs synchronous spill writer. Outputs are\n\
         asserted identical across all cells; build with\n\
         --features bench-alloc for live allocation counters.",
    );
    let dir = bench::bench_dir("scale-hotpath");
    let input = dir.join("uservisits.seq");
    // Floor the workload: below ~80k visits the resident reduce phase
    // is a few milliseconds and the penalty ratio measures per-run
    // fixed costs (file opens, thread spawns) instead of pipeline
    // throughput. The floored smoke run still finishes in seconds.
    let visits = bench::scaled(80_000).max(80_000);
    generate_uservisits(
        &input,
        &UserVisitsConfig {
            visits,
            ..UserVisitsConfig::default()
        },
    )
    .expect("generate uservisits");

    let program = benchmark2();
    let job = |budget: Option<usize>, pool: &Arc<BufferPool>, writer_threads: usize| {
        let mut j = JobConfig::ir_job(
            "revenue-by-ip",
            InputSpec::SeqFile {
                path: input.clone(),
            },
            program.mapper.clone(),
            Builtin::Sum,
        )
        .with_reducers(4)
        .with_spill_dir(&dir)
        .with_buffer_pool(Arc::clone(pool))
        .with_spill_writer_threads(writer_threads);
        j.shuffle_buffer_bytes = budget;
        bench::apply_fault_env(&mut j);
        j
    };
    if let (Some(plan), attempts) = bench::fault_env() {
        println!("fault drill: {plan} (max {attempts} attempts per task)\n");
    }

    // Size the spilling budget off the real shuffle volume.
    let sizing_pool = BufferPool::new();
    let sizing = run_job(&job(None, &sizing_pool, 1)).expect("sizing run");
    let shuffle_size = sizing.counters.shuffle_bytes as usize;
    let budget32 = (shuffle_size / 32).max(64);
    println!(
        "shuffle volume: {}; shuffle/32 budget: {}\n",
        bench::fmt_bytes(shuffle_size as u64),
        bench::fmt_bytes(budget32 as u64)
    );

    let cells = [
        Cell {
            label: "resident pooled",
            budget_div: None,
            pooled: true,
            writer_threads: 1,
        },
        Cell {
            label: "resident no-pool",
            budget_div: None,
            pooled: false,
            writer_threads: 1,
        },
        Cell {
            label: "shuffle/32 pooled",
            budget_div: Some(32),
            pooled: true,
            writer_threads: 1,
        },
        Cell {
            label: "shuffle/32 no-pool",
            budget_div: Some(32),
            pooled: false,
            writer_threads: 1,
        },
        Cell {
            label: "shuffle/32 sync-writer",
            budget_div: Some(32),
            pooled: true,
            writer_threads: 0,
        },
    ];

    // One warm pool shared by every pooled cell, so steady state is
    // what gets measured; disabled pools are fresh per cell by design.
    let warm = BufferPool::new();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut measured: Vec<(String, std::time::Duration, JobResult)> = Vec::new();
    for cell in &cells {
        let pool = if cell.pooled {
            Arc::clone(&warm)
        } else {
            BufferPool::disabled()
        };
        let budget = cell.budget_div.map(|d| (shuffle_size / d).max(64));
        let (time, result) =
            bench::time_runs(|| run_job(&job(budget, &pool, cell.writer_threads)).expect("cell"));
        assert_eq!(
            result.output, sizing.output,
            "{}: hot-path cell must match the reference output",
            cell.label
        );
        assert_eq!(pool.outstanding(), 0, "{}: pool leak", cell.label);
        if budget.is_some() {
            assert!(
                result.counters.spill_count > 0,
                "{}: must spill",
                cell.label
            );
        }
        let rps = result.counters.map_output_records as f64 / time.as_secs_f64().max(1e-9);
        rows.push(vec![
            cell.label.to_string(),
            format!("{rps:.0}"),
            result.counters.spill_count.to_string(),
            result.counters.alloc_count.to_string(),
            bench::fmt_bytes(result.counters.alloc_bytes),
            bench::fmt_secs(result.phases.map),
            bench::fmt_secs(result.phases.reduce),
            bench::fmt_secs(time),
        ]);
        json_rows.push(Json::obj([
            ("cell", Json::str(cell.label)),
            (
                "budget_bytes",
                budget.map_or(Json::Null, |b| Json::Int(b as i64)),
            ),
            ("pooled", Json::Bool(cell.pooled)),
            ("writer_threads", Json::Int(cell.writer_threads as i64)),
            ("records_per_sec", Json::Float(rps)),
            ("spill_count", Json::Int(result.counters.spill_count as i64)),
            ("alloc_count", Json::Int(result.counters.alloc_count as i64)),
            ("alloc_bytes", Json::Int(result.counters.alloc_bytes as i64)),
            ("map_secs", bench::json_secs(result.phases.map)),
            ("shuffle_secs", bench::json_secs(result.phases.shuffle)),
            ("reduce_secs", bench::json_secs(result.phases.reduce)),
            ("total_secs", bench::json_secs(time)),
        ]));
        measured.push((cell.label.to_string(), time, result));
    }

    bench::print_table(
        &[
            "Cell",
            "Recs/sec",
            "Spills",
            "Allocs",
            "Alloc bytes",
            "Map",
            "Reduce",
            "Total",
        ],
        &rows,
    );

    let reduce_secs = |label: &str| {
        measured
            .iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, _, r)| r.phases.reduce.as_secs_f64())
            .expect("cell measured")
    };
    let alloc_count = |label: &str| {
        measured
            .iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, _, r)| r.counters.alloc_count)
            .expect("cell measured")
    };
    // The headline: how much slower the spilling reduce is than the
    // resident reduce, steady state (warm pool, background writer).
    let reduce_penalty =
        reduce_secs("shuffle/32 pooled") / reduce_secs("resident pooled").max(1e-9);
    // The allocation tax the pool removes, measurable only under
    // bench-alloc (0/0 otherwise, reported as null).
    let alloc_tax = match (
        alloc_count("shuffle/32 no-pool"),
        alloc_count("shuffle/32 pooled"),
    ) {
        (taxed, pooled) if pooled > 0 => Some(taxed as f64 / pooled as f64),
        _ => None,
    };
    println!("\nreduce penalty (shuffle/32 vs resident, warm pool): {reduce_penalty:.2}x");
    if let Some(tax) = alloc_tax {
        println!("allocation tax removed by pooling (shuffle/32): {tax:.2}x");
    }

    bench::write_bench_json(
        "hotpath",
        Json::obj([
            ("visits", Json::Int(visits as i64)),
            ("shuffle_bytes", Json::Int(shuffle_size as i64)),
            ("reduce_penalty", Json::Float(reduce_penalty)),
            ("alloc_tax", alloc_tax.map_or(Json::Null, Json::Float)),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}
