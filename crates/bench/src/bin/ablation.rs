//! Ablation: which index should the administrator build?
//!
//! Paper §2.2: "a program that would benefit from both selection and
//! projection could make use of several different indexes: one version
//! that supports selection, one that supports projection, or one that
//! supports both. The 'best' index to compute depends partially on the
//! system's index space budget and partially on the expected future
//! workload."
//!
//! This harness quantifies that trade-off for the Table 4 query
//! (`SELECT url, pageRank WHERE pageRank > t` over WebPages with large
//! content): it builds all three artifacts, reports their sizes, and
//! times the query under each plan plus the unoptimized baseline.

use std::sync::Arc;

use manimal::{Builtin, IndexKind, Manimal};
use mr_workloads::data::{generate_webpages, WebPagesConfig};
use mr_workloads::queries::{projection_query, threshold_for_selectivity};

fn main() {
    bench::banner(
        "Ablation — selection vs. projection vs. combined index",
        "The §2.2 'best index' question: three artifacts for one program,\n\
         their space budgets and their speedups.",
    );
    let dir = bench::bench_dir("ablation");
    let input = dir.join("webpages.seq");
    generate_webpages(
        &input,
        &WebPagesConfig {
            pages: bench::scaled(20_000),
            content_size: 4 * 1024,
            ..WebPagesConfig::default()
        },
    )
    .expect("generate webpages");
    let input_size = std::fs::metadata(&input).expect("meta").len();

    // 10% selectivity, url+rank used, content dropped.
    let program = projection_query(threshold_for_selectivity(10));
    let reducer = || Arc::new(Builtin::First);

    let mut rows = Vec::new();

    // Baseline.
    let baseline_output = {
        let manimal = Manimal::new(dir.join("work-none")).expect("manimal");
        let submission = manimal.submit(&program, &input);
        let (t, run) = bench::time_runs(|| {
            manimal
                .execute_baseline(&submission, reducer())
                .expect("baseline")
        });
        rows.push(vec![
            "none (full scan)".into(),
            "-".into(),
            bench::fmt_secs(t),
            "1.00".into(),
        ]);
        run.result.output.clone()
    };
    let baseline_time = {
        // Re-time the baseline alongside each plan would double-count;
        // parse it back from the row instead.
        rows[0][2]
            .trim_end_matches('s')
            .parse::<f64>()
            .expect("secs")
    };

    // The three artifacts. The combined one is what submit() recommends;
    // carve the other two out manually.
    let manimal = Manimal::new(dir.join("work")).expect("manimal");
    let submission = manimal.submit(&program, &input);
    let combined_prog = &submission.index_programs[0];
    let IndexKind::Selection {
        key,
        covered,
        projected_fields: Some(fields),
    } = combined_prog.kind.clone()
    else {
        panic!("expected combined selection+projection recommendation");
    };

    struct Variant {
        label: &'static str,
        kind: IndexKind,
        suffix: &'static str,
    }
    let variants = [
        Variant {
            label: "projection only",
            kind: IndexKind::Projection {
                fields: fields.clone(),
            },
            suffix: "proj",
        },
        Variant {
            label: "selection only",
            kind: IndexKind::Selection {
                key: key.clone(),
                covered: covered.clone(),
                projected_fields: None,
            },
            suffix: "sel",
        },
        Variant {
            label: "selection+projection",
            kind: IndexKind::Selection {
                key,
                covered,
                projected_fields: Some(fields),
            },
            suffix: "both",
        },
    ];

    for variant in variants {
        // A fresh catalog per variant so the optimizer can only pick
        // this artifact.
        let manimal = Manimal::new(dir.join(format!("work-{}", variant.suffix))).expect("manimal");
        let submission = manimal.submit(&program, &input);
        let prog = manimal::IndexGenProgram {
            kind: variant.kind,
            input: input.clone(),
            output: dir.join(format!("webpages.{}.idx", variant.suffix)),
            key_expr: combined_prog.key_expr.clone(),
            view_ranges: combined_prog.view_ranges.clone(),
        };
        let entry = manimal.build_index(&prog).expect("build");
        let (t, run) =
            bench::time_runs(|| manimal.execute(&submission, reducer()).expect("optimized"));
        assert_eq!(
            run.result.output, baseline_output,
            "{}: output must match baseline",
            variant.label
        );
        rows.push(vec![
            variant.label.into(),
            format!(
                "{} ({:.1}%)",
                bench::fmt_bytes(entry.index_bytes),
                entry.space_overhead() * 100.0
            ),
            bench::fmt_secs(t),
            format!("{:.2}", baseline_time / t.as_secs_f64()),
        ]);
    }

    println!("input: {}\n", bench::fmt_bytes(input_size));
    bench::print_table(&["Index", "Size (overhead)", "Time", "Speedup"], &rows);
    println!(
        "\nThe combined index wins on both axes for this workload — it stores\n\
         only matching records AND only used fields — at the cost of being\n\
         useless to future programs that need other fields or wider ranges\n\
         (the optimizer's coverage check enforces exactly that)."
    );
}
