//! The bench-regression gate: compare freshly generated
//! `BENCH_<name>.json` documents against the baselines committed at the
//! repo root and fail on a regression.
//!
//! Two field families gate, matched anywhere in the document tree so
//! every bench's schema participates without registration:
//!
//! * `records_per_sec` / `jobs_per_sec` — throughput; the current
//!   value must not fall more than 25% below baseline;
//! * `alloc_count` / `alloc_bytes` — the counting-allocator totals;
//!   machine-independent, so growth beyond 25% fails even when timing
//!   noise would hide it. Zero baselines (bench built without
//!   `bench-alloc`) never gate.
//! * `ratio` — spill compression ratios (written/raw byte counts, so
//!   machine-independent like the allocator totals); a ratio growing
//!   more than 25% over baseline means a codec got materially worse at
//!   its one job and fails the gate. Zero baselines never gate.
//!
//! Timing fields (`*_secs`) are machine-dependent and are reported for
//! context only — they never fail the gate.
//!
//! Usage: `bench_check --baseline <dir> --current <dir> [names…]`
//! (default names: shuffle combine compress hotpath service join). To accept a new
//! performance floor, rerun with `MANIMAL_BENCH_REBASELINE=1`: the gate
//! copies the current documents over the baselines and exits green —
//! commit the updated `BENCH_*.json` files with the change that
//! justified them. `scripts/bench.sh` reproduces the whole CI gate
//! locally.

use std::path::{Path, PathBuf};

use mr_json::Json;

/// How far a gated metric may move against us: 25%.
const TOLERANCE: f64 = 0.25;

const DEFAULT_NAMES: &[&str] = &[
    "shuffle", "combine", "compress", "hotpath", "service", "join",
];

/// One gated numeric field extracted from a document, with the JSON
/// path that locates it (for error messages).
#[derive(Debug, PartialEq)]
struct Metric {
    path: String,
    value: f64,
}

/// Walk a document collecting every numeric field with the given name.
/// Arrays extend the path with the row's `cell`/`budget` label when one
/// exists, so violations name the row a human can find.
fn collect_metrics(doc: &Json, field: &str, prefix: &str, out: &mut Vec<Metric>) {
    match doc {
        Json::Obj(members) => {
            for (k, v) in members {
                if k == field {
                    if let Some(x) = v.as_f64() {
                        out.push(Metric {
                            path: format!("{prefix}.{k}"),
                            value: x,
                        });
                    }
                } else {
                    collect_metrics(v, field, &format!("{prefix}.{k}"), out);
                }
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = item
                    .get("cell")
                    .or_else(|| item.get("budget"))
                    .or_else(|| item.get("label"))
                    .and_then(Json::as_str)
                    .map(|s| format!("[{s}]"))
                    // Compression rows are keyed by cardinality × codec.
                    .or_else(|| match (item.get("keys"), item.get("codec")) {
                        (Some(k), Some(c)) => Some(format!(
                            "[{}/{}]",
                            k.as_str().unwrap_or("?"),
                            c.as_str().unwrap_or("?")
                        )),
                        _ => None,
                    })
                    .unwrap_or_else(|| format!("[{i}]"));
                collect_metrics(item, field, &format!("{prefix}{label}"), out);
            }
        }
        _ => {}
    }
}

/// Compare one baseline/current document pair; returns human-readable
/// violations (empty = pass).
fn check_doc(name: &str, baseline: &Json, current: &Json) -> Vec<String> {
    let mut violations = Vec::new();
    // Throughput: current must reach at least (1 - TOLERANCE) × baseline.
    for (field, unit) in [
        ("records_per_sec", "records/sec"),
        ("jobs_per_sec", "jobs/sec"),
    ] {
        let mut base_rps = Vec::new();
        let mut cur_rps = Vec::new();
        collect_metrics(baseline, field, name, &mut base_rps);
        collect_metrics(current, field, name, &mut cur_rps);
        for b in &base_rps {
            let Some(c) = cur_rps.iter().find(|c| c.path == b.path) else {
                violations.push(format!("{}: metric missing from current run", b.path));
                continue;
            };
            if b.value > 0.0 && c.value < b.value * (1.0 - TOLERANCE) {
                violations.push(format!(
                    "{}: throughput regressed {:.0} -> {:.0} {unit} ({:+.1}%)",
                    b.path,
                    b.value,
                    c.value,
                    (c.value / b.value - 1.0) * 100.0
                ));
            }
        }
    }
    // Up-is-bad machine-independent metrics: allocation counters and
    // compression ratios must stay within (1 + TOLERANCE) × baseline.
    // Zero baselines (feature off / metric absent) don't gate.
    for field in ["alloc_count", "alloc_bytes", "ratio"] {
        let mut base = Vec::new();
        let mut cur = Vec::new();
        collect_metrics(baseline, field, name, &mut base);
        collect_metrics(current, field, name, &mut cur);
        for b in &base {
            let Some(c) = cur.iter().find(|c| c.path == b.path) else {
                violations.push(format!("{}: metric missing from current run", b.path));
                continue;
            };
            if b.value > 0.0 && c.value > b.value * (1.0 + TOLERANCE) {
                let what = if field == "ratio" {
                    "compression ratio"
                } else {
                    "allocations"
                };
                violations.push(format!(
                    "{}: {what} grew {:.4} -> {:.4} ({:+.1}%)",
                    b.path,
                    b.value,
                    c.value,
                    (c.value / b.value - 1.0) * 100.0
                ));
            }
        }
    }
    violations
}

fn load(path: &Path) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    mr_json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_dir = PathBuf::from(".");
    let mut current_dir = PathBuf::from(".");
    let mut names: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_dir = PathBuf::from(args.next().expect("--baseline DIR")),
            "--current" => current_dir = PathBuf::from(args.next().expect("--current DIR")),
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names = DEFAULT_NAMES.iter().map(|s| s.to_string()).collect();
    }

    let rebaseline = std::env::var("MANIMAL_BENCH_REBASELINE").is_ok_and(|v| v == "1");
    let mut all_violations = Vec::new();
    for name in &names {
        let base_path = baseline_dir.join(format!("BENCH_{name}.json"));
        let cur_path = current_dir.join(format!("BENCH_{name}.json"));
        if rebaseline {
            std::fs::copy(&cur_path, &base_path).unwrap_or_else(|e| {
                panic!(
                    "rebaseline {} -> {}: {e}",
                    cur_path.display(),
                    base_path.display()
                )
            });
            println!("rebaselined {}", base_path.display());
            continue;
        }
        let violations = check_doc(name, &load(&base_path), &load(&cur_path));
        if violations.is_empty() {
            println!("OK   {name}");
        } else {
            println!("FAIL {name}");
        }
        all_violations.extend(violations);
    }
    if !all_violations.is_empty() {
        eprintln!("\nbench gate failed:");
        for v in &all_violations {
            eprintln!("  {v}");
        }
        eprintln!(
            "\nIf this change intentionally moves the floor, regenerate the\n\
             baselines with MANIMAL_BENCH_REBASELINE=1 scripts/bench.sh and\n\
             commit the updated BENCH_*.json files."
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rps: f64, allocs: i64) -> Json {
        Json::obj([
            ("bench", Json::str("hotpath")),
            (
                "rows",
                Json::Arr(vec![Json::obj([
                    ("cell", Json::str("shuffle/32 pooled")),
                    ("records_per_sec", Json::Float(rps)),
                    ("alloc_count", Json::Int(allocs)),
                    ("total_secs", Json::Float(1.0)),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_docs_pass() {
        assert!(check_doc("hotpath", &doc(1000.0, 500), &doc(1000.0, 500)).is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        assert!(check_doc("hotpath", &doc(1000.0, 500), &doc(800.0, 600)).is_empty());
    }

    #[test]
    fn synthetic_throughput_regression_fails() {
        let violations = check_doc("hotpath", &doc(1000.0, 500), &doc(700.0, 500));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("throughput regressed"),
            "{violations:?}"
        );
        assert!(
            violations[0].contains("shuffle/32 pooled"),
            "violation names the row: {violations:?}"
        );
    }

    #[test]
    fn alloc_counter_growth_fails() {
        let violations = check_doc("hotpath", &doc(1000.0, 500), &doc(1000.0, 700));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("allocations grew"), "{violations:?}");
    }

    fn compress_doc(ratio: f64) -> Json {
        Json::obj([(
            "rows",
            Json::Arr(vec![Json::obj([
                ("keys", Json::str("64 ips")),
                ("codec", Json::str("dict-trained")),
                ("ratio", Json::Float(ratio)),
                ("total_secs", Json::Float(1.0)),
            ])]),
        )])
    }

    #[test]
    fn ratio_regression_fails_and_names_the_cell() {
        // 0.40 -> 0.55 is a 37% worse ratio: gate.
        let violations = check_doc("compress", &compress_doc(0.40), &compress_doc(0.55));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("compression ratio grew"),
            "{violations:?}"
        );
        assert!(
            violations[0].contains("64 ips/dict-trained"),
            "violation names the cardinality × codec cell: {violations:?}"
        );
    }

    #[test]
    fn ratio_drift_within_tolerance_passes() {
        assert!(check_doc("compress", &compress_doc(0.40), &compress_doc(0.48)).is_empty());
        // Improvement is always fine.
        assert!(check_doc("compress", &compress_doc(0.40), &compress_doc(0.20)).is_empty());
    }

    fn service_doc(jps: f64) -> Json {
        Json::obj([(
            "throughput",
            Json::obj([
                ("jobs_per_sec", Json::Float(jps)),
                ("p95_secs", Json::Float(0.1)),
            ]),
        )])
    }

    #[test]
    fn jobs_per_sec_regression_fails() {
        let violations = check_doc("service", &service_doc(100.0), &service_doc(50.0));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("jobs/sec"), "{violations:?}");
        // Within tolerance (or better) passes.
        assert!(check_doc("service", &service_doc(100.0), &service_doc(80.0)).is_empty());
        assert!(check_doc("service", &service_doc(100.0), &service_doc(400.0)).is_empty());
    }

    #[test]
    fn zero_alloc_baseline_never_gates() {
        // Baseline built without bench-alloc: counters are 0 and must
        // not gate whatever the current run reports.
        assert!(check_doc("hotpath", &doc(1000.0, 0), &doc(1000.0, 9999)).is_empty());
    }

    #[test]
    fn missing_metric_fails() {
        let empty = Json::obj([("bench", Json::str("hotpath"))]);
        let violations = check_doc("hotpath", &doc(1000.0, 500), &empty);
        assert!(
            violations.iter().any(|v| v.contains("missing")),
            "{violations:?}"
        );
    }

    #[test]
    fn timing_fields_do_not_gate() {
        let slow = {
            let mut d = doc(1000.0, 500);
            if let Json::Obj(members) = &mut d {
                if let Some((_, Json::Arr(rows))) = members.iter_mut().find(|(k, _)| k == "rows") {
                    if let Json::Obj(row) = &mut rows[0] {
                        for (k, v) in row.iter_mut() {
                            if k == "total_secs" {
                                *v = Json::Float(100.0);
                            }
                        }
                    }
                }
            }
            d
        };
        assert!(check_doc("hotpath", &doc(1000.0, 500), &slow).is_empty());
    }
}
