//! Table 1 — analyzer recall on the Pavlo benchmark programs.
//!
//! "For each cell in the table, we show whether the optimization was
//! successfully Detected, or went Undetected, or was simply Not Present.
//! A human observer examined the programs to see which optimizations
//! were present. The analyzer emits no false positives."
//!
//! Paper values:
//! ```text
//! Benchmark-1 Selection        Detected     Undetected   Undetected
//! Benchmark-2 Aggregation      Not Present  Detected     Detected
//! Benchmark-3 Join             Detected     Not Present  Detected
//! Benchmark-4 UDF Aggregation  Undetected   Not Present  Not Present
//! ```

use manimal::analyze;
use mr_analysis::{DeltaOutcome, ProjectOutcome, SelectOutcome};
use mr_workloads::pavlo::{self, HumanAnnotation, Presence};

/// Grade one optimization: analyzer outcome vs human annotation.
fn grade(detected: bool, human: Presence, miss_reason: Option<String>) -> String {
    match (human, detected) {
        (Presence::NotPresent, false) => "Not Present".to_string(),
        (Presence::Present, true) => "Detected".to_string(),
        (Presence::Present, false) => match miss_reason {
            Some(r) => format!("Undetected ({r})"),
            None => "Undetected".to_string(),
        },
        (Presence::NotPresent, true) => "FALSE POSITIVE".to_string(),
    }
}

fn row(name: &str, desc: &str, program: &mr_ir::Program, ann: HumanAnnotation) -> Vec<String> {
    let report = analyze(program);

    let (sel_detected, sel_reason) = match &report.selection {
        SelectOutcome::Selection(_) => (true, None),
        SelectOutcome::Unknown(m) => (false, Some(m.to_string())),
        _ => (false, None),
    };
    let (proj_detected, proj_reason) = match &report.projection {
        ProjectOutcome::Projection(_) => (true, None),
        ProjectOutcome::Opaque => (false, Some("opaque serialization".to_string())),
        _ => (false, None),
    };
    let (delta_detected, delta_reason) = match &report.delta {
        DeltaOutcome::Delta(_) => (true, None),
        DeltaOutcome::Opaque => (false, Some("opaque serialization".to_string())),
        _ => (false, None),
    };

    vec![
        name.to_string(),
        desc.to_string(),
        grade(sel_detected, ann.select, sel_reason),
        grade(proj_detected, ann.project, proj_reason),
        grade(delta_detected, ann.delta, delta_reason),
    ]
}

fn main() {
    bench::banner(
        "Table 1 — analyzer recall",
        "The Manimal analyzer run on the four Pavlo et al. benchmark programs,\n\
         graded against a human annotator. Paper: B1 select detected but\n\
         projection/delta hidden by the custom AbstractTuple serialization;\n\
         B4's Hashtable-based selection is the one serious miss.",
    );

    // Benchmark 3's analysis concerns both of its mappers; the visits
    // side carries the selection and delta, the rankings side neither —
    // grade the benchmark on the visits mapper like the paper does.
    let rows = vec![
        row(
            "Benchmark-1",
            "Selection",
            &pavlo::benchmark1(9998),
            pavlo::benchmark1_annotation(),
        ),
        row(
            "Benchmark-2",
            "Aggregation",
            &pavlo::benchmark2(),
            pavlo::benchmark2_annotation(),
        ),
        row(
            "Benchmark-3",
            "Join",
            &pavlo::benchmark3_visits_mapper(1_000, 2_000),
            pavlo::benchmark3_annotation(),
        ),
        row(
            "Benchmark-4",
            "UDF Aggregation",
            &pavlo::benchmark4(),
            pavlo::benchmark4_annotation(),
        ),
    ];

    bench::print_table(
        &[
            "Test",
            "Description",
            "Select",
            "Project",
            "Delta-Compression",
        ],
        &rows,
    );

    let false_positives = rows
        .iter()
        .flat_map(|r| r.iter())
        .filter(|c| c.contains("FALSE POSITIVE"))
        .count();
    println!("\nfalse positives: {false_positives} (paper: 0)");
}
