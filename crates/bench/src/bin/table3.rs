//! Table 3 — selection at varying selectivities.
//!
//! The query (paper §4.3):
//! `SELECT pageRank, COUNT(url) FROM WebPages WHERE pageRank > t
//!  GROUP BY pageRank`, with `t` chosen for selectivities 60%…10%.
//!
//! Paper speedups: 1.59 / 1.85 / 2.29 / 2.98 / 4.19 / 7.10 — roughly
//! linear in selectivity, because the B+Tree scan reads only the
//! emitting fraction of a 129.5 GB input.

use std::sync::Arc;

use manimal::{Builtin, Manimal};
use mr_workloads::data::{generate_webpages, WebPagesConfig};
use mr_workloads::queries::{selection_query, threshold_for_selectivity};

fn main() {
    bench::banner(
        "Table 3 — selection vs. selectivity",
        "SELECT pageRank, COUNT(url) WHERE pageRank > t GROUP BY pageRank.\n\
         Paper speedups: 60%→1.59x, 50%→1.85x, 40%→2.29x, 30%→2.98x,\n\
         20%→4.19x, 10%→7.10x.",
    );
    let dir = bench::bench_dir("table3");
    let input = dir.join("webpages.seq");
    let n = bench::scaled(60_000);
    generate_webpages(
        &input,
        &WebPagesConfig {
            pages: n,
            content_size: 1024,
            ..WebPagesConfig::default()
        },
    )
    .expect("generate webpages");
    let input_size = std::fs::metadata(&input).expect("meta").len();
    println!(
        "input: {n} pages, {} (paper: 129.5 GB)\n",
        bench::fmt_bytes(input_size)
    );

    let mut rows = Vec::new();
    for selectivity in [60u32, 50, 40, 30, 20, 10] {
        let threshold = threshold_for_selectivity(selectivity);
        let program = selection_query(threshold);
        let manimal = Manimal::new(dir.join(format!("work-{selectivity}"))).expect("manimal");
        let submission = manimal.submit(&program, &input);
        manimal.build_indexes(&submission).expect("index");

        let (hadoop, base) = bench::time_runs(|| {
            manimal
                .execute_baseline(&submission, Arc::new(Builtin::Count))
                .expect("baseline")
        });
        let (opt, run) = bench::time_runs(|| {
            manimal
                .execute(&submission, Arc::new(Builtin::Count))
                .expect("optimized")
        });
        assert!(run.applied.iter().any(|a| a.contains("selection")));
        assert_eq!(run.result.output, base.result.output, "outputs must match");

        rows.push(vec![
            format!("{selectivity}%"),
            bench::fmt_bytes(base.result.counters.shuffle_bytes),
            base.result.counters.reduce_output_records.to_string(),
            bench::fmt_secs(hadoop),
            bench::fmt_secs(opt),
            format!("{:.2}", hadoop.as_secs_f64() / opt.as_secs_f64()),
            format!(
                "{:.0}%",
                100.0 * run.result.counters.map_invocations as f64
                    / base.result.counters.map_invocations.max(1) as f64
            ),
        ]);
    }

    bench::print_table(
        &[
            "Selectivity",
            "Intermediate output",
            "Final groups",
            "Hadoop",
            "Manimal",
            "Speedup",
            "Records read",
        ],
        &rows,
    );
}
