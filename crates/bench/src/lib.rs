//! Shared harness for the table-regeneration binaries.
//!
//! Every `table*` binary reproduces one table of the paper's evaluation.
//! Sizes default to laptop-scale; set `MANIMAL_SCALE` (a float ≥ 0.1) to
//! grow or shrink every dataset, and `MANIMAL_RUNS` to change the
//! number of timed repetitions (the paper averages over 3).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// True when the binary was invoked with `--smoke`: shrink every
/// dataset to the minimum scale and run each measurement once, so CI
/// can prove the bench bins still work without paying for a real run.
pub fn smoke() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--smoke"))
}

/// Become a task-protocol worker if this binary was re-exec'd as one —
/// the first line of every bench `main`. With `MANIMAL_BACKEND=process`
/// the engine forks the running bench binary itself as its worker
/// fleet, so every bin that might coordinate must also be able to obey.
pub fn worker_guard() {
    mr_engine::maybe_worker_entry();
}

/// Parse environment variable `var` with `parse`, hard-erroring on any
/// unrecognized value. A typo'd drill variable silently falling back to
/// its default would make a CI fault drill pass while injecting
/// nothing — misconfiguration must be loud.
fn env_parsed<T>(var: &str, parse: impl Fn(&str) -> Option<T>) -> Option<T> {
    let raw = std::env::var(var).ok()?;
    match parse(&raw) {
        Some(v) => Some(v),
        None => panic!("{var}: unrecognized value `{raw}`"),
    }
}

/// Dataset scale factor from `MANIMAL_SCALE` (default 1.0, or the
/// 0.1 floor under `--smoke`). Anything but a positive finite number
/// is a hard error.
pub fn scale() -> f64 {
    env_parsed("MANIMAL_SCALE", |s| {
        s.parse::<f64>().ok().filter(|v| v.is_finite() && *v > 0.0)
    })
    .map(|s| s.max(0.1))
    .unwrap_or(if smoke() { 0.1 } else { 1.0 })
}

/// Scaled element count.
pub fn scaled(base: usize) -> usize {
    ((base as f64) * scale()).round().max(1.0) as usize
}

/// The fault-drill environment: `MANIMAL_FAULT_SPEC` (a
/// [`mr_engine::FaultPlan`] spec like `map:0:0:0,reduce:0:0:0`) and
/// `MANIMAL_TASK_ATTEMPTS` (attempts per task, default 1). CI's
/// `fault-smoke` step runs the scale bins under an injected schedule
/// this way, proving the bench surface — byte-identity assertions
/// included — survives task retries.
pub fn fault_env() -> (Option<std::sync::Arc<mr_engine::FaultPlan>>, usize) {
    let plan = std::env::var("MANIMAL_FAULT_SPEC").ok().map(|spec| {
        std::sync::Arc::new(
            mr_engine::FaultPlan::from_spec(&spec)
                .unwrap_or_else(|e| panic!("MANIMAL_FAULT_SPEC: {e}")),
        )
    });
    let attempts = env_parsed("MANIMAL_TASK_ATTEMPTS", |s| {
        s.parse::<usize>().ok().filter(|n| *n >= 1)
    })
    .unwrap_or(1);
    (plan, attempts)
}

/// The execution backend from `MANIMAL_BACKEND` (`local` | `process` |
/// `process:N`), or `None` when unset. CI's `distributed-smoke` job
/// sets `process` so the whole bench surface — byte-identity assertions
/// included — runs over forked workers and the task protocol on every
/// push. Unknown values are a hard error, like every `MANIMAL_*` knob.
pub fn backend_env() -> Option<mr_engine::BackendSpec> {
    let raw = std::env::var("MANIMAL_BACKEND").ok()?;
    match mr_engine::BackendSpec::parse(&raw) {
        Ok(spec) => Some(spec),
        Err(e) => panic!("MANIMAL_BACKEND: {e}"),
    }
}

/// The shuffle codec from `MANIMAL_SHUFFLE_CODEC` (`none` | `raw` |
/// `dict` | `delta` | `dict-trained`), or `None` when unset — CI's
/// `fault-smoke` step sets it so the compressed spill path runs under
/// injected failures on every push.
pub fn shuffle_codec_env() -> Option<mr_engine::ShuffleCompression> {
    std::env::var("MANIMAL_SHUFFLE_CODEC").ok().map(|name| {
        mr_engine::ShuffleCompression::parse(&name)
            .unwrap_or_else(|| panic!("MANIMAL_SHUFFLE_CODEC: unknown codec `{name}`"))
    })
}

/// Apply [`fault_env`], [`shuffle_codec_env`], and [`backend_env`] to
/// a job — every bench job opts in, so one environment variable
/// fault-drills, compresses, or re-backends a whole table run. Every
/// `MANIMAL_*` variable involved hard-errors on an unrecognized value.
pub fn apply_fault_env(job: &mut mr_engine::JobConfig) {
    let (plan, attempts) = fault_env();
    job.max_task_attempts = attempts;
    job.fault_plan = plan;
    if let Some(codec) = shuffle_codec_env() {
        job.shuffle_compression = codec;
    }
    if let Some(backend) = backend_env() {
        job.backend = backend;
    }
}

/// Timed repetitions from `MANIMAL_RUNS` (default 3, like the paper).
/// Anything but a number ≥ 1 is a hard error.
pub fn runs() -> usize {
    env_parsed("MANIMAL_RUNS", |s| {
        s.parse::<usize>().ok().filter(|n| *n >= 1)
    })
    .unwrap_or(if smoke() { 1 } else { 3 })
}

/// Working directory for generated data and indexes.
pub fn bench_dir(table: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("manimal-bench").join(table);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// Run `f` [`runs`] times; return the mean wall-clock time and the last
/// result.
pub fn time_runs<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let n = runs();
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..n {
        let start = Instant::now();
        let out = f();
        total += start.elapsed();
        last = Some(out);
    }
    (total / n as u32, last.expect("at least one run"))
}

/// Format a byte count human-readably.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: &[&str] = &["B", "KB", "MB", "GB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Format a duration in seconds with millisecond precision.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Print an aligned table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate().take(ncols) {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Write a bench bin's machine-readable results next to the human
/// table: `BENCH_<name>.json` in the working directory (CI uploads
/// these as artifacts, so the perf trajectory is tracked run over run
/// instead of scrolling away in logs). The document always carries the
/// active scale/runs settings so runs are comparable.
pub fn write_bench_json(name: &str, mut doc: mr_json::Json) {
    if let mr_json::Json::Obj(members) = &mut doc {
        members.insert(0, ("bench".into(), mr_json::Json::str(name)));
        members.insert(1, ("scale".into(), mr_json::Json::Float(scale())));
        members.insert(2, ("runs".into(), mr_json::Json::Int(runs() as i64)));
        members.insert(3, ("smoke".into(), mr_json::Json::Bool(smoke())));
    }
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    match std::fs::write(&path, doc.to_string_pretty() + "\n") {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// A duration in fractional seconds for JSON output.
pub fn json_secs(d: Duration) -> mr_json::Json {
    mr_json::Json::Float(d.as_secs_f64())
}

/// A banner naming the table being reproduced.
pub fn banner(title: &str, detail: &str) {
    println!("\n=== {title} ===");
    println!("{detail}");
    println!(
        "(scale={}, runs={}; set MANIMAL_SCALE / MANIMAL_RUNS to change)\n",
        scale(),
        runs()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
    }

    #[test]
    fn scaled_counts() {
        assert!(scaled(100) >= 1);
    }

    #[test]
    fn timing_runs_at_least_once() {
        let (d, v) = time_runs(|| 42);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn env_parsed_accepts_recognized_values() {
        std::env::set_var("MANIMAL_TEST_GOOD", "7");
        assert_eq!(
            env_parsed("MANIMAL_TEST_GOOD", |s| s.parse::<usize>().ok()),
            Some(7)
        );
        assert_eq!(
            env_parsed("MANIMAL_TEST_UNSET", |s| s.parse::<usize>().ok()),
            None
        );
    }

    #[test]
    #[should_panic(expected = "MANIMAL_TEST_BAD: unrecognized value `nope`")]
    fn env_parsed_hard_errors_on_unrecognized_values() {
        std::env::set_var("MANIMAL_TEST_BAD", "nope");
        env_parsed("MANIMAL_TEST_BAD", |s| s.parse::<usize>().ok());
    }

    #[test]
    #[should_panic(expected = "MANIMAL_TEST_BACKEND")]
    fn backend_env_hard_errors_on_unknown_backends() {
        // Exercised through a private alias of the same code path to
        // avoid poisoning the real variable for parallel tests.
        std::env::set_var("MANIMAL_TEST_BACKEND", "cluster");
        let raw = std::env::var("MANIMAL_TEST_BACKEND").unwrap();
        if let Err(e) = mr_engine::BackendSpec::parse(&raw) {
            panic!("MANIMAL_TEST_BACKEND: {e}");
        }
    }
}
