//! Property-based tests for the analyzer's central soundness claims.
//!
//! The paper's safety bar — "missing an optimization is regrettable, but
//! finding a false one is catastrophic" — reduces to two checkable
//! properties:
//!
//! 1. **Selection**: whenever `find_select` returns a DNF, the formula
//!    evaluates true on a record *iff* interpreting the original map on
//!    that record emits at least one pair; and every emitting record's
//!    index key falls inside some scan range.
//! 2. **Projection**: running the map on a record projected down to the
//!    analyzer's used-field set (others defaulted) produces exactly the
//!    emits of the original record.
//!
//! The programs are drawn from a generator of random predicate shapes
//! (nested if/else over comparisons, conjunctions, disjunctions and
//! pure string calls), so these tests cover far more shapes than the
//! hand-written unit cases.

use std::sync::Arc;

use proptest::prelude::*;

use mr_analysis::project::{find_project, ProjectOutcome};
use mr_analysis::select::{find_select, SelectOutcome};
use mr_ir::builder::FunctionBuilder;
use mr_ir::function::Program;
use mr_ir::instr::{BinOp, CmpOp, ParamId, Reg};
use mr_ir::interp::Interpreter;
use mr_ir::record::record;
use mr_ir::schema::{FieldType, Schema};
use mr_ir::value::Value;
use mr_ir::verify::verify;

fn schema() -> Arc<Schema> {
    Schema::new(
        "T",
        vec![
            ("a", FieldType::Int),
            ("b", FieldType::Int),
            ("s", FieldType::Str),
            ("unused", FieldType::Str),
        ],
    )
    .into_arc()
}

/// A randomly-shaped boolean condition over fields `a`, `b`, `s`.
#[derive(Debug, Clone)]
enum Cond {
    CmpA(CmpOp, i64),
    CmpB(CmpOp, i64),
    StrPrefix(String),
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    let cmp_op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let leaf = prop_oneof![
        (cmp_op.clone(), -20i64..20).prop_map(|(op, c)| Cond::CmpA(op, c)),
        (cmp_op, -20i64..20).prop_map(|(op, c)| Cond::CmpB(op, c)),
        "[xy]{1,2}".prop_map(Cond::StrPrefix),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Cond::Not(Box::new(a))),
        ]
    })
}

/// Compile a `Cond` into a register holding its boolean value.
fn emit_cond(b: &mut FunctionBuilder, v: Reg, cond: &Cond) -> Reg {
    match cond {
        Cond::CmpA(op, c) => {
            let f = b.get_field(v, "a");
            let k = b.const_int(*c);
            b.cmp(*op, f, k)
        }
        Cond::CmpB(op, c) => {
            let f = b.get_field(v, "b");
            let k = b.const_int(*c);
            b.cmp(*op, f, k)
        }
        Cond::StrPrefix(p) => {
            let f = b.get_field(v, "s");
            let k = b.const_str(p);
            b.call("str.starts_with", vec![f, k])
        }
        Cond::And(x, y) => {
            let rx = emit_cond(b, v, x);
            let ry = emit_cond(b, v, y);
            b.bin(BinOp::And, rx, ry)
        }
        Cond::Or(x, y) => {
            let rx = emit_cond(b, v, x);
            let ry = emit_cond(b, v, y);
            b.bin(BinOp::Or, rx, ry)
        }
        Cond::Not(x) => {
            let rx = emit_cond(b, v, x);
            b.not(rx)
        }
    }
}

/// Build `if cond { emit(v.a, 1) }`, optionally with a second guarded
/// emit to exercise multi-path DNFs.
fn build_program(cond: &Cond, second: Option<&Cond>) -> Program {
    let mut b = FunctionBuilder::new("gen_map");
    let v = b.load_param(ParamId::Value);
    let one = b.const_int(1);
    let a = b.get_field(v, "a");

    let c1 = emit_cond(&mut b, v, cond);
    let (hit1, next) = (b.fresh_label("hit1"), b.fresh_label("next"));
    b.br(c1, hit1, next);
    b.bind(hit1);
    b.emit(a, one);
    b.bind(next);
    if let Some(c) = second {
        let c2 = emit_cond(&mut b, v, c);
        let (hit2, exit) = (b.fresh_label("hit2"), b.fresh_label("exit"));
        b.br(c2, hit2, exit);
        b.bind(hit2);
        b.emit(one, a);
        b.bind(exit);
    }
    b.ret();
    Program::new("generated", b.finish(), schema())
}

fn record_strategy() -> impl Strategy<Value = (i64, i64, String)> {
    (-25i64..25, -25i64..25, "[xyz]{0,3}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selection soundness: DNF(record) ⟺ map(record) emits.
    #[test]
    fn selection_dnf_matches_interpreter(
        cond in cond_strategy(),
        second in proptest::option::of(cond_strategy()),
        records in proptest::collection::vec(record_strategy(), 1..24),
    ) {
        let program = build_program(&cond, second.as_ref());
        prop_assert!(verify(&program.mapper).is_ok());

        let outcome = find_select(&program);
        let s = schema();
        for (a, bv, sv) in &records {
            let rec: Value =
                record(&s, vec![Value::Int(*a), Value::Int(*bv), sv.as_str().into(), "pad".into()]).into();
            let mut interp = Interpreter::new(&program.mapper);
            let emitted = !interp
                .invoke_map(&program.mapper, &Value::Int(0), &rec)
                .unwrap()
                .emits
                .is_empty();
            match &outcome {
                SelectOutcome::Selection(d) => {
                    let predicted = d.dnf.eval(&Value::Int(0), &rec).unwrap();
                    prop_assert_eq!(
                        predicted, emitted,
                        "DNF {} disagrees on a={} b={} s={:?}", d.dnf, a, bv, sv
                    );
                    // Index safety: an emitting record's key must fall
                    // inside some scan range.
                    if emitted {
                        if let Some(plan) = &d.plan {
                            let key = plan.key.eval(&Value::Int(0), &rec).unwrap();
                            prop_assert!(
                                plan.ranges.iter().any(|r| r.contains(&key)),
                                "key {} of emitting record outside all ranges", key
                            );
                        }
                    }
                }
                SelectOutcome::AlwaysEmits => prop_assert!(emitted),
                SelectOutcome::NeverEmits => prop_assert!(!emitted),
                SelectOutcome::Unknown(_) => {
                    // Declining is always safe; nothing to check.
                }
            }
        }
    }

    /// Projection soundness: dropping analyzer-dropped fields never
    /// changes the map's output.
    #[test]
    fn projection_preserves_emits(
        cond in cond_strategy(),
        records in proptest::collection::vec(record_strategy(), 1..24),
    ) {
        let program = build_program(&cond, None);
        let outcome = find_project(&program);
        let ProjectOutcome::Projection(desc) = &outcome else {
            // AllFieldsNeeded etc.: nothing to falsify.
            return Ok(());
        };
        let s = schema();
        let proj_schema = Arc::new(s.project(&desc.used_fields));
        for (a, bv, sv) in &records {
            let full = record(
                &s,
                vec![Value::Int(*a), Value::Int(*bv), sv.as_str().into(), "pad".into()],
            );
            // Project away dropped fields, then widen back with
            // defaults — exactly what the projected input format does.
            let projected = full
                .project_to(Arc::clone(&proj_schema))
                .project_to(Arc::clone(&s));

            let mut i1 = Interpreter::new(&program.mapper);
            let out_full = i1
                .invoke_map(&program.mapper, &Value::Int(0), &full.into())
                .unwrap();
            let mut i2 = Interpreter::new(&program.mapper);
            let out_proj = i2
                .invoke_map(&program.mapper, &Value::Int(0), &projected.into())
                .unwrap();
            prop_assert_eq!(out_full.emits, out_proj.emits);
        }
    }
}
