//! Path enumeration: the paper's `paths(s)` and `conds(path)` (Fig. 3).
//!
//! `paths(s)` returns all simple (acyclic) CFG paths from function entry
//! to the statement `s`; `conds(path)` returns the conditional tests
//! taken along one such path, each with the *polarity* of the edge the
//! path followed (the paper's DNF needs the negation of a condition when
//! an emit is reached through an else-edge).

use mr_ir::function::Function;
use mr_ir::instr::{Instr, Reg};

use crate::cfg::{BlockId, Cfg};

/// One conditional test on a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathCond {
    /// Instruction index of the branch.
    pub br_pc: usize,
    /// The condition register.
    pub cond: Reg,
    /// `true` when the path follows the then-edge, `false` for the
    /// else-edge.
    pub polarity: bool,
}

/// Why path enumeration gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// More simple paths than the configured cap; the analyzer treats
    /// the program as too complex to optimize safely.
    TooManyPaths {
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::TooManyPaths { cap } => {
                write!(f, "more than {cap} simple paths; refusing to enumerate")
            }
        }
    }
}

/// Enumerate all simple block paths from the entry block to `target`.
///
/// Simple paths never repeat a block, so loops are traversed at most
/// "zero or one time" — the soundness of using these paths for the
/// selection DNF is guarded separately by the resolver's loop-carried
/// check.
pub fn paths_to(cfg: &Cfg, target: BlockId, cap: usize) -> Result<Vec<Vec<BlockId>>, PathError> {
    let mut out = Vec::new();
    let mut on_path = vec![false; cfg.len()];
    let mut path: Vec<BlockId> = Vec::new();

    // Iterative DFS with an explicit stack of (block, next-successor).
    let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
    on_path[0] = true;
    path.push(0);

    while let Some(&mut (block, ref mut next)) = stack.last_mut() {
        if block == target && *next == 0 {
            out.push(path.clone());
            if out.len() > cap {
                return Err(PathError::TooManyPaths { cap });
            }
            // Do not extend past the target: a simple path that revisits
            // target is impossible anyway, and conds past the target are
            // irrelevant.
            *next = cfg.succs[block].len();
        }
        if *next < cfg.succs[block].len() {
            let succ = cfg.succs[block][*next];
            *next += 1;
            if !on_path[succ] {
                on_path[succ] = true;
                path.push(succ);
                stack.push((succ, 0));
            }
        } else {
            on_path[block] = false;
            path.pop();
            stack.pop();
        }
    }
    Ok(out)
}

/// The conditional tests taken along `path`, with edge polarity —
/// the paper's `conds(path)`.
pub fn conds_on_path(func: &Function, cfg: &Cfg, path: &[BlockId]) -> Vec<PathCond> {
    let mut out = Vec::new();
    for win in path.windows(2) {
        let (b, next) = (win[0], win[1]);
        let last_pc = cfg.blocks[b].last();
        if let Instr::Br {
            cond,
            then_tgt,
            else_tgt,
        } = &func.instrs[last_pc]
        {
            let then_block = cfg.block_of(*then_tgt);
            let else_block = cfg.block_of(*else_tgt);
            if then_block == else_block {
                // Degenerate branch: no information.
                continue;
            }
            let polarity = then_block == next;
            debug_assert!(
                polarity || else_block == next,
                "path edge must match branch"
            );
            out.push(PathCond {
                br_pc: last_pc,
                cond: *cond,
                polarity,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_ir::asm::parse_function;

    fn build(src: &str) -> (Function, Cfg) {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::build(&f);
        (f, cfg)
    }

    #[test]
    fn single_branch_two_paths_to_exit() {
        let (f, cfg) = build(
            r#"
            func map(key, value) {
              r0 = param value
              r1 = field r0.rank
              r2 = const 1
              r3 = cmp gt r1, r2
              br r3, then, exit
            then:
              emit r1, r2
            exit:
              ret
            }
            "#,
        );
        let emit_block = cfg.block_of(5);
        let paths = paths_to(&cfg, emit_block, 64).unwrap();
        assert_eq!(paths, vec![vec![0, 1]]);
        let conds = conds_on_path(&f, &cfg, &paths[0]);
        assert_eq!(conds.len(), 1);
        assert!(conds[0].polarity);

        // Two paths reach the exit block: through the emit and around it.
        let exit_block = cfg.block_of(6);
        let mut paths = paths_to(&cfg, exit_block, 64).unwrap();
        paths.sort();
        assert_eq!(paths, vec![vec![0, 1, 2], vec![0, 2]]);
        let around = conds_on_path(&f, &cfg, &[0, 2]);
        assert_eq!(around.len(), 1);
        assert!(!around[0].polarity, "else-edge must have false polarity");
    }

    #[test]
    fn nested_branches_enumerate_all_paths() {
        let (f, cfg) = build(
            r#"
            func f(key, value) {
              r0 = param value
              r1 = field r0.a
              br r1, l1, exit
            l1:
              r2 = field r0.b
              br r2, l2, exit
            l2:
              emit r1, r2
            exit:
              ret
            }
            "#,
        );
        let emit_block = cfg.block_of(5);
        let paths = paths_to(&cfg, emit_block, 64).unwrap();
        assert_eq!(paths.len(), 1);
        let conds = conds_on_path(&f, &cfg, &paths[0]);
        assert_eq!(conds.len(), 2);
        assert!(conds.iter().all(|c| c.polarity));
    }

    #[test]
    fn diamond_join_gives_two_paths() {
        let (f, cfg) = build(
            r#"
            func f(key, value) {
              r0 = param value
              r1 = field r0.flag
              br r1, a, b
            a:
              r2 = const 10
              jmp join
            b:
              r2 = const 20
            join:
              emit r1, r2
              ret
            }
            "#,
        );
        let join = cfg.block_of(6);
        let paths = paths_to(&cfg, join, 64).unwrap();
        assert_eq!(paths.len(), 2);
        let pols: Vec<bool> = paths
            .iter()
            .map(|p| conds_on_path(&f, &cfg, p)[0].polarity)
            .collect();
        assert!(pols.contains(&true) && pols.contains(&false));
    }

    #[test]
    fn loops_do_not_duplicate_paths() {
        let (_f, cfg) = build(
            r#"
            func f(key, value) {
              r0 = const 0
              r1 = const 3
            head:
              r2 = cmp lt r0, r1
              br r2, body, exit
            body:
              r3 = const 1
              r4 = add r0, r3
              r0 = r4
              jmp head
            exit:
              ret
            }
            "#,
        );
        let exit = cfg.block_of(8);
        // Simple paths: entry→head→exit (loop body cannot repeat head).
        let paths = paths_to(&cfg, exit, 64).unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn cap_is_enforced() {
        // A ladder of k independent diamonds has 2^k paths; cap below
        // that must error.
        let mut src = String::from("func f(key, value) {\n  r0 = param value\n");
        for i in 0..6 {
            src.push_str(&format!(
                "  r{r} = field r0.f{i}\n  br r{r}, t{i}, t{i}\nt{i}:\n",
                r = i + 1
            ));
        }
        // The above is degenerate (both edges equal); build a real
        // branching ladder instead.
        let src = r#"
            func f(key, value) {
              r0 = param value
              r1 = field r0.a
              br r1, a1, b1
            a1:
              jmp m1
            b1:
              jmp m1
            m1:
              r2 = field r0.b
              br r2, a2, b2
            a2:
              jmp m2
            b2:
              jmp m2
            m2:
              r3 = field r0.c
              br r3, a3, b3
            a3:
              jmp m3
            b3:
              jmp m3
            m3:
              emit r1, r2
              ret
            }
        "#;
        let (_f, cfg) = build(src);
        let emit_block = cfg.block_of(_f.instrs.iter().position(|i| i.is_emit()).unwrap());
        assert_eq!(paths_to(&cfg, emit_block, 64).unwrap().len(), 8);
        assert!(matches!(
            paths_to(&cfg, emit_block, 4),
            Err(PathError::TooManyPaths { cap: 4 })
        ));
    }
}
